// Trains O2-SiteRec and two baselines (HGT and CityTransfer, both in the
// Adaption setting) on the same dataset and prints a mini leaderboard —
// the smallest end-to-end reproduction of the paper's Table III shape.
//
//   ./build/examples/compare_models [--quiet]
//
// Progress goes through the o2sr logger (suppress with --quiet or
// O2SR_LOG_LEVEL=warning); the leaderboard itself stays on stdout.

#include <cstdio>
#include <cstring>

#include "baselines/factory.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"
#include "obs/log.h"

int main(int argc, char** argv) {
  using namespace o2sr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      obs::SetMinLogLevel(obs::LogLevel::kWarning);
    }
  }

  sim::SimConfig city_cfg;
  city_cfg.city_width_m = 8000.0;
  city_cfg.city_height_m = 8000.0;
  city_cfg.num_store_types = 14;
  city_cfg.num_stores = 3400;
  city_cfg.num_couriers = 380;
  city_cfg.num_days = 6;
  city_cfg.seed = 5;
  const sim::Dataset data = sim::GenerateDataset(city_cfg);
  const eval::Split split = eval::SplitInteractions(
      data, eval::BuildInteractions(data), {/*train_fraction=*/0.8,
                                            /*seed=*/1});
  eval::EvalOptions opts;
  opts.min_candidates = 30;
  O2SR_LOG(INFO) << "Dataset: " << data.orders.size() << " orders, "
                 << split.train.size() + split.test.size()
                 << " interactions.";

  TablePrinter table({"Model", "NDCG@3", "Precision@3", "RMSE"});
  auto report = [&](core::SiteRecommender& model) {
    O2SR_LOG(INFO) << "training " << model.Name() << "...";
    const eval::EvalResult r = eval::RunOnce(model, data, split, opts).value();
    table.AddRow({model.Name(), TablePrinter::Num(r.ndcg.at(3)),
                  TablePrinter::Num(r.precision.at(3)),
                  TablePrinter::Num(r.rmse)});
  };

  baselines::BaselineConfig bl_cfg;
  auto city_transfer = baselines::MakeBaseline(
      baselines::BaselineKind::kCityTransfer, bl_cfg);
  report(*city_transfer);
  auto hgt = baselines::MakeBaseline(baselines::BaselineKind::kHgt, bl_cfg);
  report(*hgt);

  core::O2SiteRecConfig ours_cfg;
  ours_cfg.rec.embedding_dim = 32;
  ours_cfg.epochs = 25;
  core::O2SiteRecRecommender ours(ours_cfg);
  report(ours);

  table.Print(stdout);
  std::printf("\nExpected shape (paper Table III): O2-SiteRec > HGT > "
              "CityTransfer on the ranking metrics.\n");
  return 0;
}
