// Continual retraining, end to end: the supervised TRAIN -> EXPORT ->
// CANARY -> SWAP -> SERVE -> DRIFT -> RETRAIN loop over a drifting city
// (DESIGN.md §11).
//
//   ./build/examples/continual_demo [work_dir]
//
// Runs the journaled pipeline for a few refresh cycles: each cycle the
// city drifts (stores open/close, cuisine popularity walks, rush hours
// shift), the model retrains warm-started from the previous snapshot, and
// the refreshed snapshot is canaried and hot-swapped into the serving
// engine. Run it under an O2SR_FAULTS recipe (checkpoint/journal/snapshot
// faults, scorer errors) and the retry/backoff supervisor plus the
// engine's fallback ladder ride the chaos out; the pipeline is
// crash-resumable, so even a mid-run abort resumes from the journal on the
// next invocation.
//
// Env knobs: O2SR_PIPELINE_DIR, O2SR_PIPELINE_CYCLES,
// O2SR_PIPELINE_RETRIES, O2SR_PIPELINE_BACKOFF_MS (see README).
//
// Exits 0 only when every configured refresh cycle completed; the summary
// line is machine-checked by ci.sh.

#include <cstdio>
#include <string>

#include "obs/log.h"
#include "pipeline/pipeline.h"
#include "serve/engine.h"

namespace {

using namespace o2sr;

sim::SimConfig WorldConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 4000.0;
  cfg.city_height_m = 4000.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 300;
  cfg.num_couriers = 120;
  cfg.num_days = 3;
  cfg.seed = 77;
  return cfg;
}

core::O2SiteRecConfig ModelConfig() {
  core::O2SiteRecConfig cfg;
  cfg.rec.embedding_dim = 16;
  cfg.rec.node_heads = 2;
  cfg.epochs = 6;
  cfg.seed = 9;
  return cfg;
}

sim::DriftConfig DriftSpec() {
  sim::DriftConfig drift;
  drift.store_close_rate = 0.08;
  drift.store_open_rate = 0.10;
  drift.popularity_walk_sigma = 0.35;
  drift.rush_shift_slots = 0.5;
  drift.seed = 41;
  return drift;
}

}  // namespace

int main(int argc, char** argv) {
  pipeline::PipelineOptions options;
  options.world = WorldConfig();
  options.model = ModelConfig();
  options.drift = DriftSpec();
  options.cycles = 3;
  options.work_dir = "continual_state";
  options.serve_queries = 16;
  pipeline::ApplyPipelineEnv(&options);
  if (argc > 1) options.work_dir = argv[1];
  options.event_log_path = options.work_dir + "/pipeline_events.jsonl";

  pipeline::ContinualPipeline supervisor(options);
  auto report = supervisor.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "continual pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  int retries_evts = 0, fallbacks = 0, resumes = 0;
  for (const obs::PipelineEvent& e : report->events) {
    switch (e.kind) {
      case obs::PipelineEventKind::kRetry: ++retries_evts; break;
      case obs::PipelineEventKind::kFallback: ++fallbacks; break;
      case obs::PipelineEventKind::kResume: ++resumes; break;
      default: break;
    }
  }
  (void)retries_evts;

  const serve::ServingEngine* engine = supervisor.engine();
  const char* health =
      engine != nullptr ? serve::ServeHealthName(engine->health()) : "none";
  const bool complete =
      !report->stopped_early && report->cycles_completed >= options.cycles;

  // Machine-checked by ci.sh; keep the format stable.
  std::printf(
      "continual: cycles=%d transitions=%lld retries=%d fallbacks=%d "
      "resumes=%d served=%d degraded=%d health=%s\n",
      report->cycles_completed, static_cast<long long>(report->transitions),
      report->retries, report->swap_fallbacks, resumes, report->served,
      report->degraded, health);
  if (!complete) {
    std::fprintf(stderr,
                 "continual pipeline stopped before completing %d cycles\n",
                 options.cycles);
    return 1;
  }
  return 0;
}
