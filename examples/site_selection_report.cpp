// Scenario: a coffee chain plans new O2O stores. This example trains
// O2-SiteRec on the platform's history and uses the SiteRecommendationService
// to produce a site report: the top candidate regions with the context that
// drives each recommendation (neighborhood demand, courier capacity,
// competition).

#include <cstdio>

#include "core/site_recommendation.h"
#include "eval/experiment.h"
#include "sim/dataset.h"

int main() {
  using namespace o2sr;

  sim::SimConfig city_cfg;
  city_cfg.city_width_m = 7000.0;
  city_cfg.city_height_m = 7000.0;
  city_cfg.num_store_types = 14;
  city_cfg.num_stores = 1600;
  city_cfg.num_couriers = 300;
  city_cfg.num_days = 6;
  city_cfg.seed = 77;
  const sim::Dataset data = sim::GenerateDataset(city_cfg);

  int coffee = 6;  // catalog id of "coffee"
  for (int a = 0; a < data.num_types(); ++a) {
    if (data.type_catalog[a].name == "coffee") coffee = a;
  }

  // Train on the historical interactions (deployment setting).
  const eval::Split split = eval::SplitInteractions(
      data, eval::BuildInteractions(data), {/*train_fraction=*/0.8,
                                            /*seed=*/3});
  core::O2SiteRecConfig model_cfg;
  model_cfg.rec.embedding_dim = 32;
  model_cfg.epochs = 25;
  core::O2SiteRec model(data, split.train_orders, model_cfg);
  O2SR_CHECK_OK(model.Train(split.train));

  const core::SiteRecommendationService service(data, model);

  // City-wide expansion: best three regions without a coffee store yet.
  core::SiteQuery query;
  query.type = coffee;
  query.top_k = 3;
  std::printf("%s\n", service.FormatReport(query, service.Recommend(query))
                          .c_str());

  // Downtown-only variant: the chain wants a flagship near the center.
  query.max_center_distance_norm = 0.35;
  query.top_k = 2;
  std::printf("Downtown-only (inner 35%% of the city):\n%s\n",
              service.FormatReport(query, service.Recommend(query)).c_str());

  // How does the courier-capacity model see the winning site at the rushes?
  const auto suggestions = service.Recommend(query);
  if (!suggestions.empty()) {
    const int region = suggestions.front().region;
    std::printf("Predicted delivery minutes from region %d to itself:\n",
                region);
    for (int p = 0; p < sim::kNumPeriods; ++p) {
      std::printf("  %-13s %.1f\n",
                  sim::PeriodName(static_cast<sim::Period>(p)),
                  model.PredictDeliveryMinutes(p, region, region));
    }
  }
  std::printf(
      "\nReading the report: high nearby demand and short noon delivery\n"
      "times indicate customers the couriers can actually reach; low\n"
      "competition means the demand is not yet captured locally.\n");
  return 0;
}
