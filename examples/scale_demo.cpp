// Out-of-core dataset walkthrough: ingest a streamed order log into
// checksummed shards, then read it back into region aggregates — the two
// halves the chaos smoke in ci.sh kills, restarts and corrupts.
//
//   scale_demo ingest <dir> [max_shards]   run (or resume) ingestion;
//                                          optional shard cap per run so a
//                                          driver can emulate crashes at
//                                          journal boundaries
//   scale_demo read <dir>                  stream aggregates + fingerprint
//
// Both subcommands print stable `key=value` lines so shell drivers can
// assert on them. The ingest/read pair honors O2SR_MEM_BUDGET_MB and the
// dataset.* sites of O2SR_FAULTS.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "features/stream_aggregate.h"
#include "sim/stream.h"
#include "sim/world.h"

using namespace o2sr;

namespace {

// A small fixed city shared by every scale_demo invocation, so a driver
// can ingest in one process and read in another.
sim::SimConfig DemoConfig() {
  sim::SimConfig config;
  config.city_width_m = 3000.0;
  config.city_height_m = 3000.0;  // 6x6 = 36 regions
  config.num_store_types = 8;
  config.num_stores = 240;
  config.num_couriers = 140;
  config.num_days = 4;
  config.peak_orders_per_region_slot = 3.0;
  config.seed = 2022;
  return config;
}

int Usage() {
  std::fprintf(stderr,
               "usage: scale_demo ingest <dir> [max_shards_per_run]\n"
               "       scale_demo read <dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  const sim::SimConfig config = DemoConfig();

  if (mode == "ingest") {
    sim::StreamOptions options;
    options.data_dir = dir;
    if (argc > 3) options.max_shards_per_run = std::atoi(argv[3]);
    const auto result = sim::StreamGenerate(config, options);
    if (!result.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("written=%d skipped=%d stopped_early=%d blocks=%d "
                "total_rows=%llu\n",
                result->shards_written, result->shards_skipped,
                result->stopped_early ? 1 : 0, result->num_blocks,
                static_cast<unsigned long long>(result->total_rows));
    return 0;
  }

  if (mode == "read") {
    auto reader =
        sim::DatasetReader::Open(config, dir, sim::SpillReadOptions());
    if (!reader.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    sim::SpillReadReport report;
    const auto stats = features::AggregateSpill(*reader, &report);
    if (!stats.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("rows=%llu shards=%d quarantined=%d regenerated=%d "
                "skipped=%d agg_fnv=%016llx\n",
                static_cast<unsigned long long>(report.rows),
                report.shards_read, report.quarantined, report.regenerated,
                report.skipped,
                static_cast<unsigned long long>(
                    features::FingerprintOrderStats(*stats)));
    return 0;
  }

  return Usage();
}
