// Quickstart: generate a small synthetic O2O city, train O2-SiteRec, and
// print the top recommended regions for one store type.
//
//   ./build/examples/quickstart [--quiet]
//
// This walks the full public API surface: simulator -> interactions ->
// train/test split -> model -> ranked recommendations. Progress goes
// through the o2sr logger (suppress it with --quiet or
// O2SR_LOG_LEVEL=warning); the recommendation table itself stays on stdout.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/table_printer.h"
#include "core/o2siterec.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "obs/log.h"
#include "sim/dataset.h"

int main(int argc, char** argv) {
  using namespace o2sr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      obs::SetMinLogLevel(obs::LogLevel::kWarning);
    }
  }

  // 1. Simulate a 6x6 km city with 12 store types (substitute for platform
  //    order data; see DESIGN.md).
  sim::SimConfig city_cfg;
  city_cfg.city_width_m = 6000.0;
  city_cfg.city_height_m = 6000.0;
  city_cfg.num_store_types = 12;
  city_cfg.num_stores = 900;
  city_cfg.num_couriers = 220;
  city_cfg.num_days = 5;
  city_cfg.seed = 2024;
  const sim::Dataset data = sim::GenerateDataset(city_cfg);
  O2SR_LOG(INFO) << "Simulated " << data.orders.size() << " orders across "
                 << data.num_regions() << " regions and "
                 << data.stores.size() << " stores.";

  // 2. Build (store-region, type) interactions and split 80/20.
  const eval::Split split = eval::SplitInteractions(
      data, eval::BuildInteractions(data), {/*train_fraction=*/0.8,
                                            /*seed=*/1});
  O2SR_LOG(INFO) << "Interactions: " << split.train.size() << " train / "
                 << split.test.size() << " test.";

  // 3. Train O2-SiteRec on the training interactions.
  core::O2SiteRecConfig model_cfg;
  model_cfg.rec.embedding_dim = 32;
  model_cfg.rec.node_heads = 4;
  model_cfg.epochs = 25;
  core::O2SiteRec model(data, split.train_orders, model_cfg);
  O2SR_CHECK_OK(model.Train(split.train));
  O2SR_LOG(INFO) << "Trained " << model.NumParameters()
                 << " parameters; final loss " << model.final_loss() << ".";

  // 4. Recommend: rank the held-out candidate regions for "coffee".
  int coffee = 0;
  for (int a = 0; a < data.num_types(); ++a) {
    if (data.type_catalog[a].name == "coffee") coffee = a;
  }
  core::InteractionList candidates;
  for (const core::Interaction& it : split.test) {
    if (it.type == coffee) candidates.push_back(it);
  }
  if (candidates.empty()) {
    std::printf("No held-out coffee candidates in this split.\n");
    return 0;
  }
  // Candidates are held-out interactions, i.e. store regions the model has
  // nodes for, so the strict Predict cannot fail here.
  const std::vector<double> scores = model.Predict(candidates).value();

  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });

  std::printf("\nTop-5 recommended regions for a new coffee store:\n");
  TablePrinter table({"Rank", "Region", "Predicted score",
                      "Actual orders (held out)"});
  for (int i = 0; i < 5 && i < static_cast<int>(order.size()); ++i) {
    const core::Interaction& it = candidates[order[i]];
    table.AddRow({std::to_string(i + 1), std::to_string(it.region),
                  TablePrinter::Num(scores[order[i]]),
                  TablePrinter::Num(it.orders, 0)});
  }
  table.Print(stdout);

  // 5. How good is the ranking against the ground truth?
  std::vector<double> truths;
  for (const auto& it : candidates) truths.push_back(it.orders);
  std::printf("\nNDCG@5 of this ranking: %.3f (1.0 = perfect)\n",
              eval::NdcgAtK(scores, truths, 5, 10));
  return 0;
}
