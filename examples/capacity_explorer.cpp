// Trains only the courier capacity model (§III-D) and uses it as a
// delivery-time oracle: query the predicted delivery minutes between
// regions per period and compare with the simulator's ground truth. This is
// the auxiliary task of the paper, useful on its own for logistics
// planning.

#include <cstdio>

#include "common/math_util.h"
#include "common/table_printer.h"
#include "core/courier_capacity_model.h"
#include "features/order_stats.h"
#include "graphs/geo_graph.h"
#include "graphs/mobility_graph.h"
#include "nn/trainer.h"
#include "sim/dataset.h"

int main() {
  using namespace o2sr;

  sim::SimConfig city_cfg;
  city_cfg.city_width_m = 6000.0;
  city_cfg.city_height_m = 6000.0;
  city_cfg.num_store_types = 12;
  city_cfg.num_stores = 900;
  city_cfg.num_couriers = 220;
  city_cfg.num_days = 5;
  city_cfg.seed = 11;
  const sim::Dataset data = sim::GenerateDataset(city_cfg);
  const features::OrderStats stats(data);
  const graphs::GeoGraph geo(data.city.grid);
  const graphs::MobilityMultiGraph mobility(stats, /*min_transactions=*/2);
  std::printf("Courier mobility multi-graph: %zu edges over %d periods.\n",
              mobility.TotalEdges(), sim::kNumPeriods);

  nn::ParameterStore store;
  Rng rng(1);
  core::CourierCapacityConfig cfg;
  cfg.embedding_dim = 20;  // d1 = 20, as in the paper
  core::CourierCapacityModel model(geo, mobility, cfg, &store, rng);

  nn::AdamOptimizer::Options opt;
  opt.learning_rate = 5e-3;
  nn::AdamOptimizer adam(&store, opt);
  // The guarded runner adds NaN sentinels and rollback/backoff for free;
  // pass a checkpoint path via GuardrailOptions to make this resumable.
  const auto epoch_fn = [&](int epoch) {
    nn::Tape tape;
    nn::Value loss = model.ReconstructionLoss(tape);
    const double loss_value = tape.value(loss).at(0, 0);
    if (epoch % 30 == 0) {
      std::printf("epoch %3d reconstruction MAE (normalized) %.4f\n", epoch,
                  loss_value);
    }
    tape.Backward(loss);
    return loss_value;
  };
  const common::Status trained = nn::RunGuardedTraining(
      &store, &adam, /*epoch_rng=*/nullptr, /*epochs=*/150, epoch_fn);
  if (!trained.ok()) {
    std::fprintf(stderr, "capacity training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  // Query: the same region pair across the five periods. The prediction
  // should track the rush-hour congestion.
  const graphs::MobilityEdge* probe = nullptr;
  for (const auto& e : mobility.EdgesInPeriod(1)) {
    if (e.transactions >= 8 && e.src != e.dst) {
      probe = &e;
      break;
    }
  }
  if (probe == nullptr) {
    std::printf("No well-observed region pair found.\n");
    return 0;
  }
  std::printf("\nDelivery time from region %d to region %d by period:\n",
              probe->src, probe->dst);
  TablePrinter table({"Period", "Predicted (min)", "Observed (min)"});
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    const features::PairStats* pair = stats.Pair(p, probe->src, probe->dst);
    table.AddRow({sim::PeriodName(static_cast<sim::Period>(p)),
                  TablePrinter::Num(
                      model.PredictDeliveryMinutes(p, probe->src, probe->dst), 1),
                  pair ? TablePrinter::Num(pair->mean_delivery_minutes(), 1)
                       : "-"});
  }
  table.Print(stdout);

  // Global fidelity: correlation between predictions and observations.
  std::vector<double> predicted, observed;
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    int taken = 0;
    for (const auto& e : mobility.EdgesInPeriod(p)) {
      if (e.transactions < 4 || ++taken > 150) continue;
      predicted.push_back(model.PredictDeliveryMinutes(p, e.src, e.dst));
      observed.push_back(e.delivery_minutes);
    }
  }
  std::printf("\nPrediction-observation correlation over %zu pairs: %.3f\n",
              predicted.size(), PearsonCorrelation(predicted, observed));
  return 0;
}
