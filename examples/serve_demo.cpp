// Train once, serve many: the offline-train / online-serve split.
//
//   ./build/examples/serve_demo train /tmp/model.snap   # train + export
//   ./build/examples/serve_demo serve /tmp/model.snap   # load + rank
//   ./build/examples/serve_demo chaos /tmp/model.snap   # resilience drill
//
// `train` trains O2-SiteRec on a small synthetic city, exports a model
// snapshot, and prints ranked recommendations straight from the trained
// model. `serve` — typically a *different process* — rebuilds the model
// structure without training (PrepareServing), overwrites the parameters
// from the snapshot, and prints the same queries from a ServingEngine.
// The two outputs are bit-identical (%.17g round-trips doubles exactly),
// which ci.sh verifies with a literal diff.
//
// `chaos` is the CI resilience drill (DESIGN.md §10): run it under an
// O2SR_FAULTS recipe (snapshot bitflips, scorer delays and errors) and it
// drives the serving engine through the failure plan — faulty initial
// load with retry, a corrupted snapshot swap (must be rejected and
// quarantined while the original model keeps serving), a promoted swap,
// and deadline-squeezed queries that land on the degraded tiers. It exits
// 0 only when no response carried a wrong-epoch tag or a wrong fresh
// score, the corrupt snapshot was quarantined, and degraded tiers
// actually served; the summary line is machine-checked by ci.sh.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"
#include "obs/log.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "sim/dataset.h"

namespace {

using namespace o2sr;

// Both processes derive the identical world from these configs; the
// snapshot's config fingerprint enforces it.
sim::SimConfig WorldConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 5000.0;
  cfg.city_height_m = 5000.0;
  cfg.num_store_types = 10;
  cfg.num_stores = 500;
  cfg.num_couriers = 160;
  cfg.num_days = 4;
  cfg.seed = 77;
  return cfg;
}

core::O2SiteRecConfig ModelConfig() {
  core::O2SiteRecConfig cfg;
  cfg.rec.embedding_dim = 24;
  cfg.rec.node_heads = 4;
  cfg.epochs = 12;
  cfg.seed = 9;
  return cfg;
}

uint64_t ConfigHash() {
  return serve::CombineFingerprints(serve::FingerprintOf(WorldConfig()),
                                    serve::FingerprintOf(ModelConfig()));
}

// The fixed query workload both modes print: top-8 regions for the first
// three store types over every region of the city.
void PrintRankings(const serve::ServingEngine& engine, int num_regions,
                   int num_types) {
  std::vector<int> all_regions(num_regions);
  for (int r = 0; r < num_regions; ++r) all_regions[r] = r;
  for (int type = 0; type < 3 && type < num_types; ++type) {
    const std::vector<serve::RankedSite> ranked =
        engine.RankSites(type, all_regions, 8).value();
    for (size_t i = 0; i < ranked.size(); ++i) {
      std::printf("type=%d rank=%zu region=%d score=%.17g\n", type, i + 1,
                  ranked[i].region, ranked[i].score);
    }
  }
}

int Train(const std::string& snapshot_path) {
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const core::InteractionList interactions = eval::BuildInteractions(data);
  const eval::Split split =
      eval::SplitInteractions(data, interactions, {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.Train(ctx));
  O2SR_LOG(INFO) << "Trained " << model.Name() << ".";

  serve::SnapshotMeta meta;
  meta.model_name = model.Name();
  meta.config_hash = ConfigHash();
  meta.num_regions = data.num_regions();
  meta.num_types = data.num_types();
  meta.type_norm = serve::TypeNormalizers(data.num_types(), interactions);
  O2SR_CHECK_OK(serve::ExportSnapshot(snapshot_path, meta, model));
  O2SR_LOG(INFO) << "Snapshot exported to " << snapshot_path << ".";

  const auto engine = serve::ServingEngine::Create(&model).value();
  PrintRankings(*engine, data.num_regions(), data.num_types());
  return 0;
}

int Serve(const std::string& snapshot_path) {
  // Rebuild the same world and model *structure* — no training epochs.
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const eval::Split split =
      eval::SplitInteractions(data, eval::BuildInteractions(data), {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.PrepareServing(ctx));

  const serve::Snapshot snapshot =
      serve::LoadSnapshot(snapshot_path).value();
  O2SR_CHECK_OK(serve::RestoreModel(snapshot, model, ConfigHash()));
  O2SR_LOG(INFO) << "Serving " << snapshot.meta.model_name
                 << " from snapshot.";

  const auto engine = serve::ServingEngine::Create(&model).value();
  PrintRankings(*engine, data.num_regions(), data.num_types());
  return 0;
}

// Byte-level copy helpers for staging corrupted / pristine snapshot
// copies; plain stdio on purpose — the fault injector's read sites live in
// the serving path, not here.
bool ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size();
}

struct ChaosTally {
  int responses = 0;
  int fresh = 0;
  int stale = 0;
  int prior = 0;
  int shed = 0;
  int failed = 0;
  int wrong_epoch = 0;
  int wrong_score = 0;
};

int Chaos(const std::string& snapshot_path) {
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const core::InteractionList interactions = eval::BuildInteractions(data);
  const eval::Split split =
      eval::SplitInteractions(data, interactions, {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.PrepareServing(ctx));

  // A fresh prepared model per swap attempt (SwapSnapshot consumes it).
  const auto MakeStaged = [&] {
    auto staged =
        std::make_unique<core::O2SiteRecRecommender>(ModelConfig());
    O2SR_CHECK_OK(staged->PrepareServing(ctx));
    return staged;
  };

  // Initial load rides out injected read faults: corruption must surface
  // as a clean Status (never serve silently), and a retry redraws.
  serve::Snapshot snapshot;
  bool loaded = false;
  for (int attempt = 0; attempt < 20 && !loaded; ++attempt) {
    auto candidate = serve::LoadSnapshot(snapshot_path);
    if (candidate.ok()) {
      snapshot = *std::move(candidate);
      loaded = true;
    }
  }
  if (!loaded) {
    std::fprintf(stderr, "chaos: snapshot never loaded cleanly\n");
    return 1;
  }
  O2SR_CHECK_OK(serve::RestoreModel(snapshot, model, ConfigHash()));

  serve::ServingOptions options;
  options.cache_capacity = 4096;
  options.prior =
      serve::BuildPopularityPrior(data.num_types(), interactions);
  const auto engine = serve::ServingEngine::Create(&model, options).value();

  // Ground truth straight from the restored model (no injection sites on
  // direct Predict): any fresh-tier response that disagrees means
  // corruption leaked through the fault storm.
  std::vector<int> candidates(data.num_regions());
  for (int r = 0; r < data.num_regions(); ++r) candidates[r] = r;
  std::vector<std::unordered_map<int, double>> golden(3);
  for (int type = 0; type < 3; ++type) {
    core::InteractionList pairs;
    for (int r : candidates) {
      if (!model.CanScoreRegion(r)) continue;
      core::Interaction it;
      it.region = r;
      it.type = type;
      pairs.push_back(it);
    }
    const auto scores = model.Predict(pairs).value();
    for (size_t i = 0; i < pairs.size(); ++i) {
      golden[type][pairs[i].region] = scores[i];
    }
  }

  ChaosTally tally;
  const auto run = [&](int type, serve::Deadline deadline) {
    serve::RankRequest request;
    request.type = type;
    request.candidates = candidates;
    request.k = 8;
    request.deadline = deadline;
    const auto response = engine->Rank(request);
    if (!response.ok()) {
      if (response.status().code() ==
          common::StatusCode::kResourceExhausted) {
        ++tally.shed;
      } else {
        ++tally.failed;
      }
      return false;
    }
    ++tally.responses;
    if (response->epoch != engine->epoch()) ++tally.wrong_epoch;
    switch (response->tier) {
      case serve::ServeTier::kFresh:
        ++tally.fresh;
        for (const serve::RankedSite& site : response->sites) {
          const auto it = golden[type].find(site.region);
          if (it == golden[type].end() || it->second != site.score) {
            ++tally.wrong_score;
          }
        }
        break;
      case serve::ServeTier::kStaleCache:
        ++tally.stale;
        break;
      case serve::ServeTier::kPrior:
        ++tally.prior;
        break;
    }
    return true;
  };
  // Injected scorer errors can fail a cold query outright (nothing cached
  // yet to degrade onto); a bounded retry redraws — the point is that
  // every outcome is a clean Status.
  const auto run_until_served = [&](int type) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (run(type, serve::Deadline::Infinite())) return true;
    }
    return false;
  };

  // Phase A: warm every (type, region) pair at epoch 1.
  for (int type = 0; type < 3; ++type) {
    if (!run_until_served(type)) {
      std::fprintf(stderr, "chaos: warmup for type %d never served\n", type);
      return 1;
    }
  }

  // Phase B: a swap of a corrupted snapshot must be rejected + quarantined
  // while the original model keeps serving.
  int quarantined = 0;
  {
    std::string bytes;
    if (!ReadFileBytes(snapshot_path, &bytes) || bytes.empty()) return 1;
    bytes[bytes.size() / 2] ^= 0x5a;
    const std::string corrupt_path = snapshot_path + ".chaos_corrupt";
    if (!WriteFileBytes(corrupt_path, bytes)) return 1;
    const auto report =
        engine->SwapSnapshot(corrupt_path, MakeStaged(), ConfigHash());
    if (report.ok() && !report->promoted &&
        !report->quarantine_path.empty()) {
      quarantined = 1;
    }
    run_until_served(0);  // the displaced-nothing engine still answers
  }

  // Phase C: a pristine copy promotes (retried: an injected read fault
  // quarantines the copy, so each attempt stages a new one).
  bool promoted = false;
  for (int attempt = 0; attempt < 5 && !promoted; ++attempt) {
    std::string bytes;
    if (!ReadFileBytes(snapshot_path, &bytes)) return 1;
    const std::string copy_path = snapshot_path + ".chaos_promote" +
                                  std::to_string(attempt);
    if (!WriteFileBytes(copy_path, bytes)) return 1;
    const auto report =
        engine->SwapSnapshot(copy_path, MakeStaged(), ConfigHash());
    promoted = report.ok() && report->promoted;
  }

  // Phase D: deadline-squeezed queries. The injected scorer delay pushes
  // every cache-miss query past its budget, landing it on the stale tier
  // (epoch bumped in phase C, so the warm entries are exactly stale).
  for (int round = 0; round < 10; ++round) {
    for (int type = 0; type < 3; ++type) {
      run(type, serve::Deadline::AfterMs(2.0));
    }
  }
  // And a few requests that are already out of budget: must shed, cleanly.
  for (int i = 0; i < 3; ++i) run(0, serve::Deadline::AfterMs(-1.0));

  const int degraded = tally.stale + tally.prior;
  std::printf(
      "chaos: responses=%d fresh=%d stale=%d prior=%d shed=%d failed=%d "
      "wrong_epoch=%d wrong_score=%d quarantined=%d promoted=%d health=%s\n",
      tally.responses, tally.fresh, tally.stale, tally.prior, tally.shed,
      tally.failed, tally.wrong_epoch, tally.wrong_score, quarantined,
      promoted ? 1 : 0, serve::ServeHealthName(engine->health()));
  const bool ok = tally.wrong_epoch == 0 && tally.wrong_score == 0 &&
                  quarantined == 1 && promoted && degraded > 0;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Rankings go to stdout; keep the log channel quiet by default so the
  // output is diffable.
  o2sr::obs::SetMinLogLevel(o2sr::obs::LogLevel::kWarning);
  if (argc == 3 && std::strcmp(argv[1], "train") == 0) {
    return Train(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "serve") == 0) {
    return Serve(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "chaos") == 0) {
    return Chaos(argv[2]);
  }
  std::fprintf(stderr, "usage: %s {train|serve|chaos} <snapshot-path>\n",
               argv[0]);
  return 2;
}
