// Train once, serve many: the offline-train / online-serve split.
//
//   ./build/examples/serve_demo train /tmp/model.snap     # train + export
//   ./build/examples/serve_demo serve /tmp/model.snap     # load + rank
//   ./build/examples/serve_demo chaos /tmp/model.snap     # resilience drill
//   ./build/examples/serve_demo tenants /tmp/model.snap   # multi-tenant drill
//
// `train` trains O2-SiteRec on a small synthetic city, exports a model
// snapshot, and prints ranked recommendations straight from the trained
// model. `serve` — typically a *different process* — rebuilds the model
// structure without training (PrepareServing), overwrites the parameters
// from the snapshot, and prints the same queries from a ServingEngine.
// The two outputs are bit-identical (%.17g round-trips doubles exactly),
// which ci.sh verifies with a literal diff.
//
// `chaos` is the CI resilience drill (DESIGN.md §10): run it under an
// O2SR_FAULTS recipe (snapshot bitflips, scorer delays and errors) and it
// drives the serving engine through the failure plan — faulty initial
// load with retry, a corrupted snapshot swap (must be rejected and
// quarantined while the original model keeps serving), a promoted swap,
// and deadline-squeezed queries that land on the degraded tiers. It exits
// 0 only when no response carried a wrong-epoch tag or a wrong fresh
// score, the corrupt snapshot was quarantined, and degraded tiers
// actually served; the summary line is machine-checked by ci.sh.
//
// `tenants` is the multi-tenant concurrency drill (DESIGN.md §14): four
// city tenants restored from the same snapshot are hosted in one
// TenantRegistry while four driver threads round-robin batched requests
// (RankSitesBatch) across them and a storm thread hot-swaps one victim
// tenant repeatedly. It exits 0 only when every response succeeded, every
// swap promoted, the victim's epoch advanced by exactly the number of
// swaps while the bystanders stayed at epoch 1, and each engine's
// per-shard counters sum to its globals; the summary line is
// machine-checked by ci.sh.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"
#include "obs/log.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "serve/tenant.h"
#include "sim/dataset.h"

namespace {

using namespace o2sr;

// Both processes derive the identical world from these configs; the
// snapshot's config fingerprint enforces it.
sim::SimConfig WorldConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 5000.0;
  cfg.city_height_m = 5000.0;
  cfg.num_store_types = 10;
  cfg.num_stores = 500;
  cfg.num_couriers = 160;
  cfg.num_days = 4;
  cfg.seed = 77;
  return cfg;
}

core::O2SiteRecConfig ModelConfig() {
  core::O2SiteRecConfig cfg;
  cfg.rec.embedding_dim = 24;
  cfg.rec.node_heads = 4;
  cfg.epochs = 12;
  cfg.seed = 9;
  return cfg;
}

uint64_t ConfigHash() {
  return serve::CombineFingerprints(serve::FingerprintOf(WorldConfig()),
                                    serve::FingerprintOf(ModelConfig()));
}

// The fixed query workload both modes print: top-8 regions for the first
// three store types over every region of the city.
void PrintRankings(const serve::ServingEngine& engine, int num_regions,
                   int num_types) {
  std::vector<int> all_regions(num_regions);
  for (int r = 0; r < num_regions; ++r) all_regions[r] = r;
  for (int type = 0; type < 3 && type < num_types; ++type) {
    const std::vector<serve::RankedSite> ranked =
        engine.RankSites(type, all_regions, 8).value();
    for (size_t i = 0; i < ranked.size(); ++i) {
      std::printf("type=%d rank=%zu region=%d score=%.17g\n", type, i + 1,
                  ranked[i].region, ranked[i].score);
    }
  }
}

int Train(const std::string& snapshot_path) {
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const core::InteractionList interactions = eval::BuildInteractions(data);
  const eval::Split split =
      eval::SplitInteractions(data, interactions, {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.Train(ctx));
  O2SR_LOG(INFO) << "Trained " << model.Name() << ".";

  serve::SnapshotMeta meta;
  meta.model_name = model.Name();
  meta.config_hash = ConfigHash();
  meta.num_regions = data.num_regions();
  meta.num_types = data.num_types();
  meta.type_norm = serve::TypeNormalizers(data.num_types(), interactions);
  O2SR_CHECK_OK(serve::ExportSnapshot(snapshot_path, meta, model));
  O2SR_LOG(INFO) << "Snapshot exported to " << snapshot_path << ".";

  const auto engine = serve::ServingEngine::Create(&model).value();
  PrintRankings(*engine, data.num_regions(), data.num_types());
  return 0;
}

int Serve(const std::string& snapshot_path) {
  // Rebuild the same world and model *structure* — no training epochs.
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const eval::Split split =
      eval::SplitInteractions(data, eval::BuildInteractions(data), {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.PrepareServing(ctx));

  const serve::Snapshot snapshot =
      serve::LoadSnapshot(snapshot_path).value();
  O2SR_CHECK_OK(serve::RestoreModel(snapshot, model, ConfigHash()));
  O2SR_LOG(INFO) << "Serving " << snapshot.meta.model_name
                 << " from snapshot.";

  const auto engine = serve::ServingEngine::Create(&model).value();
  PrintRankings(*engine, data.num_regions(), data.num_types());
  return 0;
}

// Byte-level copy helpers for staging corrupted / pristine snapshot
// copies; plain stdio on purpose — the fault injector's read sites live in
// the serving path, not here.
bool ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size();
}

struct ChaosTally {
  int responses = 0;
  int fresh = 0;
  int stale = 0;
  int prior = 0;
  int shed = 0;
  int failed = 0;
  int wrong_epoch = 0;
  int wrong_score = 0;
};

int Chaos(const std::string& snapshot_path) {
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const core::InteractionList interactions = eval::BuildInteractions(data);
  const eval::Split split =
      eval::SplitInteractions(data, interactions, {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.PrepareServing(ctx));

  // A fresh prepared model per swap attempt (SwapSnapshot consumes it).
  const auto MakeStaged = [&] {
    auto staged =
        std::make_unique<core::O2SiteRecRecommender>(ModelConfig());
    O2SR_CHECK_OK(staged->PrepareServing(ctx));
    return staged;
  };

  // Initial load rides out injected read faults: corruption must surface
  // as a clean Status (never serve silently), and a retry redraws.
  serve::Snapshot snapshot;
  bool loaded = false;
  for (int attempt = 0; attempt < 20 && !loaded; ++attempt) {
    auto candidate = serve::LoadSnapshot(snapshot_path);
    if (candidate.ok()) {
      snapshot = *std::move(candidate);
      loaded = true;
    }
  }
  if (!loaded) {
    std::fprintf(stderr, "chaos: snapshot never loaded cleanly\n");
    return 1;
  }
  O2SR_CHECK_OK(serve::RestoreModel(snapshot, model, ConfigHash()));

  serve::ServingOptions options;
  options.cache_capacity = 4096;
  options.prior =
      serve::BuildPopularityPrior(data.num_types(), interactions);
  const auto engine = serve::ServingEngine::Create(&model, options).value();

  // Ground truth straight from the restored model (no injection sites on
  // direct Predict): any fresh-tier response that disagrees means
  // corruption leaked through the fault storm.
  std::vector<int> candidates(data.num_regions());
  for (int r = 0; r < data.num_regions(); ++r) candidates[r] = r;
  std::vector<std::unordered_map<int, double>> golden(3);
  for (int type = 0; type < 3; ++type) {
    core::InteractionList pairs;
    for (int r : candidates) {
      if (!model.CanScoreRegion(r)) continue;
      core::Interaction it;
      it.region = r;
      it.type = type;
      pairs.push_back(it);
    }
    const auto scores = model.Predict(pairs).value();
    for (size_t i = 0; i < pairs.size(); ++i) {
      golden[type][pairs[i].region] = scores[i];
    }
  }

  ChaosTally tally;
  const auto run = [&](int type, serve::Deadline deadline) {
    serve::RankRequest request;
    request.type = type;
    request.candidates = candidates;
    request.k = 8;
    request.deadline = deadline;
    const auto response = engine->Rank(request);
    if (!response.ok()) {
      if (response.status().code() ==
          common::StatusCode::kResourceExhausted) {
        ++tally.shed;
      } else {
        ++tally.failed;
      }
      return false;
    }
    ++tally.responses;
    if (response->epoch != engine->epoch()) ++tally.wrong_epoch;
    switch (response->tier) {
      case serve::ServeTier::kFresh:
        ++tally.fresh;
        for (const serve::RankedSite& site : response->sites) {
          const auto it = golden[type].find(site.region);
          if (it == golden[type].end() || it->second != site.score) {
            ++tally.wrong_score;
          }
        }
        break;
      case serve::ServeTier::kStaleCache:
        ++tally.stale;
        break;
      case serve::ServeTier::kPrior:
        ++tally.prior;
        break;
    }
    return true;
  };
  // Injected scorer errors can fail a cold query outright (nothing cached
  // yet to degrade onto); a bounded retry redraws — the point is that
  // every outcome is a clean Status.
  const auto run_until_served = [&](int type) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (run(type, serve::Deadline::Infinite())) return true;
    }
    return false;
  };

  // Phase A: warm every (type, region) pair at epoch 1.
  for (int type = 0; type < 3; ++type) {
    if (!run_until_served(type)) {
      std::fprintf(stderr, "chaos: warmup for type %d never served\n", type);
      return 1;
    }
  }

  // Phase B: a swap of a corrupted snapshot must be rejected + quarantined
  // while the original model keeps serving.
  int quarantined = 0;
  {
    std::string bytes;
    if (!ReadFileBytes(snapshot_path, &bytes) || bytes.empty()) return 1;
    bytes[bytes.size() / 2] ^= 0x5a;
    const std::string corrupt_path = snapshot_path + ".chaos_corrupt";
    if (!WriteFileBytes(corrupt_path, bytes)) return 1;
    const auto report =
        engine->SwapSnapshot(corrupt_path, MakeStaged(), ConfigHash());
    if (report.ok() && !report->promoted &&
        !report->quarantine_path.empty()) {
      quarantined = 1;
    }
    run_until_served(0);  // the displaced-nothing engine still answers
  }

  // Phase C: a pristine copy promotes (retried: an injected read fault
  // quarantines the copy, so each attempt stages a new one).
  bool promoted = false;
  for (int attempt = 0; attempt < 5 && !promoted; ++attempt) {
    std::string bytes;
    if (!ReadFileBytes(snapshot_path, &bytes)) return 1;
    const std::string copy_path = snapshot_path + ".chaos_promote" +
                                  std::to_string(attempt);
    if (!WriteFileBytes(copy_path, bytes)) return 1;
    const auto report =
        engine->SwapSnapshot(copy_path, MakeStaged(), ConfigHash());
    promoted = report.ok() && report->promoted;
  }

  // Phase D: deadline-squeezed queries. The injected scorer delay pushes
  // every cache-miss query past its budget, landing it on the stale tier
  // (epoch bumped in phase C, so the warm entries are exactly stale).
  for (int round = 0; round < 10; ++round) {
    for (int type = 0; type < 3; ++type) {
      run(type, serve::Deadline::AfterMs(2.0));
    }
  }
  // And a few requests that are already out of budget: must shed, cleanly.
  for (int i = 0; i < 3; ++i) run(0, serve::Deadline::AfterMs(-1.0));

  const int degraded = tally.stale + tally.prior;
  std::printf(
      "chaos: responses=%d fresh=%d stale=%d prior=%d shed=%d failed=%d "
      "wrong_epoch=%d wrong_score=%d quarantined=%d promoted=%d health=%s\n",
      tally.responses, tally.fresh, tally.stale, tally.prior, tally.shed,
      tally.failed, tally.wrong_epoch, tally.wrong_score, quarantined,
      promoted ? 1 : 0, serve::ServeHealthName(engine->health()));
  const bool ok = tally.wrong_epoch == 0 && tally.wrong_score == 0 &&
                  quarantined == 1 && promoted && degraded > 0;
  return ok ? 0 : 1;
}

// True when the engine's per-shard counter blocks sum to its global
// relaxed counters — the invariant every concurrent test holds the
// sharded front end to.
bool ShardSumsMatch(const serve::ServingEngine& engine) {
  uint64_t requests = 0, shed = 0, pairs = 0, degraded = 0;
  for (int s = 0; s < engine.num_shards(); ++s) {
    const serve::EngineShardStats stats = engine.ShardStats(s);
    requests += stats.requests;
    shed += stats.shed;
    pairs += stats.pairs_scored;
    degraded += stats.degraded_responses;
  }
  return requests == engine.requests_count() &&
         shed == engine.shed_count() &&
         pairs == engine.pairs_scored_count() &&
         degraded == engine.degraded_count();
}

int Tenants(const std::string& snapshot_path) {
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const core::InteractionList interactions = eval::BuildInteractions(data);
  const eval::Split split =
      eval::SplitInteractions(data, interactions, {0.8, 1});
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;

  // Every tenant (and every staged swap) restores the same snapshot: the
  // drill is about isolation of the serving layer, not model diversity.
  const auto MakeRestored = [&] {
    auto model = std::make_unique<core::O2SiteRecRecommender>(ModelConfig());
    O2SR_CHECK_OK(model->PrepareServing(ctx));
    const serve::Snapshot snapshot =
        serve::LoadSnapshot(snapshot_path).value();
    O2SR_CHECK_OK(serve::RestoreModel(snapshot, *model, ConfigHash()));
    return model;
  };

  constexpr int kTenants = 4;
  constexpr int kDrivers = 4;
  constexpr int kSwaps = 6;
  const int batch = serve::ServingEngine::BatchSizeFromEnv(8);

  serve::TenantRegistry registry;
  for (int i = 0; i < kTenants; ++i) {
    serve::ServingOptions options;
    options.cache_capacity = 4096;
    options.num_shards = kDrivers;
    options.prior =
        serve::BuildPopularityPrior(data.num_types(), interactions);
    O2SR_CHECK_OK(registry.Register("city" + std::to_string(i),
                                    MakeRestored(), options));
  }

  std::vector<int> candidates(data.num_regions());
  for (int r = 0; r < data.num_regions(); ++r) candidates[r] = r;

  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<bool> storm_done{false};
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int t = 0; t < kDrivers; ++t) {
    drivers.emplace_back([&, t] {
      std::vector<serve::TenantRegistry::TenantPtr> pins;
      for (int i = 0; i < kTenants; ++i) {
        pins.push_back(registry.Get("city" + std::to_string(i)).value());
      }
      size_t which = static_cast<size_t>(t) % pins.size();
      // Keep serving until the swap storm finishes so every epoch sees
      // concurrent traffic.
      for (int iter = 0; iter < 50 || !storm_done.load(); ++iter) {
        std::vector<serve::RankRequest> requests(
            static_cast<size_t>(batch));
        for (int j = 0; j < batch; ++j) {
          requests[static_cast<size_t>(j)].type = (t + iter + j) % 3;
          requests[static_cast<size_t>(j)].candidates = candidates;
          requests[static_cast<size_t>(j)].k = 8;
        }
        for (const auto& response :
             pins[which]->engine->RankSitesBatch(requests)) {
          if (response.ok()) {
            responses.fetch_add(1);
          } else {
            failures.fetch_add(1);
          }
        }
        which = (which + 1) % pins.size();
      }
    });
  }

  // The storm: hot-swap pristine snapshot copies into the victim tenant
  // while the drivers hammer every tenant.
  int promoted = 0;
  {
    std::string bytes;
    if (!ReadFileBytes(snapshot_path, &bytes)) return 1;
    for (int swap = 0; swap < kSwaps; ++swap) {
      const std::string copy_path =
          snapshot_path + ".tenant_swap" + std::to_string(swap);
      if (!WriteFileBytes(copy_path, bytes)) break;
      const auto report =
          registry.Swap("city0", copy_path, MakeRestored(), ConfigHash());
      if (report.ok() && report->promoted) ++promoted;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    storm_done.store(true);
  }
  for (std::thread& driver : drivers) driver.join();

  int victim_epoch = 0;
  int bystanders_clean = 1;
  int shard_sums_ok = 1;
  int healthy = 1;
  for (int i = 0; i < kTenants; ++i) {
    const auto tenant = registry.Get("city" + std::to_string(i)).value();
    if (i == 0) {
      victim_epoch = static_cast<int>(tenant->engine->epoch());
    } else if (tenant->engine->epoch() != 1) {
      bystanders_clean = 0;
    }
    if (!ShardSumsMatch(*tenant->engine)) shard_sums_ok = 0;
    if (tenant->engine->health() != serve::ServeHealth::kServing) {
      healthy = 0;
    }
  }

  std::printf(
      "tenants: tenants=%zu responses=%llu failures=%llu batch=%d "
      "swaps_promoted=%d victim_epoch=%d bystanders_clean=%d "
      "shard_sums_ok=%d healthy=%d\n",
      registry.size(), static_cast<unsigned long long>(responses.load()),
      static_cast<unsigned long long>(failures.load()), batch, promoted,
      victim_epoch, bystanders_clean, shard_sums_ok, healthy);
  const bool ok = registry.size() == kTenants && failures.load() == 0 &&
                  promoted == kSwaps && victim_epoch == 1 + kSwaps &&
                  bystanders_clean == 1 && shard_sums_ok == 1 &&
                  healthy == 1 && responses.load() > 0;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Rankings go to stdout; keep the log channel quiet by default so the
  // output is diffable.
  o2sr::obs::SetMinLogLevel(o2sr::obs::LogLevel::kWarning);
  if (argc == 3 && std::strcmp(argv[1], "train") == 0) {
    return Train(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "serve") == 0) {
    return Serve(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "chaos") == 0) {
    return Chaos(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "tenants") == 0) {
    return Tenants(argv[2]);
  }
  std::fprintf(stderr,
               "usage: %s {train|serve|chaos|tenants} <snapshot-path>\n",
               argv[0]);
  return 2;
}
