// Train once, serve many: the offline-train / online-serve split.
//
//   ./build/examples/serve_demo train /tmp/model.snap   # train + export
//   ./build/examples/serve_demo serve /tmp/model.snap   # load + rank
//
// `train` trains O2-SiteRec on a small synthetic city, exports a model
// snapshot, and prints ranked recommendations straight from the trained
// model. `serve` — typically a *different process* — rebuilds the model
// structure without training (PrepareServing), overwrites the parameters
// from the snapshot, and prints the same queries from a ServingEngine.
// The two outputs are bit-identical (%.17g round-trips doubles exactly),
// which ci.sh verifies with a literal diff.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"
#include "obs/log.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "sim/dataset.h"

namespace {

using namespace o2sr;

// Both processes derive the identical world from these configs; the
// snapshot's config fingerprint enforces it.
sim::SimConfig WorldConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 5000.0;
  cfg.city_height_m = 5000.0;
  cfg.num_store_types = 10;
  cfg.num_stores = 500;
  cfg.num_couriers = 160;
  cfg.num_days = 4;
  cfg.seed = 77;
  return cfg;
}

core::O2SiteRecConfig ModelConfig() {
  core::O2SiteRecConfig cfg;
  cfg.rec.embedding_dim = 24;
  cfg.rec.node_heads = 4;
  cfg.epochs = 12;
  cfg.seed = 9;
  return cfg;
}

uint64_t ConfigHash() {
  return serve::CombineFingerprints(serve::FingerprintOf(WorldConfig()),
                                    serve::FingerprintOf(ModelConfig()));
}

// The fixed query workload both modes print: top-8 regions for the first
// three store types over every region of the city.
void PrintRankings(const serve::ServingEngine& engine, int num_regions,
                   int num_types) {
  std::vector<int> all_regions(num_regions);
  for (int r = 0; r < num_regions; ++r) all_regions[r] = r;
  for (int type = 0; type < 3 && type < num_types; ++type) {
    const std::vector<serve::RankedSite> ranked =
        engine.RankSites(type, all_regions, 8).value();
    for (size_t i = 0; i < ranked.size(); ++i) {
      std::printf("type=%d rank=%zu region=%d score=%.17g\n", type, i + 1,
                  ranked[i].region, ranked[i].score);
    }
  }
}

int Train(const std::string& snapshot_path) {
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const core::InteractionList interactions = eval::BuildInteractions(data);
  const eval::Split split =
      eval::SplitInteractions(data, interactions, {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.Train(ctx));
  O2SR_LOG(INFO) << "Trained " << model.Name() << ".";

  serve::SnapshotMeta meta;
  meta.model_name = model.Name();
  meta.config_hash = ConfigHash();
  meta.num_regions = data.num_regions();
  meta.num_types = data.num_types();
  meta.type_norm = serve::TypeNormalizers(data.num_types(), interactions);
  O2SR_CHECK_OK(serve::ExportSnapshot(snapshot_path, meta, model));
  O2SR_LOG(INFO) << "Snapshot exported to " << snapshot_path << ".";

  const auto engine = serve::ServingEngine::Create(&model).value();
  PrintRankings(*engine, data.num_regions(), data.num_types());
  return 0;
}

int Serve(const std::string& snapshot_path) {
  // Rebuild the same world and model *structure* — no training epochs.
  const sim::Dataset data = sim::GenerateDataset(WorldConfig());
  const eval::Split split =
      eval::SplitInteractions(data, eval::BuildInteractions(data), {0.8, 1});

  core::O2SiteRecRecommender model(ModelConfig());
  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  O2SR_CHECK_OK(model.PrepareServing(ctx));

  const serve::Snapshot snapshot =
      serve::LoadSnapshot(snapshot_path).value();
  O2SR_CHECK_OK(serve::RestoreModel(snapshot, model, ConfigHash()));
  O2SR_LOG(INFO) << "Serving " << snapshot.meta.model_name
                 << " from snapshot.";

  const auto engine = serve::ServingEngine::Create(&model).value();
  PrintRankings(*engine, data.num_regions(), data.num_types());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Rankings go to stdout; keep the log channel quiet by default so the
  // output is diffable.
  o2sr::obs::SetMinLogLevel(o2sr::obs::LogLevel::kWarning);
  if (argc == 3 && std::strcmp(argv[1], "train") == 0) {
    return Train(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "serve") == 0) {
    return Serve(argv[2]);
  }
  std::fprintf(stderr, "usage: %s {train|serve} <snapshot-path>\n", argv[0]);
  return 2;
}
