#include "baselines/factory.h"

#include <algorithm>

#include "baselines/graph_baselines.h"
#include "baselines/hetero_baselines.h"
#include "baselines/mf_baselines.h"
#include "common/check.h"

namespace o2sr::baselines {

const char* BaselineKindName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kCityTransfer: return "CityTransfer";
    case BaselineKind::kBlgCoSvd: return "BL-G-CoSVD";
    case BaselineKind::kGcMc: return "GC-MC";
    case BaselineKind::kGraphRec: return "GraphRec";
    case BaselineKind::kRgcn: return "RGCN";
    case BaselineKind::kHgt: return "HGT";
  }
  O2SR_CHECK(false);
  return "";
}

std::unique_ptr<core::SiteRecommender> MakeBaseline(
    BaselineKind kind, const BaselineConfig& base_config) {
  BaselineConfig config = base_config;
  if (kind == BaselineKind::kHgt || kind == BaselineKind::kGraphRec) {
    // Attention over the full union graph is ~20x costlier per epoch and
    // converges in far fewer steps.
    config.epochs = std::max(20, config.epochs / 3);
  }
  switch (kind) {
    case BaselineKind::kCityTransfer:
      return std::make_unique<CityTransfer>(config);
    case BaselineKind::kBlgCoSvd:
      return std::make_unique<BlgCoSvd>(config);
    case BaselineKind::kGcMc:
      return std::make_unique<GcMc>(config);
    case BaselineKind::kGraphRec:
      return std::make_unique<GraphRec>(config);
    case BaselineKind::kRgcn:
      return std::make_unique<Rgcn>(config);
    case BaselineKind::kHgt:
      return std::make_unique<Hgt>(config);
  }
  O2SR_CHECK(false);
  return nullptr;
}

}  // namespace o2sr::baselines
