#include "baselines/mf_baselines.h"

namespace o2sr::baselines {

namespace {

// Maps pair regions/types to node index vectors (unknown regions -> 0; the
// caller masks their predictions).
void PairIndices(const RegionIndex& index, const core::InteractionList& pairs,
                 std::vector<int>* s_idx, std::vector<int>* a_idx) {
  s_idx->reserve(pairs.size());
  a_idx->reserve(pairs.size());
  for (const core::Interaction& it : pairs) {
    const int node = index.NodeOf(it.region);
    s_idx->push_back(node < 0 ? 0 : node);
    a_idx->push_back(it.type);
  }
}

}  // namespace

void CityTransfer::Prepare(const sim::Dataset& data,
                           const std::vector<sim::Order>& visible_orders,
                           const core::InteractionList& /*train*/) {
  index_ = std::make_unique<RegionIndex>(data);
  const features::OrderStats stats(data, visible_orders);
  features_ = std::make_unique<PairFeatureBuilder>(data, stats,
                                                   config_.setting);
  const int d = config_.embedding_dim;
  region_embedding_ = nn::Embedding(&store_, "ct.u", index_->num_nodes(), d,
                                    rng_);
  type_embedding_ = nn::Embedding(&store_, "ct.v", data.num_types(), d, rng_);
  feature_weights_ = nn::Linear(&store_, "ct.w", features_->dim(), 1, rng_);
  bias_ = store_.CreateZeros("ct.b", 1, 1);
}

nn::Value CityTransfer::BuildPredictions(nn::Tape& tape,
                                         const core::InteractionList& pairs,
                                         Rng& dropout_rng) const {
  std::vector<int> s_idx, a_idx;
  PairIndices(*index_, pairs, &s_idx, &a_idx);
  nn::Value u = tape.Dropout(region_embedding_.Lookup(tape, s_idx),
                             config_.dropout, dropout_rng);
  nn::Value v = tape.Dropout(type_embedding_.Lookup(tape, a_idx),
                             config_.dropout, dropout_rng);
  nn::Value dot = tape.RowwiseDot(u, v);
  nn::Value feat = feature_weights_.Apply(tape, tape.Input(
      features_->Build(pairs)));
  nn::Value logits = tape.AddRowBroadcast(tape.Add(dot, feat),
                                          tape.Param(bias_));
  return tape.Sigmoid(logits);
}

void BlgCoSvd::Prepare(const sim::Dataset& data,
                       const std::vector<sim::Order>& visible_orders,
                       const core::InteractionList& /*train*/) {
  index_ = std::make_unique<RegionIndex>(data);
  if (config_.setting == FeatureSetting::kAdaption) {
    const features::OrderStats stats(data, visible_orders);
    features_ = std::make_unique<PairFeatureBuilder>(data, stats,
                                                     config_.setting);
  }
  const int d = config_.embedding_dim;
  region_embedding_ = nn::Embedding(&store_, "cosvd.u", index_->num_nodes(),
                                    d, rng_);
  type_embedding_ = nn::Embedding(&store_, "cosvd.v", data.num_types(), d,
                                  rng_);
  region_bias_ = nn::Embedding(&store_, "cosvd.bs", index_->num_nodes(), 1,
                               rng_);
  type_bias_ = nn::Embedding(&store_, "cosvd.ba", data.num_types(), 1, rng_);
  if (features_ != nullptr) {
    feature_weights_ = nn::Linear(&store_, "cosvd.w", features_->dim(), 1,
                                  rng_);
  }
  mu_ = store_.CreateZeros("cosvd.mu", 1, 1);
}

nn::Value BlgCoSvd::BuildPredictions(nn::Tape& tape,
                                     const core::InteractionList& pairs,
                                     Rng& dropout_rng) const {
  std::vector<int> s_idx, a_idx;
  PairIndices(*index_, pairs, &s_idx, &a_idx);
  nn::Value u = tape.Dropout(region_embedding_.Lookup(tape, s_idx),
                             config_.dropout, dropout_rng);
  nn::Value v = tape.Dropout(type_embedding_.Lookup(tape, a_idx),
                             config_.dropout, dropout_rng);
  nn::Value logits = tape.Add(tape.RowwiseDot(u, v),
                              tape.Add(region_bias_.Lookup(tape, s_idx),
                                       type_bias_.Lookup(tape, a_idx)));
  if (features_ != nullptr) {
    logits = tape.Add(logits, feature_weights_.Apply(
                                  tape, tape.Input(features_->Build(pairs))));
  }
  return tape.Sigmoid(tape.AddRowBroadcast(logits, tape.Param(mu_)));
}

}  // namespace o2sr::baselines
