#ifndef O2SR_BASELINES_BASELINE_COMMON_H_
#define O2SR_BASELINES_BASELINE_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"
#include "features/order_stats.h"
#include "nn/layers.h"
#include "nn/parameter.h"
#include "nn/tape.h"
#include "nn/trainer.h"
#include "sim/dataset.h"

namespace o2sr::baselines {

// Feature setting of a baseline (paper §IV-A5): Original uses only the
// features defined in the method's own paper; Adaption additionally feeds
// the O2O-specific features (courier capacity, customer preferences,
// location-based features).
enum class FeatureSetting { kOriginal, kAdaption };

const char* FeatureSettingName(FeatureSetting setting);

// Shared hyper-parameters of all baselines (kept deliberately aligned with
// O2-SiteRec's budget so comparisons are about inductive bias, not tuning).
struct BaselineConfig {
  int embedding_dim = 32;
  // Cheap models (MF, one-layer convolutions) need many epochs to calibrate
  // their linear feature terms; MakeBaseline scales this down for the
  // expensive attention models (HGT).
  int epochs = 150;
  double learning_rate = 5e-3;
  double dropout = 0.1;
  FeatureSetting setting = FeatureSetting::kAdaption;
  uint64_t seed = 11;
  // Fault-tolerance guardrails of the shared training loop (nn/trainer.h).
  nn::GuardrailOptions guard;
};

// Builds per-(region, type) feature vectors for the feature-based methods.
//
// Original block: geographic region features + commercial features
// (competitiveness/complementarity).
// Adaption block (appended when enabled): neighborhood customer preference
// for the type within 2 km, region mean delivery time, region supply-demand
// ratio (averaged over periods), each normalized; regions without orders
// fall back to the average of nearby regions (paper §IV-A5).
class PairFeatureBuilder {
 public:
  PairFeatureBuilder(const sim::Dataset& data,
                     const features::OrderStats& train_stats,
                     FeatureSetting setting);

  int dim() const { return dim_; }

  // [pairs.size() x dim()] feature matrix.
  nn::Tensor Build(const core::InteractionList& pairs) const;

 private:
  int dim_;
  int num_types_;
  // Per-region base features and per-(region, type) extras, precomputed.
  std::vector<std::vector<float>> region_block_;      // [R][16]
  std::vector<std::vector<float>> commercial_block_;  // [R][2 * T]
  std::vector<std::vector<float>> adaption_block_;    // [R][T + 2], may be empty
};

// Region node indexing shared by the matrix-factorization baselines: maps
// regions that host stores to contiguous indices.
class RegionIndex {
 public:
  explicit RegionIndex(const sim::Dataset& data);
  int NodeOf(int region) const { return region_to_node_[region]; }  // -1 if none
  int num_nodes() const { return static_cast<int>(regions_.size()); }
  const std::vector<int>& regions() const { return regions_; }

 private:
  std::vector<int> region_to_node_;
  std::vector<int> regions_;
};

// Base class implementing the shared Adam/MSE training loop. Subclasses
// create parameters in `store_` during Prepare() and express predictions as
// a tape computation in BuildPredictions().
class GradientBaseline : public core::SiteRecommender {
 public:
  explicit GradientBaseline(const BaselineConfig& config) : config_(config) {}

  common::Status Train(const core::TrainContext& ctx) final;

  // Strict: every pair must be in the model's domain (KnownRegion);
  // unknown pairs and Predict-before-Train are errors.
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const final;

  // Serving hooks: rebuilds the model structure (Prepare) without training,
  // so a snapshot restore can overwrite the parameter values afterwards.
  common::Status PrepareServing(const core::TrainContext& ctx) final;
  const nn::ParameterStore* parameter_store() const final { return &store_; }
  nn::ParameterStore* mutable_parameter_store() final { return &store_; }
  bool CanScoreRegion(int region) const final {
    // Bounds first: KnownRegion implementations index per-region tables.
    return trained_ && region >= 0 && region < num_regions_ &&
           KnownRegion(region);
  }

 protected:
  // Builds model state (graphs, parameters) from the training view.
  virtual void Prepare(const sim::Dataset& data,
                       const std::vector<sim::Order>& visible_orders,
                       const core::InteractionList& train) = 0;
  // Predictions [pairs x 1] for (region, type) pairs on the tape. Predict
  // rejects unknown regions before calling this, so every pair maps to a
  // real node.
  virtual nn::Value BuildPredictions(nn::Tape& tape,
                                     const core::InteractionList& pairs,
                                     Rng& dropout_rng) const = 0;
  virtual bool KnownRegion(int region) const = 0;

  BaselineConfig config_;
  nn::ParameterStore store_;
  Rng rng_{0};
  bool trained_ = false;
  int num_regions_ = 0;
};

}  // namespace o2sr::baselines

#endif  // O2SR_BASELINES_BASELINE_COMMON_H_
