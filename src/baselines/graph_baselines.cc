#include "baselines/graph_baselines.h"

#include <set>

#include "common/check.h"

namespace o2sr::baselines {

// ---- GC-MC -----------------------------------------------------------------

void GcMc::Prepare(const sim::Dataset& data,
                   const std::vector<sim::Order>& visible_orders,
                   const core::InteractionList& train) {
  index_ = std::make_unique<RegionIndex>(data);
  const features::OrderStats stats(data, visible_orders);
  if (config_.setting == FeatureSetting::kAdaption) {
    features_ = std::make_unique<PairFeatureBuilder>(data, stats,
                                                     config_.setting);
    region_features_ = features::RegionFeatureExtractor::Compute(data);
  }
  edge_s_.clear();
  edge_a_.clear();
  edge_w_.clear();
  for (const core::Interaction& it : train) {
    const int node = index_->NodeOf(it.region);
    if (node < 0) continue;
    edge_s_.push_back(node);
    edge_a_.push_back(it.type);
    edge_w_.push_back(static_cast<float>(it.target));
  }
  const int d = config_.embedding_dim;
  const int fdim =
      region_features_.empty() ? 0 : region_features_.cols();
  region_embedding_ = nn::Embedding(&store_, "gcmc.s", index_->num_nodes(),
                                    d, rng_);
  type_embedding_ = nn::Embedding(&store_, "gcmc.a", data.num_types(), d,
                                  rng_);
  conv_s_ = nn::Linear(&store_, "gcmc.conv_s", 2 * d + fdim, d, rng_);
  conv_a_ = nn::Linear(&store_, "gcmc.conv_a", 2 * d, d, rng_);
  const int dec_extra = features_ ? features_->dim() : 0;
  decoder_ = nn::Mlp(&store_, "gcmc.dec", {2 * d + dec_extra, d, 1}, rng_,
                     nn::Activation::kRelu, nn::Activation::kSigmoid);
}

nn::Value GcMc::BuildPredictions(nn::Tape& tape,
                                 const core::InteractionList& pairs,
                                 Rng& dropout_rng) const {
  const int S = index_->num_nodes();
  const int A = type_embedding_.num_entities();
  nn::Value s0 = region_embedding_.Full(tape);
  nn::Value a0 = type_embedding_.Full(tape);

  // One weighted graph-convolution layer per side: messages scaled by the
  // observed (normalized) interaction strength.
  nn::Value w = tape.Input(nn::Tensor::FromVector(
      static_cast<int>(edge_w_.size()), 1, edge_w_));
  nn::Value msg_to_s = tape.SegmentMean(
      tape.MulColBroadcast(tape.GatherRows(a0, edge_a_), w), edge_s_, S);
  nn::Value msg_to_a = tape.SegmentMean(
      tape.MulColBroadcast(tape.GatherRows(s0, edge_s_), w), edge_a_, A);
  std::vector<nn::Value> s_in = {s0, msg_to_s};
  if (!region_features_.empty()) {
    nn::Tensor node_features(S, region_features_.cols());
    for (int i = 0; i < S; ++i) {
      const int r = index_->regions()[i];
      std::copy(region_features_.row(r),
                region_features_.row(r) + region_features_.cols(),
                node_features.row(i));
    }
    s_in.push_back(tape.Input(std::move(node_features)));
  }
  nn::Value h_s = tape.Dropout(
      tape.Relu(conv_s_.Apply(tape, tape.ConcatCols(s_in))),
      config_.dropout, dropout_rng);
  nn::Value h_a = tape.Relu(conv_a_.Apply(tape, tape.ConcatCols({a0,
                                                                 msg_to_a})));

  std::vector<int> s_idx, a_idx;
  for (const core::Interaction& it : pairs) {
    const int node = index_->NodeOf(it.region);
    s_idx.push_back(node < 0 ? 0 : node);
    a_idx.push_back(it.type);
  }
  std::vector<nn::Value> dec_in = {tape.GatherRows(h_s, s_idx),
                                   tape.GatherRows(h_a, a_idx)};
  if (features_ != nullptr) {
    dec_in.push_back(tape.Input(features_->Build(pairs)));
  }
  return decoder_.Apply(tape, tape.ConcatCols(dec_in));
}

// ---- GraphRec ----------------------------------------------------------------

void GraphRec::Prepare(const sim::Dataset& data,
                       const std::vector<sim::Order>& visible_orders,
                       const core::InteractionList& /*train*/) {
  const features::OrderStats stats(data, visible_orders);
  graph_ = std::make_unique<graphs::HeteroMultiGraph>(data, stats);
  if (config_.setting == FeatureSetting::kAdaption) {
    features_ = std::make_unique<PairFeatureBuilder>(data, stats,
                                                     config_.setting);
  }
  // Union of per-period edge sets: GraphRec has no notion of time.
  std::set<std::pair<int, int>> su_seen, ua_seen;
  su_src_u_.clear();
  su_dst_s_.clear();
  ua_src_a_.clear();
  ua_dst_u_.clear();
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    for (const graphs::SuEdge& e : graph_->Subgraph(p).su_edges) {
      if (su_seen.insert({e.s, e.u}).second) {
        su_src_u_.push_back(e.u);
        su_dst_s_.push_back(e.s);
      }
    }
    for (const graphs::UaEdge& e : graph_->Subgraph(p).ua_edges) {
      if (ua_seen.insert({e.u, e.a}).second) {
        ua_src_a_.push_back(e.a);
        ua_dst_u_.push_back(e.u);
      }
    }
  }
  const int d = config_.embedding_dim;
  store_embedding_ = nn::Embedding(&store_, "grec.s",
                                   graph_->num_store_nodes(), d, rng_);
  customer_embedding_ = nn::Embedding(&store_, "grec.u",
                                      graph_->num_customer_nodes(), d, rng_);
  type_embedding_ = nn::Embedding(&store_, "grec.a", graph_->num_types(), d,
                                  rng_);
  customer_agg_ = nn::Linear(&store_, "grec.uagg", 2 * d, d, rng_);
  attention_ = nn::Linear(&store_, "grec.att", 2 * d, 1, rng_);
  store_agg_ = nn::Linear(&store_, "grec.sagg", 2 * d, d, rng_);
  const int dec_extra = features_ ? features_->dim() : 0;
  decoder_ = nn::Mlp(&store_, "grec.dec", {2 * d + dec_extra, d, 1}, rng_,
                     nn::Activation::kRelu, nn::Activation::kSigmoid);
}

nn::Value GraphRec::BuildPredictions(nn::Tape& tape,
                                     const core::InteractionList& pairs,
                                     Rng& dropout_rng) const {
  const int S = graph_->num_store_nodes();
  const int U = graph_->num_customer_nodes();
  nn::Value s0 = store_embedding_.Full(tape);
  nn::Value u0 = customer_embedding_.Full(tape);
  nn::Value a0 = type_embedding_.Full(tape);

  // Customer modeling: aggregate the types each customer-region orders.
  nn::Value ua_msg = tape.SegmentMean(tape.GatherRows(a0, ua_src_a_),
                                      ua_dst_u_, U);
  nn::Value z_u = tape.Dropout(
      tape.Relu(customer_agg_.Apply(tape, tape.ConcatCols({u0, ua_msg}))),
      config_.dropout, dropout_rng);

  // Store-region modeling with single-head attention over its customers
  // (GraphRec's opinion aggregation).
  nn::Value h_s;
  if (su_src_u_.empty()) {
    h_s = tape.Relu(store_agg_.Apply(tape, tape.ConcatCols({s0, s0})));
  } else {
    nn::Value z_per_edge = tape.GatherRows(z_u, su_src_u_);
    nn::Value s_per_edge = tape.GatherRows(s0, su_dst_s_);
    nn::Value score = tape.LeakyRelu(attention_.Apply(
        tape, tape.ConcatCols({z_per_edge, s_per_edge})));
    nn::Value alpha = tape.SegmentSoftmax(score, su_dst_s_, S);
    nn::Value opinions = tape.SegmentSum(
        tape.MulColBroadcast(z_per_edge, alpha), su_dst_s_, S);
    h_s = tape.Relu(store_agg_.Apply(tape, tape.ConcatCols({s0, opinions})));
  }
  h_s = tape.Dropout(h_s, config_.dropout, dropout_rng);

  std::vector<int> s_idx, a_idx;
  for (const core::Interaction& it : pairs) {
    const int node = graph_->StoreNodeOfRegion(it.region);
    s_idx.push_back(node < 0 ? 0 : node);
    a_idx.push_back(it.type);
  }
  std::vector<nn::Value> dec_in = {tape.GatherRows(h_s, s_idx),
                                   tape.GatherRows(a0, a_idx)};
  if (features_ != nullptr) {
    dec_in.push_back(tape.Input(features_->Build(pairs)));
  }
  return decoder_.Apply(tape, tape.ConcatCols(dec_in));
}

}  // namespace o2sr::baselines
