#ifndef O2SR_BASELINES_MF_BASELINES_H_
#define O2SR_BASELINES_MF_BASELINES_H_

#include <memory>
#include <string>

#include "baselines/baseline_common.h"

namespace o2sr::baselines {

// CityTransfer (Guo et al., IMWUT'18), single-city setting: matrix
// factorization over (store-region, type) interactions augmented with a
// linear feature term, pred = sigmoid(u_s . v_a + w^T f_sa + b). The
// inter-city knowledge association module is discarded (paper §IV-A5).
class CityTransfer : public GradientBaseline {
 public:
  explicit CityTransfer(const BaselineConfig& config)
      : GradientBaseline(config) {}

  std::string Name() const override {
    return std::string("CityTransfer/") + FeatureSettingName(config_.setting);
  }

 protected:
  void Prepare(const sim::Dataset& data,
               const std::vector<sim::Order>& visible_orders,
               const core::InteractionList& train) override;
  nn::Value BuildPredictions(nn::Tape& tape,
                             const core::InteractionList& pairs,
                             Rng& dropout_rng) const override;
  bool KnownRegion(int region) const override {
    return index_->NodeOf(region) >= 0;
  }

 private:
  std::unique_ptr<RegionIndex> index_;
  std::unique_ptr<PairFeatureBuilder> features_;
  nn::Embedding region_embedding_;
  nn::Embedding type_embedding_;
  nn::Linear feature_weights_;
  nn::Parameter* bias_ = nullptr;
};

// BL-G-CoSVD (Yu et al., TKDD'16): biased co-SVD factorization,
// pred = sigmoid(mu + b_s + b_a + u_s . v_a); the Adaption setting appends
// the linear O2O feature term.
class BlgCoSvd : public GradientBaseline {
 public:
  explicit BlgCoSvd(const BaselineConfig& config)
      : GradientBaseline(config) {}

  std::string Name() const override {
    return std::string("BL-G-CoSVD/") + FeatureSettingName(config_.setting);
  }

 protected:
  void Prepare(const sim::Dataset& data,
               const std::vector<sim::Order>& visible_orders,
               const core::InteractionList& train) override;
  nn::Value BuildPredictions(nn::Tape& tape,
                             const core::InteractionList& pairs,
                             Rng& dropout_rng) const override;
  bool KnownRegion(int region) const override {
    return index_->NodeOf(region) >= 0;
  }

 private:
  std::unique_ptr<RegionIndex> index_;
  std::unique_ptr<PairFeatureBuilder> features_;  // only in Adaption
  nn::Embedding region_embedding_;
  nn::Embedding type_embedding_;
  nn::Embedding region_bias_;
  nn::Embedding type_bias_;
  nn::Linear feature_weights_;
  nn::Parameter* mu_ = nullptr;
};

}  // namespace o2sr::baselines

#endif  // O2SR_BASELINES_MF_BASELINES_H_
