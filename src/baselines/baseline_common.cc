#include "baselines/baseline_common.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "exec/thread_pool.h"
#include "features/region_features.h"
#include "obs/trace.h"

namespace o2sr::baselines {

const char* FeatureSettingName(FeatureSetting setting) {
  return setting == FeatureSetting::kOriginal ? "Original" : "Adaption";
}

PairFeatureBuilder::PairFeatureBuilder(const sim::Dataset& data,
                                       const features::OrderStats& stats,
                                       FeatureSetting setting)
    : num_types_(data.num_types()) {
  const geo::Grid& grid = data.city.grid;
  const int R = grid.NumRegions();
  const int T = num_types_;

  const nn::Tensor region_features =
      features::RegionFeatureExtractor::Compute(data);
  region_block_.assign(R, std::vector<float>(region_features.cols()));
  for (int r = 0; r < R; ++r) {
    for (int c = 0; c < region_features.cols(); ++c) {
      region_block_[r][c] = region_features.at(r, c);
    }
  }

  const features::CommercialFeatures commercial(data);
  commercial_block_.assign(R, std::vector<float>(2 * T));
  for (int r = 0; r < R; ++r) {
    for (int a = 0; a < T; ++a) {
      commercial_block_[r][2 * a] =
          static_cast<float>(commercial.Competitiveness(r, a));
      commercial_block_[r][2 * a + 1] =
          static_cast<float>(commercial.Complementarity(r, a));
    }
  }

  dim_ = region_features.cols() + 2;
  if (setting == FeatureSetting::kAdaption) {
    // Customer preference per type within 2 km + delivery time +
    // supply-demand ratio (paper §IV-A5's Adaption setting).
    std::vector<std::vector<double>> preference(R, std::vector<double>(T));
    std::vector<double> delivery(R, 0.0);
    std::vector<double> ratio(R, 0.0);
    for (int r = 0; r < R; ++r) {
      std::vector<int> hood = grid.RegionsWithin(r, 2000.0);
      hood.push_back(r);
      for (int n : hood) {
        for (int p = 0; p < sim::kNumPeriods; ++p) {
          for (int a = 0; a < T; ++a) {
            preference[r][a] += stats.CustomerOrders(p, n, a);
          }
        }
      }
      double d = 0.0, q = 0.0;
      for (int p = 0; p < sim::kNumPeriods; ++p) {
        d += stats.MeanDeliveryMinutes(p, r);
        q += stats.SupplyDemandRatio(p, r);
      }
      delivery[r] = d / sim::kNumPeriods;
      ratio[r] = q / sim::kNumPeriods;
    }
    // Missing-value completion: regions without any delivery observations
    // take the average of their neighbors within 2 km.
    for (int r = 0; r < R; ++r) {
      if (delivery[r] > 0.0) continue;
      double sum = 0.0;
      int count = 0;
      for (int n : grid.RegionsWithin(r, 2000.0)) {
        if (delivery[n] > 0.0) {
          sum += delivery[n];
          ++count;
        }
      }
      if (count > 0) delivery[r] = sum / count;
    }
    // Normalize the preference per type (the prediction target is also
    // normalized within each type).
    std::vector<double> max_pref(T, 1.0);
    for (int r = 0; r < R; ++r) {
      for (int a = 0; a < T; ++a) {
        max_pref[a] = std::max(max_pref[a], preference[r][a]);
      }
    }
    MinMaxNormalize(delivery);
    MinMaxNormalize(ratio);
    adaption_block_.assign(R, std::vector<float>(T + 2));
    for (int r = 0; r < R; ++r) {
      for (int a = 0; a < T; ++a) {
        adaption_block_[r][a] =
            static_cast<float>(preference[r][a] / max_pref[a]);
      }
      adaption_block_[r][T] = static_cast<float>(delivery[r]);
      adaption_block_[r][T + 1] = static_cast<float>(ratio[r]);
    }
    dim_ += 3;  // preference-of-type, delivery time, supply-demand ratio
  }
}

nn::Tensor PairFeatureBuilder::Build(const core::InteractionList& pairs) const {
  nn::Tensor out(static_cast<int>(pairs.size()), dim_);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const int r = pairs[i].region;
    const int a = pairs[i].type;
    float* row = out.row(static_cast<int>(i));
    int c = 0;
    for (float v : region_block_[r]) row[c++] = v;
    row[c++] = commercial_block_[r][2 * a];
    row[c++] = commercial_block_[r][2 * a + 1];
    if (!adaption_block_.empty()) {
      row[c++] = adaption_block_[r][a];
      row[c++] = adaption_block_[r][num_types_];
      row[c++] = adaption_block_[r][num_types_ + 1];
    }
    O2SR_CHECK_EQ(c, dim_);
  }
  return out;
}

RegionIndex::RegionIndex(const sim::Dataset& data) {
  region_to_node_.assign(data.num_regions(), -1);
  for (const sim::Store& s : data.stores) {
    if (region_to_node_[s.region] < 0) {
      region_to_node_[s.region] = static_cast<int>(regions_.size());
      regions_.push_back(s.region);
    }
  }
}

common::Status GradientBaseline::Train(const core::TrainContext& ctx) {
  O2SR_RETURN_IF_ERROR(core::ValidateTrainContext(ctx));
  const core::InteractionList& train = *ctx.train;
  if (train.empty()) {
    return common::InvalidArgumentError("empty training interaction list");
  }
  // Route every parallel kernel under this run to the context's pool.
  exec::PoolScope pool_scope(ctx.pool != nullptr ? ctx.pool
                                                 : &exec::CurrentPool());
  rng_ = Rng(config_.seed);
  num_regions_ = ctx.data->num_regions();
  {
    O2SR_TRACE_SCOPE("model.build");
    Prepare(*ctx.data, *ctx.visible_orders, train);
  }

  // Restrict training to pairs with a known region node.
  core::InteractionList usable;
  std::vector<float> targets;
  for (const core::Interaction& it : train) {
    if (!KnownRegion(it.region)) continue;
    usable.push_back(it);
    targets.push_back(static_cast<float>(it.target));
  }
  if (usable.empty()) {
    return common::FailedPreconditionError(
        "no training interaction falls in a region known to the model");
  }
  const nn::Tensor target_tensor = nn::Tensor::FromVector(
      static_cast<int>(targets.size()), 1, targets);

  nn::AdamOptimizer::Options opt;
  opt.learning_rate = config_.learning_rate;
  nn::AdamOptimizer adam(&store_, opt);
  Rng dropout_rng = rng_.Fork();
  const auto epoch_fn = [&](int /*epoch*/) {
    nn::Tape tape(/*training=*/true);
    nn::Value pred = BuildPredictions(tape, usable, dropout_rng);
    nn::Value loss = tape.MseLoss(pred, tape.Input(target_tensor));
    const double loss_value = tape.value(loss).at(0, 0);
    tape.Backward(loss);
    return loss_value;
  };
  const common::Status status =
      nn::RunGuardedTraining(&store_, &adam, &dropout_rng, config_.epochs,
                             epoch_fn, config_.guard, ctx.hooks, ctx.report)
          .WithContext(Name());
  trained_ = status.ok();
  return status;
}

common::Status GradientBaseline::PrepareServing(
    const core::TrainContext& ctx) {
  O2SR_RETURN_IF_ERROR(core::ValidateTrainContext(ctx));
  if (ctx.train->empty()) {
    return common::InvalidArgumentError("empty training interaction list");
  }
  exec::PoolScope pool_scope(ctx.pool != nullptr ? ctx.pool
                                                 : &exec::CurrentPool());
  // Identical structure path to Train: same RNG reset, same Prepare, so
  // parameter names/shapes/creation order match the trained original and a
  // snapshot restore is a pure value overwrite.
  rng_ = Rng(config_.seed);
  num_regions_ = ctx.data->num_regions();
  {
    O2SR_TRACE_SCOPE("model.build");
    Prepare(*ctx.data, *ctx.visible_orders, *ctx.train);
  }
  trained_ = true;
  return common::Status::Ok();
}

common::StatusOr<std::vector<double>> GradientBaseline::Predict(
    const core::InteractionList& pairs) const {
  if (!trained_) {
    return common::FailedPreconditionError(Name() +
                                           ": Predict called before Train");
  }
  std::vector<double> out(pairs.size(), 0.0);
  if (pairs.empty()) return out;
  for (const core::Interaction& it : pairs) {
    if (!KnownRegion(it.region)) {
      return common::InvalidArgumentError(
          Name() + " cannot score pair (region=" + std::to_string(it.region) +
          ", type=" + std::to_string(it.type) +
          "): the region is outside the model's domain");
    }
  }
  nn::Tape tape(/*training=*/false);
  Rng dropout_rng(0);
  nn::Value pred = BuildPredictions(tape, pairs, dropout_rng);
  const nn::Tensor& values = tape.value(pred);
  for (size_t i = 0; i < pairs.size(); ++i) {
    out[i] = values.at(static_cast<int>(i), 0);
  }
  return out;
}

}  // namespace o2sr::baselines
