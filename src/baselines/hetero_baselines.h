#ifndef O2SR_BASELINES_HETERO_BASELINES_H_
#define O2SR_BASELINES_HETERO_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_common.h"
#include "graphs/hetero_graph.h"

namespace o2sr::baselines {

// Shared machinery of the heterogeneous-graph baselines: both operate on
// the union (over periods) of the region-type heterogeneous multi-graph's
// edges — they model relations but, unlike O2-SiteRec, neither edge
// attributes nor the multi-graph's time dimension.
class HeteroGraphBaseline : public GradientBaseline {
 public:
  explicit HeteroGraphBaseline(const BaselineConfig& config)
      : GradientBaseline(config) {}

 protected:
  void Prepare(const sim::Dataset& data,
               const std::vector<sim::Order>& visible_orders,
               const core::InteractionList& train) final;
  bool KnownRegion(int region) const final {
    return graph_ != nullptr && graph_->StoreNodeOfRegion(region) >= 0;
  }

  // Subclass-specific parameter creation, called at the end of Prepare().
  virtual void CreateParameters(const sim::Dataset& data) = 0;

  // Node-embedding inputs, optionally fused with region features in the
  // Adaption setting.
  nn::Value StoreInput(nn::Tape& tape) const;
  nn::Value CustomerInput(nn::Tape& tape) const;

  std::unique_ptr<graphs::HeteroMultiGraph> graph_;
  std::unique_ptr<PairFeatureBuilder> features_;  // Adaption only
  // Union edge index lists (deduplicated over periods).
  std::vector<int> su_u_, su_s_;  // U -> S
  std::vector<int> ua_a_, ua_u_;  // A -> U
  std::vector<int> sa_a_, sa_s_;  // A -> S
  nn::Embedding store_embedding_;
  nn::Embedding customer_embedding_;
  nn::Embedding type_embedding_;
  nn::Linear store_fuse_;     // Adaption: [d + fdim -> d]
  nn::Linear customer_fuse_;  // Adaption: [d + fdim -> d]
  nn::Mlp decoder_;
};

// RGCN (Schlichtkrull et al., ESWC'18): relation-specific mean-aggregation
// message passing, two layers, no attention.
class Rgcn : public HeteroGraphBaseline {
 public:
  explicit Rgcn(const BaselineConfig& config) : HeteroGraphBaseline(config) {}

  std::string Name() const override {
    return std::string("RGCN/") + FeatureSettingName(config_.setting);
  }

 protected:
  void CreateParameters(const sim::Dataset& data) override;
  nn::Value BuildPredictions(nn::Tape& tape,
                             const core::InteractionList& pairs,
                             Rng& dropout_rng) const override;

 private:
  struct Layer {
    nn::Linear w_su, w_sa, w_ua, w_as;  // per-relation transforms
    nn::Linear self_s, self_u, self_a;
  };
  std::vector<Layer> layers_;
};

// HGT (Hu et al., WWW'20), simplified: per-relation multi-head scaled
// dot-product attention with node-type-specific projections, two layers.
// The strongest baseline in the paper; it lacks only O2-SiteRec's edge
// attributes and time-semantics aggregation.
class Hgt : public HeteroGraphBaseline {
 public:
  explicit Hgt(const BaselineConfig& config) : HeteroGraphBaseline(config) {}

  std::string Name() const override {
    return std::string("HGT/") + FeatureSettingName(config_.setting);
  }

 protected:
  void CreateParameters(const sim::Dataset& data) override;
  nn::Value BuildPredictions(nn::Tape& tape,
                             const core::InteractionList& pairs,
                             Rng& dropout_rng) const override;

 private:
  struct Relation {
    std::vector<nn::Linear> w_key;      // per head, on source
    std::vector<nn::Linear> w_query;    // per head, on destination
    std::vector<nn::Linear> w_value;    // per head, on source
    nn::Parameter* w_edge = nullptr;    // relation-specific [dk x dk]
  };
  struct Layer {
    Relation su, sa, ua, as;
    nn::Linear out_s, out_u, out_a;
  };
  Relation MakeRelation(const std::string& name, Rng& rng);
  nn::Value Attend(nn::Tape& tape, const Relation& rel, nn::Value src_emb,
                   nn::Value dst_emb, const std::vector<int>& src_idx,
                   const std::vector<int>& dst_idx, int num_dst) const;
  std::vector<Layer> layers_;
};

}  // namespace o2sr::baselines

#endif  // O2SR_BASELINES_HETERO_BASELINES_H_
