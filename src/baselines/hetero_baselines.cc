#include "baselines/hetero_baselines.h"

#include <cmath>
#include <set>

#include "common/check.h"
#include "features/region_features.h"

namespace o2sr::baselines {

void HeteroGraphBaseline::Prepare(const sim::Dataset& data,
                                  const std::vector<sim::Order>& visible_orders,
                                  const core::InteractionList& /*train*/) {
  const features::OrderStats stats(data, visible_orders);
  graph_ = std::make_unique<graphs::HeteroMultiGraph>(data, stats);
  if (config_.setting == FeatureSetting::kAdaption) {
    features_ = std::make_unique<PairFeatureBuilder>(data, stats,
                                                     config_.setting);
  }
  // Union of edges across periods: these baselines have no time dimension.
  std::set<std::pair<int, int>> su_seen, ua_seen;
  su_u_.clear();
  su_s_.clear();
  ua_a_.clear();
  ua_u_.clear();
  sa_a_.clear();
  sa_s_.clear();
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    for (const graphs::SuEdge& e : graph_->Subgraph(p).su_edges) {
      if (su_seen.insert({e.s, e.u}).second) {
        su_u_.push_back(e.u);
        su_s_.push_back(e.s);
      }
    }
    for (const graphs::UaEdge& e : graph_->Subgraph(p).ua_edges) {
      if (ua_seen.insert({e.u, e.a}).second) {
        ua_a_.push_back(e.a);
        ua_u_.push_back(e.u);
      }
    }
  }
  for (const graphs::SaEdge& e : graph_->sa_edges()) {
    sa_a_.push_back(e.a);
    sa_s_.push_back(e.s);
  }

  const int d = config_.embedding_dim;
  store_embedding_ = nn::Embedding(&store_, "hb.s",
                                   graph_->num_store_nodes(), d, rng_);
  customer_embedding_ = nn::Embedding(&store_, "hb.u",
                                      graph_->num_customer_nodes(), d, rng_);
  type_embedding_ = nn::Embedding(&store_, "hb.a", graph_->num_types(), d,
                                  rng_);
  if (config_.setting == FeatureSetting::kAdaption) {
    const int fdim = graph_->store_features().cols();
    store_fuse_ = nn::Linear(&store_, "hb.sfuse", d + fdim, d, rng_);
    customer_fuse_ = nn::Linear(&store_, "hb.ufuse", d + fdim, d, rng_);
  }
  const int dec_extra = features_ ? features_->dim() : 0;
  decoder_ = nn::Mlp(&store_, "hb.dec", {2 * d + dec_extra, d, 1}, rng_,
                     nn::Activation::kRelu, nn::Activation::kSigmoid);
  CreateParameters(data);
}

nn::Value HeteroGraphBaseline::StoreInput(nn::Tape& tape) const {
  nn::Value s0 = store_embedding_.Full(tape);
  if (config_.setting != FeatureSetting::kAdaption) return s0;
  return tape.Relu(store_fuse_.Apply(
      tape, tape.ConcatCols({s0, tape.Input(graph_->store_features())})));
}

nn::Value HeteroGraphBaseline::CustomerInput(nn::Tape& tape) const {
  nn::Value u0 = customer_embedding_.Full(tape);
  if (config_.setting != FeatureSetting::kAdaption) return u0;
  return tape.Relu(customer_fuse_.Apply(
      tape, tape.ConcatCols({u0, tape.Input(graph_->customer_features())})));
}

namespace {

// Gathers decoder inputs for (region, type) pairs and applies the decoder.
nn::Value Decode(nn::Tape& tape, const graphs::HeteroMultiGraph& graph,
                 const nn::Mlp& decoder, const PairFeatureBuilder* features,
                 nn::Value h_s, nn::Value h_a,
                 const core::InteractionList& pairs) {
  std::vector<int> s_idx, a_idx;
  for (const core::Interaction& it : pairs) {
    const int node = graph.StoreNodeOfRegion(it.region);
    s_idx.push_back(node < 0 ? 0 : node);
    a_idx.push_back(it.type);
  }
  std::vector<nn::Value> dec_in = {tape.GatherRows(h_s, s_idx),
                                   tape.GatherRows(h_a, a_idx)};
  if (features != nullptr) {
    dec_in.push_back(tape.Input(features->Build(pairs)));
  }
  return decoder.Apply(tape, tape.ConcatCols(dec_in));
}

}  // namespace

// ---- RGCN --------------------------------------------------------------------

void Rgcn::CreateParameters(const sim::Dataset& /*data*/) {
  const int d = config_.embedding_dim;
  layers_.clear();
  for (int l = 0; l < 2; ++l) {
    const std::string p = "rgcn.l" + std::to_string(l);
    Layer layer;
    layer.w_su = nn::Linear(&store_, p + ".su", d, d, rng_);
    layer.w_sa = nn::Linear(&store_, p + ".sa", d, d, rng_);
    layer.w_ua = nn::Linear(&store_, p + ".ua", d, d, rng_);
    layer.w_as = nn::Linear(&store_, p + ".as", d, d, rng_);
    layer.self_s = nn::Linear(&store_, p + ".self_s", d, d, rng_);
    layer.self_u = nn::Linear(&store_, p + ".self_u", d, d, rng_);
    layer.self_a = nn::Linear(&store_, p + ".self_a", d, d, rng_);
    layers_.push_back(std::move(layer));
  }
}

nn::Value Rgcn::BuildPredictions(nn::Tape& tape,
                                 const core::InteractionList& pairs,
                                 Rng& dropout_rng) const {
  const int S = graph_->num_store_nodes();
  const int U = graph_->num_customer_nodes();
  const int A = graph_->num_types();
  nn::Value h = StoreInput(tape);
  nn::Value z = CustomerInput(tape);
  nn::Value q = type_embedding_.Full(tape);

  for (const Layer& layer : layers_) {
    // h_dst^{l+1} = ReLU(W_self h_dst + sum_rel W_rel mean(neighbors)).
    nn::Value su = tape.SegmentMean(tape.GatherRows(z, su_u_), su_s_, S);
    nn::Value sa = tape.SegmentMean(tape.GatherRows(q, sa_a_), sa_s_, S);
    nn::Value ua = tape.SegmentMean(tape.GatherRows(q, ua_a_), ua_u_, U);
    nn::Value as = tape.SegmentMean(tape.GatherRows(h, sa_s_), sa_a_, A);
    nn::Value h_next = tape.Relu(
        tape.AddN({layer.self_s.Apply(tape, h), layer.w_su.Apply(tape, su),
                   layer.w_sa.Apply(tape, sa)}));
    nn::Value z_next = tape.Relu(tape.Add(layer.self_u.Apply(tape, z),
                                          layer.w_ua.Apply(tape, ua)));
    nn::Value q_next = tape.Relu(tape.Add(layer.self_a.Apply(tape, q),
                                          layer.w_as.Apply(tape, as)));
    h = tape.Dropout(h_next, config_.dropout, dropout_rng);
    z = tape.Dropout(z_next, config_.dropout, dropout_rng);
    q = q_next;
  }
  return Decode(tape, *graph_, decoder_, features_.get(), h, q, pairs);
}

// ---- HGT ---------------------------------------------------------------------

Hgt::Relation Hgt::MakeRelation(const std::string& name, Rng& rng) {
  const int d = config_.embedding_dim;
  const int heads = 4;
  const int dk = d / heads;
  Relation rel;
  for (int i = 0; i < heads; ++i) {
    const std::string h = name + ".h" + std::to_string(i);
    rel.w_key.emplace_back(&store_, h + ".k", d, dk, rng, false);
    rel.w_query.emplace_back(&store_, h + ".q", d, dk, rng, false);
    rel.w_value.emplace_back(&store_, h + ".v", d, dk, rng, false);
  }
  rel.w_edge = store_.CreateXavier(name + ".we", dk, dk, rng);
  return rel;
}

void Hgt::CreateParameters(const sim::Dataset& /*data*/) {
  const int d = config_.embedding_dim;
  O2SR_CHECK_EQ(d % 4, 0);
  layers_.clear();
  for (int l = 0; l < 2; ++l) {
    const std::string p = "hgt.l" + std::to_string(l);
    Layer layer;
    layer.su = MakeRelation(p + ".su", rng_);
    layer.sa = MakeRelation(p + ".sa", rng_);
    layer.ua = MakeRelation(p + ".ua", rng_);
    layer.as = MakeRelation(p + ".as", rng_);
    layer.out_s = nn::Linear(&store_, p + ".out_s", d, d, rng_);
    layer.out_u = nn::Linear(&store_, p + ".out_u", d, d, rng_);
    layer.out_a = nn::Linear(&store_, p + ".out_a", d, d, rng_);
    layers_.push_back(std::move(layer));
  }
}

nn::Value Hgt::Attend(nn::Tape& tape, const Relation& rel, nn::Value src_emb,
                      nn::Value dst_emb, const std::vector<int>& src_idx,
                      const std::vector<int>& dst_idx, int num_dst) const {
  const int d = config_.embedding_dim;
  if (src_idx.empty()) return tape.Input(nn::Tensor(num_dst, d));
  nn::Value src_rows = tape.GatherRows(src_emb, src_idx);
  nn::Value dst_rows = tape.GatherRows(dst_emb, dst_idx);
  const int heads = static_cast<int>(rel.w_key.size());
  const int dk = d / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  std::vector<nn::Value> outs;
  for (int i = 0; i < heads; ++i) {
    nn::Value key = rel.w_key[i].Apply(tape, src_rows);
    nn::Value query = rel.w_query[i].Apply(tape, dst_rows);
    nn::Value value = rel.w_value[i].Apply(tape, src_rows);
    nn::Value score = tape.Scale(
        tape.RowwiseDot(tape.MatMul(key, tape.Param(rel.w_edge)), query),
        scale);
    nn::Value alpha = tape.SegmentSoftmax(score, dst_idx, num_dst);
    outs.push_back(tape.SegmentSum(tape.MulColBroadcast(value, alpha),
                                   dst_idx, num_dst));
  }
  return tape.ConcatCols(outs);
}

nn::Value Hgt::BuildPredictions(nn::Tape& tape,
                                const core::InteractionList& pairs,
                                Rng& dropout_rng) const {
  const int S = graph_->num_store_nodes();
  const int U = graph_->num_customer_nodes();
  const int A = graph_->num_types();
  nn::Value h = StoreInput(tape);
  nn::Value z = CustomerInput(tape);
  nn::Value q = type_embedding_.Full(tape);

  for (const Layer& layer : layers_) {
    nn::Value su = Attend(tape, layer.su, z, h, su_u_, su_s_, S);
    nn::Value sa = Attend(tape, layer.sa, q, h, sa_a_, sa_s_, S);
    nn::Value ua = Attend(tape, layer.ua, q, z, ua_a_, ua_u_, U);
    nn::Value as = Attend(tape, layer.as, h, q, sa_s_, sa_a_, A);
    // Target-specific aggregation + residual (HGT's update step).
    nn::Value h_next = tape.Relu(
        tape.Add(layer.out_s.Apply(tape, tape.Add(su, sa)), h));
    nn::Value z_next = tape.Relu(tape.Add(layer.out_u.Apply(tape, ua), z));
    nn::Value q_next = tape.Relu(tape.Add(layer.out_a.Apply(tape, as), q));
    h = tape.Dropout(h_next, config_.dropout, dropout_rng);
    z = tape.Dropout(z_next, config_.dropout, dropout_rng);
    q = q_next;
  }
  return Decode(tape, *graph_, decoder_, features_.get(), h, q, pairs);
}

}  // namespace o2sr::baselines
