#ifndef O2SR_BASELINES_FACTORY_H_
#define O2SR_BASELINES_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_common.h"

namespace o2sr::baselines {

// The six baseline families of the paper's evaluation (§IV-A5), in the
// order Table III lists them.
enum class BaselineKind {
  kCityTransfer,
  kBlgCoSvd,
  kGcMc,
  kGraphRec,
  kRgcn,
  kHgt,
};

inline constexpr BaselineKind kAllBaselines[] = {
    BaselineKind::kCityTransfer, BaselineKind::kBlgCoSvd,
    BaselineKind::kGcMc,         BaselineKind::kGraphRec,
    BaselineKind::kRgcn,         BaselineKind::kHgt,
};

const char* BaselineKindName(BaselineKind kind);

// Instantiates a baseline with the given configuration.
std::unique_ptr<core::SiteRecommender> MakeBaseline(
    BaselineKind kind, const BaselineConfig& config);

}  // namespace o2sr::baselines

#endif  // O2SR_BASELINES_FACTORY_H_
