#ifndef O2SR_BASELINES_GRAPH_BASELINES_H_
#define O2SR_BASELINES_GRAPH_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_common.h"
#include "graphs/hetero_graph.h"

namespace o2sr::baselines {

// GC-MC (Berg et al., 2017): graph convolutional matrix completion over the
// (store-region, store-type) interaction bipartite graph built from the
// training interactions; a one-layer graph convolution per side followed by
// an MLP decoder. The Adaption setting feeds region features into the
// store-region side and pair features into the decoder.
class GcMc : public GradientBaseline {
 public:
  explicit GcMc(const BaselineConfig& config) : GradientBaseline(config) {}

  std::string Name() const override {
    return std::string("GC-MC/") + FeatureSettingName(config_.setting);
  }

 protected:
  void Prepare(const sim::Dataset& data,
               const std::vector<sim::Order>& visible_orders,
               const core::InteractionList& train) override;
  nn::Value BuildPredictions(nn::Tape& tape,
                             const core::InteractionList& pairs,
                             Rng& dropout_rng) const override;
  bool KnownRegion(int region) const override {
    return index_->NodeOf(region) >= 0;
  }

 private:
  std::unique_ptr<RegionIndex> index_;
  std::unique_ptr<PairFeatureBuilder> features_;  // Adaption only
  nn::Tensor region_features_;                    // Adaption only
  // Interaction edges (train) with target weights.
  std::vector<int> edge_s_, edge_a_;
  std::vector<float> edge_w_;
  nn::Embedding region_embedding_;
  nn::Embedding type_embedding_;
  nn::Linear conv_s_;
  nn::Linear conv_a_;
  nn::Mlp decoder_;
};

// GraphRec (Fan et al., WWW'19) adapted per the paper: the S-U bipartite
// subgraph of the region-type heterogeneous graph replaces the social
// graph; store-region embeddings aggregate customer-region opinions with a
// single-head attention, and an MLP decodes (store-region, type) pairs.
class GraphRec : public GradientBaseline {
 public:
  explicit GraphRec(const BaselineConfig& config) : GradientBaseline(config) {}

  std::string Name() const override {
    return std::string("GraphRec/") + FeatureSettingName(config_.setting);
  }

 protected:
  void Prepare(const sim::Dataset& data,
               const std::vector<sim::Order>& visible_orders,
               const core::InteractionList& train) override;
  nn::Value BuildPredictions(nn::Tape& tape,
                             const core::InteractionList& pairs,
                             Rng& dropout_rng) const override;
  bool KnownRegion(int region) const override {
    return graph_ != nullptr && graph_->StoreNodeOfRegion(region) >= 0;
  }

 private:
  std::unique_ptr<graphs::HeteroMultiGraph> graph_;
  std::unique_ptr<PairFeatureBuilder> features_;  // Adaption only
  // Union (deduplicated) of S-U edges over all periods.
  std::vector<int> su_src_u_, su_dst_s_;
  // U-A edges union, for customer-side aggregation.
  std::vector<int> ua_src_a_, ua_dst_u_;
  nn::Embedding store_embedding_;
  nn::Embedding customer_embedding_;
  nn::Embedding type_embedding_;
  nn::Linear customer_agg_;
  nn::Linear attention_;
  nn::Linear store_agg_;
  nn::Mlp decoder_;
};

}  // namespace o2sr::baselines

#endif  // O2SR_BASELINES_GRAPH_BASELINES_H_
