#include "graphs/geo_graph.h"

#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace o2sr::graphs {

GeoGraph::GeoGraph(const geo::Grid& grid, double threshold_m)
    : threshold_m_(threshold_m) {
  O2SR_TRACE_SCOPE("graphs.geo");
  const int n = grid.NumRegions();
  neighbors_.resize(n);
  distances_.resize(n);
  // Each region owns its adjacency rows, so the edge aggregation
  // parallelizes over regions without any ordering concern.
  exec::CurrentPool().ParallelFor(
      n, /*grain=*/64,
      [&](int64_t r) {
        const int region = static_cast<int>(r);
        for (geo::RegionId other : grid.RegionsWithin(region, threshold_m_)) {
          neighbors_[region].push_back(other);
          distances_[region].push_back(grid.Distance(region, other));
        }
      },
      "exec.geo_edges");
}

size_t GeoGraph::NumEdges() const {
  size_t count = 0;
  for (const auto& n : neighbors_) count += n.size();
  return count;
}

}  // namespace o2sr::graphs
