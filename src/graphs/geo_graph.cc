#include "graphs/geo_graph.h"

#include "obs/trace.h"

namespace o2sr::graphs {

GeoGraph::GeoGraph(const geo::Grid& grid, double threshold_m)
    : threshold_m_(threshold_m) {
  O2SR_TRACE_SCOPE("graphs.geo");
  const int n = grid.NumRegions();
  neighbors_.resize(n);
  distances_.resize(n);
  for (int r = 0; r < n; ++r) {
    for (geo::RegionId other : grid.RegionsWithin(r, threshold_m)) {
      neighbors_[r].push_back(other);
      distances_[r].push_back(grid.Distance(r, other));
    }
  }
}

size_t GeoGraph::NumEdges() const {
  size_t count = 0;
  for (const auto& n : neighbors_) count += n.size();
  return count;
}

}  // namespace o2sr::graphs
