#include "graphs/mobility_graph.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace o2sr::graphs {

MobilityMultiGraph::MobilityMultiGraph(const features::OrderStats& stats,
                                       int min_transactions)
    : num_regions_(stats.num_regions()) {
  O2SR_TRACE_SCOPE("graphs.mobility");
  edges_.resize(sim::kNumPeriods);
  // Periods are independent: each builds (and sorts) its own edge list.
  // The global max is reduced in period order afterwards.
  std::vector<double> period_max(sim::kNumPeriods, 0.0);
  exec::CurrentPool().ParallelFor(
      sim::kNumPeriods, /*grain=*/1,
      [&](int64_t period) {
        const int p = static_cast<int>(period);
        for (const auto& [key, pair] : stats.PairsInPeriod(p)) {
          if (pair.transactions < min_transactions) continue;
          MobilityEdge edge;
          edge.src = static_cast<int>(key / num_regions_);
          edge.dst = static_cast<int>(key % num_regions_);
          edge.delivery_minutes = pair.mean_delivery_minutes();
          edge.transactions = pair.transactions;
          period_max[p] = std::max(period_max[p], edge.delivery_minutes);
          edges_[p].push_back(edge);
        }
        // Deterministic ordering (hash-map iteration order is unspecified).
        std::sort(edges_[p].begin(), edges_[p].end(),
                  [](const MobilityEdge& a, const MobilityEdge& b) {
                    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                  });
      },
      "exec.mobility_edges");
  for (double m : period_max) {
    max_delivery_minutes_ = std::max(max_delivery_minutes_, m);
  }
}

size_t MobilityMultiGraph::TotalEdges() const {
  size_t count = 0;
  for (const auto& e : edges_) count += e.size();
  return count;
}

}  // namespace o2sr::graphs
