#ifndef O2SR_GRAPHS_MOBILITY_GRAPH_H_
#define O2SR_GRAPHS_MOBILITY_GRAPH_H_

#include <vector>

#include "features/order_stats.h"
#include "sim/period.h"

namespace o2sr::graphs {

// One directed courier-movement edge: couriers delivered from region `src`
// to region `dst` in the period; the attribute is the mean observed
// delivery time (paper Definition 3).
struct MobilityEdge {
  int src = 0;
  int dst = 0;
  double delivery_minutes = 0.0;
  int transactions = 0;
};

// Courier mobility multi-graph: one edge set per period over the shared
// region node set.
class MobilityMultiGraph {
 public:
  // Builds the multi-graph from order-log aggregations. Edges with fewer
  // than `min_transactions` observations are dropped as noise. Aggregates
  // are the ONLY input, so streamed stats (features::AggregateSpill over
  // the out-of-core shard files) build the identical graph without the raw
  // order log.
  MobilityMultiGraph(const features::OrderStats& stats,
                     int min_transactions = 1);

  int num_regions() const { return num_regions_; }

  const std::vector<MobilityEdge>& EdgesInPeriod(int period) const {
    return edges_[period];
  }
  size_t TotalEdges() const;

  // Maximum delivery time across all edges (for normalization).
  double max_delivery_minutes() const { return max_delivery_minutes_; }

 private:
  int num_regions_;
  double max_delivery_minutes_ = 0.0;
  std::vector<std::vector<MobilityEdge>> edges_;  // [period]
};

}  // namespace o2sr::graphs

#endif  // O2SR_GRAPHS_MOBILITY_GRAPH_H_
