#ifndef O2SR_GRAPHS_GEO_GRAPH_H_
#define O2SR_GRAPHS_GEO_GRAPH_H_

#include <vector>

#include "geo/grid.h"

namespace o2sr::graphs {

// Region geographical graph (paper Definition 2): regions are nodes; two
// regions are connected when their centroid distance is below a threshold
// (800 m by default); the edge attribute is that distance.
class GeoGraph {
 public:
  GeoGraph(const geo::Grid& grid, double threshold_m = 800.0);

  int num_regions() const {
    return static_cast<int>(neighbors_.size());
  }
  double threshold_m() const { return threshold_m_; }

  const std::vector<int>& Neighbors(int region) const {
    return neighbors_[region];
  }
  const std::vector<double>& Distances(int region) const {
    return distances_[region];
  }

  // Total directed edge count.
  size_t NumEdges() const;

 private:
  double threshold_m_;
  std::vector<std::vector<int>> neighbors_;
  std::vector<std::vector<double>> distances_;
};

}  // namespace o2sr::graphs

#endif  // O2SR_GRAPHS_GEO_GRAPH_H_
