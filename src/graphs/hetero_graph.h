#ifndef O2SR_GRAPHS_HETERO_GRAPH_H_
#define O2SR_GRAPHS_HETERO_GRAPH_H_

#include <vector>

#include "features/order_stats.h"
#include "features/region_features.h"
#include "nn/tensor.h"
#include "sim/dataset.h"

namespace o2sr::graphs {

// S-U edge: customer-region `u` lies in the delivery scope of store-region
// `s` during the period. Attributes phi_su,t = [distance, historical
// transactions], both normalized (paper Definition 4).
struct SuEdge {
  int s = 0;  // store-region node index
  int u = 0;  // customer-region node index
  float distance_norm = 0.0f;
  float transactions_norm = 0.0f;
  // Region ids, kept for joining with the courier capacity model.
  int s_region = 0;
  int u_region = 0;
};

// S-A edge: stores of type `a` exist in store-region `s`. Attributes:
// competitiveness, complementarity, historical order count.
struct SaEdge {
  int s = 0;
  int a = 0;
  float competitiveness = 0.0f;
  float complementarity = 0.0f;
  float orders_norm = 0.0f;
};

// U-A edge: customers in `u` ordered type `a` during the period. Attribute:
// transaction count.
struct UaEdge {
  int u = 0;
  int a = 0;
  float transactions_norm = 0.0f;
};

// Edge sets of one period's subgraph G_h^t.
struct HeteroSubgraph {
  std::vector<SuEdge> su_edges;
  std::vector<UaEdge> ua_edges;
};

// Options controlling construction; the defaults implement the paper's
// rule. The ablation variants (w/o Co, w/o CoCu) flip the flags.
struct HeteroGraphOptions {
  // When true (paper), the S-U delivery scope per period comes from the
  // observed farthest/average delivery distances, i.e. it embeds courier
  // capacity. When false (w/o Co), a fixed base radius is used in every
  // period.
  bool capacity_aware_scope = true;
  // Fallback radius used when capacity_aware_scope is false (or a region
  // has no orders in the period).
  double fixed_scope_m = 3000.0;
  // Candidate pairs beyond the average delivery distance keep an edge only
  // if their share of the store-region's orders reaches this ratio.
  double order_ratio_threshold = 0.02;
  // When false (w/o CoCu), S-U and U-A edges are dropped entirely.
  bool include_customer_edges = true;
};

// Region-type heterogeneous multi-graph (paper Definition 4): store-region
// nodes, customer-region nodes and store-type nodes, with S-U/U-A edge sets
// per period and a shared S-A edge set; node attributes are the geographic
// features of §III-C.
class HeteroMultiGraph {
 public:
  // Consumes only the static world of `data` (city, stores, type catalog)
  // plus the region-level aggregates in `stats` — never data.orders. The
  // out-of-core path exploits this: at paper scale, `data` is the
  // orders-free sim::WorldDataset and `stats` comes from
  // features::AggregateSpill streaming the shard files, so the raw order
  // log never materializes in memory.
  HeteroMultiGraph(const sim::Dataset& data,
                   const features::OrderStats& stats,
                   const HeteroGraphOptions& options = {});

  int num_store_nodes() const {
    return static_cast<int>(store_regions_.size());
  }
  int num_customer_nodes() const {
    return static_cast<int>(customer_regions_.size());
  }
  int num_types() const { return num_types_; }

  // Node index <-> region id mappings.
  const std::vector<int>& store_regions() const { return store_regions_; }
  const std::vector<int>& customer_regions() const {
    return customer_regions_;
  }
  int num_regions() const { return static_cast<int>(region_to_s_.size()); }
  // -1 when the region has no node of that view.
  int StoreNodeOfRegion(int region) const { return region_to_s_[region]; }
  int CustomerNodeOfRegion(int region) const { return region_to_u_[region]; }

  const HeteroSubgraph& Subgraph(int period) const {
    return subgraphs_[period];
  }
  const std::vector<SaEdge>& sa_edges() const { return sa_edges_; }

  // Node attribute matrices (f_s, f_u): geographic features per node.
  const nn::Tensor& store_features() const { return store_features_; }
  const nn::Tensor& customer_features() const { return customer_features_; }

  const HeteroGraphOptions& options() const { return options_; }

 private:
  HeteroGraphOptions options_;
  int num_types_;
  std::vector<int> store_regions_;
  std::vector<int> customer_regions_;
  std::vector<int> region_to_s_;
  std::vector<int> region_to_u_;
  std::vector<SaEdge> sa_edges_;
  std::vector<HeteroSubgraph> subgraphs_;
  nn::Tensor store_features_;
  nn::Tensor customer_features_;
};

}  // namespace o2sr::graphs

#endif  // O2SR_GRAPHS_HETERO_GRAPH_H_
