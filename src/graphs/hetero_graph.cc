#include "graphs/hetero_graph.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace o2sr::graphs {

namespace {

// log1p-based normalization of counts into [0, 1].
float CountNorm(double count, double max_count) {
  if (max_count <= 0.0) return 0.0f;
  return static_cast<float>(std::log1p(count) / std::log1p(max_count));
}

}  // namespace

HeteroMultiGraph::HeteroMultiGraph(const sim::Dataset& data,
                                   const features::OrderStats& stats,
                                   const HeteroGraphOptions& options)
    : options_(options), num_types_(data.num_types()) {
  O2SR_TRACE_SCOPE("graphs.hetero");
  const geo::Grid& grid = data.city.grid;
  const int num_regions = grid.NumRegions();

  // ---- Node sets ----------------------------------------------------------
  // Store-regions: regions containing at least one store. Customer-regions:
  // regions whose customers placed at least one order.
  std::vector<bool> has_store(num_regions, false);
  for (const sim::Store& s : data.stores) has_store[s.region] = true;
  // uint8_t, not vector<bool>: parallel writers need one addressable byte
  // per region (vector<bool> packs bits, which would race across regions).
  std::vector<uint8_t> has_customers(num_regions, 0);
  exec::CurrentPool().ParallelFor(
      num_regions, /*grain=*/256,
      [&](int64_t u) {
        for (int p = 0; p < sim::kNumPeriods && !has_customers[u]; ++p) {
          for (int a = 0; a < num_types_ && !has_customers[u]; ++a) {
            if (stats.CustomerOrders(p, static_cast<int>(u), a) > 0.0) {
              has_customers[u] = 1;
            }
          }
        }
      },
      "exec.hetero_nodes");
  region_to_s_.assign(num_regions, -1);
  region_to_u_.assign(num_regions, -1);
  for (int r = 0; r < num_regions; ++r) {
    if (has_store[r]) {
      region_to_s_[r] = static_cast<int>(store_regions_.size());
      store_regions_.push_back(r);
    }
    if (has_customers[r]) {
      region_to_u_[r] = static_cast<int>(customer_regions_.size());
      customer_regions_.push_back(r);
    }
  }

  // ---- Node attributes ----------------------------------------------------
  const nn::Tensor region_features =
      features::RegionFeatureExtractor::Compute(data);
  const int fdim = region_features.cols();
  store_features_ = nn::Tensor(num_store_nodes(), fdim);
  exec::CurrentPool().ParallelFor(num_store_nodes(), /*grain=*/128,
                                  [&](int64_t i) {
                                    const int r = store_regions_[i];
                                    std::copy(region_features.row(r),
                                              region_features.row(r) + fdim,
                                              store_features_.row(i));
                                  },
                                  nullptr, "graphs.store_features");
  customer_features_ = nn::Tensor(num_customer_nodes(), fdim);
  exec::CurrentPool().ParallelFor(num_customer_nodes(), /*grain=*/128,
                                  [&](int64_t i) {
                                    const int r = customer_regions_[i];
                                    std::copy(region_features.row(r),
                                              region_features.row(r) + fdim,
                                              customer_features_.row(i));
                                  },
                                  nullptr, "graphs.customer_features");

  // ---- S-A edges (period-independent) --------------------------------------
  const features::CommercialFeatures commercial(data);
  std::vector<std::vector<int>> stores_per_region_type(num_regions);
  double max_sa_orders = 0.0;
  for (int s = 0; s < num_regions; ++s) {
    for (int a = 0; a < num_types_; ++a) {
      max_sa_orders = std::max(max_sa_orders, stats.OrdersOfTypeInRegion(s, a));
    }
  }
  std::vector<std::vector<bool>> type_in_region(
      num_regions, std::vector<bool>(num_types_, false));
  for (const sim::Store& store : data.stores) {
    type_in_region[store.region][store.type] = true;
  }
  for (int r = 0; r < num_regions; ++r) {
    if (region_to_s_[r] < 0) continue;
    for (int a = 0; a < num_types_; ++a) {
      if (!type_in_region[r][a]) continue;
      SaEdge edge;
      edge.s = region_to_s_[r];
      edge.a = a;
      edge.competitiveness =
          static_cast<float>(commercial.Competitiveness(r, a));
      edge.complementarity =
          static_cast<float>(commercial.Complementarity(r, a));
      edge.orders_norm =
          CountNorm(stats.OrdersOfTypeInRegion(r, a), max_sa_orders);
      sa_edges_.push_back(edge);
    }
  }

  // ---- Per-period S-U and U-A edges ----------------------------------------
  subgraphs_.resize(sim::kNumPeriods);
  if (!options_.include_customer_edges) return;

  const double max_distance_m = options_.fixed_scope_m * 1.5;
  // Each period fills its own HeteroSubgraph; nothing is shared between
  // periods, so the per-period loop parallelizes as-is.
  exec::CurrentPool().ParallelFor(
      sim::kNumPeriods, /*grain=*/1,
      [&](int64_t period) {
    const int p = static_cast<int>(period);
    HeteroSubgraph& sub = subgraphs_[p];

    // Normalizers for this period's attributes.
    double max_su_transactions = 0.0;
    for (const auto& [key, pair] : stats.PairsInPeriod(p)) {
      (void)key;
      max_su_transactions =
          std::max(max_su_transactions,
                   static_cast<double>(pair.transactions));
    }
    double max_ua = 0.0;
    for (int u = 0; u < num_regions; ++u) {
      for (int a = 0; a < num_types_; ++a) {
        max_ua = std::max(max_ua, stats.CustomerOrders(p, u, a));
      }
    }

    // S-U edges, following the paper's construction: shrink candidates to
    // the farthest observed delivery distance, connect everything below the
    // average delivery distance, and keep farther candidates only when
    // their historical order ratio is high enough.
    for (int s_region : store_regions_) {
      const int s_node = region_to_s_[s_region];
      double scope_m = options_.fixed_scope_m;
      double inner_m = options_.fixed_scope_m;
      if (options_.capacity_aware_scope) {
        const double farthest = stats.FarthestDistance(p, s_region);
        if (farthest > 0.0) {
          scope_m = farthest;
          inner_m = std::max(stats.MeanDistance(p, s_region), grid.cell_meters());
        } else {
          // The store region had no orders this period: capacity was too
          // tight for any scope, keep a minimal neighborhood.
          scope_m = grid.cell_meters();
          inner_m = grid.cell_meters();
        }
      }
      scope_m = std::min(scope_m, max_distance_m);
      const double total_orders =
          std::max(stats.TotalStoreRegionOrdersPeriod(p, s_region), 1.0);
      // Candidate regions within scope (plus the region itself).
      std::vector<int> candidates = grid.RegionsWithin(s_region, scope_m);
      candidates.push_back(s_region);
      for (int u_region : candidates) {
        const int u_node = region_to_u_[u_region];
        if (u_node < 0) continue;
        const double dist = grid.Distance(s_region, u_region);
        const features::PairStats* pair = stats.Pair(p, s_region, u_region);
        const double transactions = pair ? pair->transactions : 0.0;
        bool keep = dist <= inner_m;
        if (!keep) {
          // Order-ratio rule for the outer ring.
          keep = transactions / total_orders >= options_.order_ratio_threshold;
        }
        if (!keep) continue;
        SuEdge edge;
        edge.s = s_node;
        edge.u = u_node;
        edge.s_region = s_region;
        edge.u_region = u_region;
        edge.distance_norm = static_cast<float>(
            Clamp(dist / max_distance_m, 0.0, 1.0));
        edge.transactions_norm = CountNorm(transactions, max_su_transactions);
        sub.su_edges.push_back(edge);
      }
    }

    // U-A edges.
    for (int u_region : customer_regions_) {
      const int u_node = region_to_u_[u_region];
      for (int a = 0; a < num_types_; ++a) {
        const double transactions = stats.CustomerOrders(p, u_region, a);
        if (transactions <= 0.0) continue;
        UaEdge edge;
        edge.u = u_node;
        edge.a = a;
        edge.transactions_norm = CountNorm(transactions, max_ua);
        sub.ua_edges.push_back(edge);
      }
    }
  },
      "exec.hetero_periods");
}

}  // namespace o2sr::graphs
