#ifndef O2SR_EVAL_METRICS_H_
#define O2SR_EVAL_METRICS_H_

#include <vector>

namespace o2sr::eval {

// Root mean squared error between aligned prediction/target vectors.
double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets);

// NDCG@k with binary relevance against the ground-truth top-N (the
// Geo-spotting definition the paper uses, §IV-A4): items are the candidate
// regions of one type; an item is relevant iff it ranks in the top-N by
// true order count; DCG rewards relevant items at early predicted
// positions; IDCG is the all-relevant-prefix ideal.
//
// Tie handling (see DESIGN.md §9): both metrics are *permutation-safe* —
// reordering the (prediction, truth) pairs never changes the value.
// Relevance uses an inclusive threshold (truth >= the N-th largest truth,
// so boundary ties are all relevant), and items with tied predictions
// contribute their group's expected value over all within-group orderings
// instead of an arbitrary index tie-break.
double NdcgAtK(const std::vector<double>& predictions,
               const std::vector<double>& truths, int k, int top_n = 30);

// Precision@K (paper Eq. 18): |top-k by prediction  ∩  top-N by truth| / k,
// with the same permutation-safe tie handling as NdcgAtK (the intersection
// is an expected count under tied predictions).
double PrecisionAtK(const std::vector<double>& predictions,
                    const std::vector<double>& truths, int k, int top_n = 30);

}  // namespace o2sr::eval

#endif  // O2SR_EVAL_METRICS_H_
