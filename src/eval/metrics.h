#ifndef O2SR_EVAL_METRICS_H_
#define O2SR_EVAL_METRICS_H_

#include <vector>

namespace o2sr::eval {

// Root mean squared error between aligned prediction/target vectors.
double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets);

// NDCG@k with binary relevance against the ground-truth top-N (the
// Geo-spotting definition the paper uses, §IV-A4): items are the candidate
// regions of one type; an item is relevant iff it ranks in the top-N by
// true order count; DCG rewards relevant items at early predicted
// positions; IDCG is the all-relevant-prefix ideal.
double NdcgAtK(const std::vector<double>& predictions,
               const std::vector<double>& truths, int k, int top_n = 30);

// Precision@K (paper Eq. 18): |top-k by prediction  ∩  top-N by truth| / k.
double PrecisionAtK(const std::vector<double>& predictions,
                    const std::vector<double>& truths, int k, int top_n = 30);

}  // namespace o2sr::eval

#endif  // O2SR_EVAL_METRICS_H_
