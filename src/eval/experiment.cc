#include "eval/experiment.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "eval/metrics.h"
#include "exec/thread_pool.h"
#include "features/order_stats.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace o2sr::eval {

core::InteractionList BuildInteractions(const sim::Dataset& data) {
  const features::OrderStats stats(data);
  core::InteractionList out;
  std::vector<double> max_per_type(data.num_types(), 0.0);
  for (int s = 0; s < stats.num_regions(); ++s) {
    for (int a = 0; a < stats.num_types(); ++a) {
      max_per_type[a] =
          std::max(max_per_type[a], stats.OrdersOfTypeInRegion(s, a));
    }
  }
  for (int s = 0; s < stats.num_regions(); ++s) {
    for (int a = 0; a < stats.num_types(); ++a) {
      const double orders = stats.OrdersOfTypeInRegion(s, a);
      if (orders <= 0.0) continue;
      core::Interaction it;
      it.region = s;
      it.type = a;
      it.orders = orders;
      it.target = orders / max_per_type[a];
      out.push_back(it);
    }
  }
  return out;
}

namespace {

Split SplitWithRng(const sim::Dataset& data,
                   const core::InteractionList& interactions,
                   double train_fraction, Rng& rng) {
  O2SR_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<int> indices(interactions.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<int>(i);
  rng.Shuffle(indices);
  const size_t train_count =
      static_cast<size_t>(interactions.size() * train_fraction);
  Split split;
  std::unordered_set<int64_t> train_keys;
  const int64_t T = data.num_types();
  for (size_t i = 0; i < indices.size(); ++i) {
    const core::Interaction& it = interactions[indices[i]];
    if (i < train_count) {
      split.train.push_back(it);
      train_keys.insert(static_cast<int64_t>(it.region) * T + it.type);
    } else {
      split.test.push_back(it);
    }
  }
  // Orders of held-out (region, type) pairs are the prediction target:
  // models only see the training portion of the log.
  for (const sim::Order& o : data.orders) {
    const int64_t key = static_cast<int64_t>(o.store_region) * T + o.type;
    if (train_keys.count(key) > 0) split.train_orders.push_back(o);
  }
  return split;
}

}  // namespace

Split SplitInteractions(const sim::Dataset& data,
                        const core::InteractionList& interactions,
                        const SplitOptions& options) {
  Rng rng(options.seed);
  return SplitWithRng(data, interactions, options.train_fraction, rng);
}

namespace {

EvalResult EvaluateFiltered(const core::InteractionList& test,
                            const std::vector<double>& predictions,
                            const std::vector<bool>& keep,
                            const EvalOptions& options) {
  O2SR_CHECK_EQ(test.size(), predictions.size());
  O2SR_CHECK_EQ(test.size(), keep.size());
  // Group predictions/truths per type.
  std::map<int, std::vector<double>> preds_by_type;
  std::map<int, std::vector<double>> truth_by_type;
  std::vector<double> all_preds, all_targets;
  for (size_t i = 0; i < test.size(); ++i) {
    if (!keep[i]) continue;
    preds_by_type[test[i].type].push_back(predictions[i]);
    truth_by_type[test[i].type].push_back(test[i].orders);
    all_preds.push_back(predictions[i]);
    all_targets.push_back(test[i].target);
  }
  EvalResult result;
  if (all_preds.empty()) return result;
  result.rmse = Rmse(all_preds, all_targets);
  // Per-type ranking metrics are independent, so each type is scored in
  // parallel into its own slot; partials are then summed in ascending type
  // order (the std::map iteration order), which reproduces the serial
  // accumulation bit for bit.
  struct TypeMetrics {
    std::map<int, double> ndcg;
    std::map<int, double> precision;
    bool evaluated = false;
  };
  std::vector<const std::vector<double>*> type_preds;
  std::vector<const std::vector<double>*> type_truths;
  for (const auto& [type, preds] : preds_by_type) {
    type_preds.push_back(&preds);
    type_truths.push_back(&truth_by_type[type]);
  }
  std::vector<TypeMetrics> partials(type_preds.size());
  exec::CurrentPool().ParallelFor(
      static_cast<int64_t>(type_preds.size()), /*grain=*/1,
      [&](int64_t t) {
        const std::vector<double>& preds = *type_preds[t];
        const std::vector<double>& truths = *type_truths[t];
        const int pool = static_cast<int>(preds.size());
        if (pool < options.min_candidates) return;
        int top_n = options.top_n;
        if (options.adaptive_top_n && pool < 2 * options.top_n) {
          top_n = std::min(options.top_n, std::max(10, pool / 2));
        }
        TypeMetrics& tm = partials[t];
        for (int k : options.ndcg_ks) {
          tm.ndcg[k] = NdcgAtK(preds, truths, k, top_n);
        }
        for (int k : options.precision_ks) {
          tm.precision[k] = PrecisionAtK(preds, truths, k, top_n);
        }
        tm.evaluated = true;
      },
      "exec.eval_types");
  for (const TypeMetrics& tm : partials) {
    if (!tm.evaluated) continue;
    for (const auto& [k, v] : tm.ndcg) result.ndcg[k] += v;
    for (const auto& [k, v] : tm.precision) result.precision[k] += v;
    ++result.types_evaluated;
  }
  if (result.types_evaluated > 0) {
    for (auto& [k, v] : result.ndcg) v /= result.types_evaluated;
    for (auto& [k, v] : result.precision) v /= result.types_evaluated;
  }
  return result;
}

}  // namespace

EvalResult Evaluate(const core::InteractionList& test,
                    const std::vector<double>& predictions,
                    const EvalOptions& options) {
  return EvaluateFiltered(test, predictions,
                          std::vector<bool>(test.size(), true), options);
}

EvalResult EvaluateType(const core::InteractionList& test,
                        const std::vector<double>& predictions, int type,
                        const EvalOptions& options) {
  std::vector<bool> keep(test.size());
  for (size_t i = 0; i < test.size(); ++i) keep[i] = test[i].type == type;
  EvalOptions opts = options;
  opts.min_candidates = 1;
  return EvaluateFiltered(test, predictions, keep, opts);
}

EvalResult EvaluateRegions(const core::InteractionList& test,
                           const std::vector<double>& predictions,
                           const std::vector<bool>& keep_region,
                           const EvalOptions& options) {
  std::vector<bool> keep(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    keep[i] = keep_region[test[i].region];
  }
  EvalOptions opts = options;
  opts.min_candidates = std::min(options.min_candidates, 15);
  return EvaluateFiltered(test, predictions, keep, opts);
}

common::StatusOr<EvalResult> RunOnce(core::SiteRecommender& model,
                                     const sim::Dataset& data,
                                     const Split& split,
                                     const EvalOptions& options,
                                     nn::TrainReport* train_report,
                                     obs::TelemetryStream* telemetry,
                                     exec::ThreadPool* pool) {
  O2SR_TRACE_SCOPE("eval.run_once");
  static obs::Counter* runs_counter =
      obs::MetricsRegistry::Global().GetCounter("eval.runs");
  runs_counter->Increment();

  core::TrainContext ctx;
  ctx.data = &data;
  ctx.visible_orders = &split.train_orders;
  ctx.train = &split.train;
  ctx.pool = pool;
  if (telemetry != nullptr) {
    ctx.hooks.on_event = [telemetry](const obs::TrainEvent& event) {
      telemetry->Append(event);
    };
  }
  nn::TrainReport local_report;
  ctx.report = train_report != nullptr ? train_report : &local_report;
  {
    O2SR_TRACE_SCOPE("eval.train");
    O2SR_RETURN_IF_ERROR(
        model.Train(ctx).WithContext("training " + model.Name()));
  }
  const nn::TrainReport& report = *ctx.report;
  O2SR_LOG(DEBUG) << model.Name() << ": " << report.epochs_run
                  << " epochs, final loss " << report.final_loss << ", "
                  << report.recoveries << " recoveries";
  std::vector<double> predictions;
  {
    O2SR_TRACE_SCOPE("eval.predict");
    // Scoring the test pairs stays on the caller-chosen pool too.
    exec::PoolScope pool_scope(pool != nullptr ? pool
                                               : &exec::CurrentPool());
    O2SR_ASSIGN_OR_RETURN(
        predictions,
        model.Predict(split.test).WithContext("predicting " + model.Name()));
  }
  O2SR_TRACE_SCOPE("eval.evaluate");
  return Evaluate(split.test, predictions, options);
}

}  // namespace o2sr::eval
