#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/math_util.h"

namespace o2sr::eval {

double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets) {
  O2SR_CHECK_EQ(predictions.size(), targets.size());
  O2SR_CHECK(!predictions.empty());
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    sum += d * d;
  }
  return std::sqrt(sum / predictions.size());
}

namespace {

// Indices of the top-N items by truth value (ties broken by index).
std::unordered_set<int> TruthTopN(const std::vector<double>& truths,
                                  int top_n) {
  const std::vector<int> order = ArgsortDescending(truths);
  std::unordered_set<int> top;
  for (int i = 0; i < top_n && i < static_cast<int>(order.size()); ++i) {
    top.insert(order[i]);
  }
  return top;
}

}  // namespace

double NdcgAtK(const std::vector<double>& predictions,
               const std::vector<double>& truths, int k, int top_n) {
  O2SR_CHECK_EQ(predictions.size(), truths.size());
  O2SR_CHECK_GT(k, 0);
  if (predictions.empty()) return 0.0;
  const std::unordered_set<int> relevant = TruthTopN(truths, top_n);
  const std::vector<int> ranked = ArgsortDescending(predictions);
  double dcg = 0.0;
  for (int i = 0; i < k && i < static_cast<int>(ranked.size()); ++i) {
    if (relevant.count(ranked[i]) > 0) {
      dcg += 1.0 / std::log2(i + 2.0);
    }
  }
  double idcg = 0.0;
  const int ideal_hits =
      std::min({k, static_cast<int>(relevant.size()),
                static_cast<int>(ranked.size())});
  for (int i = 0; i < ideal_hits; ++i) idcg += 1.0 / std::log2(i + 2.0);
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double PrecisionAtK(const std::vector<double>& predictions,
                    const std::vector<double>& truths, int k, int top_n) {
  O2SR_CHECK_EQ(predictions.size(), truths.size());
  O2SR_CHECK_GT(k, 0);
  if (predictions.empty()) return 0.0;
  const std::unordered_set<int> relevant = TruthTopN(truths, top_n);
  const std::vector<int> ranked = ArgsortDescending(predictions);
  int hits = 0;
  for (int i = 0; i < k && i < static_cast<int>(ranked.size()); ++i) {
    if (relevant.count(ranked[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / k;
}

}  // namespace o2sr::eval
