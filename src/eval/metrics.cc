#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"
#include "common/math_util.h"

namespace o2sr::eval {

double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets) {
  O2SR_CHECK_EQ(predictions.size(), targets.size());
  O2SR_CHECK(!predictions.empty());
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    sum += d * d;
  }
  return std::sqrt(sum / predictions.size());
}

namespace {

// Relevance by inclusive threshold: an item is relevant iff its truth is
// >= the N-th largest truth value. Unlike "the first N of an argsort",
// this is a pure function of the *multiset* of truths — items tied at the
// boundary are all relevant, so no input permutation can change the
// relevant set (at the price of occasionally |relevant| > N).
std::vector<char> RelevantByThreshold(const std::vector<double>& truths,
                                      int top_n, int* relevant_count) {
  std::vector<double> sorted = truths;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const int n = static_cast<int>(truths.size());
  const double threshold = sorted[std::min(top_n, n) - 1];
  std::vector<char> relevant(truths.size(), 0);
  int count = 0;
  for (size_t i = 0; i < truths.size(); ++i) {
    if (truths[i] >= threshold) {
      relevant[i] = 1;
      ++count;
    }
  }
  *relevant_count = count;
  return relevant;
}

// Expected DCG and expected top-k hit count of the predicted ranking,
// treating every maximal run of prediction-tied items as an unordered
// group: each member is equally likely to occupy each of the group's
// positions, so a group spanning positions [p, p+g) with r relevant
// members contributes (r / g) * discount(q) at each position q — the
// average over all within-group orderings. Tie-broken argsorts would
// instead reward whichever permutation the caller happened to pass.
struct TieFairTopK {
  double dcg = 0.0;
  double hits = 0.0;
};

TieFairTopK ExpectedTopK(const std::vector<double>& predictions,
                         const std::vector<char>& relevant, int k) {
  const std::vector<int> order = ArgsortDescending(predictions);
  TieFairTopK out;
  const int n = static_cast<int>(order.size());
  int p = 0;
  while (p < n && p < k) {
    int g = p + 1;  // end of the tie group starting at p
    while (g < n && predictions[order[g]] == predictions[order[p]]) ++g;
    int group_relevant = 0;
    for (int q = p; q < g; ++q) group_relevant += relevant[order[q]];
    const double density =
        static_cast<double>(group_relevant) / static_cast<double>(g - p);
    for (int q = p; q < g && q < k; ++q) {
      out.dcg += density / std::log2(q + 2.0);
      out.hits += density;
    }
    p = g;
  }
  return out;
}

}  // namespace

double NdcgAtK(const std::vector<double>& predictions,
               const std::vector<double>& truths, int k, int top_n) {
  O2SR_CHECK_EQ(predictions.size(), truths.size());
  O2SR_CHECK_GT(k, 0);
  if (predictions.empty()) return 0.0;
  int relevant_count = 0;
  const std::vector<char> relevant =
      RelevantByThreshold(truths, top_n, &relevant_count);
  const TieFairTopK actual = ExpectedTopK(predictions, relevant, k);
  double idcg = 0.0;
  const int ideal_hits =
      std::min({k, relevant_count, static_cast<int>(predictions.size())});
  for (int i = 0; i < ideal_hits; ++i) idcg += 1.0 / std::log2(i + 2.0);
  return idcg > 0.0 ? actual.dcg / idcg : 0.0;
}

double PrecisionAtK(const std::vector<double>& predictions,
                    const std::vector<double>& truths, int k, int top_n) {
  O2SR_CHECK_EQ(predictions.size(), truths.size());
  O2SR_CHECK_GT(k, 0);
  if (predictions.empty()) return 0.0;
  int relevant_count = 0;
  const std::vector<char> relevant =
      RelevantByThreshold(truths, top_n, &relevant_count);
  return ExpectedTopK(predictions, relevant, k).hits / k;
}

}  // namespace o2sr::eval
