#ifndef O2SR_EVAL_EXPERIMENT_H_
#define O2SR_EVAL_EXPERIMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/interaction.h"
#include "core/recommender.h"
#include "nn/trainer.h"
#include "obs/telemetry.h"
#include "sim/dataset.h"

namespace o2sr::eval {

// Builds the full interaction set from a dataset: one entry per
// (store-region, type) pair with at least one order; `target` is the order
// count normalized by the type's maximum (so predictions and RMSE live in
// [0, 1], matching the paper's reported scale).
core::InteractionList BuildInteractions(const sim::Dataset& data);

// An 80/20 split of interactions plus the order log restricted to training
// interactions (what models may learn from).
struct Split {
  core::InteractionList train;
  core::InteractionList test;
  std::vector<sim::Order> train_orders;
};

// Split parameters. The seed fully determines the shuffle, so two calls
// with the same options produce the same split — callers no longer manage
// an Rng whose state the split consumes.
struct SplitOptions {
  double train_fraction = 0.8;
  uint64_t seed = 0;
};
Split SplitInteractions(const sim::Dataset& data,
                        const core::InteractionList& interactions,
                        const SplitOptions& options);

// Evaluation options (paper §IV-A4: NDCG@{3,5,10}, Precision@{3,5,10} with
// N = 30, plus RMSE).
struct EvalOptions {
  std::vector<int> ndcg_ks = {3, 5, 10};
  std::vector<int> precision_ks = {3, 5, 10};
  int top_n = 30;
  // Types whose test candidate set is smaller than this are skipped for the
  // ranking metrics (their top-N would cover every candidate).
  int min_candidates = 40;
  // When a type's candidate pool is small relative to top_n, shrink the
  // relevant set to max(10, pool/2) so the metric stays discriminative
  // (with pool <= N every candidate is "relevant" and all rankings score
  // 1). The paper's pools are far larger than N = 30, so this only differs
  // from the paper's definition on small pools. See DESIGN.md.
  bool adaptive_top_n = true;
};

// Averaged metrics over store types (ranking) and pairs (RMSE).
struct EvalResult {
  std::map<int, double> ndcg;       // k -> NDCG@k
  std::map<int, double> precision;  // k -> Precision@k
  double rmse = 0.0;
  int types_evaluated = 0;
};

// Scores predictions for the test set: ranking metrics are computed per
// store type over its candidate regions and averaged (paper §IV-A2).
EvalResult Evaluate(const core::InteractionList& test,
                    const std::vector<double>& predictions,
                    const EvalOptions& options = {});

// Per-type evaluation used by Fig. 12-13: metrics for a single store type.
EvalResult EvaluateType(const core::InteractionList& test,
                        const std::vector<double>& predictions, int type,
                        const EvalOptions& options = {});

// Evaluation restricted to regions accepted by `keep_region` (Fig. 14's
// downtown/suburb/average split).
EvalResult EvaluateRegions(const core::InteractionList& test,
                           const std::vector<double>& predictions,
                           const std::vector<bool>& keep_region,
                           const EvalOptions& options = {});

// Runs one train+evaluate round of a recommender on a prepared split.
// Training and prediction failures (untrainable input, exhausted
// numeric-recovery budget, out-of-domain test pairs) propagate as the
// Status; callers that treat them as fatal unwrap with .value(), which
// CHECK-aborts with the message.
//
// When `telemetry` is non-null, the guarded trainer's per-epoch stream
// (epoch loss, grad norm, learning rate, recovery/resume events) is
// appended to it — attach a file with TelemetryStream::OpenFile for JSONL
// output. `train_report` (may be null) receives the run's TrainReport,
// whose `events` field holds the same stream. `pool` (may be null) is
// forwarded as TrainContext::pool so the run's parallel kernels execute on
// a caller-chosen exec::ThreadPool.
common::StatusOr<EvalResult> RunOnce(core::SiteRecommender& model,
                                     const sim::Dataset& data,
                                     const Split& split,
                                     const EvalOptions& options = {},
                                     nn::TrainReport* train_report = nullptr,
                                     obs::TelemetryStream* telemetry = nullptr,
                                     exec::ThreadPool* pool = nullptr);

}  // namespace o2sr::eval

#endif  // O2SR_EVAL_EXPERIMENT_H_
