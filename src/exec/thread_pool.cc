#include "exec/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "common/check.h"
#include "obs/env.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace o2sr::exec {

namespace {

// Pool whose worker the current thread is (nullptr on non-worker threads).
thread_local const ThreadPool* tls_worker_pool = nullptr;
// Pool whose dispatched region this (caller) thread is currently executing
// chunks of. A nested region issued from inside a chunk body must run
// inline — re-entering RunChunks would overwrite the active region state
// under the workers. InWorker() covers worker threads; this covers the
// calling thread, which participates in every region.
thread_local const ThreadPool* tls_region_caller_pool = nullptr;
// Innermost PoolScope override for the current thread.
thread_local ThreadPool* tls_current_pool = nullptr;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int NumThreadsFromEnv() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(std::min(hw, 256u));
  // 0 means "auto" (hardware concurrency), so the range opens at 0 and the
  // sentinel maps to the fallback instead of being clamped to one thread.
  const int64_t value = obs::EnvInt("O2SR_THREADS", fallback, 0, 256);
  return value == 0 ? fallback : static_cast<int>(value);
}

ThreadPool::ThreadPool(int num_threads, const std::string& metrics_prefix)
    : num_threads_(std::max(1, num_threads)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  threads_gauge_ = registry.GetGauge(metrics_prefix + ".threads");
  regions_counter_ = registry.GetCounter(metrics_prefix + ".regions");
  tasks_counter_ = registry.GetCounter(metrics_prefix + ".tasks");
  inline_regions_counter_ =
      registry.GetCounter(metrics_prefix + ".inline_regions");
  queue_depth_gauge_ = registry.GetGauge(metrics_prefix + ".queue_depth");
  utilization_gauge_ =
      registry.GetGauge(metrics_prefix + ".worker_utilization");
  // The calling thread participates in every region, so num_threads - 1
  // workers saturate `num_threads` lanes.
  const int worker_count = num_threads_ - 1;
  threads_gauge_->Set(worker_count);
  lane_busy_us_.assign(static_cast<size_t>(num_threads_), 0);
  workers_.reserve(worker_count);
  for (int w = 0; w < worker_count; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked deliberately: worker threads must not be joined during static
  // destruction (they may hold locks on other leaked singletons).
  static ThreadPool* pool = new ThreadPool(NumThreadsFromEnv());
  return *pool;
}

bool ThreadPool::InWorker() const { return tls_worker_pool == this; }

void ThreadPool::RunInline(int64_t n, int64_t grain,
                           const std::function<void(int64_t, int64_t)>& fn) {
  for (int64_t begin = 0; begin < n; begin += grain) {
    fn(begin, std::min(n, begin + grain));
  }
}

void ThreadPool::RunChunks(int64_t n, int64_t grain,
                           const std::function<void(int64_t, int64_t)>& fn,
                           const char* trace_name,
                           const char* profile_name) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;

  // Regions issued by the owning thread of an open Session skip the
  // mutex/condvar handshake and publish through the session's lock-free
  // task slot. Identical chunking, so identical results.
  if (session_active_.load(std::memory_order_acquire) &&
      session_owner_ == std::this_thread::get_id() && !InWorker() &&
      tls_region_caller_pool != this) {
    SessionRunChunks(n, grain, fn, trace_name, profile_name);
    return;
  }

  const int64_t chunks = NumChunks(n, grain);
  regions_counter_->Increment();
  tasks_counter_->Increment(static_cast<uint64_t>(chunks));

  // The profiler names a region by its trace name when it has one, else by
  // the kernel's profile name.
  const char* region_name = trace_name != nullptr ? trace_name : profile_name;

  // A span only for named (coarse) regions; fine-grained kernel regions
  // pass nullptr to stay off the trace recorder's hot path.
  std::unique_ptr<obs::ScopedTrace> span;
  if (trace_name != nullptr) {
    span = std::make_unique<obs::ScopedTrace>(trace_name);
  }

  // Single-lane pools, single-chunk regions, and regions issued from one of
  // our own workers (nested parallelism) run inline with the identical
  // chunking.
  if (workers_.empty() || chunks <= 1 || InWorker() ||
      tls_region_caller_pool == this) {
    inline_regions_counter_->Increment();
    {
      obs::Profiler& profiler = obs::Profiler::Global();
      if (profiler.enabled()) {
        profiler.RecordInlineRegion(region_name, n, chunks);
      }
    }
    RunInline(n, grain, fn);
    return;
  }

  const int64_t start_us = NowMicros();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_fn_ = &fn;
    region_n_ = n;
    region_grain_ = grain;
    region_chunks_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_chunks_.store(chunks, std::memory_order_relaxed);
    busy_us_.store(0, std::memory_order_relaxed);
    std::fill(lane_busy_us_.begin(), lane_busy_us_.end(), 0);
    ++region_epoch_;
  }
  queue_depth_gauge_->Set(static_cast<double>(chunks));
  work_cv_.notify_all();

  {
    const ThreadPool* previous = tls_region_caller_pool;
    tls_region_caller_pool = this;
    const int64_t caller_busy = WorkChunks(fn, n, grain, chunks);
    tls_region_caller_pool = previous;
    busy_us_.fetch_add(caller_busy, std::memory_order_relaxed);
    lane_busy_us_[0] = caller_busy;
  }

  {
    // Wait until every chunk ran AND every worker left the region: a
    // straggler that woke late must not observe the next region's cursor
    // with this region's function pointer.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return pending_chunks_.load(std::memory_order_acquire) == 0 &&
             active_workers_ == 0;
    });
    region_fn_ = nullptr;
  }
  const int64_t wall_us = std::max<int64_t>(1, NowMicros() - start_us);
  utilization_gauge_->Set(
      static_cast<double>(busy_us_.load(std::memory_order_relaxed)) /
      (static_cast<double>(wall_us) * num_threads_));
  queue_depth_gauge_->Set(0.0);
  {
    // The completion handshake above ordered every worker's lane write
    // before this read.
    obs::Profiler& profiler = obs::Profiler::Global();
    if (profiler.enabled()) {
      profiler.RecordDispatchedRegion(region_name, n, chunks, wall_us,
                                      lane_busy_us_.data(), num_threads_);
    }
  }
}

void ThreadPool::SessionRunChunks(
    int64_t n, int64_t grain, const std::function<void(int64_t, int64_t)>& fn,
    const char* trace_name, const char* profile_name) {
  const int64_t chunks = NumChunks(n, grain);
  const char* region_name = trace_name != nullptr ? trace_name : profile_name;
  regions_counter_->Increment();
  tasks_counter_->Increment(static_cast<uint64_t>(chunks));
  if (chunks <= 1) {
    inline_regions_counter_->Increment();
    obs::Profiler& profiler = obs::Profiler::Global();
    if (profiler.enabled()) {
      profiler.RecordInlineRegion(region_name, n, chunks);
    }
    RunInline(n, grain, fn);
    return;
  }

  const int64_t start_us = NowMicros();
  // Publish the task. Stragglers from the previous task were drained by its
  // completion wait, so the plain/relaxed state writes below cannot race
  // with a worker snapshot: any worker that reads them while we write also
  // fails its seq recheck and discards the snapshot.
  next_chunk_.store(0, std::memory_order_relaxed);
  pending_chunks_.store(chunks, std::memory_order_relaxed);
  std::fill(lane_busy_us_.begin(), lane_busy_us_.end(), 0);
  session_n_.store(n, std::memory_order_relaxed);
  session_grain_.store(grain, std::memory_order_relaxed);
  session_chunks_.store(chunks, std::memory_order_relaxed);
  session_fn_.store(&fn, std::memory_order_relaxed);
  // Open bump: odd seq values mark an open task.
  session_seq_.fetch_add(1, std::memory_order_seq_cst);

  {
    const ThreadPool* previous = tls_region_caller_pool;
    tls_region_caller_pool = this;
    const int64_t caller_busy = WorkChunks(fn, n, grain, chunks);
    tls_region_caller_pool = previous;
    lane_busy_us_[0] = caller_busy;
  }
  // Wait until every chunk ran, close the task, then drain stragglers: a
  // worker that joined before the close bump claims nothing (the cursor is
  // exhausted) but must leave before the next task may reset the cursor.
  while (pending_chunks_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  session_seq_.fetch_add(1, std::memory_order_seq_cst);
  while (session_workers_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  session_fn_.store(nullptr, std::memory_order_relaxed);

  const int64_t wall_us = std::max<int64_t>(1, NowMicros() - start_us);
  int64_t busy = 0;
  for (int64_t lane : lane_busy_us_) busy += lane;
  utilization_gauge_->Set(static_cast<double>(busy) /
                          (static_cast<double>(wall_us) * num_threads_));
  obs::Profiler& profiler = obs::Profiler::Global();
  if (profiler.enabled()) {
    profiler.RecordDispatchedRegion(region_name, n, chunks, wall_us,
                                    lane_busy_us_.data(), num_threads_);
  }
}

void ThreadPool::SessionWorkerLoop(int lane) {
  uint64_t seen = session_seq_.load(std::memory_order_acquire);
  if ((seen & 1) != 0) --seen;  // a task already open: join it below
  while (session_active_.load(std::memory_order_acquire)) {
    const uint64_t seq = session_seq_.load(std::memory_order_acquire);
    if (seq == seen || (seq & 1) == 0) {
      std::this_thread::yield();
      continue;
    }
    // Seqlock snapshot of the open task.
    const std::function<void(int64_t, int64_t)>* fn =
        session_fn_.load(std::memory_order_acquire);
    const int64_t n = session_n_.load(std::memory_order_relaxed);
    const int64_t grain = session_grain_.load(std::memory_order_relaxed);
    const int64_t chunks = session_chunks_.load(std::memory_order_relaxed);
    if (session_seq_.load(std::memory_order_acquire) != seq ||
        fn == nullptr) {
      continue;
    }
    // Join the task; the recheck after the increment pairs with the owner's
    // close-bump + drain so a late joiner can never overlap the next task's
    // cursor reset.
    session_workers_.fetch_add(1, std::memory_order_seq_cst);
    if (session_seq_.load(std::memory_order_seq_cst) != seq) {
      session_workers_.fetch_sub(1, std::memory_order_seq_cst);
      continue;
    }
    seen = seq;
    const int64_t busy = WorkChunks(*fn, n, grain, chunks);
    lane_busy_us_[static_cast<size_t>(lane)] += busy;
    busy_us_.fetch_add(busy, std::memory_order_relaxed);
    session_workers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

Session::Session(ThreadPool& pool, const char* trace_name) : pool_(pool) {
  if (trace_name != nullptr) {
    span_ = new obs::ScopedTrace(trace_name);
  }
  if (pool.workers_.empty() || pool.InWorker() ||
      tls_region_caller_pool == &pool) {
    return;
  }
  std::lock_guard<std::mutex> lock(pool.mutex_);
  if (pool.session_active_.load(std::memory_order_relaxed)) return;
  pool.session_owner_ = std::this_thread::get_id();
  pool.session_fn_.store(nullptr, std::memory_order_relaxed);
  pool.session_workers_.store(0, std::memory_order_relaxed);
  pool.session_active_.store(true, std::memory_order_release);
  engaged_ = true;
  pool.work_cv_.notify_all();
}

Session::~Session() {
  if (engaged_) {
    // No task is in flight (Run waits for completion), so closing is just
    // flipping the flag; workers fall back to the condvar wait.
    pool_.session_active_.store(false, std::memory_order_release);
  }
  delete static_cast<obs::ScopedTrace*>(span_);
}

int64_t ThreadPool::WorkChunks(const std::function<void(int64_t, int64_t)>& fn,
                               int64_t n, int64_t grain, int64_t num_chunks) {
  const int64_t started_us = NowMicros();
  while (true) {
    const int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks) break;
    const int64_t begin = chunk * grain;
    fn(begin, std::min(n, begin + grain));
    if (pending_chunks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk of the region: wake the caller. Locking the mutex before
      // notifying pairs with the caller's predicate check.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
  return NowMicros() - started_us;
}

void ThreadPool::WorkerLoop(int lane) {
  tls_worker_pool = this;
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t n = 0, grain = 1, chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || session_active_.load(std::memory_order_relaxed) ||
               (region_fn_ != nullptr && region_epoch_ != seen_epoch &&
                next_chunk_.load(std::memory_order_relaxed) < region_chunks_);
      });
      if (stop_) return;
      if (session_active_.load(std::memory_order_relaxed)) {
        lock.unlock();
        SessionWorkerLoop(lane);
        continue;
      }
      seen_epoch = region_epoch_;
      fn = region_fn_;
      n = region_n_;
      grain = region_grain_;
      chunks = region_chunks_;
      ++active_workers_;
    }
    const int64_t busy = WorkChunks(*fn, n, grain, chunks);
    busy_us_.fetch_add(busy, std::memory_order_relaxed);
    lane_busy_us_[static_cast<size_t>(lane)] = busy;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0 &&
          pending_chunks_.load(std::memory_order_acquire) == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

ThreadPool& CurrentPool() {
  return tls_current_pool != nullptr ? *tls_current_pool
                                     : ThreadPool::Global();
}

PoolScope::PoolScope(ThreadPool* pool) : previous_(tls_current_pool) {
  O2SR_CHECK(pool != nullptr);
  tls_current_pool = pool;
}

PoolScope::~PoolScope() { tls_current_pool = previous_; }

}  // namespace o2sr::exec
