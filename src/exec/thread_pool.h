#ifndef O2SR_EXEC_THREAD_POOL_H_
#define O2SR_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace o2sr::obs {
class Counter;
class Gauge;
}  // namespace o2sr::obs

namespace o2sr::exec {

// Deterministic fork-join execution layer.
//
// A ThreadPool owns a fixed set of worker threads and runs one parallel
// region at a time. A region partitions an index range [0, n) into
// fixed-size chunks of `grain` elements; workers (plus the calling thread)
// claim chunks from a single atomic cursor — there is no work stealing and
// no per-worker queue, so the partition is a pure function of (n, grain).
//
// Determinism contract (see DESIGN.md §8): which *thread* runs a chunk is
// racy, but chunk boundaries, the state each chunk writes, and the order of
// any cross-chunk reduction are fixed. Kernels built on this layer are
// bit-identical to their single-threaded execution at every thread count:
//  * ParallelFor bodies write disjoint output slots indexed by the loop
//    variable, so thread assignment cannot be observed;
//  * ParallelReduce evaluates one partial per chunk and folds the partials
//    left-to-right on the calling thread. The chunking (not the thread
//    count) defines the floating-point association, and the same chunking
//    is used even when the region runs inline on one thread.
//
// Nested regions run inline: a ParallelFor issued from a worker thread of
// the same pool executes serially on that worker (chunked identically), so
// coarse-grained parallelism (e.g. bench seed replication) composes with
// the parallel kernels underneath without deadlock or oversubscription.
//
// Observability: each pool owns a small instrument set under its metrics
// prefix (default "exec.pool"):
//   <prefix>.threads            gauge   worker count (excludes the caller)
//   <prefix>.regions            counter parallel regions executed
//   <prefix>.tasks              counter chunks executed
//   <prefix>.inline_regions     counter regions that ran inline (serial)
//   <prefix>.queue_depth        gauge   chunks enqueued by the last region
//   <prefix>.worker_utilization gauge   busy-time fraction of the last
//                                       dispatched region, over all
//                                       participants (workers + caller)
// Regions may also carry a trace span: pass `trace_name` and the region
// shows up in O2SR_TRACE_FILE exports and BENCH stages_ms. Fine-grained
// kernels (per-matmul regions) pass nullptr — a span per matmul would
// flood the recorder — and identify themselves to the profiler with
// `profile_name` instead, which names the region in O2SR_PROFILE_FILE
// reports without creating a trace span. Every kernel in the tree passes
// one; an unnamed region would aggregate under "(kernel)" and ci.sh
// asserts no such row exists.

// Worker count for the process-wide pool: O2SR_THREADS when set to a
// positive integer, otherwise std::thread::hardware_concurrency(), floored
// at 1 and capped at 256. O2SR_THREADS=0 explicitly means "auto"
// (hardware concurrency), not a one-thread clamp.
int NumThreadsFromEnv();

class ThreadPool {
 public:
  // `num_threads` is the total parallelism of a region (the calling thread
  // participates, so num_threads == 1 spawns no workers and every region
  // runs inline).
  explicit ThreadPool(int num_threads,
                      const std::string& metrics_prefix = "exec.pool");
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // The process-wide pool, sized by NumThreadsFromEnv() on first use.
  static ThreadPool& Global();

  // Number of grain-sized chunks covering [0, n).
  static int64_t NumChunks(int64_t n, int64_t grain) {
    if (n <= 0) return 0;
    if (grain < 1) grain = 1;
    return (n + grain - 1) / grain;
  }

  // Runs chunk_fn(begin, end) over every grain-sized chunk of [0, n).
  // Blocks until the region completes. Chunks are claimed dynamically but
  // their boundaries are fixed; the body must only write state that is
  // disjoint across chunks. `profile_name` names the region in profiler
  // reports when `trace_name` is null (kernels pass a profile name, coarse
  // stages pass a trace name).
  void RunChunks(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& chunk_fn,
                 const char* trace_name = nullptr,
                 const char* profile_name = nullptr);

  // Elementwise loop: fn(i) for every i in [0, n).
  template <typename Fn>
  void ParallelFor(int64_t n, int64_t grain, Fn&& fn,
                   const char* trace_name = nullptr,
                   const char* profile_name = nullptr) {
    RunChunks(
        n, grain,
        [&fn](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) fn(i);
        },
        trace_name, profile_name);
  }

  // Ordered reduction: chunk_fn(begin, end) produces one partial per chunk;
  // the partials are folded left-to-right (chunk order) on the calling
  // thread with reduce_fn(accumulator, partial). Because the chunking
  // depends only on (n, grain), the result is bit-identical at any thread
  // count — but it is NOT the same association as one straight-line loop,
  // so call sites must use ParallelReduce for *every* execution, including
  // the nominally serial one.
  template <typename T, typename ChunkFn, typename ReduceFn>
  T ParallelReduce(int64_t n, int64_t grain, T init, ChunkFn&& chunk_fn,
                   ReduceFn&& reduce_fn, const char* trace_name = nullptr,
                   const char* profile_name = nullptr) {
    const int64_t chunks = NumChunks(n, grain);
    if (chunks == 0) return init;
    if (grain < 1) grain = 1;
    std::vector<T> partials(static_cast<size_t>(chunks));
    RunChunks(
        n, grain,
        [&](int64_t begin, int64_t end) {
          partials[static_cast<size_t>(begin / grain)] = chunk_fn(begin, end);
        },
        trace_name, profile_name);
    T acc = std::move(init);
    for (T& partial : partials) acc = reduce_fn(std::move(acc), partial);
    return acc;
  }

  // True when the calling thread is one of this pool's workers (such calls
  // run regions inline).
  bool InWorker() const;

 private:
  friend class Session;
  // `lane` is the worker's slot in the per-region busy accounting: the
  // calling thread is lane 0, workers are 1..num_threads-1.
  void WorkerLoop(int lane);
  // Spin-then-yield loop a worker runs while a Session is open; returns
  // when the session closes.
  void SessionWorkerLoop(int lane);
  // RunChunks body for the session fast path (no mutex/condvar handshake).
  void SessionRunChunks(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn,
                        const char* trace_name, const char* profile_name);
  // Claims and runs chunks of the active region; returns busy microseconds.
  int64_t WorkChunks(const std::function<void(int64_t, int64_t)>& fn,
                     int64_t n, int64_t grain, int64_t num_chunks);
  void RunInline(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

  const int num_threads_;
  obs::Gauge* threads_gauge_;
  obs::Counter* regions_counter_;
  obs::Counter* tasks_counter_;
  obs::Counter* inline_regions_counter_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* utilization_gauge_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a region
  std::condition_variable done_cv_;  // the caller waits for completion
  bool stop_ = false;

  // The active region (one at a time; guarded by mutex_ except the atomics).
  const std::function<void(int64_t, int64_t)>* region_fn_ = nullptr;
  int64_t region_n_ = 0;
  int64_t region_grain_ = 1;
  int64_t region_chunks_ = 0;
  std::atomic<int64_t> next_chunk_{0};
  std::atomic<int64_t> pending_chunks_{0};
  std::atomic<int64_t> busy_us_{0};
  uint64_t region_epoch_ = 0;
  int active_workers_ = 0;  // workers currently inside the region
  // Per-lane busy time of the active region, for the profiler's busy/idle
  // attribution. Lane 0 is the caller. Each slot is written by exactly one
  // thread per region; the region's completion handshake (mutex + done_cv)
  // orders those writes before the caller reads them.
  std::vector<int64_t> lane_busy_us_;

  // Persistent-session state (see Session below). While a session is open,
  // workers spin in SessionWorkerLoop instead of sleeping on work_cv_, and
  // regions issued by the owning thread publish tasks through these fields
  // with a seqlock instead of the mutex/condvar handshake. All plain fields
  // are written by the owner thread only, between tasks; workers validate
  // their snapshot against session_seq_ before executing.
  std::atomic<bool> session_active_{false};
  std::atomic<uint64_t> session_seq_{0};
  std::thread::id session_owner_{};
  std::atomic<const std::function<void(int64_t, int64_t)>*> session_fn_{
      nullptr};
  std::atomic<int64_t> session_n_{0};
  std::atomic<int64_t> session_grain_{1};
  std::atomic<int64_t> session_chunks_{0};
  std::atomic<int64_t> session_workers_{0};  // workers inside the task

  std::vector<std::thread> workers_;
};

// Persistent parallel region ("one parallel region per step").
//
// Opening a Session moves the pool's workers from the sleeping
// condvar-wait into a spin-then-yield loop for the session's lifetime, so
// a sequence of many small regions issued by the owning thread (a compiled
// nn::Plan step, for example) pays one wake-up for the whole step instead
// of a mutex/condvar fork-join per op. While the session is open, every
// RunChunks/ParallelFor/ParallelReduce issued *by the owning thread* is
// routed through the session's lock-free task queue automatically; regions
// issued by other threads run inline (the workers are dedicated to the
// session). Chunk boundaries and reduction order are identical to the
// non-session path, so results stay bit-identical — the session changes
// only how chunks reach the workers, never what the chunks are.
//
// Sessions do not nest: opening a session inside a session, from a worker,
// or from inside a running region is a no-op (regions keep their normal
// inline behavior there).
class Session {
 public:
  Session(ThreadPool& pool, const char* trace_name);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool engaged() const { return engaged_; }

 private:
  ThreadPool& pool_;
  bool engaged_ = false;
  void* span_ = nullptr;  // owned obs::ScopedTrace when trace_name given
};

// The pool the parallel kernels dispatch to: the innermost PoolScope on the
// calling thread, or ThreadPool::Global() when none is installed.
ThreadPool& CurrentPool();

// RAII thread-local pool override. Installing a scope routes every kernel
// on this thread (tensor ops, graph builds, eval scoring) to `pool` —
// this is how TrainContext::pool reaches the kernels without threading a
// pool pointer through every call signature.
class PoolScope {
 public:
  explicit PoolScope(ThreadPool* pool);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace o2sr::exec

#endif  // O2SR_EXEC_THREAD_POOL_H_
