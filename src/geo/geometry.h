#ifndef O2SR_GEO_GEOMETRY_H_
#define O2SR_GEO_GEOMETRY_H_

#include <cmath>

namespace o2sr::geo {

// WGS-84 coordinate. Orders in the (synthetic) platform data carry lat/lng,
// mirroring Table I of the paper.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;
};

// Planar point in meters, relative to the city's south-west corner. The
// simulator and all graph computations work in this frame; LatLng is only
// used at the data-record boundary.
struct Point {
  double x = 0.0;  // east, meters
  double y = 0.0;  // north, meters
};

// Great-circle distance in meters.
double HaversineMeters(const LatLng& a, const LatLng& b);

// Euclidean distance in meters.
inline double EuclideanMeters(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Anchors a planar city frame at a reference LatLng (e.g. Shanghai's
// south-west corner) and converts between frames using a local equirect-
// angular approximation, which is accurate to <0.1% at city scale.
class CityFrame {
 public:
  explicit CityFrame(LatLng origin = {31.10, 121.30}) : origin_(origin) {}

  LatLng ToLatLng(const Point& p) const;
  Point ToPoint(const LatLng& ll) const;

  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
};

}  // namespace o2sr::geo

#endif  // O2SR_GEO_GEOMETRY_H_
