#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace o2sr::geo {

Grid::Grid(double width_meters, double height_meters, double cell_meters)
    : width_(width_meters), height_(height_meters), cell_meters_(cell_meters) {
  O2SR_CHECK_GT(width_meters, 0.0);
  O2SR_CHECK_GT(height_meters, 0.0);
  O2SR_CHECK_GT(cell_meters, 0.0);
  cols_ = static_cast<int>(std::ceil(width_meters / cell_meters));
  rows_ = static_cast<int>(std::ceil(height_meters / cell_meters));
  O2SR_CHECK_GT(cols_, 0);
  O2SR_CHECK_GT(rows_, 0);
}

RegionId Grid::RegionOf(const Point& p) const {
  int col = static_cast<int>(std::floor(p.x / cell_meters_));
  int row = static_cast<int>(std::floor(p.y / cell_meters_));
  col = std::clamp(col, 0, cols_ - 1);
  row = std::clamp(row, 0, rows_ - 1);
  return row * cols_ + col;
}

Point Grid::Center(RegionId r) const {
  O2SR_CHECK(Valid(r));
  const int row = r / cols_;
  const int col = r % cols_;
  return {(col + 0.5) * cell_meters_, (row + 0.5) * cell_meters_};
}

std::vector<RegionId> Grid::RegionsWithin(RegionId r,
                                          double radius_meters) const {
  O2SR_CHECK(Valid(r));
  std::vector<RegionId> out;
  const int row = RowOf(r);
  const int col = ColOf(r);
  const int span = static_cast<int>(std::ceil(radius_meters / cell_meters_));
  const Point c = Center(r);
  for (int dr = -span; dr <= span; ++dr) {
    const int rr = row + dr;
    if (rr < 0 || rr >= rows_) continue;
    for (int dc = -span; dc <= span; ++dc) {
      const int cc = col + dc;
      if (cc < 0 || cc >= cols_) continue;
      const RegionId other = rr * cols_ + cc;
      if (other == r) continue;
      if (EuclideanMeters(c, Center(other)) <= radius_meters) {
        out.push_back(other);
      }
    }
  }
  return out;
}

double Grid::CenterDistanceNorm(RegionId r) const {
  O2SR_CHECK(Valid(r));
  const Point city_center = {width_ / 2.0, height_ / 2.0};
  const double max_dist =
      EuclideanMeters({0.0, 0.0}, city_center);  // corner to center
  if (max_dist <= 0.0) return 0.0;
  return EuclideanMeters(Center(r), city_center) / max_dist;
}

}  // namespace o2sr::geo
