#include "geo/poi.h"

#include "common/check.h"

namespace o2sr::geo {

const char* PoiCategoryName(PoiCategory category) {
  switch (category) {
    case PoiCategory::kResidential: return "residential";
    case PoiCategory::kOffice: return "office";
    case PoiCategory::kSchool: return "school";
    case PoiCategory::kHospital: return "hospital";
    case PoiCategory::kMall: return "mall";
    case PoiCategory::kTransitStation: return "transit_station";
    case PoiCategory::kPark: return "park";
    case PoiCategory::kHotel: return "hotel";
    case PoiCategory::kRestaurant: return "restaurant";
    case PoiCategory::kEntertainment: return "entertainment";
    case PoiCategory::kFactory: return "factory";
    case PoiCategory::kGovernment: return "government";
  }
  O2SR_CHECK(false);
  return "";
}

std::vector<std::vector<double>> CountPoisPerRegion(
    const std::vector<Poi>& pois, const Grid& grid) {
  std::vector<std::vector<double>> counts(
      grid.NumRegions(), std::vector<double>(kNumPoiCategories, 0.0));
  for (const Poi& poi : pois) {
    const RegionId r = grid.RegionOf(poi.location);
    counts[r][static_cast<int>(poi.category)] += 1.0;
  }
  return counts;
}

}  // namespace o2sr::geo
