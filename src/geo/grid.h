#ifndef O2SR_GEO_GRID_H_
#define O2SR_GEO_GRID_H_

#include <vector>

#include "common/check.h"
#include "geo/geometry.h"

namespace o2sr::geo {

// A region index; regions are cells of the city grid (paper Definition 1).
using RegionId = int;

// Partition of the city into xi-by-xi meter cells (paper: xi = 500 m).
// Region ids are row-major: id = row * cols + col.
class Grid {
 public:
  Grid(double width_meters, double height_meters, double cell_meters);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int NumRegions() const { return rows_ * cols_; }
  double cell_meters() const { return cell_meters_; }
  double width_meters() const { return width_; }
  double height_meters() const { return height_; }

  // Region containing `p`; points outside the city are clamped to the
  // nearest border cell.
  RegionId RegionOf(const Point& p) const;

  // Center of the region.
  Point Center(RegionId r) const;

  int RowOf(RegionId r) const {
    O2SR_CHECK(Valid(r));
    return r / cols_;
  }
  int ColOf(RegionId r) const {
    O2SR_CHECK(Valid(r));
    return r % cols_;
  }
  bool Valid(RegionId r) const { return r >= 0 && r < NumRegions(); }

  // Centroid distance between regions, meters.
  double Distance(RegionId a, RegionId b) const {
    return EuclideanMeters(Center(a), Center(b));
  }

  // All regions whose centroid is within `radius_meters` of region `r`'s
  // centroid (excluding r itself).
  std::vector<RegionId> RegionsWithin(RegionId r, double radius_meters) const;

  // Normalized [0,1] distance of region `r` from the city center: 0 at the
  // center, 1 at the far corner. Used for downtown/suburb classification.
  double CenterDistanceNorm(RegionId r) const;

 private:
  double width_;
  double height_;
  double cell_meters_;
  int rows_;
  int cols_;
};

}  // namespace o2sr::geo

#endif  // O2SR_GEO_GRID_H_
