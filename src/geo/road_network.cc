#include "geo/road_network.h"

#include "common/check.h"

namespace o2sr::geo {

std::vector<RegionTraffic> CountTrafficPerRegion(const RoadNetwork& network,
                                                 const Grid& grid) {
  std::vector<RegionTraffic> out(grid.NumRegions());
  for (const Point& p : network.intersections) {
    ++out[grid.RegionOf(p)].num_intersections;
  }
  for (const auto& [a, b] : network.roads) {
    O2SR_CHECK(a >= 0 &&
               a < static_cast<int>(network.intersections.size()));
    O2SR_CHECK(b >= 0 &&
               b < static_cast<int>(network.intersections.size()));
    const Point& pa = network.intersections[a];
    const Point& pb = network.intersections[b];
    const Point mid = {(pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0};
    ++out[grid.RegionOf(mid)].num_roads;
  }
  return out;
}

}  // namespace o2sr::geo
