#ifndef O2SR_GEO_POI_H_
#define O2SR_GEO_POI_H_

#include <string>
#include <vector>

#include "geo/geometry.h"
#include "geo/grid.h"

namespace o2sr::geo {

// Point-of-interest categories. The paper uses Gaode map POIs; we use a
// fixed taxonomy of 12 categories whose per-region densities the city
// generator derives from the urban gradient.
enum class PoiCategory : int {
  kResidential = 0,
  kOffice,
  kSchool,
  kHospital,
  kMall,
  kTransitStation,
  kPark,
  kHotel,
  kRestaurant,
  kEntertainment,
  kFactory,
  kGovernment,
};

inline constexpr int kNumPoiCategories = 12;

// Human-readable category name (for reports and examples).
const char* PoiCategoryName(PoiCategory category);

// A single POI.
struct Poi {
  PoiCategory category = PoiCategory::kResidential;
  Point location;
};

// Counts POIs of each category per region: result[region][category].
std::vector<std::vector<double>> CountPoisPerRegion(
    const std::vector<Poi>& pois, const Grid& grid);

}  // namespace o2sr::geo

#endif  // O2SR_GEO_POI_H_
