#ifndef O2SR_GEO_ROAD_NETWORK_H_
#define O2SR_GEO_ROAD_NETWORK_H_

#include <utility>
#include <vector>

#include "geo/geometry.h"
#include "geo/grid.h"

namespace o2sr::geo {

// A city road network: intersections (nodes) and road segments (edges).
// Substitutes for the OpenStreetMap extract the paper uses; only per-region
// intersection/road counts (the "traffic convenience" feature) are consumed
// downstream.
struct RoadNetwork {
  std::vector<Point> intersections;
  // Road segments as (intersection index, intersection index).
  std::vector<std::pair<int, int>> roads;
};

// Per-region traffic statistics used by the feature extractor.
struct RegionTraffic {
  int num_intersections = 0;
  int num_roads = 0;  // segments whose midpoint falls in the region
};

// Aggregates the network into per-region counts.
std::vector<RegionTraffic> CountTrafficPerRegion(const RoadNetwork& network,
                                                 const Grid& grid);

}  // namespace o2sr::geo

#endif  // O2SR_GEO_ROAD_NETWORK_H_
