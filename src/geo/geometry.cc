#include "geo/geometry.h"

namespace o2sr::geo {

namespace {
constexpr double kEarthRadiusMeters = 6371000.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

double HaversineMeters(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                       std::sin(dlng / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

LatLng CityFrame::ToLatLng(const Point& p) const {
  const double lat = origin_.lat + p.y / kEarthRadiusMeters / kDegToRad;
  const double lng =
      origin_.lng +
      p.x / (kEarthRadiusMeters * std::cos(origin_.lat * kDegToRad)) /
          kDegToRad;
  return {lat, lng};
}

Point CityFrame::ToPoint(const LatLng& ll) const {
  const double y = (ll.lat - origin_.lat) * kDegToRad * kEarthRadiusMeters;
  const double x = (ll.lng - origin_.lng) * kDegToRad * kEarthRadiusMeters *
                   std::cos(origin_.lat * kDegToRad);
  return {x, y};
}

}  // namespace o2sr::geo
