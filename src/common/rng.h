#ifndef O2SR_COMMON_RNG_H_
#define O2SR_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace o2sr {

// Deterministic random number generator used throughout the project.
// Every component that needs randomness takes an Rng (or a seed) so that
// datasets, model initialization and experiments are fully reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi) {
    O2SR_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  // Gaussian sample.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Poisson sample; `mean` must be non-negative.
  int Poisson(double mean) {
    if (mean <= 0.0) return 0;
    std::poisson_distribution<int> dist(mean);
    return dist(engine_);
  }

  // Exponential sample with the given rate (lambda).
  double Exponential(double rate) {
    O2SR_CHECK_GT(rate, 0.0);
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
  }

  // Returns true with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  // All weights must be non-negative, with a positive sum.
  int Categorical(const std::vector<double>& weights) {
    O2SR_CHECK(!weights.empty());
    std::discrete_distribution<int> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  // Derives an independent child generator; calls on the child do not
  // perturb this generator's sequence.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

  // Serializes the full engine state as a portable decimal string, so a
  // checkpointed training run resumes with the exact random sequence it
  // would have produced uninterrupted.
  std::string SaveState() const {
    std::ostringstream oss;
    oss << engine_;
    return oss.str();
  }

  // Restores a state produced by SaveState. Returns false (leaving the
  // engine untouched) when the string is not a valid state.
  bool LoadState(const std::string& state) {
    std::istringstream iss(state);
    std::mt19937_64 candidate;
    iss >> candidate;
    if (iss.fail()) return false;
    engine_ = candidate;
    return true;
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace o2sr

#endif  // O2SR_COMMON_RNG_H_
