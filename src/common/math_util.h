#ifndef O2SR_COMMON_MATH_UTIL_H_
#define O2SR_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace o2sr {

// Shannon entropy (natural log) of a discrete distribution given by
// non-negative counts. Zero counts are skipped; an all-zero or empty input
// yields 0. Used for POI diversity and store diversity (paper §III-C).
double Entropy(const std::vector<double>& counts);

// Pearson correlation coefficient of two equally-sized samples.
// Returns 0 when either side has zero variance or fewer than 2 points.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Sample mean; 0 for empty input.
double Mean(const std::vector<double>& values);

// Unbiased sample variance; 0 for fewer than 2 points.
double SampleVariance(const std::vector<double>& values);

// Result of a two-sample Welch t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  // two-sided
};

// Welch's two-sample t-test (unequal variances). Used for the significance
// stars in Table III/IV. Requires each sample to have >= 2 points.
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

// CDF of Student's t distribution with `nu` degrees of freedom, used by
// WelchTTest. Exposed for testing.
double StudentTCdf(double t, double nu);

// Regularized incomplete beta function I_x(a, b) via continued fractions.
// Exposed for testing.
double RegularizedIncompleteBeta(double a, double b, double x);

// Min-max normalizes `values` in place to [0, 1]; constant input maps to 0.
void MinMaxNormalize(std::vector<double>& values);

// Numerically stable softmax of `logits`.
std::vector<double> Softmax(const std::vector<double>& logits);

// Haversine-free planar helpers --------------------------------------------

// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

// Indices that would sort `values` in decreasing order (stable).
std::vector<int> ArgsortDescending(const std::vector<double>& values);

}  // namespace o2sr

#endif  // O2SR_COMMON_MATH_UTIL_H_
