#include "common/status.h"

#include <ostream>

namespace o2sr::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

}  // namespace o2sr::common
