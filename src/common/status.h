#ifndef O2SR_COMMON_STATUS_H_
#define O2SR_COMMON_STATUS_H_

#include <iosfwd>
#include <string>
#include <utility>

#include "common/check.h"

namespace o2sr::common {

// Error-handling vocabulary of the project (Google style, exception-free).
//
// The boundary between Status and CHECK: O2SR_CHECK guards *programmer
// errors* (violated invariants, out-of-range indices) and aborts; Status
// reports *recoverable runtime conditions* (bad input files, exhausted
// retry budgets, corrupt checkpoints) to the caller, who decides how to
// degrade. Anything that depends on data from outside the process must use
// Status, never CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // malformed caller input (bad row, bad option)
  kNotFound,            // a named resource does not exist
  kFailedPrecondition,  // operation cannot run in the current state
  kOutOfRange,          // value outside the permitted interval
  kDataLoss,            // unrecoverable corruption (bad checksum, truncation)
  kResourceExhausted,   // a budget (retries, capacity) ran out
  kAborted,             // operation gave up; retrying may help
  kUnavailable,         // transient environment failure (I/O error)
  kInternal,            // invariant broke in a recoverable context
  kUnimplemented,       // the operation is not supported by this type
};

const char* StatusCodeName(StatusCode code);

// Value-type status: a code plus a human-readable message. The default
// constructor yields OK. Cheap to copy (OK carries no allocation in
// practice since the message is empty).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: row 7: field 'creation_min' ...".
  std::string ToString() const;

  // Returns a copy with `context + ": "` prepended to the message (no-op on
  // OK), for annotating errors as they cross layer boundaries.
  Status WithContext(const std::string& context) const;

 private:
  StatusCode code_;
  std::string message_;
};

// Streams ToString(); lets tests write `EXPECT_TRUE(s.ok()) << s`.
std::ostream& operator<<(std::ostream& os, const Status& status);

// Constructors for the common codes.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status AbortedError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

// Status-or-value. `ok()` decides which is present; accessing the value of
// a failed StatusOr is a checked programmer error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    O2SR_CHECK(!status_.ok());  // OK without a value is meaningless
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    O2SR_CHECK_OK(status_);
    return value_;
  }
  T& value() & {
    O2SR_CHECK_OK(status_);
    return value_;
  }
  T&& value() && {
    O2SR_CHECK_OK(status_);
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Annotates the error message as it crosses a layer boundary (no-op when
  // ok); rvalue-qualified so it chains off a call without copying the value.
  StatusOr WithContext(const std::string& context) && {
    if (!status_.ok()) status_ = status_.WithContext(context);
    return std::move(*this);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace o2sr::common

// Propagates a non-OK Status to the caller.
//
//   O2SR_RETURN_IF_ERROR(ReadStoresCsv(path, frame, grid, &stores));
#define O2SR_RETURN_IF_ERROR(expr)                      \
  do {                                                  \
    ::o2sr::common::Status o2sr_status_tmp_ = (expr);   \
    if (!o2sr_status_tmp_.ok()) return o2sr_status_tmp_; \
  } while (false)

// Unwraps a StatusOr into `lhs`, propagating a non-OK status.
//
//   O2SR_ASSIGN_OR_RETURN(const Checkpoint ckpt, LoadCheckpoint(path));
#define O2SR_ASSIGN_OR_RETURN(lhs, expr)                       \
  O2SR_ASSIGN_OR_RETURN_IMPL_(                                 \
      O2SR_STATUS_CONCAT_(o2sr_statusor_, __LINE__), lhs, expr)

#define O2SR_STATUS_CONCAT_INNER_(a, b) a##b
#define O2SR_STATUS_CONCAT_(a, b) O2SR_STATUS_CONCAT_INNER_(a, b)
#define O2SR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // O2SR_COMMON_STATUS_H_
