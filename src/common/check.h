#ifndef O2SR_COMMON_CHECK_H_
#define O2SR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>

// CHECK-style invariant macros. The project does not use exceptions
// (Google style); a failed check indicates a programmer error and aborts
// after printing the failing condition and location. Recoverable runtime
// conditions (bad input data, I/O failures) must use common::Status
// instead — see common/status.h for the boundary.
//
// These macros do not support `<<` message streaming. The comparison
// variants print both operand values on failure:
//
//   O2SR_CHECK(index < size);
//   O2SR_CHECK_EQ(cells.size(), 13u);   // "... (14 vs 13)" on failure
//   O2SR_CHECK_OK(status);              // prints status.ToString()

namespace o2sr::internal {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "O2SR_CHECK failed: %s at %s:%d\n", condition, file,
               line);
  std::abort();
}

[[noreturn]] inline void CheckFailedWithValues(const char* condition,
                                               const std::string& values,
                                               const char* file, int line) {
  std::fprintf(stderr, "O2SR_CHECK failed: %s (%s) at %s:%d\n", condition,
               values.c_str(), file, line);
  std::abort();
}

// Renders one operand: scoped enums print their underlying integer,
// nullptr prints as such; everything else uses its ostream operator<<.
template <typename T>
void StreamCheckOperand(std::ostream& os, const T& v) {
  if constexpr (std::is_enum_v<T>) {
    os << static_cast<std::underlying_type_t<T>>(v);
  } else if constexpr (std::is_same_v<T, std::nullptr_t>) {
    os << "nullptr";
  } else {
    os << v;
  }
}

template <typename A, typename B>
std::string FormatCheckOperands(const A& a, const B& b) {
  std::ostringstream oss;
  StreamCheckOperand(oss, a);
  oss << " vs ";
  StreamCheckOperand(oss, b);
  return oss.str();
}

// `StatusT` is any type with ok() and ToString() — kept as a template so
// this low-level header does not depend on common/status.h.
template <typename StatusT>
void CheckOkImpl(const StatusT& status, const char* expression,
                 const char* file, int line) {
  if (!status.ok()) {
    std::fprintf(stderr, "O2SR_CHECK_OK failed: %s = %s at %s:%d\n",
                 expression, status.ToString().c_str(), file, line);
    std::abort();
  }
}

}  // namespace o2sr::internal

#define O2SR_CHECK(condition)                                           \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::o2sr::internal::CheckFailed(#condition, __FILE__, __LINE__);    \
    }                                                                   \
  } while (false)

// Evaluates each operand exactly once and prints both values on failure.
#define O2SR_CHECK_OP_(op, a, b)                                          \
  do {                                                                   \
    auto&& o2sr_check_a_ = (a);                                          \
    auto&& o2sr_check_b_ = (b);                                          \
    if (!(o2sr_check_a_ op o2sr_check_b_)) {                             \
      ::o2sr::internal::CheckFailedWithValues(                           \
          #a " " #op " " #b,                                             \
          ::o2sr::internal::FormatCheckOperands(o2sr_check_a_,           \
                                                o2sr_check_b_),          \
          __FILE__, __LINE__);                                           \
    }                                                                    \
  } while (false)

#define O2SR_CHECK_EQ(a, b) O2SR_CHECK_OP_(==, a, b)
#define O2SR_CHECK_NE(a, b) O2SR_CHECK_OP_(!=, a, b)
#define O2SR_CHECK_LT(a, b) O2SR_CHECK_OP_(<, a, b)
#define O2SR_CHECK_LE(a, b) O2SR_CHECK_OP_(<=, a, b)
#define O2SR_CHECK_GT(a, b) O2SR_CHECK_OP_(>, a, b)
#define O2SR_CHECK_GE(a, b) O2SR_CHECK_OP_(>=, a, b)

// Aborts when a common::Status (or StatusOr) is not OK, printing it.
#define O2SR_CHECK_OK(expr) \
  ::o2sr::internal::CheckOkImpl((expr), #expr, __FILE__, __LINE__)

#endif  // O2SR_COMMON_CHECK_H_
