#ifndef O2SR_COMMON_CHECK_H_
#define O2SR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// CHECK-style invariant macros. The project does not use exceptions
// (Google style); a failed check indicates a programmer error and aborts
// after printing the failing condition and location.
//
// Usage:
//   O2SR_CHECK(index < size) << optional extra info is not supported;
//   O2SR_CHECK_EQ(a, b);

namespace o2sr::internal {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "O2SR_CHECK failed: %s at %s:%d\n", condition, file,
               line);
  std::abort();
}

}  // namespace o2sr::internal

#define O2SR_CHECK(condition)                                           \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::o2sr::internal::CheckFailed(#condition, __FILE__, __LINE__);    \
    }                                                                   \
  } while (false)

#define O2SR_CHECK_EQ(a, b) O2SR_CHECK((a) == (b))
#define O2SR_CHECK_NE(a, b) O2SR_CHECK((a) != (b))
#define O2SR_CHECK_LT(a, b) O2SR_CHECK((a) < (b))
#define O2SR_CHECK_LE(a, b) O2SR_CHECK((a) <= (b))
#define O2SR_CHECK_GT(a, b) O2SR_CHECK((a) > (b))
#define O2SR_CHECK_GE(a, b) O2SR_CHECK((a) >= (b))

#endif  // O2SR_COMMON_CHECK_H_
