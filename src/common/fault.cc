#include "common/fault.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace o2sr::common {

namespace {

// SplitMix64: the decision stream of every rule. Statistically solid,
// stateless, and cheap enough to run per injection call.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : site) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Uniform double in [0, 1) from 53 random bits.
double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Status ParseProbability(const std::string& token, const std::string& rule,
                        double* out) {
  char* end = nullptr;
  const double p = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    return InvalidArgumentError("fault rule '" + rule +
                                "': probability must be in [0, 1], got '" +
                                token + "'");
  }
  *out = p;
  return Status::Ok();
}

Status ParseDurationMs(const std::string& token, const std::string& rule,
                       double* out) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || value < 0.0) {
    return InvalidArgumentError("fault rule '" + rule +
                                "': bad duration '" + token + "'");
  }
  const std::string unit(end);
  double scale = 0.0;
  if (unit == "us") {
    scale = 1e-3;
  } else if (unit == "ms") {
    scale = 1.0;
  } else if (unit == "s") {
    scale = 1e3;
  } else {
    return InvalidArgumentError("fault rule '" + rule + "': duration unit '" +
                                unit + "' is not us/ms/s");
  }
  *out = value * scale;
  return Status::Ok();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitflip:
      return "bitflip";
    case FaultKind::kTruncate:
      return "trunc";
    case FaultKind::kError:
      return "error";
    case FaultKind::kDelay:
      return "delay";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<FaultInjector>> FaultInjector::Parse(
    const std::string& spec) {
  auto injector = std::make_unique<FaultInjector>();
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("fault rule '" + entry +
                                  "' is not site=kind:arg");
    }
    const std::string site = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (site.empty()) {
      return InvalidArgumentError("fault rule '" + entry +
                                  "' has an empty site");
    }
    if (site == "seed") {
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("fault seed '" + value +
                                    "' is not an integer");
      }
      injector->seed_ = static_cast<uint64_t>(seed);
      continue;
    }
    const size_t colon = value.find(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError("fault rule '" + entry +
                                  "' is missing the kind:arg part");
    }
    const std::string kind_name = value.substr(0, colon);
    const std::string arg = value.substr(colon + 1);
    auto rule = std::make_unique<Rule>();
    rule->site_hash = HashSite(site);
    if (kind_name == "bitflip") {
      rule->kind = FaultKind::kBitflip;
      O2SR_RETURN_IF_ERROR(ParseProbability(arg, entry, &rule->probability));
    } else if (kind_name == "trunc") {
      rule->kind = FaultKind::kTruncate;
      O2SR_RETURN_IF_ERROR(ParseProbability(arg, entry, &rule->probability));
    } else if (kind_name == "error") {
      rule->kind = FaultKind::kError;
      O2SR_RETURN_IF_ERROR(ParseProbability(arg, entry, &rule->probability));
    } else if (kind_name == "delay") {
      rule->kind = FaultKind::kDelay;
      rule->probability = 1.0;
      O2SR_RETURN_IF_ERROR(ParseDurationMs(arg, entry, &rule->delay_ms));
    } else {
      return InvalidArgumentError(
          "fault rule '" + entry + "': kind '" + kind_name +
          "' is not bitflip/trunc/error/delay");
    }
    injector->rules_[site].push_back(std::move(rule));
  }
  return injector;
}

namespace {
// Lock-free fast path: injection points sit on serving hot paths (every
// cache lookup), so Global() must not take a mutex per call. The current
// injector is published through an atomic pointer; replaced injectors are
// parked in a graveyard instead of freed, because a concurrent injection
// call may still be reading one (a bounded, test-only leak).
std::atomic<FaultInjector*> g_current{nullptr};
std::mutex g_swap_mutex;  // serializes initialization / reset
std::vector<std::unique_ptr<FaultInjector>>& Graveyard() {
  static auto* graveyard = new std::vector<std::unique_ptr<FaultInjector>>();
  return *graveyard;
}

void PublishGlobal(std::unique_ptr<FaultInjector> injector) {
  FaultInjector* raw = injector.get();
  Graveyard().push_back(std::move(injector));
  g_current.store(raw, std::memory_order_release);
}
}  // namespace

FaultInjector& FaultInjector::Global() {
  FaultInjector* current = g_current.load(std::memory_order_acquire);
  if (current != nullptr) return *current;
  std::lock_guard<std::mutex> lock(g_swap_mutex);
  current = g_current.load(std::memory_order_acquire);
  if (current == nullptr) {
    const char* env = std::getenv("O2SR_FAULTS");
    auto parsed = Parse(env != nullptr ? env : "");
    O2SR_CHECK_OK(parsed.status());
    PublishGlobal(std::move(parsed).value());
    current = g_current.load(std::memory_order_acquire);
  }
  return *current;
}

void FaultInjector::ResetGlobalForTest(const std::string& spec) {
  auto parsed = Parse(spec);
  O2SR_CHECK_OK(parsed.status());
  std::lock_guard<std::mutex> lock(g_swap_mutex);
  PublishGlobal(std::move(parsed).value());
}

bool FaultInjector::Fires(Rule& rule, uint64_t* mix) {
  const uint64_t n = rule.calls.fetch_add(1, std::memory_order_relaxed);
  const uint64_t bits =
      SplitMix64(seed_ ^ rule.site_hash ^
                 (n * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(rule.kind)));
  if (mix != nullptr) *mix = SplitMix64(bits);
  const bool fires = rule.probability >= 1.0 || ToUnit(bits) < rule.probability;
  if (fires) rule.fired.fetch_add(1, std::memory_order_relaxed);
  return fires;
}

Status FaultInjector::InjectError(const std::string& site) {
  if (rules_.empty()) return Status::Ok();
  const auto it = rules_.find(site);
  if (it == rules_.end()) return Status::Ok();
  for (const auto& rule : it->second) {
    if (rule->kind != FaultKind::kError) continue;
    if (Fires(*rule, nullptr)) {
      return UnavailableError("injected fault: " + site + "=error");
    }
  }
  return Status::Ok();
}

void FaultInjector::InjectDelay(const std::string& site) {
  if (rules_.empty()) return;
  const auto it = rules_.find(site);
  if (it == rules_.end()) return;
  for (const auto& rule : it->second) {
    if (rule->kind != FaultKind::kDelay) continue;
    if (Fires(*rule, nullptr)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(rule->delay_ms));
    }
  }
}

void FaultInjector::InjectCorruption(const std::string& site,
                                     std::string* bytes) {
  if (rules_.empty() || bytes == nullptr || bytes->empty()) return;
  const auto it = rules_.find(site);
  if (it == rules_.end()) return;
  for (const auto& rule : it->second) {
    uint64_t mix = 0;
    if (rule->kind == FaultKind::kBitflip) {
      if (!Fires(*rule, &mix)) continue;
      const uint64_t bit = mix % (bytes->size() * 8);
      (*bytes)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    } else if (rule->kind == FaultKind::kTruncate) {
      if (!Fires(*rule, &mix)) continue;
      bytes->resize(mix % bytes->size());
    }
  }
}

uint64_t FaultInjector::FiredCount(const std::string& site) const {
  const auto it = rules_.find(site);
  if (it == rules_.end()) return 0;
  uint64_t total = 0;
  for (const auto& rule : it->second) {
    total += rule->fired.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FaultInjector::TotalFired() const {
  uint64_t total = 0;
  for (const auto& [site, rules] : rules_) {
    for (const auto& rule : rules) {
      total += rule->fired.load(std::memory_order_relaxed);
    }
  }
  return total;
}

}  // namespace o2sr::common
