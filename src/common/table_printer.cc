#include "common/table_printer.h"

#include <cstdio>

#include "common/check.h"

namespace o2sr {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  O2SR_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  O2SR_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, " |\n");
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    std::fprintf(out, "%s%s", c == 0 ? "|-" : "-|-",
                 std::string(widths[c], '-').c_str());
  }
  std::fprintf(out, "-|\n");
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace o2sr
