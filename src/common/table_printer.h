#ifndef O2SR_COMMON_TABLE_PRINTER_H_
#define O2SR_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace o2sr {

// Prints aligned ASCII tables: used by the benchmark harnesses to emit the
// same rows/series the paper's tables and figures report.
//
// Example:
//   TablePrinter t({"Model", "NDCG@3", "Precision@3"});
//   t.AddRow({"HGT", "0.6331", "0.8276"});
//   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders the table (header, separator, rows) to `out`.
  void Print(std::FILE* out) const;

  // Convenience: formats a double with the given precision.
  static std::string Num(double value, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace o2sr

#endif  // O2SR_COMMON_TABLE_PRINTER_H_
