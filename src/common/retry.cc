#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace o2sr::common {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashOp(const std::string& op) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : op) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

bool DefaultRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kAborted:
    case StatusCode::kDataLoss:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

double BackoffMsForAttempt(const RetryPolicy& policy, const std::string& op,
                           int next_attempt) {
  if (next_attempt < 1) return 0.0;
  const double base = std::min(
      policy.initial_backoff_ms * std::pow(policy.growth, next_attempt - 1),
      policy.max_backoff_ms);
  const double u = ToUnit(SplitMix64(policy.seed ^ HashOp(op) ^
                                     static_cast<uint64_t>(next_attempt)));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  return std::max(0.0, base * (1.0 - jitter + 2.0 * jitter * u));
}

Status RunWithRetry(const RetryPolicy& policy, const std::string& op,
                    const std::function<Status()>& fn, RetryStats* stats) {
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  s = RetryStats();
  if (policy.max_attempts < 1) {
    return InvalidArgumentError("retry policy for '" + op +
                                "' allows no attempts (max_attempts " +
                                std::to_string(policy.max_attempts) + ")");
  }
  const auto retryable =
      policy.retryable ? policy.retryable : DefaultRetryable;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    Status status = fn();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    ++s.attempts;
    if (policy.per_attempt_timeout_ms > 0.0 &&
        elapsed_ms > policy.per_attempt_timeout_ms) {
      status = AbortedError(
          op + ": attempt " + std::to_string(attempt) + " exceeded its " +
          std::to_string(policy.per_attempt_timeout_ms) + " ms budget" +
          (status.ok() ? " (result discarded as stale)"
                       : " and failed: " + status.message()));
    }
    if (status.ok()) return status;
    s.last_error = status;
    if (attempt == policy.max_attempts || !retryable(status)) {
      return status.WithContext(op + " failed after " +
                                std::to_string(s.attempts) + " attempt(s)");
    }
    const double backoff_ms = BackoffMsForAttempt(policy, op, attempt);
    if (backoff_ms > 0.0) {
      s.slept_ms += backoff_ms;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
  return InternalError(op + ": retry loop exited without a result");
}

}  // namespace o2sr::common
