#ifndef O2SR_COMMON_FAULT_H_
#define O2SR_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace o2sr::common {

// Deterministic fault injection for resilience testing (DESIGN.md §10).
//
// Production code threads *injection points* — named sites — through its
// failure-prone paths (file reads, scoring, cache lookups); a fault *recipe*
// parsed from the O2SR_FAULTS environment variable decides which sites
// misbehave and how:
//
//   O2SR_FAULTS="seed=7,snapshot.read=bitflip:0.01,score=delay:5ms,score=error:0.02"
//
// Grammar: comma-separated `site=kind:arg` rules plus an optional `seed=N`
// entry. Kinds:
//
//   bitflip:<p>   flip one deterministic bit of the buffer with probability p
//   trunc:<p>     truncate the buffer to a deterministic prefix with prob. p
//   error:<p>     return UNAVAILABLE with probability p
//   delay:<dur>   sleep for <dur> on every call (e.g. 5ms, 250us, 1.5s)
//
// Every decision is a pure function of (seed, site, rule, per-rule call
// index), so a recipe replays the identical fault sequence run after run —
// chaos tests are as reproducible as golden tests. With no rules configured
// (the default) every injection point collapses to a branch on a false
// boolean; the hot path pays nothing.
//
// The facility is for tests, CI chaos smokes and benchmarks only; a
// malformed O2SR_FAULTS recipe is a loud programmer error (CHECK), never a
// silently ignored one.

enum class FaultKind { kBitflip, kTruncate, kError, kDelay };

const char* FaultKindName(FaultKind kind);

class FaultInjector {
 public:
  // An injector with no rules: every site is healthy.
  FaultInjector() = default;

  // Parses a recipe string (see the grammar above). Empty spec => no rules.
  static StatusOr<std::unique_ptr<FaultInjector>> Parse(
      const std::string& spec);

  // Process-wide injector, parsed once from O2SR_FAULTS (CHECK-fails on a
  // malformed recipe — fault injection is a test facility and must fail
  // loudly, not silently run healthy).
  static FaultInjector& Global();

  // Re-parses the global injector from `spec` (tests only). Safe against
  // concurrent injection calls: the previous injector is parked, not freed,
  // so in-flight readers never dangle (a bounded, test-only leak).
  static void ResetGlobalForTest(const std::string& spec);

  // True when at least one rule exists (callers may skip building
  // diagnostics when the whole facility is off).
  bool enabled() const { return !rules_.empty(); }

  // --- Injection points (called from production code) -------------------

  // UNAVAILABLE when an `error` rule for `site` fires; OK otherwise.
  Status InjectError(const std::string& site);

  // Sleeps when a `delay` rule for `site` exists.
  void InjectDelay(const std::string& site);

  // Applies `bitflip` / `trunc` rules for `site` to `bytes` in place.
  // No-op on an empty buffer.
  void InjectCorruption(const std::string& site, std::string* bytes);

  // --- Introspection (tests, chaos reporting) ---------------------------

  // Total faults fired at `site` across all rules.
  uint64_t FiredCount(const std::string& site) const;
  // Total faults fired across all sites.
  uint64_t TotalFired() const;

 private:
  struct Rule {
    FaultKind kind = FaultKind::kError;
    double probability = 0.0;  // bitflip/trunc/error
    double delay_ms = 0.0;     // delay
    uint64_t site_hash = 0;
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> fired{0};
  };

  // Deterministically decides whether `rule` fires on its next call and
  // returns a per-call mixing value for position choices.
  bool Fires(Rule& rule, uint64_t* mix);

  uint64_t seed_ = 0;
  // site -> rules, in recipe order. Rules are heap-allocated because they
  // hold atomics.
  std::map<std::string, std::vector<std::unique_ptr<Rule>>> rules_;
};

}  // namespace o2sr::common

#endif  // O2SR_COMMON_FAULT_H_
