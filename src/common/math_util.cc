#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace o2sr {

double Entropy(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) {
    O2SR_CHECK_GE(c, 0.0);
    total += c;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    h -= p * std::log(p);
  }
  return h;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return ss / static_cast<double>(n - 1);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  O2SR_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Numerical Recipes' betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  O2SR_CHECK_GT(a, 0.0);
  O2SR_CHECK_GT(b, 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front = std::exp(ln_beta + a * std::log(x) +
                                b * std::log(1.0 - x));
  // Use the continued fraction directly or via the symmetry relation,
  // whichever converges faster.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double nu) {
  O2SR_CHECK_GT(nu, 0.0);
  if (t == 0.0) return 0.5;
  const double x = nu / (nu + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(nu / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  O2SR_CHECK_GE(a.size(), 2u);
  O2SR_CHECK_GE(b.size(), 2u);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = SampleVariance(a);
  const double vb = SampleVariance(b);
  const double se2 = va / na + vb / nb;
  TTestResult result;
  if (se2 <= 0.0) {
    // Identical constant samples: no evidence of a difference.
    result.t_statistic = 0.0;
    result.degrees_of_freedom = na + nb - 2.0;
    result.p_value = Mean(a) == Mean(b) ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = (Mean(a) - Mean(b)) / std::sqrt(se2);
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  result.degrees_of_freedom = den > 0.0 ? num / den : na + nb - 2.0;
  const double cdf = StudentTCdf(std::fabs(result.t_statistic),
                                 result.degrees_of_freedom);
  result.p_value = 2.0 * (1.0 - cdf);
  return result;
}

void MinMaxNormalize(std::vector<double>& values) {
  if (values.empty()) return;
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  const double range = mx - mn;
  for (double& v : values) v = range > 0.0 ? (v - mn) / range : 0.0;
}

std::vector<double> Softmax(const std::vector<double>& logits) {
  std::vector<double> out(logits.size());
  if (logits.empty()) return out;
  const double mx = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - mx);
    sum += out[i];
  }
  for (double& v : out) v /= sum;
  return out;
}

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

std::vector<int> ArgsortDescending(const std::vector<double>& values) {
  std::vector<int> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int i, int j) { return values[i] > values[j]; });
  return idx;
}

}  // namespace o2sr
