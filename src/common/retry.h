#ifndef O2SR_COMMON_RETRY_H_
#define O2SR_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"

namespace o2sr::common {

// Bounded, deterministic retry with exponential backoff — the supervision
// primitive of the continual-retraining pipeline (DESIGN.md §11). A policy
// wraps any fallible operation (train, export, restore, swap) and retries
// transient failures up to a budget; an exhausted budget surfaces the last
// error, annotated with the attempt count, instead of looping forever.
//
// Determinism: the jitter applied to each backoff interval is a pure
// function of (seed, operation name, attempt index), so a retried run
// replays the identical schedule — chaos tests that crash and resume a
// pipeline see the same sleep sequence on every execution.

struct RetryPolicy {
  // Total attempts, first call included. 1 means "no retries".
  int max_attempts = 4;
  // Backoff before attempt n+1 is
  //   min(initial_backoff_ms * growth^n, max_backoff_ms)
  // scaled by a deterministic jitter in [1 - jitter, 1 + jitter].
  double initial_backoff_ms = 5.0;
  double growth = 2.0;
  double max_backoff_ms = 1000.0;
  double jitter = 0.2;
  // Per-attempt wall-clock budget. An attempt that comes back — even OK —
  // after more than this many milliseconds counts as a failed attempt
  // (ABORTED): callers of a deadline-bound stage must not act on a result
  // that arrived after everyone stopped waiting for it. <= 0 disables.
  double per_attempt_timeout_ms = 0.0;
  // Seed of the jitter stream (mixed with the operation name and attempt).
  uint64_t seed = 0;
  // Which failures are worth retrying. Null selects the default predicate:
  // UNAVAILABLE (transient environment), ABORTED (giving up may help),
  // DATA_LOSS (a re-read redraws past transient corruption) and
  // RESOURCE_EXHAUSTED (a budget that may clear). Everything else —
  // contract violations, missing files — fails fast.
  std::function<bool(const Status&)> retryable;
};

// True under the default predicate described on RetryPolicy::retryable.
bool DefaultRetryable(const Status& status);

// What a RunWithRetry call actually did (for metrics and logs).
struct RetryStats {
  int attempts = 0;       // attempts executed (>= 1 unless max_attempts < 1)
  double slept_ms = 0.0;  // total backoff slept
  Status last_error;      // last non-OK result (OK when the op succeeded
                          // first try)
};

// Runs `fn` under `policy`. Returns the first OK result; otherwise the last
// error with "<op> failed after N attempts" context. `stats` may be null.
Status RunWithRetry(const RetryPolicy& policy, const std::string& op,
                    const std::function<Status()>& fn,
                    RetryStats* stats = nullptr);

// StatusOr flavor: value of the first successful attempt.
template <typename T>
StatusOr<T> RunWithRetry(const RetryPolicy& policy, const std::string& op,
                         const std::function<StatusOr<T>()>& fn,
                         RetryStats* stats = nullptr) {
  StatusOr<T> result = InternalError("retry ran no attempts");
  const Status status = RunWithRetry(
      policy, op,
      [&]() -> Status {
        result = fn();
        return result.status();
      },
      stats);
  if (!status.ok()) return status;
  return result;
}

// The deterministic backoff (jitter applied) slept before attempt
// `next_attempt` (1-based: the delay between attempt n and n+1). Exposed so
// tests can assert the schedule without sleeping through it.
double BackoffMsForAttempt(const RetryPolicy& policy, const std::string& op,
                           int next_attempt);

}  // namespace o2sr::common

#endif  // O2SR_COMMON_RETRY_H_
