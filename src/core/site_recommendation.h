#ifndef O2SR_CORE_SITE_RECOMMENDATION_H_
#define O2SR_CORE_SITE_RECOMMENDATION_H_

#include <string>
#include <vector>

#include "core/o2siterec.h"
#include "features/order_stats.h"
#include "features/region_features.h"
#include "sim/dataset.h"

namespace o2sr::core {

// A query against the recommendation service: which store type, how many
// suggestions, and whether regions that already host the type qualify.
struct SiteQuery {
  int type = 0;
  int top_k = 5;
  // Skip regions where a store of this type already operates (the common
  // expansion scenario).
  bool exclude_existing = true;
  // Restrict candidates to regions whose normalized distance from the city
  // center is at most this (1.0 = whole city).
  double max_center_distance_norm = 1.0;
};

// One ranked suggestion with the context a site planner needs to judge it.
struct SiteSuggestion {
  int region = 0;
  double score = 0.0;  // model's normalized order-count prediction
  // Explanations:
  double nearby_demand_per_day = 0.0;   // orders of the type within 2 km
  double noon_delivery_minutes = 0.0;   // capacity proxy at the noon rush
  double competitiveness = 0.0;         // same-type competition share
  double complementarity = 0.0;         // benefit from complementary types
};

// High-level facade over a trained O2SiteRec model: ranks candidate regions
// for a store type and attaches the interpretable context (demand, courier
// capacity, competition) that the paper's features quantify.
//
// The referenced dataset/model must outlive the service.
class SiteRecommendationService {
 public:
  SiteRecommendationService(const sim::Dataset& data, const O2SiteRec& model);

  // Ranked suggestions for the query; fewer than top_k when candidates run
  // out.
  std::vector<SiteSuggestion> Recommend(const SiteQuery& query) const;

  // Renders suggestions as a human-readable report (used by the examples).
  std::string FormatReport(const SiteQuery& query,
                           const std::vector<SiteSuggestion>& suggestions)
      const;

 private:
  const sim::Dataset& data_;
  const O2SiteRec& model_;
  features::OrderStats stats_;
  features::CommercialFeatures commercial_;
  std::vector<std::vector<bool>> type_in_region_;  // [region][type]
  std::vector<bool> has_store_;
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_SITE_RECOMMENDATION_H_
