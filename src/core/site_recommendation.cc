#include "core/site_recommendation.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/math_util.h"

namespace o2sr::core {

SiteRecommendationService::SiteRecommendationService(const sim::Dataset& data,
                                                     const O2SiteRec& model)
    : data_(data),
      model_(model),
      stats_(data),
      commercial_(data),
      type_in_region_(data.num_regions(),
                      std::vector<bool>(data.num_types(), false)),
      has_store_(data.num_regions(), false) {
  for (const sim::Store& s : data.stores) {
    type_in_region_[s.region][s.type] = true;
    has_store_[s.region] = true;
  }
}

std::vector<SiteSuggestion> SiteRecommendationService::Recommend(
    const SiteQuery& query) const {
  O2SR_CHECK(query.type >= 0 && query.type < data_.num_types());
  O2SR_CHECK_GT(query.top_k, 0);

  InteractionList candidates;
  for (int r = 0; r < data_.num_regions(); ++r) {
    if (!has_store_[r]) continue;  // the model has no node for the region
    if (query.exclude_existing && type_in_region_[r][query.type]) continue;
    if (data_.city.grid.CenterDistanceNorm(r) >
        query.max_center_distance_norm) {
      continue;
    }
    candidates.push_back({r, query.type, 0.0, 0.0});
  }
  // Candidates are filtered to store regions above, so every pair is in the
  // model's domain and .value() cannot trip.
  const std::vector<double> scores = model_.Predict(candidates).value();

  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });

  const int noon = static_cast<int>(sim::Period::kNoonRush);
  const double days = std::max(1, data_.config.num_days);
  std::vector<SiteSuggestion> out;
  for (int i = 0; i < query.top_k && i < static_cast<int>(order.size());
       ++i) {
    const int idx = order[i];
    SiteSuggestion s;
    s.region = candidates[idx].region;
    s.score = scores[idx];
    std::vector<int> hood = data_.city.grid.RegionsWithin(s.region, 2000.0);
    hood.push_back(s.region);
    for (int n : hood) {
      for (int p = 0; p < sim::kNumPeriods; ++p) {
        s.nearby_demand_per_day += stats_.CustomerOrders(p, n, query.type);
      }
    }
    s.nearby_demand_per_day /= days;
    s.noon_delivery_minutes = stats_.MeanDeliveryMinutes(noon, s.region);
    s.competitiveness = commercial_.Competitiveness(s.region, query.type);
    s.complementarity = commercial_.Complementarity(s.region, query.type);
    out.push_back(s);
  }
  return out;
}

std::string SiteRecommendationService::FormatReport(
    const SiteQuery& query,
    const std::vector<SiteSuggestion>& suggestions) const {
  std::string out = "Site report for type '" +
                    data_.type_catalog[query.type].name + "':\n";
  char buf[256];
  int rank = 1;
  for (const SiteSuggestion& s : suggestions) {
    std::snprintf(buf, sizeof(buf),
                  "  #%d region %d  score %.3f  nearby demand %.1f/day  "
                  "noon delivery %.1f min  competition %.3f  "
                  "complementarity %.3f\n",
                  rank++, s.region, s.score, s.nearby_demand_per_day,
                  s.noon_delivery_minutes, s.competitiveness,
                  s.complementarity);
    out += buf;
  }
  if (suggestions.empty()) out += "  (no eligible candidate regions)\n";
  return out;
}

}  // namespace o2sr::core
