#ifndef O2SR_CORE_RECOMMENDER_H_
#define O2SR_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/interaction.h"
#include "nn/trainer.h"
#include "sim/dataset.h"

namespace o2sr::core {

// Common interface of every store-site recommendation method in the
// repository: O2-SiteRec, its ablation variants, and the six baselines.
//
// `visible_orders` is the portion of the order log a model may learn from
// (graph/feature construction); held-out (region, type) order counts are
// the prediction target and must not leak in.
class SiteRecommender {
 public:
  virtual ~SiteRecommender() = default;

  virtual std::string Name() const = 0;

  // Trains the model. Returns a descriptive error instead of aborting on
  // recoverable failures (untrainable input, exhausted numeric-recovery
  // budget); callers that cannot degrade use O2SR_CHECK_OK.
  //
  // `hooks` and `report` expose the guarded trainer's telemetry surface
  // (per-epoch obs::TrainEvents, fault injection); models that train
  // without nn::RunGuardedTraining may ignore them.
  virtual common::Status Train(const sim::Dataset& data,
                               const std::vector<sim::Order>& visible_orders,
                               const InteractionList& train,
                               const nn::TrainHooks& hooks = {},
                               nn::TrainReport* report = nullptr) = 0;

  // Predicted normalized order count per (region, type) pair, aligned with
  // `pairs`.
  virtual std::vector<double> Predict(const InteractionList& pairs) = 0;
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_RECOMMENDER_H_
