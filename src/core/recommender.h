#ifndef O2SR_CORE_RECOMMENDER_H_
#define O2SR_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/interaction.h"
#include "exec/thread_pool.h"
#include "nn/parameter.h"
#include "nn/trainer.h"
#include "sim/dataset.h"

namespace o2sr::core {

// Everything a training run needs, bundled. The positional
// (data, visible_orders, train, hooks, report) signature grew one parameter
// per PR; the context struct keeps call sites stable as the surface evolves
// and gives the execution layer a seat at the table.
//
// `data`, `visible_orders` and `train` are required (Train returns
// InvalidArgument when null); they are pointers only because a context is a
// non-owning view that outlives no call. `visible_orders` is the portion of
// the order log the model may learn from (graph/feature construction);
// held-out (region, type) order counts are the prediction target and must
// not leak in.
struct TrainContext {
  const sim::Dataset* data = nullptr;
  const std::vector<sim::Order>* visible_orders = nullptr;
  const InteractionList* train = nullptr;
  // Telemetry surface of the guarded trainer (per-epoch obs::TrainEvents,
  // fault injection); models that train without nn::RunGuardedTraining may
  // ignore them.
  nn::TrainHooks hooks;
  nn::TrainReport* report = nullptr;
  // Execution pool for the run's parallel kernels (tensor ops, graph
  // builds). Null means "whatever exec::CurrentPool() resolves to", i.e.
  // the caller's PoolScope or the process-wide pool.
  exec::ThreadPool* pool = nullptr;
  // Donor parameters from a previous training cycle. When set, models with
  // a ParameterStore apply nn::WarmStartParameters after building their
  // structure and before the first epoch, so retraining on a drifted window
  // starts from what the last cycle learned instead of a fresh init.
  // Matching is by name with partial-shape transfer; see nn/trainer.h.
  const std::vector<nn::NamedTensor>* warm_start = nullptr;
};

// Null-checks the required TrainContext fields. Implementations call this
// first so every model reports missing inputs the same way.
inline common::Status ValidateTrainContext(const TrainContext& ctx) {
  if (ctx.data == nullptr) {
    return common::InvalidArgumentError("TrainContext.data is null");
  }
  if (ctx.visible_orders == nullptr) {
    return common::InvalidArgumentError(
        "TrainContext.visible_orders is null");
  }
  if (ctx.train == nullptr) {
    return common::InvalidArgumentError("TrainContext.train is null");
  }
  return common::Status::Ok();
}

// Common interface of every store-site recommendation method in the
// repository: O2-SiteRec, its ablation variants, and the six baselines.
class SiteRecommender {
 public:
  virtual ~SiteRecommender() = default;

  virtual std::string Name() const = 0;

  // Trains the model on the bundled inputs. Returns a descriptive error
  // instead of aborting on recoverable failures (missing/untrainable
  // input, exhausted numeric-recovery budget); callers that cannot degrade
  // use O2SR_CHECK_OK. Parallel kernels inside the run dispatch to
  // `ctx.pool` when set.
  virtual common::Status Train(const TrainContext& ctx) = 0;

  // Batched inference: predicted normalized order count per (region, type)
  // pair, aligned with `pairs`. Fallible by design — a pair the model has
  // no node for (e.g. a region without stores) is an InvalidArgument error
  // naming the pair, not a silent zero. Callers that need every pair
  // scored restrict `pairs` to the model's domain first (the eval split
  // and SiteRecommendationService both do).
  virtual common::StatusOr<std::vector<double>> Predict(
      const InteractionList& pairs) const = 0;

  // --- Serving hooks (src/serve) ---------------------------------------
  //
  // The offline-train / online-serve split rests on three optional hooks:
  // a serving process calls PrepareServing to rebuild the model's
  // *structure* (graphs, features, parameter shapes) from the same data
  // view the trainer saw — without running a single epoch — then overwrites
  // the parameter values from an exported snapshot, after which Predict is
  // bit-identical to the trained original. Models that keep no
  // ParameterStore (e.g. heuristic baselines) return nullptr / UNIMPLEMENTED
  // and cannot be snapshot-served.

  // Builds model structure exactly as Train would (same parameter names,
  // shapes and creation order) but leaves the initial values untrained and
  // marks the model ready for Predict. Deterministic: two processes calling
  // this on the same inputs and config build identical structure.
  virtual common::Status PrepareServing(const TrainContext& ctx) {
    (void)ctx;
    return common::UnimplementedError(
        Name() + " does not support snapshot serving");
  }

  // The model's learned state, for snapshot export/restore. Null when the
  // model has no trainable parameters.
  virtual const nn::ParameterStore* parameter_store() const {
    return nullptr;
  }
  virtual nn::ParameterStore* mutable_parameter_store() { return nullptr; }

  // Called by the serving engine once the learned state is final (after
  // Train or a snapshot restore); models precompute their inference tables
  // here (e.g. O2-SiteRec materializes per-period node embeddings so each
  // query skips the graph forward pass).
  virtual common::Status FinalizeServing() { return common::Status::Ok(); }

  // True when Predict can score (region, *) pairs — the serving engine
  // filters candidate regions through this instead of tripping Predict's
  // strict unknown-pair error.
  virtual bool CanScoreRegion(int region) const {
    (void)region;
    return true;
  }

  // Serving-path inference; contract: bit-identical to Predict. The default
  // is Predict itself; models with a FinalizeServing table override this to
  // score from the table.
  virtual common::StatusOr<std::vector<double>> ServingPredict(
      const InteractionList& pairs) const {
    return Predict(pairs);
  }
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_RECOMMENDER_H_
