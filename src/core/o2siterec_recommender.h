#ifndef O2SR_CORE_O2SITEREC_RECOMMENDER_H_
#define O2SR_CORE_O2SITEREC_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/o2siterec.h"
#include "core/recommender.h"

namespace o2sr::core {

// SiteRecommender adapter around O2SiteRec (any variant).
class O2SiteRecRecommender : public SiteRecommender {
 public:
  explicit O2SiteRecRecommender(const O2SiteRecConfig& config)
      : config_(config) {}

  std::string Name() const override { return VariantName(config_.variant); }

  common::Status Train(const sim::Dataset& data,
                       const std::vector<sim::Order>& visible_orders,
                       const InteractionList& train,
                       const nn::TrainHooks& hooks = {},
                       nn::TrainReport* report = nullptr) override {
    model_ = std::make_unique<O2SiteRec>(data, visible_orders, config_);
    return model_->Train(train, hooks, report);
  }

  std::vector<double> Predict(const InteractionList& pairs) override {
    return model_->Predict(pairs);
  }

  const O2SiteRec* model() const { return model_.get(); }

 private:
  O2SiteRecConfig config_;
  std::unique_ptr<O2SiteRec> model_;
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_O2SITEREC_RECOMMENDER_H_
