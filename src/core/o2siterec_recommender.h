#ifndef O2SR_CORE_O2SITEREC_RECOMMENDER_H_
#define O2SR_CORE_O2SITEREC_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/o2siterec.h"
#include "core/recommender.h"
#include "exec/thread_pool.h"

namespace o2sr::core {

// SiteRecommender adapter around O2SiteRec (any variant).
class O2SiteRecRecommender : public SiteRecommender {
 public:
  explicit O2SiteRecRecommender(const O2SiteRecConfig& config)
      : config_(config) {}

  std::string Name() const override { return VariantName(config_.variant); }

  common::Status Train(const TrainContext& ctx) override {
    O2SR_RETURN_IF_ERROR(ValidateTrainContext(ctx));
    // The scope covers construction too: the graph builds inside the
    // O2SiteRec constructor are parallel regions.
    exec::PoolScope pool_scope(ctx.pool != nullptr ? ctx.pool
                                                   : &exec::CurrentPool());
    model_ = std::make_unique<O2SiteRec>(*ctx.data, *ctx.visible_orders,
                                         config_);
    if (ctx.warm_start != nullptr) {
      nn::WarmStartParameters(*ctx.warm_start,
                              &model_->mutable_parameters());
    }
    return model_->Train(*ctx.train, ctx.hooks, ctx.report);
  }

  common::StatusOr<std::vector<double>> Predict(
      const InteractionList& pairs) const override {
    if (model_ == nullptr) {
      return common::FailedPreconditionError(
          Name() + std::string(": Predict called before Train"));
    }
    return model_->Predict(pairs);
  }

  // Serving hooks: construction alone builds the full model structure
  // (graphs, features, every parameter), so PrepareServing is Train minus
  // the epochs. The constructor consumes the same inputs either way, which
  // keeps parameter names/shapes/creation order identical across processes.
  common::Status PrepareServing(const TrainContext& ctx) override {
    O2SR_RETURN_IF_ERROR(ValidateTrainContext(ctx));
    if (ctx.train->empty()) {
      return common::InvalidArgumentError("empty training interaction list");
    }
    exec::PoolScope pool_scope(ctx.pool != nullptr ? ctx.pool
                                                   : &exec::CurrentPool());
    model_ = std::make_unique<O2SiteRec>(*ctx.data, *ctx.visible_orders,
                                         config_);
    return common::Status::Ok();
  }

  const nn::ParameterStore* parameter_store() const override {
    return model_ != nullptr ? &model_->parameters() : nullptr;
  }
  nn::ParameterStore* mutable_parameter_store() override {
    return model_ != nullptr ? &model_->mutable_parameters() : nullptr;
  }

  common::Status FinalizeServing() override {
    if (model_ == nullptr) {
      return common::FailedPreconditionError(
          Name() + std::string(": FinalizeServing called before "
                               "Train/PrepareServing"));
    }
    serving_table_ = std::make_unique<O2SiteRec::ServingTable>(
        model_->BuildServingTable());
    return common::Status::Ok();
  }

  bool CanScoreRegion(int region) const override {
    return model_ != nullptr && region >= 0 &&
           region < model_->hetero_graph().num_regions() &&
           model_->hetero_graph().StoreNodeOfRegion(region) >= 0;
  }

  common::StatusOr<std::vector<double>> ServingPredict(
      const InteractionList& pairs) const override {
    if (model_ == nullptr) {
      return common::FailedPreconditionError(
          Name() + std::string(": ServingPredict called before Train"));
    }
    if (serving_table_ == nullptr) return model_->Predict(pairs);
    return model_->PredictWithTable(*serving_table_, pairs);
  }

  const O2SiteRec* model() const { return model_.get(); }

 private:
  O2SiteRecConfig config_;
  std::unique_ptr<O2SiteRec> model_;
  std::unique_ptr<O2SiteRec::ServingTable> serving_table_;
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_O2SITEREC_RECOMMENDER_H_
