#include "core/o2siterec.h"

#include "common/check.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace o2sr::core {

const char* VariantName(O2SiteRecVariant variant) {
  switch (variant) {
    case O2SiteRecVariant::kFull: return "O2-SiteRec";
    case O2SiteRecVariant::kNoCapacity: return "O2-SiteRec w/o Co";
    case O2SiteRecVariant::kNoCapacityNoCustomer:
      return "O2-SiteRec w/o CoCu";
    case O2SiteRecVariant::kMeanNodeAggregation: return "O2-SiteRec w/o NA";
    case O2SiteRecVariant::kMeanTimeAggregation: return "O2-SiteRec w/o SA";
  }
  O2SR_CHECK(false);
  return "";
}

O2SiteRec::O2SiteRec(const sim::Dataset& data,
                     const std::vector<sim::Order>& visible_orders,
                     const O2SiteRecConfig& config)
    : config_(config), rng_(config.seed) {
  // Variant -> structural switches.
  graphs::HeteroGraphOptions graph_options = config_.graph_options;
  bool use_capacity = true;
  switch (config_.variant) {
    case O2SiteRecVariant::kFull:
      break;
    case O2SiteRecVariant::kNoCapacity:
      use_capacity = false;
      graph_options.capacity_aware_scope = false;
      break;
    case O2SiteRecVariant::kNoCapacityNoCustomer:
      use_capacity = false;
      graph_options.capacity_aware_scope = false;
      graph_options.include_customer_edges = false;
      break;
    case O2SiteRecVariant::kMeanNodeAggregation:
      config_.rec.node_attention = false;
      break;
    case O2SiteRecVariant::kMeanTimeAggregation:
      config_.rec.time_attention = false;
      break;
  }

  O2SR_TRACE_SCOPE("model.build");
  stats_ = std::make_unique<features::OrderStats>(data, visible_orders);
  geo_ = std::make_unique<graphs::GeoGraph>(data.city.grid);
  mobility_ = std::make_unique<graphs::MobilityMultiGraph>(
      *stats_, config_.mobility_min_transactions);
  hetero_ =
      std::make_unique<graphs::HeteroMultiGraph>(data, *stats_, graph_options);

  if (use_capacity) {
    capacity_model_ = std::make_unique<CourierCapacityModel>(
        *geo_, *mobility_, config_.capacity, &store_, rng_);
  }
  const int capacity_dim =
      capacity_model_ ? capacity_model_->edge_embedding_dim() : 0;
  rec_model_ = std::make_unique<HeteroRecModel>(hetero_.get(), config_.rec,
                                                capacity_dim, &store_, rng_);

  // Cache the S-U edge region pairs per period (src = store region: the
  // courier travels store -> customer).
  su_src_regions_.resize(sim::kNumPeriods);
  su_dst_regions_.resize(sim::kNumPeriods);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    for (const graphs::SuEdge& e : hetero_->Subgraph(p).su_edges) {
      su_src_regions_[p].push_back(e.s_region);
      su_dst_regions_[p].push_back(e.u_region);
    }
  }
}

std::vector<HeteroRecModel::PeriodEmbeddings> O2SiteRec::ForwardAllPeriods(
    nn::Tape& tape, Rng& dropout_rng,
    std::vector<nn::Value>* capacity_region_embs) const {
  std::vector<HeteroRecModel::PeriodEmbeddings> periods;
  periods.reserve(sim::kNumPeriods);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    nn::Value su_capacity;
    if (capacity_model_ != nullptr) {
      nn::Value region_emb = capacity_model_->RegionEmbeddings(tape, p);
      if (capacity_region_embs != nullptr) {
        (*capacity_region_embs)[p] = region_emb;
      }
      if (!su_src_regions_[p].empty()) {
        su_capacity = capacity_model_->EdgeEmbeddings(
            tape, region_emb, su_src_regions_[p], su_dst_regions_[p]);
      }
    }
    periods.push_back(rec_model_->ForwardPeriod(tape, p, su_capacity,
                                                dropout_rng));
  }
  return periods;
}

common::Status O2SiteRec::Train(const InteractionList& train,
                                const nn::TrainHooks& hooks,
                                nn::TrainReport* report) {
  if (train.empty()) {
    return common::InvalidArgumentError(
        "empty training interaction list");
  }
  std::vector<int> pair_nodes;
  std::vector<int> pair_types;
  std::vector<float> targets;
  for (const Interaction& it : train) {
    const int node = hetero_->StoreNodeOfRegion(it.region);
    if (node < 0) continue;  // region without stores cannot be trained on
    pair_nodes.push_back(node);
    pair_types.push_back(it.type);
    targets.push_back(static_cast<float>(it.target));
  }
  if (pair_nodes.empty()) {
    return common::FailedPreconditionError(
        "no training interaction falls in a region with a store node");
  }
  const nn::Tensor target_tensor = nn::Tensor::FromVector(
      static_cast<int>(targets.size()), 1, targets);

  nn::AdamOptimizer::Options opt;
  opt.learning_rate = config_.learning_rate;
  nn::AdamOptimizer adam(&store_, opt);
  Rng dropout_rng = rng_.Fork();

  const auto epoch_fn = [&](int epoch) {
    nn::Tape tape(/*training=*/true);
    std::vector<nn::Value> capacity_embs(sim::kNumPeriods);
    const auto periods = ForwardAllPeriods(tape, dropout_rng,
                                           &capacity_embs);
    nn::Value pred =
        rec_model_->PredictPairs(tape, periods, pair_nodes, pair_types);
    nn::Value loss = tape.MseLoss(pred, tape.Input(target_tensor));  // O2
    if (capacity_model_ != nullptr && config_.beta > 0.0) {
      nn::Value o1 = capacity_model_->ReconstructionLossFromEmbeddings(
          tape, capacity_embs);
      loss = tape.Add(loss, tape.Scale(o1, static_cast<float>(config_.beta)));
    }
    final_loss_ = tape.value(loss).at(0, 0);
    tape.Backward(loss);
    if (epoch % 10 == 0 || epoch + 1 == config_.epochs) {
      O2SR_LOG(DEBUG) << "[" << VariantName(config_.variant) << "] epoch "
                      << epoch << " loss " << final_loss_;
    }
    return final_loss_;
  };
  return nn::RunGuardedTraining(&store_, &adam, &dropout_rng,
                                config_.epochs, epoch_fn, config_.guard,
                                hooks, report)
      .WithContext(VariantName(config_.variant));
}

common::StatusOr<std::vector<double>> O2SiteRec::Predict(
    const InteractionList& pairs) const {
  O2SR_TRACE_SCOPE("model.predict");
  std::vector<int> pair_nodes;
  std::vector<int> pair_types;
  for (const Interaction& it : pairs) {
    const int node = hetero_->StoreNodeOfRegion(it.region);
    if (node < 0) {
      return common::InvalidArgumentError(
          std::string(VariantName(config_.variant)) +
          " cannot score pair (region=" + std::to_string(it.region) +
          ", type=" + std::to_string(it.type) +
          "): the region has no store node");
    }
    pair_nodes.push_back(node);
    pair_types.push_back(it.type);
  }
  std::vector<double> out(pairs.size(), 0.0);
  if (pair_nodes.empty()) return out;

  nn::Tape tape(/*training=*/false);
  Rng dropout_rng(0);  // unused in inference mode
  const auto periods = ForwardAllPeriods(tape, dropout_rng, nullptr);
  nn::Value pred =
      rec_model_->PredictPairs(tape, periods, pair_nodes, pair_types);
  const nn::Tensor& values = tape.value(pred);
  for (size_t k = 0; k < pairs.size(); ++k) {
    out[k] = values.at(static_cast<int>(k), 0);
  }
  return out;
}

O2SiteRec::ServingTable O2SiteRec::BuildServingTable() const {
  O2SR_TRACE_SCOPE("model.build_serving_table");
  nn::Tape tape(/*training=*/false);
  Rng dropout_rng(0);  // unused in inference mode
  const auto periods = ForwardAllPeriods(tape, dropout_rng, nullptr);
  ServingTable table;
  table.store_emb.reserve(periods.size());
  table.type_emb.reserve(periods.size());
  for (const HeteroRecModel::PeriodEmbeddings& pe : periods) {
    table.store_emb.push_back(tape.value(pe.h));
    table.type_emb.push_back(tape.value(pe.q));
  }
  return table;
}

common::StatusOr<std::vector<double>> O2SiteRec::PredictWithTable(
    const ServingTable& table, const InteractionList& pairs) const {
  O2SR_CHECK_EQ(table.store_emb.size(),
                static_cast<size_t>(sim::kNumPeriods));
  O2SR_CHECK_EQ(table.type_emb.size(), static_cast<size_t>(sim::kNumPeriods));
  O2SR_TRACE_SCOPE("model.predict_with_table");
  std::vector<int> pair_nodes;
  std::vector<int> pair_types;
  for (const Interaction& it : pairs) {
    const int node = hetero_->StoreNodeOfRegion(it.region);
    if (node < 0) {
      return common::InvalidArgumentError(
          std::string(VariantName(config_.variant)) +
          " cannot score pair (region=" + std::to_string(it.region) +
          ", type=" + std::to_string(it.type) +
          "): the region has no store node");
    }
    pair_nodes.push_back(node);
    pair_types.push_back(it.type);
  }
  std::vector<double> out(pairs.size(), 0.0);
  if (pair_nodes.empty()) return out;

  // The cached tensors are the exact values Predict's ForwardAllPeriods
  // would produce, so feeding them back as inputs keeps the remaining
  // computation (time attention + head) bit-identical.
  nn::Tape tape(/*training=*/false);
  std::vector<HeteroRecModel::PeriodEmbeddings> periods(sim::kNumPeriods);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    periods[p].h = tape.Input(table.store_emb[p]);
    periods[p].q = tape.Input(table.type_emb[p]);
  }
  nn::Value pred =
      rec_model_->PredictPairs(tape, periods, pair_nodes, pair_types);
  const nn::Tensor& values = tape.value(pred);
  for (size_t k = 0; k < pairs.size(); ++k) {
    out[k] = values.at(static_cast<int>(k), 0);
  }
  return out;
}

double O2SiteRec::PredictDeliveryMinutes(int period, int src_region,
                                         int dst_region) const {
  O2SR_CHECK(capacity_model_ != nullptr);
  return capacity_model_->PredictDeliveryMinutes(period, src_region,
                                                 dst_region);
}

}  // namespace o2sr::core
