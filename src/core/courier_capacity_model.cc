#include "core/courier_capacity_model.h"

#include <cmath>

#include "common/check.h"

namespace o2sr::core {

CourierCapacityModel::CourierCapacityModel(
    const graphs::GeoGraph& geo_graph,
    const graphs::MobilityMultiGraph& mobility_graph,
    const CourierCapacityConfig& config, nn::ParameterStore* store, Rng& rng)
    : config_(config),
      num_regions_(geo_graph.num_regions()),
      max_delivery_minutes_(
          std::max(mobility_graph.max_delivery_minutes(), 1.0)) {
  O2SR_CHECK_EQ(geo_graph.num_regions(), mobility_graph.num_regions());
  const int d1 = config_.embedding_dim;

  // Precompute the fixed geographic attention weights (Eq. 2, with the sign
  // fix): alpha(i, j) = softmax_j(-dis(i, j) / scale) over j in N_i^geo.
  for (int i = 0; i < num_regions_; ++i) {
    const auto& neighbors = geo_graph.Neighbors(i);
    const auto& distances = geo_graph.Distances(i);
    if (neighbors.empty()) continue;
    double max_logit = -1e30;
    std::vector<double> logits(neighbors.size());
    for (size_t k = 0; k < neighbors.size(); ++k) {
      logits[k] = -distances[k] / config_.geo_distance_scale_m;
      max_logit = std::max(max_logit, logits[k]);
    }
    double sum = 0.0;
    for (double& l : logits) {
      l = std::exp(l - max_logit);
      sum += l;
    }
    for (size_t k = 0; k < neighbors.size(); ++k) {
      geo_src_.push_back(neighbors[k]);
      geo_dst_.push_back(i);
      geo_weight_.push_back(static_cast<float>(logits[k] / sum));
    }
  }

  // Mobility edges per period: symmetrize for aggregation (a delivery from
  // i to j makes the capacities of both regions related) and keep the
  // directed observations for the reconstruction loss.
  period_edges_.resize(sim::kNumPeriods);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    PeriodEdges& pe = period_edges_[p];
    for (const graphs::MobilityEdge& e : mobility_graph.EdgesInPeriod(p)) {
      pe.obs_src.push_back(e.src);
      pe.obs_dst.push_back(e.dst);
      pe.obs_delivery_norm.push_back(
          static_cast<float>(e.delivery_minutes / max_delivery_minutes_));
      pe.src.push_back(e.src);
      pe.dst.push_back(e.dst);
      if (e.src != e.dst) {
        pe.src.push_back(e.dst);
        pe.dst.push_back(e.src);
      }
    }
  }

  region_embedding_ = nn::Embedding(store, "capacity.region", num_regions_,
                                    d1, rng);
  attention_ = nn::Linear(store, "capacity.psi", 2 * d1, 1, rng,
                          /*with_bias=*/false);
  combine_ = nn::Linear(store, "capacity.Wb", 2 * d1, d1, rng);
  delivery_mlp_ = nn::Linear(store, "capacity.W1", 2 * d1, 1, rng);
}

nn::Value CourierCapacityModel::GeoAggregate(nn::Tape& tape,
                                             nn::Value b) const {
  // b_g^l = sigma(sum_j alpha_geo(i,j) b_g^{l-1}[j]) + b_g^{l-1} (Eq. 3).
  nn::Value messages = tape.GatherRows(b, geo_src_);
  nn::Value weights = tape.Input(nn::Tensor::FromVector(
      static_cast<int>(geo_weight_.size()), 1, geo_weight_));
  nn::Value weighted = tape.MulColBroadcast(messages, weights);
  nn::Value aggregated = tape.SegmentSum(weighted, geo_dst_, num_regions_);
  return tape.Add(tape.Relu(aggregated), b);
}

nn::Value CourierCapacityModel::MobilityAggregate(nn::Tape& tape,
                                                  nn::Value b0,
                                                  int period) const {
  const PeriodEdges& pe = period_edges_[period];
  if (pe.src.empty()) return b0;  // no mobility this period: residual only
  // alpha_mob(i,j) = softmax(sigma(psi^T [b_i^0, b_j^0])) (Eq. 4); GAT uses
  // LeakyReLU as the score nonlinearity.
  nn::Value b_dst = tape.GatherRows(b0, pe.dst);
  nn::Value b_src = tape.GatherRows(b0, pe.src);
  nn::Value scores = tape.LeakyRelu(
      attention_.Apply(tape, tape.ConcatCols({b_dst, b_src})));
  nn::Value alpha = tape.SegmentSoftmax(scores, pe.dst, num_regions_);
  nn::Value weighted = tape.MulColBroadcast(b_src, alpha);
  nn::Value aggregated = tape.SegmentSum(weighted, pe.dst, num_regions_);
  return tape.Add(tape.Relu(aggregated), b0);
}

nn::Value CourierCapacityModel::RegionEmbeddings(nn::Tape& tape,
                                                 int period) const {
  O2SR_CHECK(period >= 0 && period < sim::kNumPeriods);
  nn::Value b0 = region_embedding_.Full(tape);
  nn::Value b_geo = b0;
  for (int l = 0; l < config_.geo_layers; ++l) {
    b_geo = GeoAggregate(tape, b_geo);
  }
  nn::Value b_mob = MobilityAggregate(tape, b0, period);
  // b_i = sigma(W_b [b_g^l, b_s,i]) (Eq. 5).
  return tape.Relu(
      combine_.Apply(tape, tape.ConcatCols({b_geo, b_mob})));
}

nn::Value CourierCapacityModel::EdgeEmbeddings(
    nn::Tape& tape, nn::Value region_emb, const std::vector<int>& src_regions,
    const std::vector<int>& dst_regions) const {
  O2SR_CHECK_EQ(src_regions.size(), dst_regions.size());
  // em^c_{i,j} = [b_j, b_i] with i = src, j = dst.
  nn::Value b_j = tape.GatherRows(region_emb, dst_regions);
  nn::Value b_i = tape.GatherRows(region_emb, src_regions);
  return tape.ConcatCols({b_j, b_i});
}

nn::Value CourierCapacityModel::PredictDeliveryNorm(nn::Tape& tape,
                                                    nn::Value edge_emb) const {
  return tape.Sigmoid(delivery_mlp_.Apply(tape, edge_emb));
}

nn::Value CourierCapacityModel::ReconstructionLoss(nn::Tape& tape,
                                                   int period) const {
  std::vector<nn::Value> region_embs(sim::kNumPeriods);
  const int first = period < 0 ? 0 : period;
  const int last = period < 0 ? sim::kNumPeriods - 1 : period;
  std::vector<nn::Value> losses;
  for (int p = first; p <= last; ++p) {
    const PeriodEdges& pe = period_edges_[p];
    if (pe.obs_src.empty()) continue;
    nn::Value region_emb = RegionEmbeddings(tape, p);
    losses.push_back(PeriodLoss(tape, p, region_emb));
  }
  O2SR_CHECK(!losses.empty());
  nn::Value total = tape.AddN(losses);
  return tape.Scale(total, 1.0f / static_cast<float>(losses.size()));
}

nn::Value CourierCapacityModel::ReconstructionLossFromEmbeddings(
    nn::Tape& tape, const std::vector<nn::Value>& region_embs) const {
  O2SR_CHECK_EQ(region_embs.size(), static_cast<size_t>(sim::kNumPeriods));
  std::vector<nn::Value> losses;
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    if (period_edges_[p].obs_src.empty()) continue;
    losses.push_back(PeriodLoss(tape, p, region_embs[p]));
  }
  O2SR_CHECK(!losses.empty());
  nn::Value total = tape.AddN(losses);
  return tape.Scale(total, 1.0f / static_cast<float>(losses.size()));
}

nn::Value CourierCapacityModel::PeriodLoss(nn::Tape& tape, int period,
                                           nn::Value region_emb) const {
  const PeriodEdges& pe = period_edges_[period];
  nn::Value edge_emb =
      EdgeEmbeddings(tape, region_emb, pe.obs_src, pe.obs_dst);
  nn::Value pred = PredictDeliveryNorm(tape, edge_emb);
  nn::Value target = tape.Input(nn::Tensor::FromVector(
      static_cast<int>(pe.obs_delivery_norm.size()), 1,
      pe.obs_delivery_norm));
  return tape.MaeLoss(pred, target);
}

double CourierCapacityModel::PredictDeliveryMinutes(int period,
                                                    int src_region,
                                                    int dst_region) const {
  nn::Tape tape(/*training=*/false);
  nn::Value region_emb = RegionEmbeddings(tape, period);
  nn::Value edge_emb =
      EdgeEmbeddings(tape, region_emb, {src_region}, {dst_region});
  nn::Value pred = PredictDeliveryNorm(tape, edge_emb);
  return tape.value(pred).at(0, 0) * max_delivery_minutes_;
}

}  // namespace o2sr::core
