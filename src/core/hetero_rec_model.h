#ifndef O2SR_CORE_HETERO_REC_MODEL_H_
#define O2SR_CORE_HETERO_REC_MODEL_H_

#include <string>
#include <vector>

#include "graphs/hetero_graph.h"
#include "nn/layers.h"
#include "nn/tape.h"

namespace o2sr::core {

// Configuration of the heterogeneous multi-graph recommendation model
// (paper §III-E).
struct HeteroRecConfig {
  // d2: node embedding size (paper: 90). Must be divisible by node_heads.
  int embedding_dim = 48;
  // l: number of node-level aggregation layers (paper: 2).
  int layers = 2;
  // Attention heads of the node-level Aggre (paper: 5).
  int node_heads = 4;
  // Attention heads of the time semantics-level aggregation (paper: 2).
  // 2 * embedding_dim must be divisible by time_heads.
  int time_heads = 2;
  double dropout = 0.1;
  // Ablations: false -> mean aggregation (w/o NA) / mean over periods
  // (w/o SA).
  bool node_attention = true;
  bool time_attention = true;
};

// The heterogeneous multi-graph based recommendation model: node attribute
// fusion, S-U edge attribute fusion with the courier capacity embedding,
// node-level multi-head attention aggregation over the S-U/S-A/U-A edges
// (Eq. 7-12), time semantics-level attention across the period subgraphs
// (Eq. 13-15) and an order-count prediction head (Eq. 16).
class HeteroRecModel {
 public:
  // `capacity_edge_dim` is the width of the courier-capacity edge embedding
  // appended to the S-U edge attributes (0 disables fusion, the w/o Co
  // variant).
  HeteroRecModel(const graphs::HeteroMultiGraph* graph,
                 const HeteroRecConfig& config, int capacity_edge_dim,
                 nn::ParameterStore* store, Rng& rng);

  // Node embeddings of one period's subgraph after `layers` rounds of
  // node-level aggregation.
  struct PeriodEmbeddings {
    nn::Value h;  // store-region embeddings [S, d2]
    nn::Value q;  // store-type embeddings   [A, d2]
  };

  // Runs node fusion + node-level aggregation on the period's subgraph.
  // `su_capacity_emb` carries em^c rows aligned with the period's S-U edges
  // (pass an invalid Value when capacity_edge_dim == 0).
  PeriodEmbeddings ForwardPeriod(nn::Tape& tape, int period,
                                 nn::Value su_capacity_emb,
                                 Rng& dropout_rng) const;

  // Time semantics-level aggregation + prediction: for each (store-region
  // node, type) pair returns the predicted normalized order count [P, 1].
  // `periods` must hold one entry per period, in order.
  nn::Value PredictPairs(nn::Tape& tape,
                         const std::vector<PeriodEmbeddings>& periods,
                         const std::vector<int>& pair_store_nodes,
                         const std::vector<int>& pair_types) const;

  const HeteroRecConfig& config() const { return config_; }
  const graphs::HeteroMultiGraph& graph() const { return *graph_; }

 private:
  // One relation's multi-head attention aggregation (the Aggre of
  // Eq. 10-12): messages flow src -> dst.
  struct RelationAttention {
    nn::Linear fuse;                  // W: [src_dim + attr_dim -> d2]
    std::vector<nn::Linear> w_key;    // per head: [d2 -> dk]
    std::vector<nn::Linear> w_query;  // per head: [d2 -> dk]
    nn::Parameter* w_edge = nullptr;  // W_e: [dk x dk], shared by edge type
  };

  RelationAttention MakeRelation(const std::string& name, int attr_dim,
                                 nn::ParameterStore* store, Rng& rng);

  // Computes Aggre for one relation. `src_idx`/`dst_idx` are per-edge node
  // indices; `attrs` is [E, attr_dim] (invalid Value when attr_dim == 0);
  // result is [num_dst, d2]. Falls back to segment-mean when
  // node_attention is false.
  nn::Value Aggregate(nn::Tape& tape, const RelationAttention& rel,
                      nn::Value src_emb, nn::Value dst_emb,
                      const std::vector<int>& src_idx,
                      const std::vector<int>& dst_idx, nn::Value attrs,
                      int num_dst) const;

  HeteroRecConfig config_;
  const graphs::HeteroMultiGraph* graph_;  // not owned
  int capacity_edge_dim_;
  int su_attr_dim_;

  // Initial (latent) node embeddings h', z', q'.
  nn::Embedding store_embedding_;
  nn::Embedding customer_embedding_;
  nn::Embedding type_embedding_;
  // Node attribute fusion W_S, W_U.
  nn::Linear store_fuse_;
  nn::Linear customer_fuse_;
  // Per-layer relation attentions and combine weights.
  struct Layer {
    RelationAttention su;  // U -> S
    RelationAttention sa;  // A -> S
    RelationAttention ua;  // A -> U
    RelationAttention as;  // S -> A
    nn::Linear w_s;        // W_S^l
    nn::Linear w_u;        // W_U^l
    nn::Linear w_a;        // W_A^l
  };
  std::vector<Layer> layers_;
  // Time semantics-level attention.
  std::vector<nn::Linear> time_key_;
  std::vector<nn::Linear> time_query_;
  // Prediction head W_2.
  nn::Linear predict_;
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_HETERO_REC_MODEL_H_
