#ifndef O2SR_CORE_O2SITEREC_H_
#define O2SR_CORE_O2SITEREC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/courier_capacity_model.h"
#include "core/hetero_rec_model.h"
#include "core/interaction.h"
#include "graphs/geo_graph.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"
#include "nn/parameter.h"
#include "nn/trainer.h"
#include "sim/dataset.h"

namespace o2sr::core {

// Model variants used by the paper's ablation study (§IV-A5).
enum class O2SiteRecVariant {
  kFull = 0,
  // w/o Co: no courier capacity model; S-U edges built with a fixed scope.
  kNoCapacity,
  // w/o CoCu: additionally drops the S-U and U-A edges entirely.
  kNoCapacityNoCustomer,
  // w/o NA: mean aggregation instead of the node-level attention.
  kMeanNodeAggregation,
  // w/o SA: mean over periods instead of the time semantics attention.
  kMeanTimeAggregation,
};

const char* VariantName(O2SiteRecVariant variant);

// End-to-end configuration (paper §IV-A3 lists the original values; the
// defaults here are sized for CPU training; benches override per table).
struct O2SiteRecConfig {
  CourierCapacityConfig capacity;
  HeteroRecConfig rec;
  // Trade-off beta of Loss = O2 + beta * O1 (paper: 0.2).
  double beta = 0.2;
  // Adam learning rate (paper: 1e-4 on GPU for many epochs; the default
  // here trades a larger step for far fewer epochs).
  double learning_rate = 3e-3;
  int epochs = 60;
  // Courier mobility edges observed fewer times are dropped as noise.
  int mobility_min_transactions = 1;
  // S-U edge construction options (order-ratio threshold etc.); the
  // capacity flags are overridden by `variant`.
  graphs::HeteroGraphOptions graph_options;
  O2SiteRecVariant variant = O2SiteRecVariant::kFull;
  uint64_t seed = 7;
  // Per-epoch loss narration goes through the leveled logger at DEBUG
  // (O2SR_LOG_LEVEL=debug to see it); there is no bespoke verbose flag.
  // Fault-tolerance guardrails of the training loop (NaN sentinels,
  // rollback/backoff, crash-safe checkpointing — see nn/trainer.h). Set
  // `guard.checkpoint_path` to make Train resumable across process crashes.
  nn::GuardrailOptions guard;
};

// The O2-SiteRec framework (paper Eq. 1): builds the three graphs from a
// dataset, trains the courier capacity model and the heterogeneous
// multi-graph recommendation model jointly (Loss = O2 + beta * O1, Eq. 17),
// and predicts normalized order counts for (region, type) pairs.
//
// `visible_orders` are the orders the model may learn from (the training
// portion); statistics of held-out (region, type) interactions must not
// leak into graph attributes.
class O2SiteRec {
 public:
  O2SiteRec(const sim::Dataset& data,
            const std::vector<sim::Order>& visible_orders,
            const O2SiteRecConfig& config);

  // Full-batch joint training on the given interactions under the config's
  // guardrails: per-epoch NaN/Inf sweeps, divergence monitoring with
  // rollback + learning-rate backoff, and (when configured) crash-safe
  // checkpointing with transparent resume. Returns a descriptive error
  // when the input is untrainable or the recovery budget runs out; `hooks`
  // and `report` expose the fault-injection/diagnostic surface of
  // nn::RunGuardedTraining.
  common::Status Train(const InteractionList& train,
                       const nn::TrainHooks& hooks = {},
                       nn::TrainReport* report = nullptr);

  // Predicted normalized order count per pair. Strict: a pair whose region
  // has no store node is an InvalidArgument error — callers restrict the
  // pair list to store regions (SiteRecommendationService filters its
  // candidates; eval interactions only ever name store regions).
  common::StatusOr<std::vector<double>> Predict(
      const InteractionList& pairs) const;

  // Courier-capacity inference: predicted delivery minutes between regions
  // (only valid for variants that keep the capacity model).
  double PredictDeliveryMinutes(int period, int src_region,
                                int dst_region) const;

  // Serving fast path: the per-period node embeddings after the full
  // multi-graph attention forward pass — everything in Predict that does
  // NOT depend on the queried pairs. A serving engine materializes the
  // table once per loaded model; PredictWithTable then only runs the
  // time-semantics attention + prediction head over the queried pairs.
  struct ServingTable {
    std::vector<nn::Tensor> store_emb;  // per period: [S, d2]
    std::vector<nn::Tensor> type_emb;   // per period: [A, d2]
  };
  ServingTable BuildServingTable() const;

  // Bit-identical to Predict on the same pairs (the table holds the exact
  // forward-pass values Predict would recompute; the remaining computation
  // is the same graph of ops on the same inputs).
  common::StatusOr<std::vector<double>> PredictWithTable(
      const ServingTable& table, const InteractionList& pairs) const;

  bool has_capacity_model() const { return capacity_model_ != nullptr; }
  const graphs::HeteroMultiGraph& hetero_graph() const { return *hetero_; }
  const O2SiteRecConfig& config() const { return config_; }
  size_t NumParameters() const { return store_.NumScalars(); }
  // Learned state, for snapshot export/restore (serve/snapshot.h).
  const nn::ParameterStore& parameters() const { return store_; }
  nn::ParameterStore& mutable_parameters() { return store_; }
  // Training loss of the last epoch (for convergence checks).
  double final_loss() const { return final_loss_; }

 private:
  // Builds per-period S-U capacity edge embeddings and period embeddings
  // on the tape; shared by Train and Predict.
  std::vector<HeteroRecModel::PeriodEmbeddings> ForwardAllPeriods(
      nn::Tape& tape, Rng& dropout_rng,
      std::vector<nn::Value>* capacity_region_embs) const;

  O2SiteRecConfig config_;
  Rng rng_;
  nn::ParameterStore store_;
  std::unique_ptr<graphs::GeoGraph> geo_;
  std::unique_ptr<graphs::MobilityMultiGraph> mobility_;
  std::unique_ptr<features::OrderStats> stats_;
  std::unique_ptr<graphs::HeteroMultiGraph> hetero_;
  std::unique_ptr<CourierCapacityModel> capacity_model_;
  std::unique_ptr<HeteroRecModel> rec_model_;
  // Per-period S-U edge region pairs (src = store region, dst = customer
  // region) for capacity edge embedding lookup.
  std::vector<std::vector<int>> su_src_regions_;
  std::vector<std::vector<int>> su_dst_regions_;
  double final_loss_ = 0.0;
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_O2SITEREC_H_
