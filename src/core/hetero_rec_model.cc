#include "core/hetero_rec_model.h"

#include <cmath>

#include "common/check.h"

namespace o2sr::core {

namespace {

// Packs per-edge attribute columns into a tensor: columns[k][e].
nn::Tensor PackAttrs(const std::vector<std::vector<float>>& columns) {
  const int cols = static_cast<int>(columns.size());
  const int rows = cols > 0 ? static_cast<int>(columns[0].size()) : 0;
  nn::Tensor out(rows, cols);
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) out.at(r, c) = columns[c][r];
  }
  return out;
}

}  // namespace

HeteroRecModel::RelationAttention HeteroRecModel::MakeRelation(
    const std::string& name, int attr_dim, nn::ParameterStore* store,
    Rng& rng) {
  const int d2 = config_.embedding_dim;
  const int dk = d2 / config_.node_heads;
  RelationAttention rel;
  rel.fuse = nn::Linear(store, name + ".fuse", d2 + attr_dim, d2, rng);
  for (int i = 0; i < config_.node_heads; ++i) {
    rel.w_key.emplace_back(store, name + ".k" + std::to_string(i), d2, dk,
                           rng, /*with_bias=*/false);
    rel.w_query.emplace_back(store, name + ".q" + std::to_string(i), d2, dk,
                             rng, /*with_bias=*/false);
  }
  rel.w_edge = store->CreateXavier(name + ".We", dk, dk, rng);
  return rel;
}

HeteroRecModel::HeteroRecModel(const graphs::HeteroMultiGraph* graph,
                               const HeteroRecConfig& config,
                               int capacity_edge_dim,
                               nn::ParameterStore* store, Rng& rng)
    : config_(config), graph_(graph), capacity_edge_dim_(capacity_edge_dim) {
  O2SR_CHECK(graph != nullptr);
  O2SR_CHECK(store != nullptr);
  const int d2 = config_.embedding_dim;
  O2SR_CHECK_GT(d2, 0);
  O2SR_CHECK_EQ(d2 % config_.node_heads, 0);
  O2SR_CHECK_EQ((2 * d2) % config_.time_heads, 0);

  const int fdim = graph->store_features().cols();
  // phi_su,t = [distance, transactions] plus the fused courier-capacity
  // edge embedding em^c (paper §III-E step 2).
  su_attr_dim_ = 2 + capacity_edge_dim_;

  store_embedding_ = nn::Embedding(store, "rec.h", graph->num_store_nodes(),
                                   d2, rng);
  customer_embedding_ = nn::Embedding(store, "rec.z",
                                      graph->num_customer_nodes(), d2, rng);
  type_embedding_ = nn::Embedding(store, "rec.q", graph->num_types(), d2,
                                  rng);
  store_fuse_ = nn::Linear(store, "rec.Ws_fuse", d2 + fdim, d2, rng);
  customer_fuse_ = nn::Linear(store, "rec.Wu_fuse", d2 + fdim, d2, rng);

  for (int l = 0; l < config_.layers; ++l) {
    const std::string prefix = "rec.l" + std::to_string(l);
    Layer layer;
    layer.su = MakeRelation(prefix + ".su", su_attr_dim_, store, rng);
    layer.sa = MakeRelation(prefix + ".sa", 3, store, rng);
    layer.ua = MakeRelation(prefix + ".ua", 1, store, rng);
    layer.as = MakeRelation(prefix + ".as", 3, store, rng);
    layer.w_s = nn::Linear(store, prefix + ".Ws", d2, d2, rng);
    layer.w_u = nn::Linear(store, prefix + ".Wu", d2, d2, rng);
    layer.w_a = nn::Linear(store, prefix + ".Wa", d2, d2, rng);
    layers_.push_back(std::move(layer));
  }

  const int dk2 = 2 * d2 / config_.time_heads;
  for (int i = 0; i < config_.time_heads; ++i) {
    time_key_.emplace_back(store, "rec.time.k" + std::to_string(i), 2 * d2,
                           dk2, rng, /*with_bias=*/false);
    time_query_.emplace_back(store, "rec.time.q" + std::to_string(i), 2 * d2,
                             dk2, rng, /*with_bias=*/false);
  }
  predict_ = nn::Linear(store, "rec.W2", 2 * d2, 1, rng);
}

nn::Value HeteroRecModel::Aggregate(nn::Tape& tape,
                                    const RelationAttention& rel,
                                    nn::Value src_emb, nn::Value dst_emb,
                                    const std::vector<int>& src_idx,
                                    const std::vector<int>& dst_idx,
                                    nn::Value attrs, int num_dst) const {
  O2SR_CHECK_EQ(src_idx.size(), dst_idx.size());
  const int d2 = config_.embedding_dim;
  if (src_idx.empty()) {
    // No edges: contribute nothing.
    return tape.Input(nn::Tensor(num_dst, d2));
  }
  nn::Value src_rows = tape.GatherRows(src_emb, src_idx);

  if (!config_.node_attention) {
    // w/o NA ablation: plain mean aggregation of source embeddings.
    return tape.SegmentMean(src_rows, dst_idx, num_dst);
  }

  // Fused message: sigma(W [z_u, phi]) (Eq. 10).
  nn::Value fused = attrs.valid()
                        ? tape.ConcatCols({src_rows, attrs})
                        : src_rows;
  fused = tape.Relu(rel.fuse.Apply(tape, fused));

  nn::Value dst_rows = tape.GatherRows(dst_emb, dst_idx);
  const int dk = d2 / config_.node_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  std::vector<nn::Value> heads;
  heads.reserve(config_.node_heads);
  for (int i = 0; i < config_.node_heads; ++i) {
    nn::Value key = rel.w_key[i].Apply(tape, fused);          // K^i (Eq. 10)
    nn::Value query = rel.w_query[i].Apply(tape, dst_rows);   // Q^i
    // alpha^i = softmax(sigma(K^i W_e Q^i^T)) (Eq. 11), per destination.
    nn::Value key_we = tape.MatMul(key, tape.Param(rel.w_edge));
    nn::Value scores =
        tape.Scale(tape.LeakyRelu(tape.RowwiseDot(key_we, query)), scale);
    nn::Value alpha = tape.SegmentSoftmax(scores, dst_idx, num_dst);
    // sigma(sum K^i alpha) per destination (Eq. 12).
    nn::Value weighted = tape.MulColBroadcast(key, alpha);
    heads.push_back(tape.Relu(tape.SegmentSum(weighted, dst_idx, num_dst)));
  }
  return tape.ConcatCols(heads);
}

HeteroRecModel::PeriodEmbeddings HeteroRecModel::ForwardPeriod(
    nn::Tape& tape, int period, nn::Value su_capacity_emb,
    Rng& dropout_rng) const {
  const graphs::HeteroSubgraph& sub = graph_->Subgraph(period);
  const int num_s = graph_->num_store_nodes();
  const int num_u = graph_->num_customer_nodes();
  const int num_a = graph_->num_types();

  // ---- Node attribute fusion (Eq. in §III-E step 1) -----------------------
  nn::Value h = tape.Relu(store_fuse_.Apply(
      tape, tape.ConcatCols({store_embedding_.Full(tape),
                             tape.Input(graph_->store_features())})));
  nn::Value z = tape.Relu(customer_fuse_.Apply(
      tape, tape.ConcatCols({customer_embedding_.Full(tape),
                             tape.Input(graph_->customer_features())})));
  nn::Value q = type_embedding_.Full(tape);
  h = tape.Dropout(h, config_.dropout, dropout_rng);
  z = tape.Dropout(z, config_.dropout, dropout_rng);

  // ---- Edge index/attribute tensors ---------------------------------------
  std::vector<int> su_src, su_dst;
  std::vector<std::vector<float>> su_cols(2);
  for (const graphs::SuEdge& e : sub.su_edges) {
    su_src.push_back(e.u);
    su_dst.push_back(e.s);
    su_cols[0].push_back(e.distance_norm);
    su_cols[1].push_back(e.transactions_norm);
  }
  nn::Value su_attrs;
  if (!sub.su_edges.empty()) {
    su_attrs = tape.Input(PackAttrs(su_cols));
    if (capacity_edge_dim_ > 0) {
      // Edge attribute fusion phi' = [phi, em^c] (§III-E step 2).
      O2SR_CHECK(su_capacity_emb.valid());
      O2SR_CHECK_EQ(tape.rows(su_capacity_emb),
                    static_cast<int>(sub.su_edges.size()));
      su_attrs = tape.ConcatCols({su_attrs, su_capacity_emb});
    }
  }

  std::vector<int> sa_src_a, sa_dst_s;
  std::vector<std::vector<float>> sa_cols(3);
  for (const graphs::SaEdge& e : graph_->sa_edges()) {
    sa_src_a.push_back(e.a);
    sa_dst_s.push_back(e.s);
    sa_cols[0].push_back(e.competitiveness);
    sa_cols[1].push_back(e.complementarity);
    sa_cols[2].push_back(e.orders_norm);
  }
  nn::Value sa_attrs = sa_src_a.empty() ? nn::Value{}
                                        : tape.Input(PackAttrs(sa_cols));

  std::vector<int> ua_src_a, ua_dst_u;
  std::vector<std::vector<float>> ua_cols(1);
  for (const graphs::UaEdge& e : sub.ua_edges) {
    ua_src_a.push_back(e.a);
    ua_dst_u.push_back(e.u);
    ua_cols[0].push_back(e.transactions_norm);
  }
  nn::Value ua_attrs = ua_src_a.empty() ? nn::Value{}
                                        : tape.Input(PackAttrs(ua_cols));

  // ---- Node-level aggregation, `layers` rounds (Eq. 7-9) ------------------
  for (const Layer& layer : layers_) {
    nn::Value aggre_su = Aggregate(tape, layer.su, z, h, su_src, su_dst,
                                   su_attrs, num_s);
    nn::Value aggre_sa = Aggregate(tape, layer.sa, q, h, sa_src_a, sa_dst_s,
                                   sa_attrs, num_s);
    nn::Value aggre_ua = Aggregate(tape, layer.ua, q, z, ua_src_a, ua_dst_u,
                                   ua_attrs, num_u);
    nn::Value aggre_as = Aggregate(tape, layer.as, h, q, sa_dst_s, sa_src_a,
                                   sa_attrs, num_a);
    // h^l = sigma(W_S^l(Aggre_SU + Aggre_SA + h^{l-1})) (Eq. 7), etc.
    nn::Value h_next = tape.Relu(
        layer.w_s.Apply(tape, tape.AddN({aggre_su, aggre_sa, h})));
    nn::Value z_next =
        tape.Relu(layer.w_u.Apply(tape, tape.AddN({aggre_ua, z})));
    nn::Value q_next =
        tape.Relu(layer.w_a.Apply(tape, tape.AddN({aggre_as, q})));
    h = tape.Dropout(h_next, config_.dropout, dropout_rng);
    z = tape.Dropout(z_next, config_.dropout, dropout_rng);
    q = q_next;
  }
  return {h, q};
}

nn::Value HeteroRecModel::PredictPairs(
    nn::Tape& tape, const std::vector<PeriodEmbeddings>& periods,
    const std::vector<int>& pair_store_nodes,
    const std::vector<int>& pair_types) const {
  O2SR_CHECK_EQ(periods.size(), static_cast<size_t>(sim::kNumPeriods));
  O2SR_CHECK_EQ(pair_store_nodes.size(), pair_types.size());
  const int d2 = config_.embedding_dim;
  const int J = sim::kNumPeriods;

  // H_sa,t = [h_s,t, q_a,t] per pair and period (§III-E step 4).
  std::vector<nn::Value> h_t(J);
  for (int t = 0; t < J; ++t) {
    h_t[t] = tape.ConcatCols(
        {tape.GatherRows(periods[t].h, pair_store_nodes),
         tape.GatherRows(periods[t].q, pair_types)});
  }

  nn::Value h_sa;
  if (!config_.time_attention) {
    // w/o SA ablation: mean over periods.
    h_sa = tape.Scale(tape.AddN(h_t), 1.0f / static_cast<float>(J));
  } else {
    // Multi-head attention over periods (Eq. 13-15): per head, each
    // period's key/query come from its own H_sa,t; the attention weight of
    // period t_j is softmax_j(<Q_tj, K_tj>).
    const int dk2 = 2 * d2 / config_.time_heads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(dk2));
    std::vector<nn::Value> heads;
    for (int i = 0; i < config_.time_heads; ++i) {
      std::vector<nn::Value> keys(J);
      std::vector<nn::Value> scores(J);
      for (int t = 0; t < J; ++t) {
        keys[t] = time_key_[i].Apply(tape, h_t[t]);
        nn::Value query = time_query_[i].Apply(tape, h_t[t]);
        scores[t] = tape.Scale(tape.RowwiseDot(query, keys[t]), scale);
      }
      nn::Value alpha = tape.SoftmaxRows(tape.ConcatCols(scores));  // [P, J]
      std::vector<nn::Value> weighted(J);
      for (int t = 0; t < J; ++t) {
        weighted[t] =
            tape.MulColBroadcast(keys[t], tape.SliceCols(alpha, t, 1));
      }
      heads.push_back(tape.Relu(tape.AddN(weighted)));
    }
    h_sa = tape.ConcatCols(heads);
  }

  // p_hat = sigma(W_2 H_sa) (§III-E step 5); targets are normalized to
  // [0, 1] so a sigmoid head matches their range.
  return tape.Sigmoid(predict_.Apply(tape, h_sa));
}

}  // namespace o2sr::core
