#ifndef O2SR_CORE_INTERACTION_H_
#define O2SR_CORE_INTERACTION_H_

#include <vector>

namespace o2sr::core {

// One historical interaction between a store-region and a store-type: the
// unit of the 80/20 train/test split (paper §IV-A2). `target` is the order
// count normalized to [0, 1] within the type; `orders` keeps the raw count
// for ranking ground truth.
struct Interaction {
  int region = 0;
  int type = 0;
  double orders = 0.0;
  double target = 0.0;
};

using InteractionList = std::vector<Interaction>;

}  // namespace o2sr::core

#endif  // O2SR_CORE_INTERACTION_H_
