#ifndef O2SR_CORE_COURIER_CAPACITY_MODEL_H_
#define O2SR_CORE_COURIER_CAPACITY_MODEL_H_

#include <vector>

#include "graphs/geo_graph.h"
#include "graphs/mobility_graph.h"
#include "nn/layers.h"
#include "nn/tape.h"

namespace o2sr::core {

// Configuration of the courier capacity model (paper §III-D).
struct CourierCapacityConfig {
  // d1: region embedding size (paper: 20).
  int embedding_dim = 20;
  // l: number of geographic semantic aggregation layers (paper: 2).
  int geo_layers = 2;
  // Distance scale (meters) of the geographic attention weights.
  double geo_distance_scale_m = 800.0;
};

// Courier capacity model: a multi-semantic relation graph attention network
// that learns per-region embeddings from (i) geographic proximity and (ii)
// courier mobility, trained to reconstruct observed delivery times on the
// courier mobility multi-graph (Eq. 2-6). The learned edge embeddings carry
// fine-grained courier capacity and feed the recommendation model's S-U
// edges.
//
// Deviation from the printed paper: Eq. 2 normalizes exp(+dis) which would
// weight *farther* neighbors more; we use softmax(-dis/scale) so closer
// regions dominate (an evident sign typo — the surrounding text motivates
// the weights by "geographically adjacent regions have similar courier
// capacity").
class CourierCapacityModel {
 public:
  CourierCapacityModel(const graphs::GeoGraph& geo_graph,
                       const graphs::MobilityMultiGraph& mobility_graph,
                       const CourierCapacityConfig& config,
                       nn::ParameterStore* store, Rng& rng);

  // Final per-region embeddings b_i for the period: [num_regions, d1]
  // (Eq. 3-5). Build once per tape per period and reuse.
  nn::Value RegionEmbeddings(nn::Tape& tape, int period) const;

  // Edge embedding em^c_{i,j} = [b_j, b_i] for the given region pairs:
  // [pairs, 2*d1]. `region_emb` must come from RegionEmbeddings on the same
  // tape.
  nn::Value EdgeEmbeddings(nn::Tape& tape, nn::Value region_emb,
                           const std::vector<int>& src_regions,
                           const std::vector<int>& dst_regions) const;

  // Normalized delivery-time prediction head: [pairs, 1] in [0, 1].
  nn::Value PredictDeliveryNorm(nn::Tape& tape, nn::Value edge_emb) const;

  // Reconstruction loss O1 (Eq. 6): mean absolute error between predicted
  // and observed delivery times (normalized) over the period's mobility
  // edges. Returns an all-period average when period < 0.
  nn::Value ReconstructionLoss(nn::Tape& tape, int period = -1) const;

  // Like ReconstructionLoss(tape, -1) but reusing per-period region
  // embeddings already built on this tape (avoids recomputing the forward
  // pass during joint training). `region_embs` holds one entry per period.
  nn::Value ReconstructionLossFromEmbeddings(
      nn::Tape& tape, const std::vector<nn::Value>& region_embs) const;

  // Inference helper: predicted delivery minutes from region i to j in the
  // period (builds a throwaway tape).
  double PredictDeliveryMinutes(int period, int src_region,
                                int dst_region) const;

  int edge_embedding_dim() const { return 2 * config_.embedding_dim; }
  const CourierCapacityConfig& config() const { return config_; }

 private:
  // Geographic semantic aggregation (Eq. 2-3) applied `geo_layers` times.
  nn::Value GeoAggregate(nn::Tape& tape, nn::Value b) const;
  // Mobility semantic aggregation via GAT attention (Eq. 4).
  nn::Value MobilityAggregate(nn::Tape& tape, nn::Value b0,
                              int period) const;
  // MAE reconstruction term of one period given its region embeddings.
  nn::Value PeriodLoss(nn::Tape& tape, int period, nn::Value region_emb) const;

  CourierCapacityConfig config_;
  int num_regions_;
  double max_delivery_minutes_;

  // Fixed geographic attention: flattened edge lists with precomputed
  // softmax(-dis/scale) weights per destination region.
  std::vector<int> geo_src_;
  std::vector<int> geo_dst_;
  std::vector<float> geo_weight_;

  // Mobility edges per period, symmetrized for aggregation; attributes are
  // normalized delivery times of the original directed edges.
  struct PeriodEdges {
    std::vector<int> src;
    std::vector<int> dst;
    // Original directed edges with ground-truth delivery time (normalized),
    // used by the reconstruction loss.
    std::vector<int> obs_src;
    std::vector<int> obs_dst;
    std::vector<float> obs_delivery_norm;
  };
  std::vector<PeriodEdges> period_edges_;

  nn::Embedding region_embedding_;
  nn::Linear attention_;    // psi: [2*d1 -> 1]
  nn::Linear combine_;      // W_b: [2*d1 -> d1]
  nn::Linear delivery_mlp_; // W_1: [2*d1 -> 1]
};

}  // namespace o2sr::core

#endif  // O2SR_CORE_COURIER_CAPACITY_MODEL_H_
