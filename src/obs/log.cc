#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace o2sr::obs {

namespace {

std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

LogSink& SinkStorage() {
  static LogSink sink;  // empty = default stderr sink
  return sink;
}

LogLevel LevelFromEnv() {
  const char* env = std::getenv("O2SR_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = ParseLogLevel(env); parsed.has_value()) {
      return *parsed;
    }
    std::fprintf(stderr,
                 "[W log.cc] unknown O2SR_LOG_LEVEL '%s' "
                 "(expected debug|info|warning|error|off); using info\n",
                 env);
  }
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& MinLevelStorage() {
  static std::atomic<LogLevel> level{LevelFromEnv()};
  return level;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarning: return "warning";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) return level;
  }
  return std::nullopt;
}

LogLevel MinLogLevel() {
  return MinLevelStorage().load(std::memory_order_relaxed);
}

void SetMinLogLevel(LogLevel level) {
  MinLevelStorage().store(level, std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkStorage() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(Basename(file)), line_(line) {}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  const LogSink& sink = SinkStorage();
  if (sink) {
    sink(level_, file_, line_, message);
    return;
  }
  static constexpr char kLetter[] = {'D', 'I', 'W', 'E'};
  std::fprintf(stderr, "[%c %s:%d] %s\n",
               kLetter[static_cast<int>(level_)], file_, line_,
               message.c_str());
}

}  // namespace internal

}  // namespace o2sr::obs
