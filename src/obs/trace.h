#ifndef O2SR_OBS_TRACE_H_
#define O2SR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace o2sr::obs {

// Scoped-timer tracing. Call sites mark a region with
//
//   O2SR_TRACE_SCOPE("train.epoch");
//
// and the enclosing scope becomes a span in the global recorder. Spans
// nest: the recorder tracks the open-span stack, so the export preserves
// the call-tree structure. The recorder is always on (an in-memory span of
// a coarse region costs two clock reads and one short critical section;
// the instrumented regions are epoch- and stage-sized, so the overhead is
// well under the 3% budget — see DESIGN.md §7).
//
// Exports:
//  * Chrome trace_event JSON (chrome://tracing, Perfetto) — written to
//    $O2SR_TRACE_FILE at process exit when that variable is set, or
//    explicitly via WriteChromeTrace.
//  * StageMillis() — wall-clock totals aggregated by span name, used by
//    the bench reports for per-stage timing cells.
//
// Spans are process-global and single-clocked; recording from multiple
// threads is safe: the span buffer is mutex-protected and nesting depth is
// tracked per thread, so spans opened on exec::ThreadPool workers (parallel
// regions, bench seed replicas) nest correctly within their own thread.
// The Chrome export tags each span with a small per-thread id.

struct TraceSpan {
  std::string name;
  int64_t start_us = 0;
  int64_t dur_us = -1;  // -1 while the span is still open
  int depth = 0;        // 0 = root of its nesting tree (per thread)
  int tid = 0;          // small per-thread id, first-use order
};

// A point-in-time counter sample, exported as a Chrome trace_event counter
// ("ph":"C") so chrome://tracing renders it as a stacked counter track.
// The profiler emits these for its dispatch/allocation aggregates.
struct TraceCounterEvent {
  std::string name;
  int64_t ts_us = 0;
  double value = 0.0;
  int tid = 0;
};

class TraceRecorder {
 public:
  // Microsecond clock; injectable so tests get deterministic timestamps.
  using Clock = std::function<int64_t()>;

  TraceRecorder();                       // steady_clock-backed
  explicit TraceRecorder(Clock clock);   // test clock

  // The process-wide recorder used by O2SR_TRACE_SCOPE. On first use it
  // reads O2SR_TRACE_FILE and, when set, registers an at-exit Chrome-trace
  // writer to that path.
  static TraceRecorder& Global();

  // Spans recorded after SetRecording(false) are dropped (the macro still
  // costs one atomic load). Recording defaults to on.
  void SetRecording(bool recording) {
    recording_.store(recording, std::memory_order_relaxed);
  }
  bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }

  // Begins a span; returns its handle, or -1 when not recording / at the
  // span cap. Prefer O2SR_TRACE_SCOPE over calling these directly.
  int64_t Begin(const char* name);
  void End(int64_t handle);

  // Records one counter sample at the current clock value (dropped when not
  // recording or past the counter cap).
  void RecordCounter(const char* name, double value);

  size_t span_count() const;
  uint64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::vector<TraceSpan> Snapshot() const;
  std::vector<TraceCounterEvent> CounterSnapshot() const;
  void Clear();

  // Wall-clock milliseconds summed per span name (every depth by default;
  // nested spans overlap their parents, so totals of different names are
  // not additive). Open spans count up to `now`. Restrict with max_depth
  // to aggregate only the top of the tree.
  std::map<std::string, double> StageMillis(int max_depth = 1 << 30) const;

  // {"displayTimeUnit":"ms","traceEvents":[{"name":..,"cat":"o2sr",
  //  "ph":"X","ts":..,"dur":..,"pid":0,"tid":0},...]} — spans in recording
  //  order; open spans are closed at the current clock value. Counter
  //  samples follow the spans as "ph":"C" events carrying
  //  {"args":{"value":..}}.
  std::string ExportChromeTraceJson() const;
  common::Status WriteChromeTrace(const std::string& path) const;

 private:
  Clock clock_;
  std::atomic<bool> recording_{true};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceCounterEvent> counters_;
  // Keep the span buffer bounded; a long-running process should not grow
  // without limit. Coarse-grained spans never come close to this.
  static constexpr size_t kMaxSpans = 1 << 20;
  static constexpr size_t kMaxCounters = 1 << 16;
};

// RAII span over the enclosing scope.
class ScopedTrace {
 public:
  explicit ScopedTrace(const char* name,
                       TraceRecorder* recorder = &TraceRecorder::Global())
      : recorder_(recorder), handle_(recorder->Begin(name)) {}
  ~ScopedTrace() {
    if (handle_ >= 0) recorder_->End(handle_);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceRecorder* recorder_;
  int64_t handle_;
};

}  // namespace o2sr::obs

#define O2SR_TRACE_CONCAT_INNER_(a, b) a##b
#define O2SR_TRACE_CONCAT_(a, b) O2SR_TRACE_CONCAT_INNER_(a, b)
#define O2SR_TRACE_SCOPE(name) \
  ::o2sr::obs::ScopedTrace O2SR_TRACE_CONCAT_(o2sr_trace_scope_, __LINE__)( \
      name)

#endif  // O2SR_OBS_TRACE_H_
