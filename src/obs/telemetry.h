#ifndef O2SR_OBS_TELEMETRY_H_
#define O2SR_OBS_TELEMETRY_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace o2sr::obs {

// Training telemetry vocabulary. The guarded trainer
// (nn::RunGuardedTraining) emits one TrainEvent per completed epoch plus
// one per anomaly (rollback recovery, checkpoint resume); obs defines the
// record so every layer above nn — eval, benches, tests — can consume the
// stream without depending on trainer internals.

enum class TrainEventKind {
  kEpoch = 0,     // a successfully completed epoch
  kRecovery = 1,  // sentinel trip -> rollback + learning-rate backoff
  kResume = 2,    // training picked up an existing checkpoint
};

const char* TrainEventKindName(TrainEventKind kind);

struct TrainEvent {
  TrainEventKind kind = TrainEventKind::kEpoch;
  int epoch = 0;
  double loss = 0.0;           // epoch loss (kEpoch) or best loss (kResume)
  double grad_norm = 0.0;      // global L2 norm over all gradients (kEpoch)
  double learning_rate = 0.0;  // in effect after this event
  int recoveries = 0;          // cumulative recoveries so far
  std::string note;  // trip description (kRecovery) / path (kResume)
};

// One event as a single-line JSON object, e.g.
// {"event":"epoch","epoch":3,"loss":0.0123,"grad_norm":0.5,
//  "learning_rate":0.003,"recoveries":0}. `note` appears only when
// non-empty. Deterministic for deterministic inputs.
std::string TrainEventToJsonLine(const TrainEvent& event);

// Accumulates the telemetry of one training run and, when a file is
// attached, streams it as JSONL (one event per line, flushed per event so
// a crash loses at most the in-flight record).
class TelemetryStream {
 public:
  TelemetryStream() = default;
  ~TelemetryStream();
  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;

  // Truncates and attaches `path`; subsequent events are appended there.
  common::Status OpenFile(const std::string& path);

  void Append(const TrainEvent& event);

  const std::vector<TrainEvent>& events() const { return events_; }
  int CountKind(TrainEventKind kind) const;

 private:
  std::vector<TrainEvent> events_;
  std::FILE* file_ = nullptr;
};

}  // namespace o2sr::obs

#endif  // O2SR_OBS_TELEMETRY_H_
