#ifndef O2SR_OBS_TELEMETRY_H_
#define O2SR_OBS_TELEMETRY_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace o2sr::obs {

// Training telemetry vocabulary. The guarded trainer
// (nn::RunGuardedTraining) emits one TrainEvent per completed epoch plus
// one per anomaly (rollback recovery, checkpoint resume); obs defines the
// record so every layer above nn — eval, benches, tests — can consume the
// stream without depending on trainer internals.

enum class TrainEventKind {
  kEpoch = 0,     // a successfully completed epoch
  kRecovery = 1,  // sentinel trip -> rollback + learning-rate backoff
  kResume = 2,    // training picked up an existing checkpoint
};

const char* TrainEventKindName(TrainEventKind kind);

struct TrainEvent {
  TrainEventKind kind = TrainEventKind::kEpoch;
  int epoch = 0;
  double loss = 0.0;           // epoch loss (kEpoch) or best loss (kResume)
  double grad_norm = 0.0;      // global L2 norm over all gradients (kEpoch)
  double learning_rate = 0.0;  // in effect after this event
  int recoveries = 0;          // cumulative recoveries so far
  std::string note;  // trip description (kRecovery) / path (kResume)
};

// One event as a single-line JSON object, e.g.
// {"event":"epoch","epoch":3,"loss":0.0123,"grad_norm":0.5,
//  "learning_rate":0.003,"recoveries":0}. `note` appears only when
// non-empty. Deterministic for deterministic inputs.
std::string TrainEventToJsonLine(const TrainEvent& event);

// Accumulates the telemetry of one training run and, when a file is
// attached, streams it as JSONL (one event per line, flushed per event so
// a crash loses at most the in-flight record).
class TelemetryStream {
 public:
  TelemetryStream() = default;
  ~TelemetryStream();
  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;

  // Truncates and attaches `path`; subsequent events are appended there.
  common::Status OpenFile(const std::string& path);

  void Append(const TrainEvent& event);

  const std::vector<TrainEvent>& events() const { return events_; }
  int CountKind(TrainEventKind kind) const;

 private:
  std::vector<TrainEvent> events_;
  std::FILE* file_ = nullptr;
};

// Continual-pipeline telemetry vocabulary (src/pipeline, DESIGN.md §11):
// one PipelineEvent per stage transition, retry, swap fallback, crash
// resume and serve summary, mirroring the TrainEvent pattern one level up.

enum class PipelineEventKind {
  kTransition = 0,  // the state machine advanced to `stage`
  kRetry = 1,       // a supervised operation failed and will be retried
  kFallback = 2,    // swap exhausted its budget; serving the prior snapshot
  kResume = 3,      // a restarted supervisor picked up the journal
  kServe = 4,       // serve-stage summary (value = served query count)
  kHealth = 5,      // serving health transition (note = "FROM -> TO",
                    // value = numeric target state)
  kSlo = 6,         // serve-stage SLO summary (value = burn rate,
                    // note = SloSnapshot JSON)
};

const char* PipelineEventKindName(PipelineEventKind kind);

struct PipelineEvent {
  PipelineEventKind kind = PipelineEventKind::kTransition;
  int cycle = 0;            // refresh cycle the event belongs to
  std::string stage;        // pipeline stage name (e.g. "TRAIN")
  int attempt = 0;          // retry attempt index (kRetry)
  double value = 0.0;       // kind-specific payload (queries, backoff ms)
  std::string note;         // error text, snapshot path, ...
};

// Single-line JSON, deterministic for deterministic inputs; `note` appears
// only when non-empty.
std::string PipelineEventToJsonLine(const PipelineEvent& event);

// JSONL sink for pipeline events; same flush-per-event crash semantics as
// TelemetryStream.
class PipelineEventLog {
 public:
  PipelineEventLog() = default;
  ~PipelineEventLog();
  PipelineEventLog(const PipelineEventLog&) = delete;
  PipelineEventLog& operator=(const PipelineEventLog&) = delete;

  // Attaches `path` in append mode (a resumed pipeline continues the log of
  // the crashed run instead of erasing its history).
  common::Status OpenFile(const std::string& path);

  void Append(const PipelineEvent& event);

  const std::vector<PipelineEvent>& events() const { return events_; }
  int CountKind(PipelineEventKind kind) const;

 private:
  std::vector<PipelineEvent> events_;
  std::FILE* file_ = nullptr;
};

}  // namespace o2sr::obs

#endif  // O2SR_OBS_TELEMETRY_H_
