#include "obs/telemetry.h"

#include "obs/json.h"

namespace o2sr::obs {

const char* TrainEventKindName(TrainEventKind kind) {
  switch (kind) {
    case TrainEventKind::kEpoch: return "epoch";
    case TrainEventKind::kRecovery: return "recovery";
    case TrainEventKind::kResume: return "resume";
  }
  return "?";
}

std::string TrainEventToJsonLine(const TrainEvent& event) {
  std::string out = "{\"event\":";
  out += JsonQuote(TrainEventKindName(event.kind));
  out += ",\"epoch\":" + JsonNum(static_cast<int64_t>(event.epoch));
  out += ",\"loss\":" + JsonNum(event.loss);
  out += ",\"grad_norm\":" + JsonNum(event.grad_norm);
  out += ",\"learning_rate\":" + JsonNum(event.learning_rate);
  out += ",\"recoveries\":" + JsonNum(static_cast<int64_t>(event.recoveries));
  if (!event.note.empty()) out += ",\"note\":" + JsonQuote(event.note);
  out += "}";
  return out;
}

TelemetryStream::~TelemetryStream() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status TelemetryStream::OpenFile(const std::string& path) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    return common::UnavailableError("cannot open telemetry file '" + path +
                                    "' for writing");
  }
  return common::Status::Ok();
}

void TelemetryStream::Append(const TrainEvent& event) {
  events_.push_back(event);
  if (file_ != nullptr) {
    const std::string line = TrainEventToJsonLine(event);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }
}

int TelemetryStream::CountKind(TrainEventKind kind) const {
  int n = 0;
  for (const TrainEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

const char* PipelineEventKindName(PipelineEventKind kind) {
  switch (kind) {
    case PipelineEventKind::kTransition: return "transition";
    case PipelineEventKind::kRetry: return "retry";
    case PipelineEventKind::kFallback: return "fallback";
    case PipelineEventKind::kResume: return "resume";
    case PipelineEventKind::kServe: return "serve";
    case PipelineEventKind::kHealth: return "health";
    case PipelineEventKind::kSlo: return "slo";
  }
  return "?";
}

std::string PipelineEventToJsonLine(const PipelineEvent& event) {
  std::string out = "{\"event\":";
  out += JsonQuote(PipelineEventKindName(event.kind));
  out += ",\"cycle\":" + JsonNum(static_cast<int64_t>(event.cycle));
  out += ",\"stage\":" + JsonQuote(event.stage);
  out += ",\"attempt\":" + JsonNum(static_cast<int64_t>(event.attempt));
  out += ",\"value\":" + JsonNum(event.value);
  if (!event.note.empty()) out += ",\"note\":" + JsonQuote(event.note);
  out += "}";
  return out;
}

PipelineEventLog::~PipelineEventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status PipelineEventLog::OpenFile(const std::string& path) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return common::UnavailableError("cannot open pipeline event log '" +
                                    path + "' for appending");
  }
  return common::Status::Ok();
}

void PipelineEventLog::Append(const PipelineEvent& event) {
  events_.push_back(event);
  if (file_ != nullptr) {
    const std::string line = PipelineEventToJsonLine(event);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }
}

int PipelineEventLog::CountKind(PipelineEventKind kind) const {
  int n = 0;
  for (const PipelineEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

}  // namespace o2sr::obs
