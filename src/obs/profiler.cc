#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"
#include "obs/trace.h"

namespace o2sr::obs {

namespace {

const char* RegionName(const char* name) {
  // Unnamed fine-grained kernel regions (per-matmul, per-elementwise) all
  // aggregate under one bucket: their individual identity is the op
  // counters' job, the region axis cares about dispatch behavior.
  return name != nullptr ? name : "(kernel)";
}

}  // namespace

double RegionProfile::Efficiency() const {
  const int64_t lanes = static_cast<int64_t>(lane_busy_us.size());
  if (lanes == 0 || wall_us <= 0) return 0.0;
  return static_cast<double>(busy_us) /
         (static_cast<double>(lanes) * static_cast<double>(wall_us));
}

Profiler& Profiler::Global() {
  static Profiler* profiler = [] {
    auto* p = new Profiler();
    if (std::getenv("O2SR_PROFILE_FILE") != nullptr) {
      p->Enable(true);
      std::atexit([] {
        const char* path = std::getenv("O2SR_PROFILE_FILE");
        if (path == nullptr) return;
        const common::Status st = Global().WriteReport(path);
        if (!st.ok()) {
          std::fprintf(stderr, "[W profiler.cc] %s\n",
                       st.ToString().c_str());
        }
      });
    }
    return p;
  }();
  return *profiler;
}

void Profiler::RecordDispatchedRegion(const char* name, int64_t items,
                                      int64_t chunks, int64_t wall_us,
                                      const int64_t* lane_busy_us,
                                      int lanes) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  RegionProfile& region = regions_[RegionName(name)];
  ++region.regions;
  ++region.dispatched;
  region.chunks += static_cast<uint64_t>(chunks);
  region.items += static_cast<uint64_t>(items);
  const uint64_t n = static_cast<uint64_t>(items);
  if (region.min_items == 0 || n < region.min_items) region.min_items = n;
  region.max_items = std::max(region.max_items, n);
  region.wall_us += wall_us;
  if (region.lane_busy_us.size() < static_cast<size_t>(lanes)) {
    region.lane_busy_us.resize(static_cast<size_t>(lanes), 0);
  }
  for (int lane = 0; lane < lanes; ++lane) {
    region.lane_busy_us[static_cast<size_t>(lane)] += lane_busy_us[lane];
    region.busy_us += lane_busy_us[lane];
  }
}

void Profiler::RecordInlineRegion(const char* name, int64_t items,
                                  int64_t chunks) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  RegionProfile& region = regions_[RegionName(name)];
  ++region.regions;
  ++region.inline_runs;
  region.chunks += static_cast<uint64_t>(chunks);
  region.items += static_cast<uint64_t>(items);
  const uint64_t n = static_cast<uint64_t>(items);
  if (region.min_items == 0 || n < region.min_items) region.min_items = n;
  region.max_items = std::max(region.max_items, n);
}

void Profiler::RecordOp(const char* name, uint64_t bytes_allocated,
                        uint64_t bytes_moved, uint64_t items) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  OpProfile& op = ops_[name];
  ++op.dispatches;
  op.bytes_allocated += bytes_allocated;
  op.bytes_moved += bytes_moved;
  op.items += items;
}

std::map<std::string, RegionProfile> Profiler::RegionSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return regions_;
}

std::map<std::string, OpProfile> Profiler::OpSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

std::string Profiler::ReportJson() const {
  const auto regions = RegionSnapshot();
  const auto ops = OpSnapshot();

  std::string out = "{\"regions\":{";
  bool first = true;
  for (const auto& [name, r] : regions) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":{";
    out += "\"regions\":" + JsonNum(r.regions);
    out += ",\"dispatched\":" + JsonNum(r.dispatched);
    out += ",\"inline_runs\":" + JsonNum(r.inline_runs);
    out += ",\"chunks\":" + JsonNum(r.chunks);
    out += ",\"items\":" + JsonNum(r.items);
    out += ",\"min_items\":" + JsonNum(r.min_items);
    out += ",\"max_items\":" + JsonNum(r.max_items);
    out += ",\"wall_ms\":" +
           JsonFixed(static_cast<double>(r.wall_us) / 1000.0, 3);
    out += ",\"busy_ms\":" +
           JsonFixed(static_cast<double>(r.busy_us) / 1000.0, 3);
    out += ",\"idle_ms\":" +
           JsonFixed(static_cast<double>(r.IdleUs()) / 1000.0, 3);
    out += ",\"efficiency\":" + JsonFixed(r.Efficiency(), 4);
    out += ",\"lanes\":[";
    for (size_t lane = 0; lane < r.lane_busy_us.size(); ++lane) {
      if (lane > 0) out += ",";
      out += "{\"lane\":" + JsonNum(static_cast<uint64_t>(lane)) +
             ",\"busy_ms\":" +
             JsonFixed(static_cast<double>(r.lane_busy_us[lane]) / 1000.0,
                       3) +
             "}";
    }
    out += "]}";
  }
  out += "},\"ops\":{";
  first = true;
  for (const auto& [name, op] : ops) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":{";
    out += "\"dispatches\":" + JsonNum(op.dispatches);
    out += ",\"bytes_allocated\":" + JsonNum(op.bytes_allocated);
    out += ",\"bytes_moved\":" + JsonNum(op.bytes_moved);
    out += ",\"items\":" + JsonNum(op.items);
    out += "}";
  }
  out += "}}";
  return out;
}

common::Status Profiler::WriteReport(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::UnavailableError("cannot open profile file '" + path +
                                    "' for writing");
  }
  const std::string json = ReportJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return common::UnavailableError("short write to profile file '" + path +
                                    "'");
  }
  return common::Status::Ok();
}

void Profiler::EmitTraceCounters(TraceRecorder* recorder) const {
  const auto regions = RegionSnapshot();
  const auto ops = OpSnapshot();
  for (const auto& [name, r] : regions) {
    recorder->RecordCounter(("profile.region." + name + ".chunks").c_str(),
                            static_cast<double>(r.chunks));
    recorder->RecordCounter(
        ("profile.region." + name + ".idle_ms").c_str(),
        static_cast<double>(r.IdleUs()) / 1000.0);
  }
  for (const auto& [name, op] : ops) {
    recorder->RecordCounter(("profile.op." + name + ".dispatches").c_str(),
                            static_cast<double>(op.dispatches));
    recorder->RecordCounter(
        ("profile.op." + name + ".bytes_allocated").c_str(),
        static_cast<double>(op.bytes_allocated));
    recorder->RecordCounter(
        ("profile.op." + name + ".bytes_moved").c_str(),
        static_cast<double>(op.bytes_moved));
  }
}

void Profiler::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  regions_.clear();
  ops_.clear();
}

}  // namespace o2sr::obs
