#ifndef O2SR_OBS_METRICS_H_
#define O2SR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace o2sr::obs {

// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms. Instruments register lazily by name and live for the process
// lifetime, so call sites can cache the pointer:
//
//   static Counter* orders = MetricsRegistry::Global().GetCounter(
//       "sim.orders_generated");
//   orders->Increment(n);
//
// Dumps are deterministic: instruments sort by name, numbers format
// identically across runs (see obs/json.h). All operations are
// thread-safe; the hot paths (Increment/Set/Observe) take no registry-wide
// lock.

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. `bounds` are the inclusive upper edges of the
// finite buckets; one implicit overflow bucket catches everything above
// the last edge. Quantiles interpolate linearly inside the containing
// bucket (the overflow bucket reports the last finite edge), which is
// exact enough for latency-style distributions and needs no per-sample
// storage.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  // q in [0, 1]; 0 with no observations.
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Default histogram edges for millisecond timings: 0.1 ms .. 60 s,
// roughly 1-2.5-5 per decade.
const std::vector<double>& DefaultLatencyBucketsMs();

// Makes an externally-supplied label (a tenant/city name, a file stem)
// safe to embed in a dotted metric name: [A-Za-z0-9_-] pass through,
// everything else becomes '_', and an empty input reads "unnamed". Keeps
// DumpJson/DumpText keys printable and dot-structured regardless of what
// callers name their tenants.
std::string SanitizeMetricLabel(const std::string& label);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Lazily creates the instrument; returns the same pointer for the same
  // name forever after. A name may hold only one instrument kind
  // (registering "x" as both a counter and a gauge is a programmer error).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  // One instrument per line, sorted by name:
  //   counter sim.orders_generated 128341
  //   histogram train.epoch_ms count=30 sum=5123.4 p50=162.1 p95=190.3 p99=201.0
  void DumpText(std::ostream& os) const;
  // {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  //  "sum":..,"p50":..,"p95":..,"p99":..}}} — keys sorted.
  std::string DumpJson() const;
  common::Status WriteJson(const std::string& path) const;

  // Drops every instrument (invalidates cached pointers); tests only.
  void ResetForTest();

  MetricsRegistry() = default;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace o2sr::obs

#endif  // O2SR_OBS_METRICS_H_
