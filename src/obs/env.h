#ifndef O2SR_OBS_ENV_H_
#define O2SR_OBS_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace o2sr::obs {

// Loud environment-knob parsing, shared by every O2SR_* integer/double
// knob (DESIGN.md §15). The contract:
//
//   - unset or empty value: the fallback, silently — absence is the
//     normal case and not worth narrating.
//   - parseable but outside [lo, hi]: clamped to the range (or reverted
//     to the fallback, per EnvRangePolicy), with a WARNING log naming the
//     variable, the rejected value and what was used instead.
//   - garbage ("abc", "12x", "", overflow): fatal, INVALID_ARGUMENT-style,
//     naming the variable and the accepted form. Env knobs are operator
//     input; a typo that silently reverts to a default is how
//     misconfigured fleets ship.
//
// The fatal path prints to stderr directly (like O2SR_CHECK) so it stays
// visible even when O2SR_LOG_LEVEL=off.

enum class EnvRangePolicy {
  kClamp,     // out-of-range -> nearest bound
  kFallback,  // out-of-range -> the fallback value
};

int64_t EnvInt(const char* name, int64_t fallback, int64_t lo, int64_t hi,
               EnvRangePolicy policy = EnvRangePolicy::kClamp);

double EnvDouble(const char* name, double fallback, double lo, double hi,
                 EnvRangePolicy policy = EnvRangePolicy::kClamp);

// Unset/empty -> fallback; any other value is accepted verbatim.
std::string EnvString(const char* name, const std::string& fallback);

// Exact-match enumeration knob. Returns the index of the matched entry in
// `accepted`, or `fallback_index` when the variable is unset or empty.
// Any other value is fatal, listing the accepted set.
int EnvChoice(const char* name, const std::vector<std::string>& accepted,
              int fallback_index);

}  // namespace o2sr::obs

#endif  // O2SR_OBS_ENV_H_
