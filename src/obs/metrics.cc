#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "obs/json.h"

namespace o2sr::obs {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  O2SR_CHECK(!bounds_.empty());
  O2SR_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

double Histogram::Quantile(double q) const {
  O2SR_CHECK(q >= 0.0 && q <= 1.0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Overflow bucket has no upper edge: report the last finite one.
      if (i == bounds_.size()) return bounds_.back();
      const double lo = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.back();
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.1,  0.25, 0.5,  1.0,   2.5,   5.0,   10.0,   25.0,   50.0,
      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0};
  return kBuckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    if (std::getenv("O2SR_METRICS_FILE") != nullptr) {
      std::atexit([] {
        const char* path = std::getenv("O2SR_METRICS_FILE");
        if (path == nullptr) return;
        const common::Status st = Global().WriteJson(path);
        if (!st.ok()) {
          std::fprintf(stderr, "[W metrics.cc] %s\n", st.ToString().c_str());
        }
      });
    }
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  O2SR_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  O2SR_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  O2SR_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBucketsMs();
    slot = std::make_unique<Histogram>(name, std::move(bounds));
  }
  return slot.get();
}

void MetricsRegistry::DumpText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << " " << JsonNum(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram " << name << " count=" << h->count()
       << " sum=" << JsonNum(h->sum()) << " p50=" << JsonNum(h->Quantile(0.5))
       << " p95=" << JsonNum(h->Quantile(0.95))
       << " p99=" << JsonNum(h->Quantile(0.99)) << "\n";
  }
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" + JsonNum(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" + JsonNum(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":{\"count\":" + JsonNum(h->count()) +
           ",\"sum\":" + JsonNum(h->sum()) +
           ",\"p50\":" + JsonNum(h->Quantile(0.5)) +
           ",\"p95\":" + JsonNum(h->Quantile(0.95)) +
           ",\"p99\":" + JsonNum(h->Quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

common::Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::UnavailableError("cannot open metrics file '" + path +
                                    "' for writing");
  }
  const std::string json = DumpJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return common::UnavailableError("short write to metrics file '" + path +
                                    "'");
  }
  return common::Status::Ok();
}

std::string SanitizeMetricLabel(const std::string& label) {
  if (label.empty()) return "unnamed";
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace o2sr::obs
