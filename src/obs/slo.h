#ifndef O2SR_OBS_SLO_H_
#define O2SR_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace o2sr::obs {

class Gauge;

// Serving SLO monitor (DESIGN.md §12).
//
// The objective is availability-style: at least `target` of requests must
// be *good* — served fresh, within their deadline, and under `slo_ms` of
// latency. A request is *bad* when it was shed, missed its deadline, was
// served degraded (below fresh tier), or simply ran longer than the
// objective. The monitor keeps a rolling window of the last `window`
// requests and derives:
//
//   bad_fraction  bad / window_count
//   burn_rate     bad_fraction / (1 - target): 1.0 means the error budget
//                 is being consumed exactly as fast as the SLO allows;
//                 > 1.0 means the objective is being breached.
//
// Latency quantiles (p50/p90/p99/max) are computed over the window with
// the nearest-rank method on the exact recorded values — no bucketing, so
// a deterministic request sequence yields deterministic quantiles.
//
// Thread-safe; Record is a mutex + ring-buffer write, Snapshot copies and
// sorts the window.

struct SloConfig {
  double slo_ms = 50.0;   // per-request latency objective
  double target = 0.99;   // good-request fraction the SLO promises, (0, 1)
  size_t window = 512;    // rolling window size in requests

  // O2SR_SERVE_SLO_MS / O2SR_SERVE_SLO_TARGET over the defaults above.
  // Out-of-range values (non-positive ms, target outside (0, 1)) are
  // ignored.
  static SloConfig FromEnv();
};

// One finished request as the monitor sees it. A shed request still
// carries the latency of the rejection path.
struct SloOutcome {
  double latency_ms = 0.0;
  bool shed = false;
  bool deadline_miss = false;
  bool degraded = false;
};

struct SloSnapshot {
  SloConfig config;
  // Lifetime totals.
  uint64_t requests = 0;
  uint64_t bad = 0;
  uint64_t shed = 0;
  uint64_t deadline_miss = 0;
  uint64_t degraded = 0;
  // Rolling window.
  size_t window_count = 0;
  uint64_t window_bad = 0;
  uint64_t window_shed = 0;
  uint64_t window_deadline_miss = 0;
  uint64_t window_degraded = 0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double bad_fraction = 0.0;
  double burn_rate = 0.0;
  bool breached = false;  // burn_rate >= 1

  // Single JSON object; times fixed to 3 decimals, fractions to 4.
  std::string ToJson() const;
};

class SloMonitor {
 public:
  // `metrics_prefix`, when non-empty, registers three gauges updated on
  // every Record: <prefix>.burn_rate, <prefix>.bad_fraction and
  // <prefix>.breached (0/1).
  explicit SloMonitor(const SloConfig& config = SloConfig::FromEnv(),
                      const std::string& metrics_prefix = "");
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  const SloConfig& config() const { return config_; }

  void Record(const SloOutcome& outcome);

  SloSnapshot Snapshot() const;

 private:
  struct Entry {
    double latency_ms = 0.0;
    bool bad = false;
    bool shed = false;
    bool deadline_miss = false;
    bool degraded = false;
  };

  // Requires mutex_.
  double WindowBadFractionLocked() const;

  const SloConfig config_;
  Gauge* burn_rate_gauge_ = nullptr;   // null when no prefix
  Gauge* bad_fraction_gauge_ = nullptr;
  Gauge* breached_gauge_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<Entry> window_;  // ring buffer of config_.window entries
  size_t next_slot_ = 0;
  size_t window_count_ = 0;
  uint64_t requests_ = 0;
  uint64_t bad_ = 0;
  uint64_t shed_ = 0;
  uint64_t deadline_miss_ = 0;
  uint64_t degraded_ = 0;
};

}  // namespace o2sr::obs

#endif  // O2SR_OBS_SLO_H_
