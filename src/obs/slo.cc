#include "obs/slo.h"

#include <algorithm>
#include <cstdlib>

#include "obs/env.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace o2sr::obs {

namespace {

// Nearest-rank quantile over an ascending-sorted vector.
double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted[rank];
}

}  // namespace

SloConfig SloConfig::FromEnv() {
  SloConfig config;
  // Out-of-range values revert to the defaults (an SLO clamped to an
  // absurd bound would be worse than the default), with a warning.
  config.slo_ms = EnvDouble("O2SR_SERVE_SLO_MS", config.slo_ms, 1e-6, 1e9,
                            EnvRangePolicy::kFallback);
  config.target = EnvDouble("O2SR_SERVE_SLO_TARGET", config.target, 1e-6,
                            1.0 - 1e-9, EnvRangePolicy::kFallback);
  return config;
}

std::string SloSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"slo_ms\":" + JsonFixed(config.slo_ms, 3);
  out += ",\"target\":" + JsonFixed(config.target, 4);
  out += ",\"window\":" + JsonNum(static_cast<uint64_t>(config.window));
  out += ",\"requests\":" + JsonNum(requests);
  out += ",\"bad\":" + JsonNum(bad);
  out += ",\"shed\":" + JsonNum(shed);
  out += ",\"deadline_miss\":" + JsonNum(deadline_miss);
  out += ",\"degraded\":" + JsonNum(degraded);
  out += ",\"window_count\":" + JsonNum(static_cast<uint64_t>(window_count));
  out += ",\"window_bad\":" + JsonNum(window_bad);
  out += ",\"window_shed\":" + JsonNum(window_shed);
  out += ",\"window_deadline_miss\":" + JsonNum(window_deadline_miss);
  out += ",\"window_degraded\":" + JsonNum(window_degraded);
  out += ",\"p50_ms\":" + JsonFixed(p50_ms, 3);
  out += ",\"p90_ms\":" + JsonFixed(p90_ms, 3);
  out += ",\"p99_ms\":" + JsonFixed(p99_ms, 3);
  out += ",\"max_ms\":" + JsonFixed(max_ms, 3);
  out += ",\"bad_fraction\":" + JsonFixed(bad_fraction, 4);
  out += ",\"burn_rate\":" + JsonFixed(burn_rate, 4);
  out += std::string(",\"breached\":") + (breached ? "true" : "false");
  out += "}";
  return out;
}

SloMonitor::SloMonitor(const SloConfig& config,
                       const std::string& metrics_prefix)
    : config_([&] {
        SloConfig c = config;
        if (!(c.slo_ms > 0.0)) c.slo_ms = 50.0;
        if (!(c.target > 0.0) || !(c.target < 1.0)) c.target = 0.99;
        if (c.window == 0) c.window = 512;
        return c;
      }()) {
  window_.resize(config_.window);
  if (!metrics_prefix.empty()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    burn_rate_gauge_ = registry.GetGauge(metrics_prefix + ".burn_rate");
    bad_fraction_gauge_ =
        registry.GetGauge(metrics_prefix + ".bad_fraction");
    breached_gauge_ = registry.GetGauge(metrics_prefix + ".breached");
  }
}

double SloMonitor::WindowBadFractionLocked() const {
  if (window_count_ == 0) return 0.0;
  uint64_t bad = 0;
  for (size_t i = 0; i < window_count_; ++i) {
    if (window_[i].bad) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(window_count_);
}

void SloMonitor::Record(const SloOutcome& outcome) {
  double bad_fraction = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry entry;
    entry.latency_ms = outcome.latency_ms;
    entry.shed = outcome.shed;
    entry.deadline_miss = outcome.deadline_miss;
    entry.degraded = outcome.degraded;
    entry.bad = outcome.shed || outcome.deadline_miss || outcome.degraded ||
                outcome.latency_ms > config_.slo_ms;
    window_[next_slot_] = entry;
    next_slot_ = (next_slot_ + 1) % window_.size();
    window_count_ = std::min(window_count_ + 1, window_.size());
    ++requests_;
    if (entry.bad) ++bad_;
    if (entry.shed) ++shed_;
    if (entry.deadline_miss) ++deadline_miss_;
    if (entry.degraded) ++degraded_;
    bad_fraction = WindowBadFractionLocked();
  }
  if (burn_rate_gauge_ != nullptr) {
    const double burn = bad_fraction / (1.0 - config_.target);
    burn_rate_gauge_->Set(burn);
    bad_fraction_gauge_->Set(bad_fraction);
    breached_gauge_->Set(burn >= 1.0 ? 1.0 : 0.0);
  }
}

SloSnapshot SloMonitor::Snapshot() const {
  SloSnapshot snap;
  snap.config = config_;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.requests = requests_;
    snap.bad = bad_;
    snap.shed = shed_;
    snap.deadline_miss = deadline_miss_;
    snap.degraded = degraded_;
    snap.window_count = window_count_;
    latencies.reserve(window_count_);
    for (size_t i = 0; i < window_count_; ++i) {
      const Entry& entry = window_[i];
      latencies.push_back(entry.latency_ms);
      if (entry.bad) ++snap.window_bad;
      if (entry.shed) ++snap.window_shed;
      if (entry.deadline_miss) ++snap.window_deadline_miss;
      if (entry.degraded) ++snap.window_degraded;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  snap.p50_ms = QuantileSorted(latencies, 0.50);
  snap.p90_ms = QuantileSorted(latencies, 0.90);
  snap.p99_ms = QuantileSorted(latencies, 0.99);
  snap.max_ms = latencies.empty() ? 0.0 : latencies.back();
  if (snap.window_count > 0) {
    snap.bad_fraction = static_cast<double>(snap.window_bad) /
                        static_cast<double>(snap.window_count);
  }
  snap.burn_rate = snap.bad_fraction / (1.0 - config_.target);
  snap.breached = snap.burn_rate >= 1.0;
  return snap;
}

}  // namespace o2sr::obs
