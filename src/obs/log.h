#ifndef O2SR_OBS_LOG_H_
#define O2SR_OBS_LOG_H_

#include <functional>
#include <optional>
#include <sstream>
#include <string>

namespace o2sr::obs {

// Leveled logging for the whole project. Replaces the ad-hoc
// `std::fprintf(stderr, ...)` narration that used to live behind bespoke
// `verbose` flags:
//
//   O2SR_LOG(INFO) << "resumed from '" << path << "' at epoch " << epoch;
//
// The minimum emitted level comes from the O2SR_LOG_LEVEL environment
// variable (debug|info|warning|error|off, read once on first use; default
// info) and can be overridden programmatically with SetMinLogLevel. The
// stream expression after a suppressed O2SR_LOG is never evaluated.
//
// Default sink: one line per message on stderr,
// `[I trainer.cc:131] message`. Tests swap the sink with SetLogSink.

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,  // sentinel for "emit nothing"; not a valid message level
};

// "debug".."error"/"off" (lower case, as accepted by O2SR_LOG_LEVEL).
const char* LogLevelName(LogLevel level);
// Parses a O2SR_LOG_LEVEL value; empty optional on an unknown name.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

// Current threshold (first call reads O2SR_LOG_LEVEL).
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);
inline bool LogEnabled(LogLevel level) { return level >= MinLogLevel(); }

// Receives every emitted message. `file` is the basename of the source
// file. Passing nullptr restores the stderr sink.
using LogSink =
    std::function<void(LogLevel level, const std::string& file, int line,
                       const std::string& message)>;
void SetLogSink(LogSink sink);

namespace internal {

// One in-flight message; the destructor hands the buffered text to the
// sink. Only constructed when the level passed the threshold check.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the ostream& so a suppressed O2SR_LOG is a void expression.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

// Severity tokens for O2SR_LOG(severity).
constexpr LogLevel DEBUG = LogLevel::kDebug;
constexpr LogLevel INFO = LogLevel::kInfo;
constexpr LogLevel WARNING = LogLevel::kWarning;
constexpr LogLevel ERROR = LogLevel::kError;

}  // namespace internal

}  // namespace o2sr::obs

#define O2SR_LOG(severity)                                              \
  !::o2sr::obs::LogEnabled(::o2sr::obs::internal::severity)             \
      ? (void)0                                                         \
      : ::o2sr::obs::internal::LogVoidify() &                           \
            ::o2sr::obs::internal::LogMessage(                          \
                ::o2sr::obs::internal::severity, __FILE__, __LINE__)    \
                .stream()

#endif  // O2SR_OBS_LOG_H_
