#include "obs/json.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace o2sr::obs {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNum(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

std::string JsonNum(int64_t value) { return std::to_string(value); }
std::string JsonNum(uint64_t value) { return std::to_string(value); }

std::string JsonFixed(double value, int decimals) {
  if (!std::isfinite(value)) return "null";
  decimals = std::clamp(decimals, 0, 17);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

// ---------------------------------------------------------------------------
// JsonValue

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

constexpr int kMaxParseDepth = 128;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  common::StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    O2SR_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  common::Status Error(const std::string& what) const {
    return common::InvalidArgumentError("JSON parse error at byte " +
                                        std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  common::Status Expect(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected '") + literal + "'");
      }
      ++pos_;
    }
    return common::Status::Ok();
  }

  common::StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        O2SR_RETURN_IF_ERROR(Expect("null"));
        return JsonValue::Null();
      case 't':
        O2SR_RETURN_IF_ERROR(Expect("true"));
        return JsonValue::Bool(true);
      case 'f':
        O2SR_RETURN_IF_ERROR(Expect("false"));
        return JsonValue::Bool(false);
      case '"': {
        O2SR_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  common::StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      SkipWhitespace();
      O2SR_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
    return JsonValue::Array(std::move(items));
  }

  common::StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a quoted object key");
      }
      O2SR_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      O2SR_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
    return JsonValue::Object(std::move(members));
  }

  common::StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          O2SR_ASSIGN_OR_RETURN(const uint32_t code, ParseHex4());
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
  }

  common::StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  common::StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Error("invalid number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits must follow the decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits must follow the exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    return JsonValue::Number(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

common::StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

common::StatusOr<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::NotFoundError("cannot open JSON file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return common::UnavailableError("read error on JSON file '" + path +
                                    "'");
  }
  auto parsed = ParseJson(buffer.str());
  if (!parsed.ok()) {
    return parsed.status().WithContext("while parsing '" + path + "'");
  }
  return parsed;
}

}  // namespace o2sr::obs
