#include "obs/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace o2sr::obs {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNum(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

std::string JsonNum(int64_t value) { return std::to_string(value); }
std::string JsonNum(uint64_t value) { return std::to_string(value); }

}  // namespace o2sr::obs
