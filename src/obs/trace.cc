#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "obs/json.h"

namespace o2sr::obs {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Nesting depth is a per-thread property: a worker's span tree is
// independent of the caller's. The tid is a small dense id assigned in
// first-use order, stable for the thread's lifetime.
thread_local int tls_trace_depth = 0;

int ThisThreadTraceId() {
  static std::atomic<int> next_tid{0};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceRecorder::TraceRecorder() : clock_(&SteadyNowMicros) {}

TraceRecorder::TraceRecorder(Clock clock) : clock_(std::move(clock)) {
  O2SR_CHECK(clock_ != nullptr);
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    if (std::getenv("O2SR_TRACE_FILE") != nullptr) {
      std::atexit([] {
        const char* path = std::getenv("O2SR_TRACE_FILE");
        if (path == nullptr) return;
        const common::Status st = Global().WriteChromeTrace(path);
        if (!st.ok()) {
          std::fprintf(stderr, "[W trace.cc] %s\n", st.ToString().c_str());
        }
      });
    }
    return r;
  }();
  return *recorder;
}

int64_t TraceRecorder::Begin(const char* name) {
  if (!recording()) return -1;
  const int64_t now = clock_();
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  TraceSpan span;
  span.name = name;
  span.start_us = now;
  span.depth = tls_trace_depth;
  span.tid = ThisThreadTraceId();
  ++tls_trace_depth;
  spans_.push_back(std::move(span));
  return static_cast<int64_t>(spans_.size()) - 1;
}

void TraceRecorder::End(int64_t handle) {
  const int64_t now = clock_();
  std::lock_guard<std::mutex> lock(mutex_);
  O2SR_CHECK(handle >= 0 &&
             handle < static_cast<int64_t>(spans_.size()));
  TraceSpan& span = spans_[static_cast<size_t>(handle)];
  if (span.dur_us < 0) {
    span.dur_us = now - span.start_us;
    --tls_trace_depth;
  }
}

void TraceRecorder::RecordCounter(const char* name, double value) {
  if (!recording()) return;
  const int64_t now = clock_();
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.size() >= kMaxCounters) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceCounterEvent event;
  event.name = name;
  event.ts_us = now;
  event.value = value;
  event.tid = ThisThreadTraceId();
  counters_.push_back(std::move(event));
}

size_t TraceRecorder::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<TraceCounterEvent> TraceRecorder::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  counters_.clear();
  tls_trace_depth = 0;  // only the calling thread can have open spans here
  dropped_.store(0, std::memory_order_relaxed);
}

std::map<std::string, double> TraceRecorder::StageMillis(
    int max_depth) const {
  const int64_t now = clock_();
  std::map<std::string, double> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceSpan& span : spans_) {
    if (span.depth > max_depth) continue;
    const int64_t dur = span.dur_us >= 0 ? span.dur_us : now - span.start_us;
    out[span.name] += static_cast<double>(dur) / 1000.0;
  }
  return out;
}

std::string TraceRecorder::ExportChromeTraceJson() const {
  const int64_t now = clock_();
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans_) {
    const int64_t dur =
        span.dur_us >= 0 ? span.dur_us : now - span.start_us;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + JsonQuote(span.name) +
           ",\"cat\":\"o2sr\",\"ph\":\"X\",\"ts\":" + JsonNum(span.start_us) +
           ",\"dur\":" + JsonNum(dur) + ",\"pid\":0,\"tid\":" +
           JsonNum(static_cast<int64_t>(span.tid)) + "}";
  }
  for (const TraceCounterEvent& counter : counters_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + JsonQuote(counter.name) +
           ",\"cat\":\"o2sr\",\"ph\":\"C\",\"ts\":" + JsonNum(counter.ts_us) +
           ",\"pid\":0,\"tid\":" + JsonNum(static_cast<int64_t>(counter.tid)) +
           ",\"args\":{\"value\":" + JsonNum(counter.value) + "}}";
  }
  out += "]}";
  return out;
}

common::Status TraceRecorder::WriteChromeTrace(
    const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::UnavailableError("cannot open trace file '" + path +
                                    "' for writing");
  }
  const std::string json = ExportChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return common::UnavailableError("short write to trace file '" + path +
                                    "'");
  }
  return common::Status::Ok();
}

}  // namespace o2sr::obs
