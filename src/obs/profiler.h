#ifndef O2SR_OBS_PROFILER_H_
#define O2SR_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace o2sr::obs {

class TraceRecorder;

// Performance-attribution profiler (DESIGN.md §12). Two aggregation axes:
//
//  * Parallel regions — every exec::ThreadPool region reports its chunking
//    (item count, chunk count), whether it dispatched to workers or ran
//    inline, the region wall time and the busy time of every participating
//    lane (lane 0 is the calling thread, lanes 1.. are the pool workers).
//    From this the report derives the per-region busy/idle split and the
//    fork-join overhead that ROADMAP item 1 needs to attribute the
//    `speedup_threads4 = 0.96` regression: a region whose lanes are mostly
//    idle is dispatch-bound, not compute-bound.
//
//  * Ops — tensor kernels and tape ops count dispatches, bytes allocated
//    (fresh output storage), bytes moved (operand + result traffic) and
//    items processed (elements or flops). Alloc churn per epoch is visible
//    directly instead of being inferred from wall time.
//
// The profiler is off by default: the hot-path cost of a disabled profiler
// is one relaxed atomic load per record site. It turns on when
// O2SR_PROFILE_FILE is set (the report is written there at process exit)
// or explicitly via Enable(). All record calls are thread-safe.
//
// Determinism: every *count* field (regions, chunks, items, dispatches,
// bytes) is a pure function of the executed work, so two runs of the same
// workload produce identical counts at any thread count — ci.sh asserts
// this. Time fields (wall/busy/idle) vary run to run; the report keeps the
// two kinds in separately named fields so diffing tools can tell them
// apart.

struct RegionProfile {
  uint64_t regions = 0;          // times the region executed
  uint64_t dispatched = 0;       // executions fanned out to workers
  uint64_t inline_runs = 0;      // executions that ran serially
  uint64_t chunks = 0;           // total chunks over all executions
  uint64_t items = 0;            // total loop items (sum of n)
  uint64_t min_items = 0;        // smallest single execution (0 until set)
  uint64_t max_items = 0;        // largest single execution
  // Dispatched executions only (inline runs have no fork-join):
  int64_t wall_us = 0;           // sum of region wall clock
  int64_t busy_us = 0;           // sum of lane busy time, all lanes
  // Per-lane busy time; index 0 is the calling thread. Sized by the
  // largest lane count seen.
  std::vector<int64_t> lane_busy_us;

  // Idle = lanes * wall - busy: time participants spent waiting on the
  // region (fork/join latency, chunk starvation, load imbalance).
  int64_t IdleUs() const {
    const int64_t lanes = static_cast<int64_t>(lane_busy_us.size());
    const int64_t total = lanes * wall_us - busy_us;
    return total > 0 ? total : 0;
  }
  // busy / (lanes * wall) over the dispatched executions; 0 when none.
  double Efficiency() const;
};

struct OpProfile {
  uint64_t dispatches = 0;
  uint64_t bytes_allocated = 0;
  uint64_t bytes_moved = 0;
  uint64_t items = 0;
};

class Profiler {
 public:
  // The process-wide profiler. On first use it reads O2SR_PROFILE_FILE
  // and, when set, enables itself and registers an at-exit report writer
  // to that path.
  static Profiler& Global();

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // One parallel-region execution that fanned out to workers.
  // `lane_busy_us` has `lanes` entries (lane 0 = caller). `name` may be
  // null for unnamed kernel regions; they aggregate under "(kernel)".
  void RecordDispatchedRegion(const char* name, int64_t items,
                              int64_t chunks, int64_t wall_us,
                              const int64_t* lane_busy_us, int lanes);
  // One region execution that ran inline on the calling thread.
  void RecordInlineRegion(const char* name, int64_t items, int64_t chunks);

  // One op dispatch. Bytes/items may be 0 when the op allocates or moves
  // nothing worth accounting.
  void RecordOp(const char* name, uint64_t bytes_allocated,
                uint64_t bytes_moved, uint64_t items);

  std::map<std::string, RegionProfile> RegionSnapshot() const;
  std::map<std::string, OpProfile> OpSnapshot() const;

  // The attribution report: {"regions":{name:{...}},"ops":{name:{...}}},
  // keys sorted, counts as integers, times as fixed 3-decimal
  // milliseconds. Deterministic key set and count values for a
  // deterministic workload.
  std::string ReportJson() const;
  common::Status WriteReport(const std::string& path) const;

  // Emits one counter sample per op aggregate (dispatches, bytes
  // allocated/moved) and per region aggregate (chunks) into `recorder`, so
  // a Chrome trace carries the attribution counters next to its spans.
  void EmitTraceCounters(TraceRecorder* recorder) const;

  // Drops all accumulated data (keeps the enabled flag); tests only.
  void ResetForTest();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, RegionProfile> regions_;
  std::map<std::string, OpProfile> ops_;
};

// Convenience for op record sites: evaluates the arguments only when the
// profiler is on.
#define O2SR_PROFILE_OP(name, bytes_allocated, bytes_moved, items)       \
  do {                                                                   \
    ::o2sr::obs::Profiler& o2sr_profiler_ =                              \
        ::o2sr::obs::Profiler::Global();                                 \
    if (o2sr_profiler_.enabled()) {                                      \
      o2sr_profiler_.RecordOp((name), (bytes_allocated), (bytes_moved),  \
                              (items));                                  \
    }                                                                    \
  } while (0)

}  // namespace o2sr::obs

#endif  // O2SR_OBS_PROFILER_H_
