#ifndef O2SR_OBS_JSON_H_
#define O2SR_OBS_JSON_H_

#include <string>

namespace o2sr::obs {

// Minimal JSON formatting helpers shared by the metrics/trace/telemetry
// exporters and the bench reports. Output is deterministic: the same inputs
// always produce byte-identical text (no locale, no pointer ordering).

// `"` + escaped content + `"`. Escapes quotes, backslashes and control
// characters (\uXXXX form for the latter).
std::string JsonQuote(const std::string& s);

// Shortest round-trip decimal for a double ("%.17g" fallback), with the
// JSON-illegal values NaN/Inf rendered as null. Integral values print
// without a trailing ".0" ("3", not "3.0"), which keeps dumps stable
// across compilers.
std::string JsonNum(double value);
std::string JsonNum(int64_t value);
std::string JsonNum(uint64_t value);

}  // namespace o2sr::obs

#endif  // O2SR_OBS_JSON_H_
