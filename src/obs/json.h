#ifndef O2SR_OBS_JSON_H_
#define O2SR_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace o2sr::obs {

// Minimal JSON formatting helpers shared by the metrics/trace/telemetry
// exporters and the bench reports. Output is deterministic: the same inputs
// always produce byte-identical text (no locale, no pointer ordering).

// `"` + escaped content + `"`. Escapes quotes, backslashes and control
// characters (\uXXXX form for the latter).
std::string JsonQuote(const std::string& s);

// Shortest round-trip decimal for a double ("%.17g" fallback), with the
// JSON-illegal values NaN/Inf rendered as null. Integral values print
// without a trailing ".0" ("3", not "3.0"), which keeps dumps stable
// across compilers.
std::string JsonNum(double value);
std::string JsonNum(int64_t value);
std::string JsonNum(uint64_t value);

// Fixed-precision decimal ("265.074", not "265.07399999999996") for fields
// that are diffed across runs or compared against tolerances — timing
// cells, profiler aggregates. NaN/Inf render as null; `decimals` is
// clamped to [0, 17].
std::string JsonFixed(double value, int decimals);

// A parsed JSON document. Objects preserve the key order of the source
// text (our own exporters emit sorted keys, so lookups stay deterministic
// either way). This is the read side of the exporters above — bench_diff
// and the tests use it to consume BENCH_*.json / profile / trace files
// without a third-party dependency.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Find + number(); `fallback` when absent or not a number.
  double NumberOr(const std::string& key, double fallback) const;
  // Find + string_value(); `fallback` when absent or not a string.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Strict recursive-descent parse of one JSON document (trailing whitespace
// allowed, trailing garbage is an error). InvalidArgument on malformed
// input, with a byte offset in the message. Nesting deeper than 128 levels
// is rejected.
common::StatusOr<JsonValue> ParseJson(const std::string& text);

// ParseJson over the contents of `path` (NotFound/Unavailable on I/O
// errors, the parse error otherwise).
common::StatusOr<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace o2sr::obs

#endif  // O2SR_OBS_JSON_H_
