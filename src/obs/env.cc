#include "obs/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "obs/log.h"

namespace o2sr::obs {
namespace {

[[noreturn]] void DieInvalid(const char* name, const char* value,
                             const std::string& accepted) {
  std::fprintf(stderr,
               "[E env.cc] INVALID_ARGUMENT: environment variable %s='%s' "
               "is not valid; accepted: %s\n",
               name, value, accepted.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

int64_t EnvInt(const char* name, int64_t fallback, int64_t lo, int64_t hi,
               EnvRangePolicy policy) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE) {
    DieInvalid(name, env, "a base-10 integer");
  }
  if (value < lo || value > hi) {
    const int64_t used = policy == EnvRangePolicy::kClamp
                             ? (value < lo ? lo : hi)
                             : fallback;
    O2SR_LOG(WARNING) << name << "=" << value << " outside [" << lo << ", "
                      << hi << "], using " << used;
    return used;
  }
  return static_cast<int64_t>(value);
}

double EnvDouble(const char* name, double fallback, double lo, double hi,
                 EnvRangePolicy policy) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env || *end != '\0' || errno == ERANGE) {
    DieInvalid(name, env, "a decimal number");
  }
  if (!(value >= lo) || !(value <= hi)) {  // also catches NaN
    const double used =
        policy == EnvRangePolicy::kClamp ? (value < lo ? lo : hi) : fallback;
    O2SR_LOG(WARNING) << name << "=" << value << " outside [" << lo << ", "
                      << hi << "], using " << used;
    return used;
  }
  return value;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

int EnvChoice(const char* name, const std::vector<std::string>& accepted,
              int fallback_index) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback_index;
  for (size_t i = 0; i < accepted.size(); ++i) {
    if (accepted[i] == env) return static_cast<int>(i);
  }
  std::string list;
  for (size_t i = 0; i < accepted.size(); ++i) {
    if (i != 0) list += "|";
    list += accepted[i];
  }
  DieInvalid(name, env, list);
}

}  // namespace o2sr::obs
