#include "pipeline/pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "eval/experiment.h"
#include "obs/env.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace o2sr::pipeline {

namespace {

using common::Status;

// Stage metrics, registered once.
obs::Gauge* StageGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("pipeline.stage");
  return g;
}
obs::Gauge* CycleGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("pipeline.cycle");
  return g;
}
obs::Counter* CounterOf(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

void ApplyPipelineEnv(PipelineOptions* options) {
  O2SR_CHECK(options != nullptr);
  options->work_dir = obs::EnvString("O2SR_PIPELINE_DIR", options->work_dir);
  options->cycles = static_cast<int>(
      obs::EnvInt("O2SR_PIPELINE_CYCLES", options->cycles, 1, 1000000000));
  options->retry.max_attempts = static_cast<int>(obs::EnvInt(
      "O2SR_PIPELINE_RETRIES", options->retry.max_attempts, 1, 1000000));
  options->retry.initial_backoff_ms =
      obs::EnvDouble("O2SR_PIPELINE_BACKOFF_MS",
                     options->retry.initial_backoff_ms, 0.0, 1e12);
}

struct ContinualPipeline::CycleWorld {
  sim::Dataset data;
  core::InteractionList interactions;
  eval::Split split;
  sim::DriftStats drift_stats;

  explicit CycleWorld(sim::Dataset d) : data(std::move(d)) {}
};

ContinualPipeline::ContinualPipeline(PipelineOptions options)
    : options_(std::move(options)),
      journal_(options_.work_dir + "/journal.bin") {}

ContinualPipeline::~ContinualPipeline() = default;

std::string ContinualPipeline::JournalPath() const {
  return journal_.path();
}

std::string ContinualPipeline::CheckpointPath(int cycle) const {
  return options_.work_dir + "/train_cycle" + std::to_string(cycle) +
         ".ckpt";
}

std::string ContinualPipeline::SnapshotPath(int cycle) const {
  return options_.work_dir + "/snapshot_cycle" + std::to_string(cycle) +
         ".snap";
}

uint64_t ContinualPipeline::BaseConfigHash() const {
  serve::Fingerprint f;
  f.Add(serve::FingerprintOf(options_.world))
      .Add(serve::FingerprintOf(options_.model))
      .Add(serve::FingerprintOf(options_.drift));
  return f.hash();
}

uint64_t ContinualPipeline::CycleConfigHash(int cycle) const {
  serve::Fingerprint f;
  f.Add(BaseConfigHash()).Add<int32_t>(cycle);
  return f.hash();
}

const ContinualPipeline::CycleWorld& ContinualPipeline::WorldForCycle(
    int cycle) {
  if (world_ != nullptr && world_cycle_ == cycle) return *world_;
  sim::DriftStats stats;
  auto world = std::make_unique<CycleWorld>(
      sim::GenerateDriftedDataset(options_.world, options_.drift, cycle,
                                  &stats));
  world->drift_stats = stats;
  world->interactions = eval::BuildInteractions(world->data);
  world->split = eval::SplitInteractions(
      world->data, world->interactions,
      {options_.train_fraction, options_.split_seed});
  world_ = std::move(world);
  world_cycle_ = cycle;
  return *world_;
}

void ContinualPipeline::Emit(obs::PipelineEvent event) {
  event_log_.Append(event);
  report_.events.push_back(std::move(event));
}

common::Status ContinualPipeline::Transition(PipelineJournalState* state,
                                             PipelineStage next, bool* stop) {
  state->stage = next;
  ++state->transitions;
  common::RetryStats stats;
  O2SR_RETURN_IF_ERROR(common::RunWithRetry(
      options_.retry, "journal.write",
      [&] { return journal_.Write(*state); }, &stats));
  report_.retries += stats.attempts - 1;
  CounterOf("pipeline.journal_writes")->Increment();
  obs::PipelineEvent event;
  event.kind = obs::PipelineEventKind::kTransition;
  event.cycle = state->cycle;
  event.stage = PipelineStageName(next);
  Emit(std::move(event));
  ++transitions_this_run_;
  if (options_.max_transitions >= 0 &&
      transitions_this_run_ >= options_.max_transitions) {
    *stop = true;
  }
  return Status::Ok();
}

common::Status ContinualPipeline::RunTrainStage(PipelineJournalState* state) {
  const int cycle = state->cycle;
  const CycleWorld& world = WorldForCycle(cycle);

  // Warm-start donor: the previous cycle's snapshot, when one exists.
  std::vector<nn::NamedTensor> donor;
  if (cycle > 0 && !state->last_snapshot.empty()) {
    auto donor_or = common::RunWithRetry<std::vector<nn::NamedTensor>>(
        options_.retry, "warmstart.load",
        [&]() -> common::StatusOr<std::vector<nn::NamedTensor>> {
          O2SR_ASSIGN_OR_RETURN(const serve::Snapshot snap,
                                serve::LoadSnapshot(state->last_snapshot));
          return serve::DecodeSnapshotParameters(snap);
        });
    if (donor_or.ok()) {
      donor = std::move(*donor_or);
    } else {
      // A lost donor costs warm-start cheapness, not correctness — but it
      // would change the trained parameters, so a resumable run must fail
      // the same way every time. Only proceed cold when the donor is
      // genuinely gone (the file was quarantined), not merely unreadable
      // right now.
      if (donor_or.status().code() != common::StatusCode::kNotFound) {
        return donor_or.status().WithContext("warm-start donor unusable");
      }
      O2SR_LOG(WARNING) << "warm-start donor '" << state->last_snapshot
                        << "' missing; cycle " << cycle
                        << " trains from scratch";
    }
  }

  core::O2SiteRecConfig model_config = options_.model;
  model_config.guard.checkpoint_path = CheckpointPath(cycle);

  common::RetryStats stats;
  const Status status = common::RunWithRetry(
      options_.retry, "train",
      [&]() -> Status {
        auto model =
            std::make_unique<core::O2SiteRecRecommender>(model_config);
        core::TrainContext ctx;
        ctx.data = &world.data;
        ctx.visible_orders = &world.split.train_orders;
        ctx.train = &world.split.train;
        if (!donor.empty()) ctx.warm_start = &donor;
        const Status train_status = model->Train(ctx);
        if (!train_status.ok()) {
          // A corrupt checkpoint would fail every replay identically;
          // deleting it lets the retry start the cycle clean.
          if (train_status.code() == common::StatusCode::kDataLoss) {
            std::remove(model_config.guard.checkpoint_path.c_str());
          }
          return train_status;
        }
        trained_ = std::move(model);
        trained_cycle_ = cycle;
        return Status::Ok();
      },
      &stats);
  report_.retries += stats.attempts - 1;
  if (stats.attempts > 1) {
    obs::PipelineEvent event;
    event.kind = obs::PipelineEventKind::kRetry;
    event.cycle = cycle;
    event.stage = PipelineStageName(state->stage);
    event.attempt = stats.attempts;
    event.note = stats.last_error.ToString();
    Emit(std::move(event));
    CounterOf("pipeline.retries")->Increment(stats.attempts - 1);
  }
  return status;
}

common::Status ContinualPipeline::RunExportStage(
    PipelineJournalState* state) {
  const int cycle = state->cycle;
  // A supervisor resumed into EXPORT has no trained model in memory;
  // re-running the train stage is nearly free because the completed
  // per-cycle checkpoint short-circuits every epoch.
  if (trained_ == nullptr || trained_cycle_ != cycle) {
    O2SR_RETURN_IF_ERROR(RunTrainStage(state));
  }
  const CycleWorld& world = WorldForCycle(cycle);

  serve::SnapshotMeta meta;
  meta.model_name = trained_->Name();
  meta.config_hash = CycleConfigHash(cycle);
  meta.num_regions = world.data.num_regions();
  meta.num_types = world.data.num_types();
  meta.type_norm =
      serve::TypeNormalizers(world.data.num_types(), world.interactions);

  common::RetryStats stats;
  const Status status = common::RunWithRetry(
      options_.retry, "export",
      [&] { return serve::ExportSnapshot(SnapshotPath(cycle), meta,
                                         *trained_); },
      &stats);
  report_.retries += stats.attempts - 1;
  if (stats.attempts > 1) {
    CounterOf("pipeline.retries")->Increment(stats.attempts - 1);
  }
  O2SR_RETURN_IF_ERROR(status);
  state->last_snapshot = SnapshotPath(cycle);
  return Status::Ok();
}

common::StatusOr<std::unique_ptr<core::O2SiteRecRecommender>>
ContinualPipeline::BuildStaged(int cycle) {
  const CycleWorld& world = WorldForCycle(cycle);
  auto staged = std::make_unique<core::O2SiteRecRecommender>(options_.model);
  core::TrainContext ctx;
  ctx.data = &world.data;
  ctx.visible_orders = &world.split.train_orders;
  ctx.train = &world.split.train;
  O2SR_RETURN_IF_ERROR(staged->PrepareServing(ctx));
  return staged;
}

std::vector<serve::CanaryQuery> ContinualPipeline::BuildCanaries(
    const core::SiteRecommender& staged, int cycle) {
  const CycleWorld& world = WorldForCycle(cycle);
  const int num_types = world.data.num_types();
  const int num_regions = world.data.num_regions();
  std::vector<serve::CanaryQuery> canaries;
  for (int q = 0; q < options_.canary_queries && num_types > 0; ++q) {
    serve::CanaryQuery canary;
    canary.type = q % num_types;
    canary.k = 3;
    for (int r = 0; r < num_regions; ++r) {
      if (staged.CanScoreRegion(r)) canary.candidates.push_back(r);
    }
    if (canary.candidates.empty()) continue;
    canaries.push_back(std::move(canary));
  }
  return canaries;
}

common::Status ContinualPipeline::RunCanaryStage(
    PipelineJournalState* state) {
  const int cycle = state->cycle;
  const std::string path = SnapshotPath(cycle);

  // One staging attempt: build structure, restore the snapshot into it,
  // finalize. Idempotent and memory-only, so it is retried wholesale.
  const auto stage_once = [&]() -> Status {
    O2SR_ASSIGN_OR_RETURN(auto staged, BuildStaged(cycle));
    O2SR_ASSIGN_OR_RETURN(const serve::Snapshot snap,
                          serve::LoadSnapshot(path));
    O2SR_RETURN_IF_ERROR(
        serve::RestoreModel(snap, *staged, CycleConfigHash(cycle)));
    O2SR_RETURN_IF_ERROR(staged->FinalizeServing());
    staged_ = std::move(staged);
    return Status::Ok();
  };

  common::RetryStats stats;
  Status status =
      common::RunWithRetry(options_.retry, "canary.stage", stage_once,
                           &stats);
  report_.retries += stats.attempts - 1;
  if (stats.attempts > 1) {
    CounterOf("pipeline.retries")->Increment(stats.attempts - 1);
    obs::PipelineEvent event;
    event.kind = obs::PipelineEventKind::kRetry;
    event.cycle = cycle;
    event.stage = PipelineStageName(state->stage);
    event.attempt = stats.attempts;
    event.note = stats.last_error.ToString();
    Emit(std::move(event));
  }
  if (!status.ok() && status.code() == common::StatusCode::kDataLoss) {
    // The snapshot on disk is durably corrupt. Re-export it (training
    // state is recoverable from the per-cycle checkpoint) and try once
    // more before giving up.
    O2SR_LOG(WARNING) << "snapshot '" << path
                      << "' corrupt during canary staging; re-exporting";
    O2SR_RETURN_IF_ERROR(RunExportStage(state));
    status = common::RunWithRetry(options_.retry, "canary.restage",
                                  stage_once);
  }
  O2SR_RETURN_IF_ERROR(status);
  canaries_ = BuildCanaries(*staged_, cycle);
  return Status::Ok();
}

serve::ServingEngine* ContinualPipeline::LiveEngine() const {
  if (tenant_ != nullptr) return tenant_->engine.get();
  return engine_.get();
}

void ContinualPipeline::AdoptTenantIfRegistered() {
  if (!PublishesTenant() || tenant_ != nullptr) return;
  auto tenant = options_.tenants->Get(options_.tenant_name);
  if (tenant.ok()) tenant_ = std::move(*tenant);
}

common::Status ContinualPipeline::PublishServingModel(
    std::unique_ptr<core::O2SiteRecRecommender> model,
    serve::ServingOptions serving_options) {
  if (PublishesTenant()) {
    O2SR_RETURN_IF_ERROR(options_.tenants->Register(
        options_.tenant_name, std::move(model), std::move(serving_options)));
    O2SR_ASSIGN_OR_RETURN(tenant_,
                          options_.tenants->Get(options_.tenant_name));
    return Status::Ok();
  }
  serving_model_ = std::move(model);
  O2SR_ASSIGN_OR_RETURN(
      engine_,
      serve::ServingEngine::Create(serving_model_.get(), serving_options));
  return Status::Ok();
}

serve::ServingOptions ContinualPipeline::MakeServingOptions(int cycle) {
  serve::ServingOptions serving_options;
  serving_options.prior = serve::BuildPopularityPrior(
      WorldForCycle(cycle).data.num_types(),
      WorldForCycle(cycle).interactions);
  // The engine invokes this outside its health lock, on the thread whose
  // request triggered the transition — here that is always the pipeline
  // thread (the supervisor issues every serve-stage query itself).
  serving_options.on_health_change = [this](serve::ServeHealth from,
                                            serve::ServeHealth to) {
    obs::PipelineEvent event;
    event.kind = obs::PipelineEventKind::kHealth;
    event.cycle = world_cycle_;
    event.stage = "SERVE";
    event.value = static_cast<double>(to);
    event.note = std::string(serve::ServeHealthName(from)) + " -> " +
                 serve::ServeHealthName(to);
    Emit(std::move(event));
    CounterOf("pipeline.health_transitions")->Increment();
  };
  return serving_options;
}

common::Status ContinualPipeline::RunSwapStage(PipelineJournalState* state) {
  const int cycle = state->cycle;
  const std::string path = SnapshotPath(cycle);
  // A supervisor resumed into SWAP re-runs the canary staging (memory-only
  // products are never journaled, they are recomputed).
  if (staged_ == nullptr) {
    O2SR_RETURN_IF_ERROR(RunCanaryStage(state));
  }

  // A tenant some earlier pipeline (or Run) already registered is adopted
  // and hot-swapped below, never re-registered.
  AdoptTenantIfRegistered();
  if (LiveEngine() == nullptr) {
    // First promotion of this process: the staged model itself becomes the
    // serving model (there is nothing to hot-swap from yet). In tenant
    // mode this registers the city in the shared registry instead of
    // spinning up a private engine.
    O2SR_RETURN_IF_ERROR(
        PublishServingModel(std::move(staged_), MakeServingOptions(cycle)));
    state->active_snapshot = path;
    state->active_cycle = cycle;
    return Status::Ok();
  }

  // Hot swap into the live engine, retried: a rejected swap quarantines the
  // snapshot file, so each retry re-exports it (from the restored staged
  // model — same learned state) and stages a fresh structure.
  common::RetryStats stats;
  const Status status = common::RunWithRetry(
      options_.retry, "swap",
      [&]() -> Status {
        if (!std::filesystem::exists(path)) {
          O2SR_RETURN_IF_ERROR(RunExportStage(state));
        }
        O2SR_ASSIGN_OR_RETURN(auto fresh_staged, BuildStaged(cycle));
        O2SR_ASSIGN_OR_RETURN(
            const serve::SwapReport swap,
            LiveEngine()->SwapSnapshot(path, std::move(fresh_staged),
                                  CycleConfigHash(cycle),
                                  {canaries_}));
        if (!swap.promoted) return swap.reject_reason;
        return Status::Ok();
      },
      &stats);
  report_.retries += stats.attempts - 1;
  if (stats.attempts > 1) {
    CounterOf("pipeline.retries")->Increment(stats.attempts - 1);
  }
  if (status.ok()) {
    state->active_snapshot = path;
    state->active_cycle = cycle;
    return Status::Ok();
  }

  // Swap budget exhausted: keep serving the prior snapshot (PR 5's ladder
  // keeps the engine healthy on the displaced model) and move on — a
  // continual pipeline must outlive one bad refresh.
  ++state->swap_fallbacks;
  report_.swap_fallbacks = state->swap_fallbacks;
  CounterOf("pipeline.swap_fallbacks")->Increment();
  obs::PipelineEvent event;
  event.kind = obs::PipelineEventKind::kFallback;
  event.cycle = cycle;
  event.stage = PipelineStageName(state->stage);
  event.attempt = stats.attempts;
  event.note = status.ToString();
  Emit(std::move(event));
  O2SR_LOG(WARNING) << "cycle " << cycle
                    << " swap failed after " << stats.attempts
                    << " attempt(s); serving prior snapshot '"
                    << state->active_snapshot << "': " << status.ToString();
  return Status::Ok();
}

common::Status ContinualPipeline::RunServeStage(PipelineJournalState* state) {
  serve::ServingEngine* engine = LiveEngine();
  if (engine == nullptr) {
    return common::FailedPreconditionError(
        "SERVE reached with no serving engine; no snapshot was ever "
        "promoted");
  }
  const int cycle = state->cycle;
  const CycleWorld& world = WorldForCycle(cycle);
  const int num_types = world.data.num_types();
  const int num_regions = world.data.num_regions();

  int served = 0, degraded = 0, shed = 0;
  for (int q = 0; q < options_.serve_queries && num_types > 0; ++q) {
    serve::RankRequest request;
    request.type = q % num_types;
    request.k = 5;
    request.candidates.reserve(num_regions);
    for (int r = 0; r < num_regions; ++r) request.candidates.push_back(r);
    auto response = engine->Rank(request);
    if (!response.ok()) {
      ++shed;
      continue;
    }
    ++served;
    if (response->tier != serve::ServeTier::kFresh) ++degraded;
  }
  report_.served += served;
  report_.degraded += degraded;

  state->completed_cycles = cycle + 1;
  CounterOf("pipeline.cycles_completed")->Increment();

  obs::PipelineEvent event;
  event.kind = obs::PipelineEventKind::kServe;
  event.cycle = cycle;
  event.stage = PipelineStageName(state->stage);
  event.value = served;
  event.note = "degraded=" + std::to_string(degraded) +
               " shed=" + std::to_string(shed);
  Emit(std::move(event));

  const obs::SloSnapshot slo = engine->slo().Snapshot();
  obs::PipelineEvent slo_event;
  slo_event.kind = obs::PipelineEventKind::kSlo;
  slo_event.cycle = cycle;
  slo_event.stage = PipelineStageName(state->stage);
  slo_event.value = slo.burn_rate;
  slo_event.note = slo.ToJson();
  Emit(std::move(slo_event));
  return Status::Ok();
}

common::Status ContinualPipeline::RunDriftStage(PipelineJournalState* state) {
  ++state->cycle;
  const CycleWorld& world = WorldForCycle(state->cycle);
  O2SR_LOG(INFO) << "drifted to cycle " << state->cycle << ": "
                 << world.drift_stats.num_stores << " stores, demand shift "
                 << world.drift_stats.demand_shift_slots << " slots";
  // The products of the previous cycle are stale now.
  trained_.reset();
  trained_cycle_ = -1;
  staged_.reset();
  canaries_.clear();
  return Status::Ok();
}

common::StatusOr<PipelineReport> ContinualPipeline::Run() {
  report_ = PipelineReport();
  transitions_this_run_ = 0;

  std::error_code ec;
  std::filesystem::create_directories(options_.work_dir, ec);
  if (ec) {
    return common::UnavailableError("cannot create pipeline work dir '" +
                                    options_.work_dir + "': " + ec.message());
  }
  if (!options_.event_log_path.empty()) {
    O2SR_RETURN_IF_ERROR(event_log_.OpenFile(options_.event_log_path));
  }

  PipelineJournalState state;
  state.config_hash = BaseConfigHash();
  if (journal_.Exists()) {
    auto loaded = journal_.Load();
    if (loaded.ok()) {
      if (loaded->config_hash != BaseConfigHash()) {
        return common::FailedPreconditionError(
            "journal '" + JournalPath() +
            "' belongs to a different pipeline configuration");
      }
      state = *loaded;
      report_.resumed = true;
      CounterOf("pipeline.resumes")->Increment();
      obs::PipelineEvent event;
      event.kind = obs::PipelineEventKind::kResume;
      event.cycle = state.cycle;
      event.stage = PipelineStageName(state.stage);
      event.note = JournalPath();
      Emit(std::move(event));
      O2SR_LOG(INFO) << "resuming pipeline at cycle " << state.cycle
                     << " stage " << PipelineStageName(state.stage);
    } else if (loaded.status().code() == common::StatusCode::kDataLoss ||
               loaded.status().code() ==
                   common::StatusCode::kFailedPrecondition) {
      // A journal that cannot be trusted is quarantined, not obeyed; the
      // pipeline restarts from TRAIN and re-converges (stages are
      // idempotent, completed training cycles short-circuit via their
      // checkpoints).
      const std::string corrupt = JournalPath() + ".corrupt";
      std::rename(JournalPath().c_str(), corrupt.c_str());
      O2SR_LOG(WARNING) << "journal unreadable ("
                        << loaded.status().ToString() << "); moved to '"
                        << corrupt << "', starting fresh";
    } else {
      return loaded.status();
    }
  }
  report_.start_stage = state.stage;
  report_.start_cycle = state.cycle;

  // Rehydrate the serving engine of a resumed supervisor. An engine that
  // is already live (a second Run() in one process, or a tenant already
  // hosted in the shared registry — adopted, since it is serving the
  // active snapshot) is left alone; re-registering would be refused.
  AdoptTenantIfRegistered();
  if (report_.resumed && !state.active_snapshot.empty() &&
      state.stage != PipelineStage::kDone && LiveEngine() == nullptr) {
    common::RetryStats stats;
    O2SR_RETURN_IF_ERROR(common::RunWithRetry(
        options_.retry, "rehydrate",
        [&]() -> Status {
          O2SR_ASSIGN_OR_RETURN(auto staged,
                                BuildStaged(state.active_cycle));
          O2SR_ASSIGN_OR_RETURN(const serve::Snapshot snap,
                                serve::LoadSnapshot(state.active_snapshot));
          O2SR_RETURN_IF_ERROR(serve::RestoreModel(
              snap, *staged, CycleConfigHash(state.active_cycle)));
          O2SR_RETURN_IF_ERROR(staged->FinalizeServing());
          O2SR_RETURN_IF_ERROR(PublishServingModel(
              std::move(staged), MakeServingOptions(state.active_cycle)));
          return Status::Ok();
        },
        &stats));
    report_.retries += stats.attempts - 1;
  }

  // Journal the initial state of a fresh pipeline so a crash before the
  // first transition still resumes instead of silently restarting.
  if (!report_.resumed) {
    O2SR_RETURN_IF_ERROR(common::RunWithRetry(
        options_.retry, "journal.write",
        [&] { return journal_.Write(state); }));
    CounterOf("pipeline.journal_writes")->Increment();
  }

  bool stop = false;
  while (!stop && state.stage != PipelineStage::kDone) {
    StageGauge()->Set(static_cast<double>(state.stage));
    CycleGauge()->Set(state.cycle);
    switch (state.stage) {
      case PipelineStage::kTrain:
      case PipelineStage::kRetrain:
        O2SR_RETURN_IF_ERROR(RunTrainStage(&state));
        O2SR_RETURN_IF_ERROR(
            Transition(&state, PipelineStage::kExport, &stop));
        break;
      case PipelineStage::kExport:
        O2SR_RETURN_IF_ERROR(RunExportStage(&state));
        O2SR_RETURN_IF_ERROR(
            Transition(&state, PipelineStage::kCanary, &stop));
        break;
      case PipelineStage::kCanary:
        O2SR_RETURN_IF_ERROR(RunCanaryStage(&state));
        O2SR_RETURN_IF_ERROR(Transition(&state, PipelineStage::kSwap, &stop));
        break;
      case PipelineStage::kSwap:
        O2SR_RETURN_IF_ERROR(RunSwapStage(&state));
        O2SR_RETURN_IF_ERROR(
            Transition(&state, PipelineStage::kServe, &stop));
        break;
      case PipelineStage::kServe:
        O2SR_RETURN_IF_ERROR(RunServeStage(&state));
        O2SR_RETURN_IF_ERROR(Transition(
            &state,
            state.completed_cycles >= options_.cycles
                ? PipelineStage::kDone
                : PipelineStage::kDrift,
            &stop));
        break;
      case PipelineStage::kDrift:
        O2SR_RETURN_IF_ERROR(RunDriftStage(&state));
        O2SR_RETURN_IF_ERROR(
            Transition(&state, PipelineStage::kRetrain, &stop));
        break;
      case PipelineStage::kDone:
        break;
    }
  }
  StageGauge()->Set(static_cast<double>(state.stage));

  report_.stopped_early = stop && state.stage != PipelineStage::kDone;
  report_.transitions = state.transitions;
  report_.cycles_completed = state.completed_cycles;
  report_.swap_fallbacks = state.swap_fallbacks;
  report_.active_snapshot = state.active_snapshot;
  return report_;
}

}  // namespace o2sr::pipeline
