#ifndef O2SR_PIPELINE_PIPELINE_H_
#define O2SR_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/o2siterec.h"
#include "core/o2siterec_recommender.h"
#include "obs/telemetry.h"
#include "pipeline/journal.h"
#include "serve/engine.h"
#include "serve/tenant.h"
#include "sim/config.h"
#include "sim/drift.h"

namespace o2sr::pipeline {

// Supervised continual-retraining runtime: drives the journaled
// TRAIN -> EXPORT -> CANARY -> SWAP -> SERVE -> DRIFT -> RETRAIN machine
// (pipeline/journal.h) over a drifting world (sim/drift.h), with every
// fallible stage wrapped in common::RunWithRetry and failed swaps falling
// back to the prior snapshot via the serving engine's quarantine path.
//
// Crash contract: the supervisor journals before executing each stage, and
// every stage body is idempotent (training resumes from its own per-cycle
// checkpoint, exports/journals publish atomically, canaries are recomputed
// from artifacts). Killing the process at any stage boundary and calling
// Run() again continues the same pipeline and converges to bit-identical
// snapshots — tests/pipeline_test.cc proves this at every boundary.
//
// Observability (prefix "pipeline"): stage/cycle gauges, cycles_completed /
// retries / swap_fallbacks / resumes / journal_writes counters, plus one
// obs::PipelineEvent per transition/retry/fallback/resume/serve (JSONL when
// `event_log_path` is set). The serving engine's health transitions
// (SERVING / DEGRADED / LAME_DUCK) surface as kHealth events, and every
// SERVE stage appends one kSlo event carrying the engine's rolling-window
// SLO snapshot (burn rate in `value`, full JSON in `note`).

struct PipelineOptions {
  // The base world, model and drift process. The config fingerprint over
  // these three guards journal resume.
  sim::SimConfig world;
  core::O2SiteRecConfig model;
  sim::DriftConfig drift;

  // Refresh cycles to complete before DONE (cycle k trains on drift
  // epoch k). Env: O2SR_PIPELINE_CYCLES.
  int cycles = 3;
  // Directory holding the journal, per-cycle training checkpoints and
  // snapshots. Created if missing. Env: O2SR_PIPELINE_DIR.
  std::string work_dir = "pipeline_state";
  // Retry policy around train / export / restore / swap. Env:
  // O2SR_PIPELINE_RETRIES (max_attempts), O2SR_PIPELINE_BACKOFF_MS
  // (initial backoff).
  common::RetryPolicy retry;

  // Evaluation split driven through training (train side) each cycle.
  double train_fraction = 0.8;
  uint64_t split_seed = 1;
  // Rank() calls issued during each SERVE stage.
  int serve_queries = 24;
  // Canary queries per swap.
  int canary_queries = 4;
  // JSONL sink for pipeline events; empty disables.
  std::string event_log_path;

  // Multi-tenant publishing: when `tenants` is set (borrowed; must outlive
  // the pipeline) and `tenant_name` is non-empty, the pipeline publishes
  // its serving model into the registry under that name instead of owning
  // a private engine — first promotion registers the tenant, every later
  // cycle hot-swaps it through TenantRegistry::Swap, and the SERVE stage
  // queries the tenant's engine. Several pipelines (one per city) can then
  // share one registry, which is exactly the O2O deployment shape.
  serve::TenantRegistry* tenants = nullptr;
  std::string tenant_name;

  // Test hook: stop cleanly after this many journal transitions in THIS
  // process (the journal is already written, so the next Run() resumes) —
  // a deterministic "kill at stage boundary". < 0 disables.
  int64_t max_transitions = -1;
};

// Fills `options` from the O2SR_PIPELINE_* environment knobs listed above
// (unset knobs leave the current value).
void ApplyPipelineEnv(PipelineOptions* options);

// What one Run() actually did.
struct PipelineReport {
  bool resumed = false;           // picked up an existing journal
  PipelineStage start_stage = PipelineStage::kTrain;
  int start_cycle = 0;
  int cycles_completed = 0;       // lifetime total (includes prior runs)
  int retries = 0;                // retry attempts beyond the first, this run
  int swap_fallbacks = 0;         // lifetime total
  int64_t transitions = 0;        // lifetime total
  bool stopped_early = false;     // max_transitions hit; journal is current
  std::string active_snapshot;    // snapshot serving when Run() returned
  // SERVE-stage tallies, this run.
  int served = 0;
  int degraded = 0;
  std::vector<obs::PipelineEvent> events;  // this run's events
};

class ContinualPipeline {
 public:
  explicit ContinualPipeline(PipelineOptions options);
  ~ContinualPipeline();
  ContinualPipeline(const ContinualPipeline&) = delete;
  ContinualPipeline& operator=(const ContinualPipeline&) = delete;

  // Runs the machine until DONE (or max_transitions). Resumes from the
  // journal when one exists; FAILED_PRECONDITION when the journal belongs
  // to a different configuration. A corrupt journal is moved aside to
  // `<journal>.corrupt` and the pipeline starts fresh (robustness beats
  // preserving a file that cannot be trusted).
  common::StatusOr<PipelineReport> Run();

  // The engine serving the active snapshot (null before the first SWAP):
  // the pipeline's own, or its tenant's when publishing into a registry.
  const serve::ServingEngine* engine() const { return LiveEngine(); }

  const PipelineOptions& options() const { return options_; }

 private:
  struct CycleWorld;  // dataset + split + interactions of one drift epoch

  std::string JournalPath() const;
  std::string CheckpointPath(int cycle) const;
  std::string SnapshotPath(int cycle) const;
  uint64_t BaseConfigHash() const;
  uint64_t CycleConfigHash(int cycle) const;

  const CycleWorld& WorldForCycle(int cycle);

  common::Status RunTrainStage(PipelineJournalState* state);
  common::Status RunExportStage(PipelineJournalState* state);
  common::Status RunCanaryStage(PipelineJournalState* state);
  common::Status RunSwapStage(PipelineJournalState* state);
  common::Status RunServeStage(PipelineJournalState* state);
  common::Status RunDriftStage(PipelineJournalState* state);

  common::StatusOr<std::unique_ptr<core::O2SiteRecRecommender>> BuildStaged(
      int cycle);
  std::vector<serve::CanaryQuery> BuildCanaries(
      const core::SiteRecommender& staged, int cycle);
  // Engine options for `cycle`: popularity prior plus the health-transition
  // callback that turns engine health changes into kHealth events.
  serve::ServingOptions MakeServingOptions(int cycle);

  // True when publishing into a tenant registry instead of a private engine.
  bool PublishesTenant() const {
    return options_.tenants != nullptr && !options_.tenant_name.empty();
  }
  // The live serving engine: the pinned tenant's, or the private engine_.
  serve::ServingEngine* LiveEngine() const;
  // Tenant mode: pins a tenant an earlier pipeline (or Run) already
  // registered in the shared registry, so resume hot-swaps into the live
  // engine instead of re-registering the name.
  void AdoptTenantIfRegistered();
  // Hands `model` to the serving side: registers the tenant or creates the
  // private engine. Used by first promotion and by rehydration.
  common::Status PublishServingModel(
      std::unique_ptr<core::O2SiteRecRecommender> model,
      serve::ServingOptions serving_options);

  void Emit(obs::PipelineEvent event);
  common::Status Transition(PipelineJournalState* state, PipelineStage next,
                            bool* stop);

  PipelineOptions options_;
  PipelineJournal journal_;
  obs::PipelineEventLog event_log_;
  PipelineReport report_;
  int64_t transitions_this_run_ = 0;

  // In-memory stage products; all recomputable from artifacts on resume.
  std::unique_ptr<CycleWorld> world_;                // current cycle's world
  int world_cycle_ = -1;
  std::unique_ptr<core::O2SiteRecRecommender> trained_;  // TRAIN product
  int trained_cycle_ = -1;
  std::unique_ptr<core::O2SiteRecRecommender> staged_;   // CANARY product
  std::vector<serve::CanaryQuery> canaries_;
  std::unique_ptr<core::O2SiteRecRecommender> serving_model_;  // engine's
  std::unique_ptr<serve::ServingEngine> engine_;
  // Pin on the published tenant (tenant mode only): keeps the engine alive
  // for this pipeline even if the tenant is concurrently removed.
  serve::TenantRegistry::TenantPtr tenant_;
};

}  // namespace o2sr::pipeline

#endif  // O2SR_PIPELINE_PIPELINE_H_
