#include "pipeline/journal.h"

#include <cstdio>

#include "common/fault.h"
#include "nn/serialize.h"

namespace o2sr::pipeline {

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kTrain: return "TRAIN";
    case PipelineStage::kExport: return "EXPORT";
    case PipelineStage::kCanary: return "CANARY";
    case PipelineStage::kSwap: return "SWAP";
    case PipelineStage::kServe: return "SERVE";
    case PipelineStage::kDrift: return "DRIFT";
    case PipelineStage::kRetrain: return "RETRAIN";
    case PipelineStage::kDone: return "DONE";
  }
  return "?";
}

bool PipelineJournal::Exists() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

common::Status PipelineJournal::Write(const PipelineJournalState& state) {
  std::string payload;
  nn::ByteWriter w(&payload);
  w.Scalar<uint64_t>(state.config_hash);
  w.Scalar<int32_t>(state.cycle);
  w.Scalar<int32_t>(static_cast<int32_t>(state.stage));
  w.Scalar<int32_t>(state.completed_cycles);
  w.Str(state.last_snapshot);
  w.Str(state.active_snapshot);
  w.Scalar<int32_t>(state.active_cycle);
  w.Scalar<int32_t>(state.swap_fallbacks);
  w.Scalar<int64_t>(state.transitions);
  // Injection site "journal.write": the supervisor crashing (or its disk
  // failing) at the exact transition boundary — the case the kill-and-resume
  // test exercises at every stage.
  auto& faults = common::FaultInjector::Global();
  faults.InjectDelay("journal.write");
  O2SR_RETURN_IF_ERROR(faults.InjectError("journal.write"));
  return nn::WriteContainerFile(path_, kJournalMagic, kJournalFormatVersion,
                                payload);
}

common::StatusOr<PipelineJournalState> PipelineJournal::Load() const {
  O2SR_ASSIGN_OR_RETURN(
      const std::string payload,
      nn::ReadContainerFile(path_, kJournalMagic, kJournalFormatVersion));
  nn::ByteReader r(payload);
  PipelineJournalState state;
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.config_hash));
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.cycle));
  int32_t stage = 0;
  O2SR_RETURN_IF_ERROR(r.Scalar(&stage));
  if (stage < static_cast<int32_t>(PipelineStage::kTrain) ||
      stage > static_cast<int32_t>(PipelineStage::kDone)) {
    return common::DataLossError("journal '" + path_ +
                                 "' holds unknown stage " +
                                 std::to_string(stage));
  }
  state.stage = static_cast<PipelineStage>(stage);
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.completed_cycles));
  O2SR_RETURN_IF_ERROR(r.Str(&state.last_snapshot));
  O2SR_RETURN_IF_ERROR(r.Str(&state.active_snapshot));
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.active_cycle));
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.swap_fallbacks));
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.transitions));
  if (state.cycle < 0 || state.completed_cycles < 0 ||
      state.transitions < 0) {
    return common::DataLossError("journal '" + path_ +
                                 "' holds negative progress counters");
  }
  return state;
}

}  // namespace o2sr::pipeline
