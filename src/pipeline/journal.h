#ifndef O2SR_PIPELINE_JOURNAL_H_
#define O2SR_PIPELINE_JOURNAL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace o2sr::pipeline {

// The continual-retraining state machine (DESIGN.md §11). A cycle trains on
// the world at its drift epoch, exports + canaries + swaps the snapshot
// into serving, serves a window, then the world drifts and the next cycle
// retrains warm-started from the previous snapshot.
//
//   TRAIN -> EXPORT -> CANARY -> SWAP -> SERVE -> DRIFT -> RETRAIN -> ...
//                                          |
//                                          +-> DONE (after the last cycle)
//
// The journal makes the machine crash-resumable: every transition persists
// the full supervisor state (next stage, cycle, artifact paths) to a
// checksummed container file published atomically, so a supervisor killed
// at any stage boundary restarts exactly where it stopped. Stage bodies
// are idempotent — re-running a partially executed stage converges to the
// same artifacts (training resumes from its own checkpoint, exports
// re-publish atomically) — which is what makes "resume = replay the journal
// head" a correctness statement rather than a hope.

enum class PipelineStage : int32_t {
  kTrain = 0,
  kExport = 1,
  kCanary = 2,
  kSwap = 3,
  kServe = 4,
  kDrift = 5,
  kRetrain = 6,
  kDone = 7,
};

const char* PipelineStageName(PipelineStage stage);

inline constexpr char kJournalMagic[] = "O2SRJRNL";
inline constexpr uint32_t kJournalFormatVersion = 1;

// The supervisor state persisted at every transition. `stage` is the NEXT
// stage to execute; everything else is the context it needs.
struct PipelineJournalState {
  // Fingerprint of (world, model, drift) configs; a journal from a
  // different configuration is refused on resume.
  uint64_t config_hash = 0;
  // Refresh cycle being worked on (0-based; cycle k trains on drift
  // epoch k).
  int32_t cycle = 0;
  PipelineStage stage = PipelineStage::kTrain;
  int32_t completed_cycles = 0;
  // Latest successfully exported snapshot (warm-start donor of the next
  // cycle) and the cycle it belongs to via its filename.
  std::string last_snapshot;
  // Snapshot currently promoted into serving and the cycle whose world it
  // was trained on (-1 before the first promotion) — what a resumed
  // supervisor rehydrates its engine from.
  std::string active_snapshot;
  int32_t active_cycle = -1;
  // Swap-stage fallbacks to the prior snapshot so far (quarantined swaps).
  int32_t swap_fallbacks = 0;
  // Total transitions journaled over the pipeline's lifetime (all runs).
  int64_t transitions = 0;
};

// Persistent journal file. Writes go through the atomic checksummed
// container (magic "O2SRJRNL"); fault site "journal.write" fires before the
// publish so chaos recipes can crash the supervisor at exact transition
// boundaries.
class PipelineJournal {
 public:
  explicit PipelineJournal(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }
  bool Exists() const;

  common::Status Write(const PipelineJournalState& state);
  common::StatusOr<PipelineJournalState> Load() const;

 private:
  std::string path_;
};

}  // namespace o2sr::pipeline

#endif  // O2SR_PIPELINE_JOURNAL_H_
