#include "serve/tenant.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"

namespace o2sr::serve {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

common::Status ParseDouble(const std::string& key, const std::string& value,
                           double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return common::InvalidArgumentError("tenant config: key '" + key +
                                        "' has unparsable value '" + value +
                                        "'");
  }
  *out = v;
  return common::Status::Ok();
}

common::Status ParseInt64(const std::string& key, const std::string& value,
                          int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return common::InvalidArgumentError("tenant config: key '" + key +
                                        "' has unparsable value '" + value +
                                        "'");
  }
  *out = static_cast<int64_t>(v);
  return common::Status::Ok();
}

common::Status ApplyKey(const std::string& key, const std::string& value,
                        TenantConfig* config) {
  if (key == "deadline_ms") return ParseDouble(key, value, &config->deadline_ms);
  if (key == "slo_ms") return ParseDouble(key, value, &config->slo_ms);
  if (key == "slo_target") return ParseDouble(key, value, &config->slo_target);
  if (key == "max_inflight") {
    return ParseInt64(key, value, &config->max_inflight);
  }
  if (key == "cache_capacity") {
    return ParseInt64(key, value, &config->cache_capacity);
  }
  int64_t v = 0;
  if (key == "cache_shards" || key == "shards" ||
      key == "health_recovery_streak") {
    O2SR_RETURN_IF_ERROR(ParseInt64(key, value, &v));
    if (key == "cache_shards") config->cache_shards = static_cast<int>(v);
    if (key == "shards") config->shards = static_cast<int>(v);
    if (key == "health_recovery_streak") {
      config->health_recovery_streak = static_cast<int>(v);
    }
    return common::Status::Ok();
  }
  return common::InvalidArgumentError(
      "tenant config: unknown key '" + key +
      "' (a typo must not silently serve defaults)");
}

// Splits "key = value"; false for lines that are not assignments.
bool SplitAssignment(const std::string& line, std::string* key,
                     std::string* value) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos) return false;
  *key = Trim(line.substr(0, eq));
  *value = Trim(line.substr(eq + 1));
  return !key->empty();
}

}  // namespace

void TenantConfig::ApplyTo(ServingOptions* options) const {
  if (deadline_ms >= 0.0) options->default_deadline_ms = deadline_ms;
  if (max_inflight >= 0) options->max_inflight = max_inflight;
  if (cache_capacity >= 0) options->cache_capacity = cache_capacity;
  if (cache_shards > 0) options->cache_shards = cache_shards;
  if (shards > 0) options->num_shards = shards;
  if (slo_ms > 0.0) options->slo_ms = slo_ms;
  if (slo_target > 0.0) options->slo_target = slo_target;
  if (health_recovery_streak > 0) {
    options->health_recovery_streak = health_recovery_streak;
  }
}

common::StatusOr<TenantConfig> ParseTenantConfig(const std::string& text) {
  TenantConfig config;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string line =
        Trim(text.substr(pos, nl == std::string::npos ? nl : nl - pos));
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    if (line.empty() || line[0] == '#') continue;
    std::string key, value;
    if (!SplitAssignment(line, &key, &value)) {
      return common::InvalidArgumentError(
          "tenant config: expected 'key = value', got '" + line + "'");
    }
    O2SR_RETURN_IF_ERROR(ApplyKey(key, value, &config));
  }
  return config;
}

common::StatusOr<std::unordered_map<std::string, TenantConfig>>
ParseTenantConfigFile(const std::string& text) {
  std::unordered_map<std::string, TenantConfig> out;
  std::string section;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string line =
        Trim(text.substr(pos, nl == std::string::npos ? nl : nl - pos));
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return common::InvalidArgumentError(
            "tenant config: malformed section header '" + line + "'");
      }
      section = Trim(line.substr(1, line.size() - 2));
      if (section.empty()) {
        return common::InvalidArgumentError(
            "tenant config: empty tenant name in section header");
      }
      if (!out.emplace(section, TenantConfig()).second) {
        return common::InvalidArgumentError(
            "tenant config: duplicate section [" + section + "]");
      }
      continue;
    }
    if (section.empty()) {
      return common::InvalidArgumentError(
          "tenant config: assignment '" + line +
          "' appears before any [tenant] section");
    }
    std::string key, value;
    if (!SplitAssignment(line, &key, &value)) {
      return common::InvalidArgumentError(
          "tenant config: expected 'key = value', got '" + line + "'");
    }
    O2SR_RETURN_IF_ERROR(ApplyKey(key, value, &out[section]));
  }
  return out;
}

common::StatusOr<std::unordered_map<std::string, TenantConfig>>
LoadTenantConfigFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::NotFoundError("tenant config file '" + path +
                                 "' does not exist or is unreadable");
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  auto parsed = ParseTenantConfigFile(text);
  if (!parsed.ok()) {
    return parsed.status().WithContext("while parsing '" + path + "'");
  }
  return parsed;
}

TenantRegistry::TenantRegistry() : map_(std::make_shared<const Map>()) {}

std::shared_ptr<const TenantRegistry::Map> TenantRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_;
}

std::string TenantRegistry::MetricsPrefixFor(const std::string& name) {
  return "serve.tenant." + obs::SanitizeMetricLabel(name);
}

common::Status TenantRegistry::Register(
    const std::string& name, std::unique_ptr<core::SiteRecommender> model,
    ServingOptions options) {
  if (name.empty()) {
    return common::InvalidArgumentError(
        "TenantRegistry: tenant name must be non-empty");
  }
  if (model == nullptr) {
    return common::InvalidArgumentError("TenantRegistry: model is null");
  }
  options.metrics_prefix = MetricsPrefixFor(name);
  auto tenant = std::make_shared<Tenant>();
  tenant->name = name;
  tenant->model = std::move(model);
  // Engine creation (FinalizeServing) runs outside the registry lock: a
  // slow table build for one city must not block lookups for the others.
  auto engine = ServingEngine::Create(tenant->model.get(), options);
  if (!engine.ok()) {
    return engine.status().WithContext("registering tenant '" + name + "'");
  }
  tenant->engine = std::move(*engine);

  std::lock_guard<std::mutex> lock(mutex_);
  if (map_->count(name) != 0) {
    return common::FailedPreconditionError(
        "TenantRegistry: tenant '" + name + "' is already registered");
  }
  auto next = std::make_shared<Map>(*map_);
  next->emplace(name, std::move(tenant));
  map_ = std::move(next);
  O2SR_LOG(INFO) << "tenant '" << name << "' registered ("
                 << map_->size() << " tenants hosted)";
  return common::Status::Ok();
}

common::StatusOr<TenantRegistry::TenantPtr> TenantRegistry::Get(
    const std::string& name) const {
  const auto map = Snapshot();
  const auto it = map->find(name);
  if (it == map->end()) {
    return common::NotFoundError("TenantRegistry: unknown tenant '" + name +
                                 "' — request refused, not redirected");
  }
  return it->second;
}

common::StatusOr<SwapReport> TenantRegistry::Swap(
    const std::string& name, const std::string& snapshot_path,
    std::unique_ptr<core::SiteRecommender> staged,
    uint64_t expected_config_hash, const SwapOptions& swap_options) {
  O2SR_ASSIGN_OR_RETURN(const TenantPtr tenant, Get(name));
  return tenant->engine->SwapSnapshot(snapshot_path, std::move(staged),
                                      expected_config_hash, swap_options);
}

common::Status TenantRegistry::Remove(const std::string& name) {
  TenantPtr removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_->find(name);
    if (it == map_->end()) {
      return common::NotFoundError("TenantRegistry: unknown tenant '" +
                                   name + "'");
    }
    removed = it->second;
    auto next = std::make_shared<Map>(*map_);
    next->erase(name);
    map_ = std::move(next);
  }
  // Drain outside the lock; pinned references keep the engine alive.
  removed->engine->EnterLameDuck();
  O2SR_LOG(INFO) << "tenant '" << name << "' removed (drained to LAME_DUCK)";
  return common::Status::Ok();
}

std::vector<std::string> TenantRegistry::TenantNames() const {
  const auto map = Snapshot();
  std::vector<std::string> names;
  names.reserve(map->size());
  for (const auto& [name, tenant] : *map) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t TenantRegistry::size() const { return Snapshot()->size(); }

}  // namespace o2sr::serve
