#ifndef O2SR_SERVE_TENANT_H_
#define O2SR_SERVE_TENANT_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"
#include "serve/engine.h"

namespace o2sr::serve {

// Per-tenant serving knobs, each "< 0 / empty means keep the base value".
// The O2O deployment model is one model per metro: a registry hosts many
// of these side by side, and a city with tight latency SLAs or a small
// memory budget tunes its own engine without touching its neighbours'.
// Parsed from the per-tenant config file format documented in README
// ("Serving the model", tenant config):
//
//   # comment
//   [beijing]
//   deadline_ms = 12
//   max_inflight = 64
//   cache_capacity = 32768
//   cache_shards = 8
//   shards = 4
//   slo_ms = 20
//   slo_target = 0.995
//   health_recovery_streak = 16
//
// Unknown keys are an error (a typo must not silently serve defaults).
struct TenantConfig {
  double deadline_ms = -1.0;
  int64_t max_inflight = -1;
  int64_t cache_capacity = -1;
  int cache_shards = -1;
  int shards = -1;
  double slo_ms = -1.0;
  double slo_target = -1.0;
  int health_recovery_streak = -1;

  // Overlays every set (>= 0) field onto `options`.
  void ApplyTo(ServingOptions* options) const;
};

// Parses one tenant section body (the `key = value` lines). Fails with
// INVALID_ARGUMENT on unknown keys or unparsable values.
common::StatusOr<TenantConfig> ParseTenantConfig(const std::string& text);

// Parses a whole `[name]`-sectioned config file (text form). Keys outside
// any section are an error.
common::StatusOr<std::unordered_map<std::string, TenantConfig>>
ParseTenantConfigFile(const std::string& text);

// Reads and parses `path`. NOT_FOUND when the file does not exist.
common::StatusOr<std::unordered_map<std::string, TenantConfig>>
LoadTenantConfigFile(const std::string& path);

// A registry of named tenants (cities), each owning a serving model and a
// fully independent ServingEngine: private caches and shard counters, its
// own hot-swap/canary/quarantine path, its own deadline/shedding/fallback
// configuration, and its own metric + SLO gauges under the registry prefix
// "serve.tenant.<sanitized-name>". Nothing is shared between tenants but
// the process-wide metrics registry, so one city's corrupt snapshot or
// traffic spike cannot touch another's serving state (proven by
// tests/tenant_test.cc under fault injection).
//
// Lifecycle of a tenant: Register (model + engine born SERVING) ->
// any number of Swap calls (promote/reject per PR-5 canary machinery) ->
// Remove (engine enters LAME_DUCK, storage dropped once the last pinned
// reference releases).
//
// Thread-safety: all methods are safe to call concurrently. Lookups copy
// one shared_ptr under a briefly-held mutex; the pointed-to map is
// immutable (mutations copy-on-write a replacement), so a lookup never
// contends with a mutation's real work. Get() returns a shared_ptr pin,
// so a tenant removed mid-request stays alive until its last user lets
// go.
class TenantRegistry {
 public:
  struct Tenant {
    std::string name;
    std::unique_ptr<core::SiteRecommender> model;
    std::unique_ptr<ServingEngine> engine;
  };
  using TenantPtr = std::shared_ptr<Tenant>;

  TenantRegistry();

  // Creates the tenant's engine over `model` (ownership transfers) with
  // `options`, forcing options.metrics_prefix to the tenant's own prefix.
  // FAILED_PRECONDITION when the name is already registered;
  // INVALID_ARGUMENT on an empty name or null model; engine-creation
  // failures propagate (the model is dropped).
  common::Status Register(const std::string& name,
                          std::unique_ptr<core::SiteRecommender> model,
                          ServingOptions options = {});

  // The tenant, pinned. NOT_FOUND with a typed error for unknown names —
  // requests for a city this process does not host must fail loudly, never
  // fall back to some other tenant's model.
  common::StatusOr<TenantPtr> Get(const std::string& name) const;

  // Hot-swaps `name`'s engine to the snapshot at `snapshot_path` (the full
  // SwapSnapshot contract: canaries, quarantine on reject, epoch bump).
  // NOT_FOUND for unknown tenants.
  common::StatusOr<SwapReport> Swap(
      const std::string& name, const std::string& snapshot_path,
      std::unique_ptr<core::SiteRecommender> staged,
      uint64_t expected_config_hash, const SwapOptions& swap_options = {});

  // Drains (EnterLameDuck) and unlists the tenant; NOT_FOUND when absent.
  // In-flight pins keep the engine alive until they release.
  common::Status Remove(const std::string& name);

  // Sorted tenant names.
  std::vector<std::string> TenantNames() const;
  size_t size() const;

  // The registry metric prefix for `name`: "serve.tenant." +
  // obs::SanitizeMetricLabel(name).
  static std::string MetricsPrefixFor(const std::string& name);

 private:
  using Map = std::unordered_map<std::string, TenantPtr>;

  std::shared_ptr<const Map> Snapshot() const;

  mutable std::mutex mutex_;  // serializes mutations
  std::shared_ptr<const Map> map_;
};

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_TENANT_H_
