#ifndef O2SR_SERVE_SCORE_CACHE_H_
#define O2SR_SERVE_SCORE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace o2sr::obs {
class Counter;
}  // namespace o2sr::obs

namespace o2sr::serve {

// Sharded LRU cache of (region, type) -> score. Keys hash to a shard; each
// shard holds its own mutex, map and recency list, so concurrent lookups on
// different shards never contend. Capacity is split evenly across shards
// (each shard evicts its own least-recently-used entry when full).
//
// The cache is an *optimization only*: scores are deterministic functions
// of the loaded snapshot, so a hit returns exactly what recomputation
// would — the engine's results are bit-identical with the cache on, off,
// cold or warm. Tests assert this (metrics_test.cc).
//
// Observability (obs::MetricsRegistry::Global(), prefix "serve.cache"):
//   serve.cache.hits       lookups answered from the cache
//   serve.cache.misses     lookups that fell through
//   serve.cache.evictions  entries displaced by capacity pressure
class ScoreCache {
 public:
  // `capacity` <= 0 disables the cache (every Lookup misses, Insert is a
  // no-op). `shards` is clamped to [1, capacity] so every shard holds at
  // least one entry.
  ScoreCache(int64_t capacity, int shards);

  // Total-capacity override from O2SR_SERVE_CACHE ("0" disables); returns
  // `fallback` when the variable is unset or unparsable.
  static int64_t CapacityFromEnv(int64_t fallback);

  static uint64_t Key(int type, int region) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(type)) << 32) |
           static_cast<uint32_t>(region);
  }

  // On hit, writes the score, refreshes recency and returns true.
  bool Lookup(uint64_t key, double* score);
  // Inserts or refreshes; evicts the shard's LRU entry when full.
  void Insert(uint64_t key, double score);

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.
    std::list<std::pair<uint64_t, double>> lru;
    std::unordered_map<uint64_t,
                       std::list<std::pair<uint64_t, double>>::iterator>
        map;
  };

  Shard& ShardOf(uint64_t key);

  int64_t capacity_ = 0;
  int64_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
};

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_SCORE_CACHE_H_
