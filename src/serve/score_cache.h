#ifndef O2SR_SERVE_SCORE_CACHE_H_
#define O2SR_SERVE_SCORE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace o2sr::obs {
class Counter;
}  // namespace o2sr::obs

namespace o2sr::serve {

// Sharded LRU cache of (region, type) -> (score, epoch). Keys hash to a
// shard; each shard holds its own mutex, map and recency list, so
// concurrent lookups on different shards never contend. Capacity is split
// evenly across shards (each shard evicts its own least-recently-used
// entry when full).
//
// Every entry is tagged with the *model epoch* that computed it (the
// serving engine bumps the epoch on each snapshot swap). A fresh Lookup
// only returns entries of the caller's epoch — a swapped-in model can
// never be answered with the previous model's scores. Entries from older
// epochs are retained (until evicted) and reachable through LookupStale:
// the degraded-mode fallback ladder serves them, explicitly labeled, when
// fresh scoring fails (DESIGN.md §10).
//
// The fresh path is an *optimization only*: scores are deterministic
// functions of the loaded snapshot, so a fresh hit returns exactly what
// recomputation would — the engine's results are bit-identical with the
// cache on, off, cold or warm. Tests assert this (metrics_test.cc).
//
// Statistics live in per-shard cache-line-aligned relaxed-atomic blocks:
// a counter bump touches only the shard the key already hashed to, so the
// hot path never bounces a shared stats line between cores (the pre-§14
// design kept five instance-global atomics that every shard hammered).
// `stats()` aggregates the shard blocks on read; `ShardStats(i)` exposes
// one block so tests can assert the per-shard sum equals the aggregate
// (TSAN-covered by tests/score_cache_stress_test.cc). Counters are
// mirrored into the process-wide registry under `metrics_prefix` (default
// "serve.cache"):
//   <prefix>.hits        fresh lookups answered from the cache
//   <prefix>.misses      lookups that fell through
//   <prefix>.stale_hits  stale lookups answered by an older epoch
//   <prefix>.evictions   entries displaced by capacity pressure
class ScoreCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_hits = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
  };

  // `capacity` <= 0 disables the cache (every Lookup misses, Insert is a
  // no-op). `shards` is clamped to [1, capacity] so every shard holds at
  // least one entry. `metrics_prefix` names the registry mirror counters;
  // per-tenant engines pass distinct prefixes so one tenant's traffic
  // never pollutes another's gauges.
  ScoreCache(int64_t capacity, int shards,
             const std::string& metrics_prefix = "serve.cache");

  // Total-capacity override from O2SR_SERVE_CACHE ("0" disables); returns
  // `fallback` when the variable is unset or unparsable.
  static int64_t CapacityFromEnv(int64_t fallback);

  static uint64_t Key(int type, int region) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(type)) << 32) |
           static_cast<uint32_t>(region);
  }

  // On a fresh hit (entry tagged exactly `epoch`), writes the score,
  // refreshes recency and returns true. An entry from another epoch is a
  // miss (the entry stays, reachable via LookupStale).
  bool Lookup(uint64_t key, uint64_t epoch, double* score);

  // Degraded-mode lookup: returns the entry regardless of its epoch,
  // writing the tagging epoch to `entry_epoch` when non-null. Does not
  // refresh recency (stale entries must not outcompete fresh ones).
  bool LookupStale(uint64_t key, double* score,
                   uint64_t* entry_epoch = nullptr);

  // Inserts or refreshes the entry under `epoch`; evicts the shard's LRU
  // entry when full.
  void Insert(uint64_t key, uint64_t epoch, double score);

  // Drops every entry (all epochs). Used when stale scores must not
  // survive — e.g. quarantining a world whose scores are known bad.
  void Invalidate();

  // Aggregate across every shard block (plus the disabled-path block).
  Stats stats() const;
  // One shard's block. `shard` in [0, num_shards()); a disabled cache has
  // zero shards and keeps its counts in the block stats() adds last.
  Stats ShardStats(int shard) const;

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    uint64_t key = 0;
    double score = 0.0;
    uint64_t epoch = 0;
  };
  // One cache line per block: a shard's counter bumps never invalidate a
  // neighbour shard's line.
  struct alignas(64) StatBlock {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> stale_hits{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> insertions{0};
  };
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    StatBlock stats;
  };

  Shard& ShardOf(uint64_t key);
  static void AddBlock(const StatBlock& block, Stats* out);

  int64_t capacity_ = 0;
  int64_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Misses recorded when the cache is disabled (no shards exist to own
  // them) or a fault rule drops the lookup before shard selection.
  StatBlock disabled_stats_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* stale_hits_;
  obs::Counter* evictions_;
};

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_SCORE_CACHE_H_
