#include "serve/snapshot.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/fault.h"
#include "nn/serialize.h"

namespace o2sr::serve {

uint64_t FingerprintOf(const sim::SimConfig& c) {
  Fingerprint f;
  f.Add(c.city_width_m)
      .Add(c.city_height_m)
      .Add(c.cell_m)
      .Add<int32_t>(c.num_store_types)
      .Add<int32_t>(c.num_stores)
      .Add<int32_t>(c.num_couriers)
      .Add<int32_t>(c.num_days)
      .Add(c.peak_orders_per_region_slot)
      .Add(c.courier_speed_m_per_min)
      .Add(c.food_prep_minutes)
      .Add(c.queue_minutes_per_load)
      .Add(c.base_scope_m)
      .Add(c.min_scope_factor)
      .Add(c.max_scope_factor)
      .Add(c.tolerance_minutes)
      .Add(c.tolerance_softness)
      .Add(c.demographic_preference_weight)
      .Add(c.taste_noise_sigma)
      .Add<int32_t>(static_cast<int32_t>(c.preset))
      .Add<uint8_t>(c.generate_trajectories ? 1 : 0)
      .Add(c.seed);
  return f.hash();
}

uint64_t FingerprintOf(const core::O2SiteRecConfig& c) {
  Fingerprint f;
  // Capacity model.
  f.Add<int32_t>(c.capacity.embedding_dim)
      .Add<int32_t>(c.capacity.geo_layers)
      .Add(c.capacity.geo_distance_scale_m);
  // Recommendation model.
  f.Add<int32_t>(c.rec.embedding_dim)
      .Add<int32_t>(c.rec.layers)
      .Add<int32_t>(c.rec.node_heads)
      .Add<int32_t>(c.rec.time_heads)
      .Add(c.rec.dropout)
      .Add<uint8_t>(c.rec.node_attention ? 1 : 0)
      .Add<uint8_t>(c.rec.time_attention ? 1 : 0);
  // Training + structure knobs that change the built graphs / parameters.
  f.Add(c.beta)
      .Add(c.learning_rate)
      .Add<int32_t>(c.epochs)
      .Add<int32_t>(c.mobility_min_transactions)
      .Add<uint8_t>(c.graph_options.capacity_aware_scope ? 1 : 0)
      .Add(c.graph_options.fixed_scope_m)
      .Add(c.graph_options.order_ratio_threshold)
      .Add<uint8_t>(c.graph_options.include_customer_edges ? 1 : 0)
      .Add<int32_t>(static_cast<int32_t>(c.variant))
      .Add(c.seed);
  return f.hash();
}

uint64_t FingerprintOf(const baselines::BaselineConfig& c) {
  Fingerprint f;
  f.Add<int32_t>(c.embedding_dim)
      .Add<int32_t>(c.epochs)
      .Add(c.learning_rate)
      .Add(c.dropout)
      .Add<int32_t>(static_cast<int32_t>(c.setting))
      .Add(c.seed);
  return f.hash();
}

uint64_t FingerprintOf(const sim::DriftConfig& c) {
  Fingerprint f;
  f.Add(c.store_close_rate)
      .Add(c.store_open_rate)
      .Add(c.popularity_walk_sigma)
      .Add(c.rush_shift_slots)
      .Add<uint64_t>(c.seed);
  return f.hash();
}

uint64_t CombineFingerprints(uint64_t sim_hash, uint64_t model_hash) {
  Fingerprint f;
  f.Add(sim_hash).Add(model_hash);
  return f.hash();
}

std::vector<double> TypeNormalizers(
    int num_types, const core::InteractionList& interactions) {
  std::vector<double> norm(std::max(num_types, 0), 0.0);
  for (const core::Interaction& it : interactions) {
    if (it.type < 0 || it.type >= num_types) continue;
    norm[it.type] = std::max(norm[it.type], it.orders);
  }
  return norm;
}

common::Status ExportSnapshot(const std::string& path,
                              const SnapshotMeta& meta,
                              const core::SiteRecommender& model) {
  const nn::ParameterStore* store = model.parameter_store();
  if (store == nullptr) {
    return common::FailedPreconditionError(
        model.Name() + " keeps no parameter store; it cannot be "
        "snapshot-served");
  }
  std::string payload;
  nn::ByteWriter w(&payload);
  w.Str(meta.model_name);
  w.Scalar<uint64_t>(meta.config_hash);
  w.Scalar<int32_t>(meta.num_regions);
  w.Scalar<int32_t>(meta.num_types);
  w.Scalar<uint64_t>(meta.type_norm.size());
  for (double v : meta.type_norm) w.Scalar<double>(v);
  nn::WriteParameterValues(w, *store);
  return nn::WriteContainerFile(path, kSnapshotMagic, kSnapshotFormatVersion,
                                payload);
}

common::StatusOr<Snapshot> LoadSnapshot(const std::string& path) {
  common::FaultInjector& faults = common::FaultInjector::Global();
  faults.InjectDelay("snapshot.read");
  O2SR_RETURN_IF_ERROR(faults.InjectError("snapshot.read"));
  O2SR_ASSIGN_OR_RETURN(
      std::string payload,
      nn::ReadContainerFile(path, kSnapshotMagic, kSnapshotFormatVersion));
  // Post-checksum corruption: models silent memory/media corruption between
  // validation and decode; the bounds-checked parser below must turn it
  // into a Status, never undefined behavior.
  faults.InjectCorruption("snapshot.read", &payload);
  Snapshot snap;
  nn::ByteReader r(payload);
  O2SR_RETURN_IF_ERROR(r.Str(&snap.meta.model_name));
  O2SR_RETURN_IF_ERROR(r.Scalar(&snap.meta.config_hash));
  O2SR_RETURN_IF_ERROR(r.Scalar(&snap.meta.num_regions));
  O2SR_RETURN_IF_ERROR(r.Scalar(&snap.meta.num_types));
  uint64_t norm_count = 0;
  O2SR_RETURN_IF_ERROR(r.Scalar(&norm_count));
  if (norm_count > r.remaining() / sizeof(double)) {
    return common::DataLossError("snapshot '" + path +
                                 "': type_norm count exceeds payload");
  }
  snap.meta.type_norm.resize(norm_count);
  for (uint64_t i = 0; i < norm_count; ++i) {
    O2SR_RETURN_IF_ERROR(r.Scalar(&snap.meta.type_norm[i]));
  }
  // Keep the parameter record raw; RestoreModel decodes it against the
  // target model's store.
  snap.param_record.assign(payload, payload.size() - r.remaining(),
                           r.remaining());
  return snap;
}

common::StatusOr<std::string> QuarantineSnapshot(const std::string& path,
                                                 const std::string& reason) {
  // Shared quarantine machinery (also used by the out-of-core dataset
  // layer): move into a sibling `.quarantine/` plus a `.reason` record.
  return nn::QuarantineFile(path, reason);
}

common::Status RestoreModel(const Snapshot& snapshot,
                            core::SiteRecommender& model,
                            uint64_t expected_config_hash) {
  if (snapshot.meta.model_name != model.Name()) {
    return common::FailedPreconditionError(
        "snapshot was exported from model '" + snapshot.meta.model_name +
        "' but the serving model is '" + model.Name() + "'");
  }
  if (snapshot.meta.config_hash != expected_config_hash) {
    return common::FailedPreconditionError(
        "snapshot config fingerprint " +
        std::to_string(snapshot.meta.config_hash) +
        " does not match the serving configuration fingerprint " +
        std::to_string(expected_config_hash) +
        "; the serving process would rebuild a different world");
  }
  nn::ParameterStore* store = model.mutable_parameter_store();
  if (store == nullptr) {
    return common::FailedPreconditionError(
        model.Name() + " keeps no parameter store; build its structure "
        "with Train/PrepareServing before restoring");
  }
  nn::ByteReader r(snapshot.param_record);
  std::vector<nn::Tensor> values;
  O2SR_RETURN_IF_ERROR(
      nn::ReadParameterValues(r, *store, &values, "snapshot"));
  for (size_t i = 0; i < values.size(); ++i) {
    store->params()[i]->value = std::move(values[i]);
  }
  return common::Status::Ok();
}

common::StatusOr<std::vector<nn::NamedTensor>> DecodeSnapshotParameters(
    const Snapshot& snapshot) {
  nn::ByteReader r(snapshot.param_record);
  std::vector<nn::NamedTensor> params;
  O2SR_RETURN_IF_ERROR(nn::ReadRawParameterRecord(
      r, &params, "snapshot of '" + snapshot.meta.model_name + "'"));
  return params;
}

}  // namespace o2sr::serve
