#ifndef O2SR_SERVE_ADMISSION_H_
#define O2SR_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "obs/env.h"

namespace o2sr::serve {

// Bounded admission for the serving engine: a lock-free in-flight counter
// with a high-water mark. A request is admitted when the current in-flight
// count is below the mark; past it the engine sheds the request with
// RESOURCE_EXHAUSTED instead of queueing unboundedly — under overload,
// answering some requests on time beats answering all of them late.
//
// Admission is a counter, not a queue: the engine is synchronous, so
// "queued" work is exactly the set of concurrently admitted calls, and the
// high-water mark bounds it directly.
class AdmissionController {
 public:
  // `max_inflight` <= 0 means unbounded (admission always succeeds).
  explicit AdmissionController(int64_t max_inflight)
      : max_inflight_(max_inflight) {}

  // High-water override from O2SR_SERVE_MAX_INFLIGHT ("0" = unbounded);
  // `fallback` when unset. Garbage is fatal (obs::EnvInt).
  static int64_t MaxInflightFromEnv(int64_t fallback) {
    return obs::EnvInt("O2SR_SERVE_MAX_INFLIGHT", fallback, 0,
                       int64_t{1} << 40);
  }

  // True = admitted (caller must Release); false = shed.
  bool TryAdmit() {
    if (max_inflight_ <= 0) {
      inflight_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    int64_t current = inflight_.load(std::memory_order_relaxed);
    while (current < max_inflight_) {
      if (inflight_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel)) {
        return true;
      }
    }
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void Release() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }

  // RAII admission: `Ticket t(controller); if (!t.admitted()) shed;`.
  class Ticket {
   public:
    explicit Ticket(AdmissionController& controller)
        : controller_(controller), admitted_(controller.TryAdmit()) {}
    ~Ticket() {
      if (admitted_) controller_.Release();
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    bool admitted() const { return admitted_; }

   private:
    AdmissionController& controller_;
    bool admitted_;
  };

  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  int64_t max_inflight() const { return max_inflight_; }
  uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }

 private:
  int64_t max_inflight_ = 0;
  std::atomic<int64_t> inflight_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_ADMISSION_H_
