#ifndef O2SR_SERVE_SNAPSHOT_H_
#define O2SR_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/baseline_common.h"
#include "common/status.h"
#include "core/interaction.h"
#include "core/o2siterec.h"
#include "core/recommender.h"
#include "nn/serialize.h"
#include "sim/config.h"
#include "sim/drift.h"

namespace o2sr::serve {

// Model snapshots: the learned state of a trained SiteRecommender
// (embedding tables, attention weights — every parameter of its
// ParameterStore) plus enough metadata to refuse serving it against the
// wrong world. Snapshots reuse the versioned + checksummed container of
// nn/serialize under their own magic, so the durability story (atomic
// publish, DATA_LOSS on corruption) matches training checkpoints.
//
// The offline-train / online-serve contract: the serving process
// regenerates the dataset from the same SimConfig, rebuilds the model
// structure with PrepareServing (no training), then RestoreModel overwrites
// the parameter values from the snapshot — after which Predict is
// bit-identical to the trained original. The config fingerprint stored in
// the snapshot guards the "same SimConfig, same model config" premise.

inline constexpr char kSnapshotMagic[] = "O2SRSNAP";
inline constexpr uint32_t kSnapshotFormatVersion = 1;

struct SnapshotMeta {
  // SiteRecommender::Name() of the exporting model; restore refuses a
  // different model.
  std::string model_name;
  // Fingerprint of (SimConfig, model config) — see CombineFingerprints and
  // the FingerprintOf overloads. Restore refuses a mismatch.
  uint64_t config_hash = 0;
  int32_t num_regions = 0;
  int32_t num_types = 0;
  // Target-normalization stats: per-type max order count over the full
  // interaction set (BuildInteractions divides by this), so a serving
  // process can map normalized scores back to expected order counts.
  std::vector<double> type_norm;
};

struct Snapshot {
  SnapshotMeta meta;
  // Raw nn::WriteParameterValues record (parameter count, then name +
  // tensor per parameter); RestoreModel decodes it against the target
  // model's ParameterStore.
  std::string param_record;
};

// Order-sensitive FNV-1a accumulator over raw little-endian field bytes.
// Doubles hash their exact 8-byte representation, so two configs
// fingerprint equal iff every field is bit-identical.
class Fingerprint {
 public:
  template <typename T>
  Fingerprint& Add(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    for (unsigned char b : bytes) {
      hash_ ^= b;
      hash_ *= 1099511628211ull;
    }
    return *this;
  }
  Fingerprint& AddStr(const std::string& s) {
    Add<uint64_t>(s.size());
    for (char c : s) Add<unsigned char>(static_cast<unsigned char>(c));
    return *this;
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

// Field-by-field fingerprints (structs are hashed per field, never by
// memcpy of the whole struct — padding bytes are indeterminate).
uint64_t FingerprintOf(const sim::SimConfig& config);
uint64_t FingerprintOf(const core::O2SiteRecConfig& config);
uint64_t FingerprintOf(const baselines::BaselineConfig& config);
uint64_t FingerprintOf(const sim::DriftConfig& config);

// The snapshot's config_hash: sim world + model config, order-sensitive.
uint64_t CombineFingerprints(uint64_t sim_hash, uint64_t model_hash);

// Per-type target normalizer (max order count) over an interaction list —
// the stats BuildInteractions normalized by.
std::vector<double> TypeNormalizers(int num_types,
                                    const core::InteractionList& interactions);

// Serializes the model's learned state under `meta` and publishes it
// atomically at `path`. FAILED_PRECONDITION when the model keeps no
// ParameterStore (heuristic models cannot be snapshot-served).
common::Status ExportSnapshot(const std::string& path,
                              const SnapshotMeta& meta,
                              const core::SiteRecommender& model);

// Reads and validates a snapshot container (NOT_FOUND / DATA_LOSS /
// FAILED_PRECONDITION per nn::ReadContainerFile) and decodes its metadata.
// Every decode is bounds-checked: a truncated, torn, or bit-flipped file of
// any length yields a clean Status, never a crash or a partial result.
// Fault-injection site "snapshot.read" (delay, error, bitflip/trunc of the
// decoded payload) fires here — a post-checksum corruption exercises the
// parser hardening the way silent media corruption would.
common::StatusOr<Snapshot> LoadSnapshot(const std::string& path);

// Moves the snapshot file at `path` into a `.quarantine/` directory next
// to it and writes a sibling `<name>.reason` record with `reason`; returns
// the quarantined file's new path. Used by the swap protocol so a corrupt
// or canary-failing snapshot can never be picked up again by a later
// deploy loop.
common::StatusOr<std::string> QuarantineSnapshot(const std::string& path,
                                                 const std::string& reason);

// Overwrites `model`'s parameter values from the snapshot. The model must
// already have its structure built (Train or PrepareServing). Refuses —
// without touching the model — a name mismatch, a config_hash different
// from `expected_config_hash` (the caller recomputes it from its own
// configs), a model without a ParameterStore, or a parameter record whose
// count/names/shapes disagree with the model (all FAILED_PRECONDITION).
common::Status RestoreModel(const Snapshot& snapshot,
                            core::SiteRecommender& model,
                            uint64_t expected_config_hash);

// Decodes the snapshot's parameter record without a target model — the
// warm-start donor path: the continual pipeline feeds the result to
// nn::WarmStartParameters so the next cycle's (differently shaped) model
// starts from what the previous cycle learned. DATA_LOSS when the record
// does not decode.
common::StatusOr<std::vector<nn::NamedTensor>> DecodeSnapshotParameters(
    const Snapshot& snapshot);

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_SNAPSHOT_H_
