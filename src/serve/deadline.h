#ifndef O2SR_SERVE_DEADLINE_H_
#define O2SR_SERVE_DEADLINE_H_

#include <chrono>
#include <cstdlib>
#include <limits>

#include "obs/env.h"

namespace o2sr::serve {

// Per-request latency budget, carried through the serving path as a fixed
// point on the steady clock. Copyable and cheap; the default-constructed
// Deadline is infinite (never expires), so callers that don't care pay
// nothing.
//
// The contract (DESIGN.md §10): the engine checks the deadline *before*
// each expensive step, never mid-kernel. A request whose deadline has
// already passed at admission is shed (RESOURCE_EXHAUSTED); one that
// expires between admission and model scoring skips the scorer and falls
// down the degraded ladder (stale cache, then popularity prior) instead of
// burning compute the client has stopped waiting for.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  // Expires `budget_ms` milliseconds from now. Non-positive budgets are
  // already expired.
  static Deadline AfterMs(double budget_ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   budget_ms));
    return d;
  }

  // Engine-wide default budget from O2SR_SERVE_DEADLINE_MS; `fallback_ms`
  // when unset. Non-positive values mean "no deadline" and are accepted;
  // garbage is fatal (obs::EnvDouble).
  static double DefaultBudgetMsFromEnv(double fallback_ms) {
    return obs::EnvDouble("O2SR_SERVE_DEADLINE_MS", fallback_ms, -1e12, 1e12);
  }

  bool infinite() const { return infinite_; }
  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  // Remaining budget in milliseconds; +infinity when infinite, <= 0 when
  // expired.
  double remaining_ms() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_DEADLINE_H_
