#include "serve/score_cache.h"

#include <algorithm>
#include <cstdlib>

#include "common/fault.h"
#include "obs/env.h"
#include "obs/metrics.h"

namespace o2sr::serve {

ScoreCache::ScoreCache(int64_t capacity, int shards,
                       const std::string& metrics_prefix)
    : capacity_(std::max<int64_t>(capacity, 0)),
      hits_(obs::MetricsRegistry::Global().GetCounter(metrics_prefix +
                                                      ".hits")),
      misses_(obs::MetricsRegistry::Global().GetCounter(metrics_prefix +
                                                        ".misses")),
      stale_hits_(obs::MetricsRegistry::Global().GetCounter(metrics_prefix +
                                                            ".stale_hits")),
      evictions_(obs::MetricsRegistry::Global().GetCounter(metrics_prefix +
                                                           ".evictions")) {
  if (capacity_ == 0) return;
  const int64_t n = std::clamp<int64_t>(shards, 1, capacity_);
  per_shard_capacity_ = (capacity_ + n - 1) / n;
  shards_.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

int64_t ScoreCache::CapacityFromEnv(int64_t fallback) {
  // "0" is a valid capacity (cache disabled), so the range starts at 0.
  return obs::EnvInt("O2SR_SERVE_CACHE", fallback, 0,
                     int64_t{1} << 40);
}

ScoreCache::Shard& ScoreCache::ShardOf(uint64_t key) {
  // Mix before taking the low bits: keys differing only in high (type)
  // bits must not land on one shard.
  uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return *shards_[h % shards_.size()];
}

bool ScoreCache::Lookup(uint64_t key, uint64_t epoch, double* score) {
  // Injection point: a `cache.lookup=error` rule turns this lookup into a
  // forced miss — simulating entries lost to eviction races or a cold
  // restart without touching real state.
  const bool dropped =
      !common::FaultInjector::Global().InjectError("cache.lookup").ok();
  if (capacity_ == 0 || dropped) {
    StatBlock& block =
        capacity_ == 0 ? disabled_stats_ : ShardOf(key).stats;
    block.misses.fetch_add(1, std::memory_order_relaxed);
    misses_->Increment();
    return false;
  }
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second->epoch != epoch) {
    shard.stats.misses.fetch_add(1, std::memory_order_relaxed);
    misses_->Increment();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *score = it->second->score;
  shard.stats.hits.fetch_add(1, std::memory_order_relaxed);
  hits_->Increment();
  return true;
}

bool ScoreCache::LookupStale(uint64_t key, double* score,
                             uint64_t* entry_epoch) {
  if (capacity_ == 0) return false;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *score = it->second->score;
  if (entry_epoch != nullptr) *entry_epoch = it->second->epoch;
  shard.stats.stale_hits.fetch_add(1, std::memory_order_relaxed);
  stale_hits_->Increment();
  return true;
}

void ScoreCache::Insert(uint64_t key, uint64_t epoch, double score) {
  if (capacity_ == 0) return;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.stats.insertions.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->score = score;
    it->second->epoch = epoch;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (static_cast<int64_t>(shard.lru.size()) >= per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    shard.stats.evictions.fetch_add(1, std::memory_order_relaxed);
    evictions_->Increment();
  }
  shard.lru.push_front(Entry{key, score, epoch});
  shard.map[key] = shard.lru.begin();
}

void ScoreCache::Invalidate() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->map.clear();
  }
}

void ScoreCache::AddBlock(const StatBlock& block, Stats* out) {
  out->hits += block.hits.load(std::memory_order_relaxed);
  out->misses += block.misses.load(std::memory_order_relaxed);
  out->stale_hits += block.stale_hits.load(std::memory_order_relaxed);
  out->evictions += block.evictions.load(std::memory_order_relaxed);
  out->insertions += block.insertions.load(std::memory_order_relaxed);
}

ScoreCache::Stats ScoreCache::stats() const {
  Stats s;
  for (const auto& shard : shards_) AddBlock(shard->stats, &s);
  AddBlock(disabled_stats_, &s);
  return s;
}

ScoreCache::Stats ScoreCache::ShardStats(int shard) const {
  Stats s;
  if (shard >= 0 && shard < num_shards()) {
    AddBlock(shards_[static_cast<size_t>(shard)]->stats, &s);
  }
  return s;
}

int64_t ScoreCache::size() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += static_cast<int64_t>(shard->lru.size());
  }
  return total;
}

}  // namespace o2sr::serve
