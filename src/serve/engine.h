#ifndef O2SR_SERVE_ENGINE_H_
#define O2SR_SERVE_ENGINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"
#include "exec/thread_pool.h"
#include "serve/score_cache.h"

namespace o2sr::obs {
class Counter;
class Histogram;
}  // namespace o2sr::obs

namespace o2sr::serve {

struct ServingOptions {
  // Score-cache capacity in entries; < 0 means "O2SR_SERVE_CACHE or the
  // default 65536"; 0 disables caching.
  int64_t cache_capacity = -1;
  int cache_shards = 8;
  // Pool for scoring cache misses (the model's parallel kernels run under
  // it). Null resolves to exec::CurrentPool() at query time.
  exec::ThreadPool* pool = nullptr;
};

struct RankedSite {
  int region = -1;
  double score = 0.0;
};

// Online ranking over a ready SiteRecommender (trained, or restored from a
// snapshot). Construction finalizes the model for serving (FinalizeServing
// precomputes its inference tables — O2-SiteRec materializes the per-period
// node embeddings so queries skip the whole multi-graph forward pass).
//
// Determinism contract (DESIGN.md §9): RankSites is a pure function of the
// model's learned state and the query. The score cache, its capacity, the
// thread count and the query history never change a returned score or the
// ranking order; ties order by ascending region id.
//
// Thread-safety: RankSites is safe to call concurrently (the model's
// serving path is const, the cache is internally synchronized).
//
// Observability (prefix "serve"):
//   serve.requests         counter   RankSites calls
//   serve.pairs_scored     counter   cache misses scored through the model
//   serve.rank_latency_ms  histogram per-call latency
// plus the serve.cache.* counters of ScoreCache.
class ServingEngine {
 public:
  // `model` is borrowed and must outlive the engine; it must already hold
  // final learned state. Fails when FinalizeServing does.
  static common::StatusOr<std::unique_ptr<ServingEngine>> Create(
      core::SiteRecommender* model, const ServingOptions& options = {});

  // Top-k candidate regions for a store type, best first, ordered by
  // (score desc, region asc). Candidates the model cannot score
  // (CanScoreRegion false) are skipped; duplicates count once. k larger
  // than the scorable pool returns the whole pool ranked.
  common::StatusOr<std::vector<RankedSite>> RankSites(
      int type, const std::vector<int>& candidate_regions, int k) const;

  // Scores for explicit pairs, cache-accelerated; bit-identical to the
  // model's Predict. Every region must be scorable (InvalidArgument
  // otherwise, mirroring Predict's strictness).
  common::StatusOr<std::vector<double>> Score(
      const core::InteractionList& pairs) const;

  const core::SiteRecommender& model() const { return *model_; }
  ScoreCache& cache() const { return *cache_; }

 private:
  ServingEngine(core::SiteRecommender* model, const ServingOptions& options);

  core::SiteRecommender* model_;  // not owned
  ServingOptions options_;
  std::unique_ptr<ScoreCache> cache_;
  obs::Counter* requests_;
  obs::Counter* pairs_scored_;
  obs::Histogram* latency_ms_;
};

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_ENGINE_H_
