#ifndef O2SR_SERVE_ENGINE_H_
#define O2SR_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"
#include "exec/thread_pool.h"
#include "obs/slo.h"
#include "serve/admission.h"
#include "serve/deadline.h"
#include "serve/score_cache.h"

namespace o2sr::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace o2sr::obs

namespace o2sr::serve {

// Which rung of the fallback ladder produced a response (DESIGN.md §10).
// Ordered by degradation: every response reports the *worst* rung any of
// its pairs needed.
enum class ServeTier {
  kFresh = 0,       // scored by the active model (directly or via a
                    // same-epoch cache hit); bit-identical to Predict
  kStaleCache = 1,  // answered from a cache entry of an older model epoch
  kPrior = 2,       // answered from the per-type popularity prior
};
const char* ServeTierName(ServeTier tier);

// Serving health state machine, exported as the "<prefix>.health_state"
// gauge (0 = SERVING, 1 = DEGRADED, 2 = LAME_DUCK).
//   SERVING    every recent response was fresh-tier
//   DEGRADED   a recent response needed the fallback ladder; clears after
//              `ServingOptions::health_recovery_streak` consecutive fresh
//              responses
//   LAME_DUCK  terminal drain state (EnterLameDuck): every new request is
//              shed, in-flight requests finish normally
enum class ServeHealth { kServing = 0, kDegraded = 1, kLameDuck = 2 };
const char* ServeHealthName(ServeHealth health);

// Per-type popularity prior over regions: the last rung of the fallback
// ladder. Scores are historical order volume normalized to [0, 1] per type
// — a crude ranking on a different scale than model scores, but one that
// keeps answering "where should this store type go" when both the model
// and the stale cache cannot.
struct PopularityPrior {
  // by_type[type][region] -> prior score in [0, 1].
  std::vector<std::unordered_map<int, double>> by_type;

  bool empty() const { return by_type.empty(); }
  // False when the (type, region) pair has no prior.
  bool Score(int type, int region, double* out) const;
};

// Prior from an interaction log: per (type, region) the maximum observed
// order volume, normalized by the per-type maximum.
PopularityPrior BuildPopularityPrior(
    int num_types, const core::InteractionList& interactions);

struct ServingOptions {
  // Score-cache capacity in entries, *per front-end shard* (each shard owns
  // a private ScoreCache so the hot path never crosses shards); < 0 means
  // "O2SR_SERVE_CACHE or the default 65536"; 0 disables caching.
  int64_t cache_capacity = -1;
  // Internal LRU shards of each per-front-end-shard cache.
  int cache_shards = 8;
  // Front-end shards. Requests hash to a shard by caller thread id, so a
  // given thread always lands on the same shard and single-threaded runs
  // stay bit-deterministic. <= 0 means "O2SR_SERVE_SHARDS, else
  // hardware_concurrency clamped to [1, 16]".
  int num_shards = -1;
  // Pool for scoring cache misses (the model's parallel kernels run under
  // it). Null resolves to exec::CurrentPool() at query time.
  exec::ThreadPool* pool = nullptr;
  // Admission high-water mark: requests past this many concurrent calls are
  // shed with RESOURCE_EXHAUSTED. < 0 means "O2SR_SERVE_MAX_INFLIGHT or
  // unbounded"; 0 is unbounded. A batch call holds ONE admission slot for
  // the whole batch.
  int64_t max_inflight = -1;
  // Default per-request latency budget applied when a RankRequest carries
  // an infinite deadline. < 0 means "O2SR_SERVE_DEADLINE_MS or none";
  // 0 is "no default deadline".
  double default_deadline_ms = -1.0;
  // Fallback prior (last ladder rung). Empty: the ladder ends at the stale
  // cache and a pair nothing can answer fails the request.
  PopularityPrior prior;
  // Consecutive fresh-tier responses required to leave DEGRADED.
  int health_recovery_streak = 32;
  // Serving SLO objective for the engine's SloMonitor. Non-positive values
  // resolve to O2SR_SERVE_SLO_MS / O2SR_SERVE_SLO_TARGET (defaults 50 ms
  // latency, 0.99 good fraction).
  double slo_ms = -1.0;
  double slo_target = -1.0;
  // Registry prefix for every metric this engine owns ("serve" →
  // serve.requests, serve.cache.hits, serve.slo.burn_rate, ...). Tenant
  // engines get distinct prefixes ("serve.tenant.<name>") so one city's
  // gauges never alias another's.
  std::string metrics_prefix = "serve";
  // Invoked on every SERVING / DEGRADED / LAME_DUCK transition, outside
  // the health lock (calling back into the engine is safe). May be called
  // concurrently from racing requests; transitions are reported in the
  // order each racer observed them.
  std::function<void(ServeHealth from, ServeHealth to)> on_health_change;
};

struct RankedSite {
  int region = -1;
  double score = 0.0;
};

// A ranking request with an explicit latency budget. The default deadline
// is infinite (the engine's default budget, if any, then applies).
struct RankRequest {
  int type = 0;
  std::vector<int> candidates;
  int k = 0;
  Deadline deadline;
};

struct RankResponse {
  std::vector<RankedSite> sites;
  // Worst ladder rung any pair of this response needed.
  ServeTier tier = ServeTier::kFresh;
  // Model epoch the fresh pairs were scored against (increments on every
  // promoted snapshot swap).
  uint64_t epoch = 0;
};

// One canary query of a snapshot swap: ranked against the *staged* model
// before promotion. The canary fails on any scoring error, any non-finite
// score, or — when `expected` is non-empty — any deviation from the
// expected ranking (region and bit-exact score).
struct CanaryQuery {
  int type = 0;
  std::vector<int> candidates;
  int k = 0;
  std::vector<RankedSite> expected;
};

struct SwapOptions {
  std::vector<CanaryQuery> canaries;
};

// Outcome of SwapSnapshot. `promoted` false means the active model kept
// serving untouched; `reject_reason` says why and `quarantine_path` is
// where the offending snapshot file was moved (empty when quarantining
// itself failed — the reason then carries a note).
struct SwapReport {
  bool promoted = false;
  uint64_t epoch = 0;  // epoch now serving
  size_t canaries_run = 0;
  common::Status reject_reason;
  std::string quarantine_path;
};

// Counter snapshot of one front-end shard (or, via TotalShardStats, their
// sum). The engine also keeps independent engine-global relaxed atomics
// for requests/shed/pairs_scored/degraded; tests assert the per-shard sum
// equals those globals under full concurrency.
struct EngineShardStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t shed = 0;
  uint64_t pairs_scored = 0;
  uint64_t degraded_responses = 0;
  uint64_t stale_pairs = 0;
  uint64_t prior_pairs = 0;
  ScoreCache::Stats cache;
};

// Online ranking over a ready SiteRecommender (trained, or restored from a
// snapshot). Construction finalizes the model for serving (FinalizeServing
// precomputes its inference tables — O2-SiteRec materializes the per-period
// node embeddings so queries skip the whole multi-graph forward pass).
//
// Determinism contract (DESIGN.md §9): with fault injection off and no
// snapshot swap, Rank/RankSites is a pure function of the model's learned
// state and the query. The score cache, its capacity, the thread count and
// the query history never change a returned score or the ranking order;
// ties order by ascending region id.
//
// Resilience contract (DESIGN.md §10): per-request deadlines, bounded
// admission with load shedding, a fallback ladder (fresh score -> stale
// cached score -> per-type popularity prior) with the served tier recorded
// on every response, hot snapshot swap with canary validation + rollback +
// quarantine, and a SERVING / DEGRADED / LAME_DUCK health state machine.
//
// Concurrency model (DESIGN.md §14): the front end is sharded. A request
// hashes its caller's thread id to a shard; the shard owns a private
// ScoreCache and a cache-line-aligned counter block, so two threads on
// different shards share no mutable cache or stats state on the hot path.
// The remaining cross-shard state per request is one shared_ptr pin of the
// active model (amortized to once per batch) and the SLO window append.
//
// Thread-safety: Rank/RankSites/RankSitesBatch/Score are safe to call
// concurrently, and concurrently with one SwapSnapshot (swaps serialize
// among themselves). In-flight requests pin the model they started on; a
// promotion never yanks a model out from under a running query.
//
// Observability (prefix = ServingOptions::metrics_prefix, default "serve"):
//   <p>.requests            counter   ranked requests (batched included)
//   <p>.batches             counter   RankSitesBatch calls
//   <p>.pairs_scored        counter   cache misses scored through the model
//   <p>.rank_latency_ms     histogram per-request latency
//   <p>.shed                counter   requests shed (admission, deadline
//                                     pre-expiry, lame duck)
//   <p>.degraded_responses  counter   responses served below fresh tier
//   <p>.fallback.stale_pairs / <p>.fallback.prior_pairs
//                           counter   pairs answered by each ladder rung
//   <p>.swaps / <p>.swap_rejects
//                           counter   promoted / rejected snapshot swaps
//   <p>.health_state        gauge     0 SERVING / 1 DEGRADED / 2 LAME_DUCK
//   <p>.epoch               gauge     active model epoch
//   <p>.slo.burn_rate / <p>.slo.bad_fraction / <p>.slo.breached
//                           gauge     rolling-window SLO health
//                                     (obs::SloMonitor; see slo())
// plus the <p>.cache.* counters of the per-shard ScoreCaches (all shards
// of one engine mirror into the same registry counters).
class ServingEngine {
 public:
  // `model` is borrowed and must outlive the engine; it must already hold
  // final learned state. Fails when FinalizeServing does.
  static common::StatusOr<std::unique_ptr<ServingEngine>> Create(
      core::SiteRecommender* model, const ServingOptions& options = {});

  // O2SR_SERVE_SHARDS override for ServingOptions::num_shards; returns
  // `fallback` when unset/unparsable. Values clamp to [1, 64].
  static int ShardsFromEnv(int fallback);
  // O2SR_SERVE_BATCH: preferred client batch size for RankSitesBatch
  // drivers (bench/demo); returns `fallback` when unset/unparsable.
  // Values clamp to [1, 4096].
  static int BatchSizeFromEnv(int fallback);

  // Full-contract ranking: admission control, deadline budget, fallback
  // ladder, tier-tagged response. Top-k candidate regions for a store
  // type, best first, ordered by (score desc, region asc). Candidates the
  // model cannot score (CanScoreRegion false) are skipped; duplicates
  // count once. k larger than the scorable pool returns the whole pool
  // ranked.
  //
  // Errors: RESOURCE_EXHAUSTED when shed (admission high-water mark, lame
  // duck, or a deadline that expired before admission); INVALID_ARGUMENT
  // for contract violations (negative k, a store type the model rejects);
  // scorer failures only surface when every ladder rung below also fails.
  common::StatusOr<RankResponse> Rank(const RankRequest& request) const;

  // Batched ranking: one response per request, in request order, each
  // succeeding or failing independently with exactly the Rank contract.
  // Golden equivalence (tests/serve_batch_test.cc): RankSitesBatch({r1..rn})
  // returns bit-identical responses — ranks, scores, tiers, epochs, and
  // the cache state it leaves behind — to calling Rank(r1)..Rank(rn) in
  // order on the same thread. The batch amortizes what the serial loop
  // repeats per call: one active-model pin, one admission slot, one pool
  // scope, and reused scoring scratch (pair/score/top-K buffers) across
  // the whole span.
  std::vector<common::StatusOr<RankResponse>> RankSitesBatch(
      std::span<const RankRequest> requests) const;

  // Compatibility ranking without the resilience surface: infinite-budget
  // request, sites only. Bit-identical to the pre-resilience engine.
  common::StatusOr<std::vector<RankedSite>> RankSites(
      int type, const std::vector<int>& candidate_regions, int k) const;

  // Strict fresh-tier scores for explicit pairs, cache-accelerated;
  // bit-identical to the model's Predict. Every region must be scorable
  // (InvalidArgument otherwise, mirroring Predict's strictness). Never
  // degrades: scorer failures propagate.
  common::StatusOr<std::vector<double>> Score(
      const core::InteractionList& pairs) const;

  // Hot snapshot swap. Stages `staged` (a model with structure already
  // built via PrepareServing on the serving world), restores the snapshot
  // at `snapshot_path` into it, finalizes it, and runs the canary queries
  // against it. On pass: atomically promotes the staged model, bumps the
  // model epoch (same-epoch cache entries become stale, reachable only
  // through the degraded ladder), and keeps the displaced model alive
  // until its last in-flight query completes. On any failure (unreadable /
  // corrupt / mismatched snapshot, canary error, non-finite or unexpected
  // canary score): the active model keeps serving untouched and the
  // snapshot file is moved to `<dir>/.quarantine/<name>` next to a
  // `<name>.reason` record.
  //
  // Only INVALID_ARGUMENT (null staged model) is an error of the call
  // itself; a rejected swap returns ok with promoted = false.
  common::StatusOr<SwapReport> SwapSnapshot(
      const std::string& snapshot_path,
      std::unique_ptr<core::SiteRecommender> staged,
      uint64_t expected_config_hash, const SwapOptions& swap_options = {});

  // Terminal drain state: every subsequent Rank/RankSites call is shed
  // with RESOURCE_EXHAUSTED while in-flight calls finish normally.
  void EnterLameDuck();

  ServeHealth health() const;
  uint64_t epoch() const;
  int64_t inflight() const { return admission_.inflight(); }
  // Engine-global relaxed atomics, maintained independently of the
  // per-shard blocks (concurrency tests assert the two agree).
  uint64_t requests_count() const {
    return requests_total_.load(std::memory_order_relaxed);
  }
  uint64_t shed_count() const {
    return shed_total_.load(std::memory_order_relaxed);
  }
  uint64_t pairs_scored_count() const {
    return pairs_scored_total_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_count() const {
    return degraded_total_.load(std::memory_order_relaxed);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  // Snapshot of one shard's counter block + its cache stats.
  EngineShardStats ShardStats(int shard) const;
  // Sum over every shard.
  EngineShardStats TotalShardStats() const;
  // Aggregate cache stats across the per-shard caches.
  ScoreCache::Stats CacheStats() const;

  // The currently active model (may change across SwapSnapshot).
  const core::SiteRecommender& model() const;
  // Rolling-window SLO state over every Rank/RankSites call (shed requests
  // included). Snapshot() for the burn rate and latency quantiles.
  const obs::SloMonitor& slo() const { return slo_; }

 private:
  // The active model + its epoch. Queries copy the shared_ptr on entry, so
  // a promotion never destroys a model that still has in-flight readers.
  struct Active {
    core::SiteRecommender* model = nullptr;  // borrowed or owned.get()
    std::shared_ptr<core::SiteRecommender> owned;  // null for the initial
                                                   // borrowed model
    uint64_t epoch = 1;
  };

  // One front-end shard: private cache + cache-line-aligned counters. A
  // shard is only ever mutated by the threads that hash to it, so its
  // counters can be relaxed and its cache mutexes stay uncontended under
  // a thread-per-core driver.
  struct alignas(64) ShardCounters {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> pairs_scored{0};
    std::atomic<uint64_t> degraded{0};
    std::atomic<uint64_t> stale_pairs{0};
    std::atomic<uint64_t> prior_pairs{0};
  };
  struct EngineShard {
    std::unique_ptr<ScoreCache> cache;
    ShardCounters counters;
  };

  // Reused per-request scoring buffers; a batch threads one Scratch
  // through every request so pair/score/miss vectors allocate once.
  struct Scratch {
    std::unordered_set<int> seen;
    core::InteractionList pairs;
    std::vector<double> scores;
    core::InteractionList misses;
    std::vector<size_t> miss_slots;
  };

  ServingEngine(core::SiteRecommender* model, const ServingOptions& options);

  EngineShard& ShardForThisThread() const;

  std::shared_ptr<const Active> CurrentActive() const;

  // Fresh-tier scoring of `pairs` through the shard cache (strict; errors
  // propagate). Fault sites "score" (delay + error) fire around the model
  // call.
  common::StatusOr<std::vector<double>> ScoreFresh(
      EngineShard& shard, const Active& active,
      const core::InteractionList& pairs) const;

  // Ladder scoring: fresh where possible, stale cache then prior for pairs
  // the scorer could not answer in budget. Fails only when a pair exhausts
  // the ladder or the scorer reports a contract violation.
  common::Status ScoreLadder(EngineShard& shard, const Active& active,
                             const core::InteractionList& pairs,
                             const Deadline& deadline, Scratch* scratch,
                             ServeTier* tier) const;

  // The post-admission tail of Rank, shared by the serial and batched
  // paths: deadline resolution, pair collection, ladder scoring, top-K,
  // health + SLO accounting. `start` anchors the latency measurement.
  common::StatusOr<RankResponse> RankAdmitted(
      EngineShard& shard, const Active& active, const RankRequest& request,
      Scratch* scratch,
      std::chrono::steady_clock::time_point start) const;

  void RecordOutcome(ServeTier tier) const;
  void NotifyHealthChange(ServeHealth from, ServeHealth to) const;
  common::StatusOr<RankResponse> ShedRequest(EngineShard& shard,
                                             const char* reason,
                                             double latency_ms,
                                             bool deadline_miss) const;

  ServingOptions options_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  mutable AdmissionController admission_;
  double default_deadline_ms_ = 0.0;
  mutable std::atomic<uint64_t> requests_total_{0};
  mutable std::atomic<uint64_t> shed_total_{0};
  mutable std::atomic<uint64_t> pairs_scored_total_{0};
  mutable std::atomic<uint64_t> degraded_total_{0};

  mutable std::mutex active_mutex_;
  std::shared_ptr<const Active> active_;
  mutable std::mutex swap_mutex_;  // one swap at a time

  mutable std::mutex health_mutex_;
  mutable ServeHealth health_ = ServeHealth::kServing;
  // Lock-free mirror of health_ so the hot path (lame-duck gate, the
  // fresh-response fast path of RecordOutcome) never touches health_mutex_.
  mutable std::atomic<int> health_relaxed_{0};
  mutable int fresh_streak_ = 0;

  mutable obs::SloMonitor slo_;

  obs::Counter* requests_;
  obs::Counter* batches_;
  obs::Counter* pairs_scored_;
  obs::Counter* shed_;
  obs::Counter* degraded_responses_;
  obs::Counter* stale_pairs_;
  obs::Counter* prior_pairs_;
  obs::Counter* swaps_;
  obs::Counter* swap_rejects_;
  obs::Gauge* health_gauge_;
  obs::Gauge* epoch_gauge_;
  obs::Histogram* latency_ms_;
};

}  // namespace o2sr::serve

#endif  // O2SR_SERVE_ENGINE_H_
