#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace o2sr::serve {

namespace {
constexpr int64_t kDefaultCacheCapacity = 65536;
}  // namespace

ServingEngine::ServingEngine(core::SiteRecommender* model,
                             const ServingOptions& options)
    : model_(model),
      options_(options),
      requests_(obs::MetricsRegistry::Global().GetCounter("serve.requests")),
      pairs_scored_(
          obs::MetricsRegistry::Global().GetCounter("serve.pairs_scored")),
      latency_ms_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.rank_latency_ms", obs::DefaultLatencyBucketsMs())) {
  const int64_t capacity =
      options.cache_capacity < 0
          ? ScoreCache::CapacityFromEnv(kDefaultCacheCapacity)
          : options.cache_capacity;
  cache_ = std::make_unique<ScoreCache>(capacity, options.cache_shards);
}

common::StatusOr<std::unique_ptr<ServingEngine>> ServingEngine::Create(
    core::SiteRecommender* model, const ServingOptions& options) {
  if (model == nullptr) {
    return common::InvalidArgumentError("ServingEngine: model is null");
  }
  {
    // The finalize pass (inference-table build) runs its kernels on the
    // engine's pool too.
    exec::PoolScope pool_scope(options.pool != nullptr
                                   ? options.pool
                                   : &exec::CurrentPool());
    O2SR_RETURN_IF_ERROR(model->FinalizeServing());
  }
  return std::unique_ptr<ServingEngine>(new ServingEngine(model, options));
}

common::StatusOr<std::vector<double>> ServingEngine::Score(
    const core::InteractionList& pairs) const {
  std::vector<double> out(pairs.size(), 0.0);
  // Cache pass: collect the misses, preserving query order.
  core::InteractionList misses;
  std::vector<size_t> miss_slots;
  for (size_t i = 0; i < pairs.size(); ++i) {
    double cached = 0.0;
    if (cache_->Lookup(ScoreCache::Key(pairs[i].type, pairs[i].region),
                       &cached)) {
      out[i] = cached;
    } else {
      misses.push_back(pairs[i]);
      miss_slots.push_back(i);
    }
  }
  if (!misses.empty()) {
    exec::PoolScope pool_scope(options_.pool != nullptr
                                   ? options_.pool
                                   : &exec::CurrentPool());
    O2SR_ASSIGN_OR_RETURN(const std::vector<double> scores,
                          model_->ServingPredict(misses));
    pairs_scored_->Increment(misses.size());
    for (size_t j = 0; j < misses.size(); ++j) {
      out[miss_slots[j]] = scores[j];
      cache_->Insert(ScoreCache::Key(misses[j].type, misses[j].region),
                     scores[j]);
    }
  }
  return out;
}

common::StatusOr<std::vector<RankedSite>> ServingEngine::RankSites(
    int type, const std::vector<int>& candidate_regions, int k) const {
  const auto start = std::chrono::steady_clock::now();
  requests_->Increment();
  if (k < 0) {
    return common::InvalidArgumentError("RankSites: k must be >= 0, got " +
                                        std::to_string(k));
  }
  // Deduplicate and drop candidates outside the model's domain; the
  // surviving order is irrelevant (the result is fully ordered by score).
  std::unordered_set<int> seen;
  core::InteractionList pairs;
  for (int region : candidate_regions) {
    if (!seen.insert(region).second) continue;
    if (!model_->CanScoreRegion(region)) continue;
    core::Interaction it;
    it.region = region;
    it.type = type;
    pairs.push_back(it);
  }
  O2SR_ASSIGN_OR_RETURN(const std::vector<double> scores, Score(pairs));

  std::vector<RankedSite> ranked(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ranked[i] = {pairs[i].region, scores[i]};
  }
  const auto better = [](const RankedSite& a, const RankedSite& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.region < b.region;
  };
  const size_t keep = std::min<size_t>(static_cast<size_t>(k), ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    better);
  ranked.resize(keep);

  latency_ms_->Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
  return ranked;
}

}  // namespace o2sr::serve
