#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "obs/env.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace o2sr::serve {

namespace {

constexpr int64_t kDefaultCacheCapacity = 65536;

// Env-derived SLO config with the per-engine option overrides applied.
obs::SloConfig ResolveSloConfig(const ServingOptions& options) {
  obs::SloConfig config = obs::SloConfig::FromEnv();
  if (options.slo_ms > 0.0) config.slo_ms = options.slo_ms;
  if (options.slo_target > 0.0 && options.slo_target < 1.0) {
    config.target = options.slo_target;
  }
  return config;
}

int ResolveNumShards(const ServingOptions& options) {
  if (options.num_shards > 0) return std::min(options.num_shards, 64);
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = std::clamp<int>(hw == 0 ? 1 : static_cast<int>(hw),
                                       1, 16);
  return ServingEngine::ShardsFromEnv(fallback);
}

bool BetterRanked(const RankedSite& a, const RankedSite& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.region < b.region;
}

// Top-k of (pairs, scores) by (score desc, region asc).
std::vector<RankedSite> RankFromScores(const core::InteractionList& pairs,
                                       const std::vector<double>& scores,
                                       int k) {
  std::vector<RankedSite> ranked(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ranked[i] = {pairs[i].region, scores[i]};
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(k), ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    BetterRanked);
  ranked.resize(keep);
  return ranked;
}

// Scorer failures that are contract violations (bad request, wrong model
// state) must surface to the caller; anything else (transient/infra) sends
// the request down the fallback ladder instead.
bool IsContractError(common::StatusCode code) {
  return code == common::StatusCode::kInvalidArgument ||
         code == common::StatusCode::kFailedPrecondition ||
         code == common::StatusCode::kOutOfRange ||
         code == common::StatusCode::kUnimplemented;
}

// Dedupe candidates and drop regions the model cannot score, into
// `scratch` buffers; the surviving order is irrelevant (the result is
// fully ordered by score).
void CollectScorablePairs(const core::SiteRecommender& model, int type,
                          const std::vector<int>& candidates,
                          std::unordered_set<int>* seen,
                          core::InteractionList* pairs) {
  seen->clear();
  pairs->clear();
  for (int region : candidates) {
    if (!seen->insert(region).second) continue;
    if (!model.CanScoreRegion(region)) continue;
    core::Interaction it;
    it.region = region;
    it.type = type;
    pairs->push_back(it);
  }
}

core::InteractionList ScorablePairs(const core::SiteRecommender& model,
                                    int type,
                                    const std::vector<int>& candidates) {
  std::unordered_set<int> seen;
  core::InteractionList pairs;
  CollectScorablePairs(model, type, candidates, &seen, &pairs);
  return pairs;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* ServeTierName(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFresh:
      return "fresh";
    case ServeTier::kStaleCache:
      return "stale";
    case ServeTier::kPrior:
      return "prior";
  }
  return "unknown";
}

const char* ServeHealthName(ServeHealth health) {
  switch (health) {
    case ServeHealth::kServing:
      return "SERVING";
    case ServeHealth::kDegraded:
      return "DEGRADED";
    case ServeHealth::kLameDuck:
      return "LAME_DUCK";
  }
  return "unknown";
}

bool PopularityPrior::Score(int type, int region, double* out) const {
  if (type < 0 || static_cast<size_t>(type) >= by_type.size()) return false;
  const auto it = by_type[type].find(region);
  if (it == by_type[type].end()) return false;
  *out = it->second;
  return true;
}

PopularityPrior BuildPopularityPrior(
    int num_types, const core::InteractionList& interactions) {
  PopularityPrior prior;
  if (num_types <= 0) return prior;
  prior.by_type.resize(static_cast<size_t>(num_types));
  std::vector<double> type_max(static_cast<size_t>(num_types), 0.0);
  for (const core::Interaction& it : interactions) {
    if (it.type < 0 || it.type >= num_types) continue;
    double& cell = prior.by_type[it.type][it.region];
    cell = std::max(cell, it.orders);
    type_max[it.type] = std::max(type_max[it.type], it.orders);
  }
  for (int t = 0; t < num_types; ++t) {
    if (type_max[t] <= 0.0) continue;
    for (auto& [region, score] : prior.by_type[t]) score /= type_max[t];
  }
  return prior;
}

int ServingEngine::ShardsFromEnv(int fallback) {
  return static_cast<int>(obs::EnvInt("O2SR_SERVE_SHARDS", fallback, 1, 64));
}

int ServingEngine::BatchSizeFromEnv(int fallback) {
  return static_cast<int>(obs::EnvInt("O2SR_SERVE_BATCH", fallback, 1, 4096));
}

ServingEngine::ServingEngine(core::SiteRecommender* model,
                             const ServingOptions& options)
    : options_(options),
      admission_(options.max_inflight < 0
                     ? AdmissionController::MaxInflightFromEnv(0)
                     : options.max_inflight),
      default_deadline_ms_(
          options.default_deadline_ms < 0
              ? Deadline::DefaultBudgetMsFromEnv(0.0)
              : options.default_deadline_ms),
      slo_(ResolveSloConfig(options), options.metrics_prefix + ".slo"),
      requests_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".requests")),
      batches_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".batches")),
      pairs_scored_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".pairs_scored")),
      shed_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".shed")),
      degraded_responses_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".degraded_responses")),
      stale_pairs_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".fallback.stale_pairs")),
      prior_pairs_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".fallback.prior_pairs")),
      swaps_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".swaps")),
      swap_rejects_(obs::MetricsRegistry::Global().GetCounter(
          options.metrics_prefix + ".swap_rejects")),
      health_gauge_(obs::MetricsRegistry::Global().GetGauge(
          options.metrics_prefix + ".health_state")),
      epoch_gauge_(obs::MetricsRegistry::Global().GetGauge(
          options.metrics_prefix + ".epoch")),
      latency_ms_(obs::MetricsRegistry::Global().GetHistogram(
          options.metrics_prefix + ".rank_latency_ms",
          obs::DefaultLatencyBucketsMs())) {
  const int64_t capacity =
      options.cache_capacity < 0
          ? ScoreCache::CapacityFromEnv(kDefaultCacheCapacity)
          : options.cache_capacity;
  const int num_shards = ResolveNumShards(options);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<EngineShard>();
    shard->cache = std::make_unique<ScoreCache>(
        capacity, options.cache_shards, options.metrics_prefix + ".cache");
    shards_.push_back(std::move(shard));
  }
  auto active = std::make_shared<Active>();
  active->model = model;
  active->epoch = 1;
  active_ = std::move(active);
  health_gauge_->Set(static_cast<double>(ServeHealth::kServing));
  epoch_gauge_->Set(1.0);
}

common::StatusOr<std::unique_ptr<ServingEngine>> ServingEngine::Create(
    core::SiteRecommender* model, const ServingOptions& options) {
  if (model == nullptr) {
    return common::InvalidArgumentError("ServingEngine: model is null");
  }
  {
    // The finalize pass (inference-table build) runs its kernels on the
    // engine's pool too.
    exec::PoolScope pool_scope(options.pool != nullptr
                                   ? options.pool
                                   : &exec::CurrentPool());
    O2SR_RETURN_IF_ERROR(model->FinalizeServing());
  }
  return std::unique_ptr<ServingEngine>(new ServingEngine(model, options));
}

ServingEngine::EngineShard& ServingEngine::ShardForThisThread() const {
  // A thread's id is stable for its lifetime, so every request from one
  // driver thread lands on one shard: single-threaded runs are fully
  // deterministic and a thread-per-core fleet spreads across shards.
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const ServingEngine::Active> ServingEngine::CurrentActive()
    const {
  std::lock_guard<std::mutex> lock(active_mutex_);
  return active_;
}

const core::SiteRecommender& ServingEngine::model() const {
  return *CurrentActive()->model;
}

uint64_t ServingEngine::epoch() const { return CurrentActive()->epoch; }

ServeHealth ServingEngine::health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

EngineShardStats ServingEngine::ShardStats(int shard) const {
  EngineShardStats s;
  if (shard < 0 || shard >= num_shards()) return s;
  const EngineShard& es = *shards_[static_cast<size_t>(shard)];
  s.requests = es.counters.requests.load(std::memory_order_relaxed);
  s.batches = es.counters.batches.load(std::memory_order_relaxed);
  s.shed = es.counters.shed.load(std::memory_order_relaxed);
  s.pairs_scored = es.counters.pairs_scored.load(std::memory_order_relaxed);
  s.degraded_responses =
      es.counters.degraded.load(std::memory_order_relaxed);
  s.stale_pairs = es.counters.stale_pairs.load(std::memory_order_relaxed);
  s.prior_pairs = es.counters.prior_pairs.load(std::memory_order_relaxed);
  s.cache = es.cache->stats();
  return s;
}

EngineShardStats ServingEngine::TotalShardStats() const {
  EngineShardStats total;
  for (int i = 0; i < num_shards(); ++i) {
    const EngineShardStats s = ShardStats(i);
    total.requests += s.requests;
    total.batches += s.batches;
    total.shed += s.shed;
    total.pairs_scored += s.pairs_scored;
    total.degraded_responses += s.degraded_responses;
    total.stale_pairs += s.stale_pairs;
    total.prior_pairs += s.prior_pairs;
    total.cache.hits += s.cache.hits;
    total.cache.misses += s.cache.misses;
    total.cache.stale_hits += s.cache.stale_hits;
    total.cache.evictions += s.cache.evictions;
    total.cache.insertions += s.cache.insertions;
  }
  return total;
}

ScoreCache::Stats ServingEngine::CacheStats() const {
  return TotalShardStats().cache;
}

void ServingEngine::EnterLameDuck() {
  ServeHealth from;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    if (health_ == ServeHealth::kLameDuck) return;
    from = health_;
    health_ = ServeHealth::kLameDuck;
    health_relaxed_.store(static_cast<int>(ServeHealth::kLameDuck),
                          std::memory_order_relaxed);
    health_gauge_->Set(static_cast<double>(ServeHealth::kLameDuck));
  }
  O2SR_LOG(INFO) << "serving engine entering LAME_DUCK: new requests are "
                    "shed, in-flight requests drain";
  NotifyHealthChange(from, ServeHealth::kLameDuck);
}

void ServingEngine::RecordOutcome(ServeTier tier) const {
  // Fast path: a fresh response while SERVING changes nothing — skip the
  // health lock entirely, so the steady-state hot path stays lock-free
  // here. The relaxed read may trail a racing transition by one response;
  // the slow path below re-reads under the lock before acting.
  if (tier == ServeTier::kFresh &&
      health_relaxed_.load(std::memory_order_relaxed) ==
          static_cast<int>(ServeHealth::kServing)) {
    return;
  }
  ServeHealth from = ServeHealth::kServing;
  ServeHealth to = ServeHealth::kServing;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    if (health_ == ServeHealth::kLameDuck) return;  // terminal
    if (tier != ServeTier::kFresh) {
      degraded_responses_->Increment();
      degraded_total_.fetch_add(1, std::memory_order_relaxed);
      fresh_streak_ = 0;
      if (health_ == ServeHealth::kServing) {
        health_ = ServeHealth::kDegraded;
        health_relaxed_.store(static_cast<int>(ServeHealth::kDegraded),
                              std::memory_order_relaxed);
        health_gauge_->Set(static_cast<double>(ServeHealth::kDegraded));
        O2SR_LOG(WARNING) << "serving health SERVING -> DEGRADED (served a "
                          << ServeTierName(tier) << "-tier response)";
        from = ServeHealth::kServing;
        to = ServeHealth::kDegraded;
        changed = true;
      }
    } else if (health_ == ServeHealth::kDegraded) {
      if (++fresh_streak_ >= options_.health_recovery_streak) {
        health_ = ServeHealth::kServing;
        fresh_streak_ = 0;
        health_relaxed_.store(static_cast<int>(ServeHealth::kServing),
                              std::memory_order_relaxed);
        health_gauge_->Set(static_cast<double>(ServeHealth::kServing));
        O2SR_LOG(INFO) << "serving health DEGRADED -> SERVING ("
                       << options_.health_recovery_streak
                       << " consecutive fresh responses)";
        from = ServeHealth::kDegraded;
        to = ServeHealth::kServing;
        changed = true;
      }
    }
  }
  if (changed) NotifyHealthChange(from, to);
}

void ServingEngine::NotifyHealthChange(ServeHealth from,
                                       ServeHealth to) const {
  if (options_.on_health_change) options_.on_health_change(from, to);
}

common::StatusOr<RankResponse> ServingEngine::ShedRequest(
    EngineShard& shard, const char* reason, double latency_ms,
    bool deadline_miss) const {
  shed_->Increment();
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  shard.counters.shed.fetch_add(1, std::memory_order_relaxed);
  obs::SloOutcome outcome;
  outcome.latency_ms = latency_ms;
  outcome.shed = true;
  outcome.deadline_miss = deadline_miss;
  slo_.Record(outcome);
  return common::ResourceExhaustedError(std::string("request shed: ") +
                                        reason);
}

common::StatusOr<std::vector<double>> ServingEngine::ScoreFresh(
    EngineShard& shard, const Active& active,
    const core::InteractionList& pairs) const {
  ScoreCache& cache = *shard.cache;
  std::vector<double> out(pairs.size(), 0.0);
  // Cache pass: collect the misses, preserving query order.
  core::InteractionList misses;
  std::vector<size_t> miss_slots;
  for (size_t i = 0; i < pairs.size(); ++i) {
    double cached = 0.0;
    if (cache.Lookup(ScoreCache::Key(pairs[i].type, pairs[i].region),
                     active.epoch, &cached)) {
      out[i] = cached;
    } else {
      misses.push_back(pairs[i]);
      miss_slots.push_back(i);
    }
  }
  if (!misses.empty()) {
    common::FaultInjector& faults = common::FaultInjector::Global();
    faults.InjectDelay("score");
    O2SR_RETURN_IF_ERROR(faults.InjectError("score"));
    exec::PoolScope pool_scope(options_.pool != nullptr
                                   ? options_.pool
                                   : &exec::CurrentPool());
    O2SR_ASSIGN_OR_RETURN(const std::vector<double> scores,
                          active.model->ServingPredict(misses));
    pairs_scored_->Increment(misses.size());
    pairs_scored_total_.fetch_add(misses.size(), std::memory_order_relaxed);
    shard.counters.pairs_scored.fetch_add(misses.size(),
                                          std::memory_order_relaxed);
    for (size_t j = 0; j < misses.size(); ++j) {
      out[miss_slots[j]] = scores[j];
      cache.Insert(ScoreCache::Key(misses[j].type, misses[j].region),
                   active.epoch, scores[j]);
    }
  }
  return out;
}

common::StatusOr<std::vector<double>> ServingEngine::Score(
    const core::InteractionList& pairs) const {
  return ScoreFresh(ShardForThisThread(), *CurrentActive(), pairs);
}

common::Status ServingEngine::ScoreLadder(EngineShard& shard,
                                          const Active& active,
                                          const core::InteractionList& pairs,
                                          const Deadline& deadline,
                                          Scratch* scratch,
                                          ServeTier* tier) const {
  ScoreCache& cache = *shard.cache;
  scratch->scores.assign(pairs.size(), 0.0);
  *tier = ServeTier::kFresh;
  core::InteractionList& misses = scratch->misses;
  std::vector<size_t>& miss_slots = scratch->miss_slots;
  misses.clear();
  miss_slots.clear();
  for (size_t i = 0; i < pairs.size(); ++i) {
    double cached = 0.0;
    if (cache.Lookup(ScoreCache::Key(pairs[i].type, pairs[i].region),
                     active.epoch, &cached)) {
      scratch->scores[i] = cached;
    } else {
      misses.push_back(pairs[i]);
      miss_slots.push_back(i);
    }
  }
  if (misses.empty()) return common::Status::Ok();

  // Rung 1: fresh scoring, budget permitting. The injected delay stands in
  // for a stalled scorer, so the deadline is re-checked after it — exactly
  // the check a real engine makes after waiting on a busy executor.
  common::Status fresh_status = common::Status::Ok();
  if (deadline.expired()) {
    fresh_status = common::ResourceExhaustedError(
        "deadline expired before scoring");
  } else {
    common::FaultInjector& faults = common::FaultInjector::Global();
    faults.InjectDelay("score");
    if (deadline.expired()) {
      fresh_status = common::ResourceExhaustedError(
          "deadline expired waiting for the scorer");
    } else {
      fresh_status = faults.InjectError("score");
    }
  }
  if (fresh_status.ok()) {
    exec::PoolScope pool_scope(options_.pool != nullptr
                                   ? options_.pool
                                   : &exec::CurrentPool());
    auto scored = active.model->ServingPredict(misses);
    if (scored.ok()) {
      pairs_scored_->Increment(misses.size());
      pairs_scored_total_.fetch_add(misses.size(),
                                    std::memory_order_relaxed);
      shard.counters.pairs_scored.fetch_add(misses.size(),
                                            std::memory_order_relaxed);
      for (size_t j = 0; j < misses.size(); ++j) {
        scratch->scores[miss_slots[j]] = (*scored)[j];
        cache.Insert(ScoreCache::Key(misses[j].type, misses[j].region),
                     active.epoch, (*scored)[j]);
      }
      return common::Status::Ok();
    }
    fresh_status = scored.status();
  }
  if (IsContractError(fresh_status.code())) return fresh_status;

  // Rungs 2 + 3: stale cache, then popularity prior, per pair. A pair
  // neither rung can answer fails the request with the original cause.
  uint64_t stale_served = 0, prior_served = 0;
  for (size_t j = 0; j < misses.size(); ++j) {
    const core::Interaction& it = misses[j];
    double value = 0.0;
    if (cache.LookupStale(ScoreCache::Key(it.type, it.region), &value)) {
      scratch->scores[miss_slots[j]] = value;
      ++stale_served;
      *tier = std::max(*tier, ServeTier::kStaleCache);
    } else if (options_.prior.Score(it.type, it.region, &value)) {
      scratch->scores[miss_slots[j]] = value;
      ++prior_served;
      *tier = ServeTier::kPrior;
    } else {
      return fresh_status.WithContext(
          "pair (type " + std::to_string(it.type) + ", region " +
          std::to_string(it.region) + ") exhausted the fallback ladder");
    }
  }
  if (stale_served > 0) {
    stale_pairs_->Increment(stale_served);
    shard.counters.stale_pairs.fetch_add(stale_served,
                                         std::memory_order_relaxed);
  }
  if (prior_served > 0) {
    prior_pairs_->Increment(prior_served);
    shard.counters.prior_pairs.fetch_add(prior_served,
                                         std::memory_order_relaxed);
  }
  return common::Status::Ok();
}

common::StatusOr<RankResponse> ServingEngine::RankAdmitted(
    EngineShard& shard, const Active& active, const RankRequest& request,
    Scratch* scratch, std::chrono::steady_clock::time_point start) const {
  Deadline deadline = request.deadline;
  if (deadline.infinite() && default_deadline_ms_ > 0.0) {
    deadline = Deadline::AfterMs(default_deadline_ms_);
  }
  if (deadline.expired()) {
    return ShedRequest(shard, "deadline expired before admission",
                       ElapsedMs(start), /*deadline_miss=*/true);
  }

  CollectScorablePairs(*active.model, request.type, request.candidates,
                       &scratch->seen, &scratch->pairs);

  RankResponse response;
  response.epoch = active.epoch;
  const common::Status ladder = ScoreLadder(
      shard, active, scratch->pairs, deadline, scratch, &response.tier);
  if (!ladder.ok()) {
    // The client got no ranking: in SLO terms this counts like a shed
    // request (and a deadline miss when the budget ran out mid-flight).
    obs::SloOutcome outcome;
    outcome.latency_ms = ElapsedMs(start);
    outcome.shed = true;
    outcome.deadline_miss = deadline.expired();
    slo_.Record(outcome);
    return ladder;
  }
  response.sites = RankFromScores(scratch->pairs, scratch->scores, request.k);
  if (response.tier != ServeTier::kFresh) {
    shard.counters.degraded.fetch_add(1, std::memory_order_relaxed);
  }
  RecordOutcome(response.tier);

  const double latency = ElapsedMs(start);
  latency_ms_->Observe(latency);
  obs::SloOutcome outcome;
  outcome.latency_ms = latency;
  outcome.deadline_miss = deadline.expired();
  outcome.degraded = response.tier != ServeTier::kFresh;
  slo_.Record(outcome);
  return response;
}

common::StatusOr<RankResponse> ServingEngine::Rank(
    const RankRequest& request) const {
  const auto start = std::chrono::steady_clock::now();
  EngineShard& shard = ShardForThisThread();
  requests_->Increment();
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  shard.counters.requests.fetch_add(1, std::memory_order_relaxed);
  if (request.k < 0) {
    return common::InvalidArgumentError("Rank: k must be >= 0, got " +
                                        std::to_string(request.k));
  }
  if (health_relaxed_.load(std::memory_order_relaxed) ==
      static_cast<int>(ServeHealth::kLameDuck)) {
    return ShedRequest(shard, "engine is in LAME_DUCK", ElapsedMs(start),
                       /*deadline_miss=*/false);
  }
  AdmissionController::Ticket ticket(admission_);
  if (!ticket.admitted()) {
    return ShedRequest(shard, "admission queue past its high-water mark",
                       ElapsedMs(start), /*deadline_miss=*/false);
  }
  const std::shared_ptr<const Active> active = CurrentActive();
  Scratch scratch;
  return RankAdmitted(shard, *active, request, &scratch, start);
}

std::vector<common::StatusOr<RankResponse>> ServingEngine::RankSitesBatch(
    std::span<const RankRequest> requests) const {
  std::vector<common::StatusOr<RankResponse>> out;
  out.reserve(requests.size());
  if (requests.empty()) return out;

  EngineShard& shard = ShardForThisThread();
  batches_->Increment();
  shard.counters.batches.fetch_add(1, std::memory_order_relaxed);
  // One admission slot covers the whole batch: a closed-loop driver
  // thread is one unit of concurrent load regardless of how many requests
  // it packed together.
  AdmissionController::Ticket ticket(admission_);
  // One model pin and one pool scope amortized across the span; every
  // request still performs its own deadline/SLO/tier accounting so the
  // responses are bit-identical to the serial loop.
  const std::shared_ptr<const Active> active = CurrentActive();
  exec::PoolScope pool_scope(options_.pool != nullptr ? options_.pool
                                                      : &exec::CurrentPool());
  Scratch scratch;
  for (const RankRequest& request : requests) {
    const auto start = std::chrono::steady_clock::now();
    requests_->Increment();
    requests_total_.fetch_add(1, std::memory_order_relaxed);
    shard.counters.requests.fetch_add(1, std::memory_order_relaxed);
    if (request.k < 0) {
      out.emplace_back(common::InvalidArgumentError(
          "Rank: k must be >= 0, got " + std::to_string(request.k)));
      continue;
    }
    if (health_relaxed_.load(std::memory_order_relaxed) ==
        static_cast<int>(ServeHealth::kLameDuck)) {
      out.emplace_back(ShedRequest(shard, "engine is in LAME_DUCK",
                                   ElapsedMs(start),
                                   /*deadline_miss=*/false));
      continue;
    }
    if (!ticket.admitted()) {
      out.emplace_back(
          ShedRequest(shard, "admission queue past its high-water mark",
                      ElapsedMs(start), /*deadline_miss=*/false));
      continue;
    }
    out.emplace_back(RankAdmitted(shard, *active, request, &scratch, start));
  }
  return out;
}

common::StatusOr<std::vector<RankedSite>> ServingEngine::RankSites(
    int type, const std::vector<int>& candidate_regions, int k) const {
  RankRequest request;
  request.type = type;
  request.candidates = candidate_regions;
  request.k = k;
  request.deadline = Deadline::Infinite();
  O2SR_ASSIGN_OR_RETURN(RankResponse response, Rank(request));
  return std::move(response.sites);
}

common::StatusOr<SwapReport> ServingEngine::SwapSnapshot(
    const std::string& snapshot_path,
    std::unique_ptr<core::SiteRecommender> staged,
    uint64_t expected_config_hash, const SwapOptions& swap_options) {
  if (staged == nullptr) {
    return common::InvalidArgumentError(
        "SwapSnapshot: staged model is null");
  }
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  SwapReport report;
  report.epoch = CurrentActive()->epoch;

  const auto reject = [&](common::Status why) {
    swap_rejects_->Increment();
    auto quarantined = QuarantineSnapshot(snapshot_path, why.ToString());
    if (quarantined.ok()) {
      report.quarantine_path = *quarantined;
    } else {
      why = why.WithContext("quarantine also failed (" +
                            quarantined.status().ToString() + ")");
    }
    report.reject_reason = std::move(why);
    O2SR_LOG(WARNING) << "snapshot swap rejected, active model (epoch "
                      << report.epoch << ") keeps serving: "
                      << report.reject_reason.ToString();
    return report;
  };

  auto snapshot = LoadSnapshot(snapshot_path);
  if (!snapshot.ok()) return reject(snapshot.status());
  {
    exec::PoolScope pool_scope(options_.pool != nullptr
                                   ? options_.pool
                                   : &exec::CurrentPool());
    common::Status restored =
        RestoreModel(*snapshot, *staged, expected_config_hash);
    if (!restored.ok()) return reject(std::move(restored));
    common::Status finalized = staged->FinalizeServing();
    if (!finalized.ok()) return reject(std::move(finalized));

    // Canary pass: the staged model answers the golden queries directly
    // (never through the cache — its scores must not be visible before
    // promotion).
    for (const CanaryQuery& canary : swap_options.canaries) {
      ++report.canaries_run;
      const std::string label =
          "canary (type " + std::to_string(canary.type) + ")";
      const core::InteractionList pairs =
          ScorablePairs(*staged, canary.type, canary.candidates);
      auto scored = staged->ServingPredict(pairs);
      if (!scored.ok()) {
        return reject(scored.status().WithContext(label + " failed"));
      }
      for (double s : *scored) {
        if (!std::isfinite(s)) {
          return reject(common::DataLossError(
              label + " produced a non-finite score"));
        }
      }
      if (canary.expected.empty()) continue;
      const std::vector<RankedSite> ranked =
          RankFromScores(pairs, *scored, canary.k);
      if (ranked.size() != canary.expected.size()) {
        return reject(common::FailedPreconditionError(
            label + " returned " + std::to_string(ranked.size()) +
            " sites, expected " + std::to_string(canary.expected.size())));
      }
      for (size_t i = 0; i < ranked.size(); ++i) {
        if (ranked[i].region != canary.expected[i].region ||
            ranked[i].score != canary.expected[i].score) {
          return reject(common::FailedPreconditionError(
              label + " diverged at rank " + std::to_string(i + 1) +
              ": got region " + std::to_string(ranked[i].region) +
              ", expected region " +
              std::to_string(canary.expected[i].region)));
        }
      }
    }
  }

  // Promote: epoch-tagged invalidation (entries of the displaced epoch
  // become stale-only), in-flight queries finish on the model they pinned.
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    auto next = std::make_shared<Active>();
    next->owned = std::shared_ptr<core::SiteRecommender>(std::move(staged));
    next->model = next->owned.get();
    next->epoch = active_->epoch + 1;
    active_ = next;
    report.epoch = next->epoch;
  }
  swaps_->Increment();
  epoch_gauge_->Set(static_cast<double>(report.epoch));
  report.promoted = true;
  O2SR_LOG(INFO) << "snapshot '" << snapshot_path
                 << "' promoted after " << report.canaries_run
                 << " canaries; serving epoch " << report.epoch;
  return report;
}

}  // namespace o2sr::serve
