#ifndef O2SR_FEATURES_REGION_FEATURES_H_
#define O2SR_FEATURES_REGION_FEATURES_H_

#include <vector>

#include "nn/tensor.h"
#include "sim/dataset.h"

namespace o2sr::features {

// Geographic feature extraction (paper §III-C, "Module 1"): POI set, POI
// diversity, traffic convenience and store diversity, all per region, each
// column min-max normalized across regions.
//
// Column layout: [POI counts per category (12)] [POI diversity (1)]
// [intersections (1)] [roads (1)] [store diversity (1)] = 16 columns.
class RegionFeatureExtractor {
 public:
  static constexpr int kDim = geo::kNumPoiCategories + 4;

  // Extracts the normalized feature matrix: [num_regions x kDim].
  static nn::Tensor Compute(const sim::Dataset& data);
};

// Commercial features per (region, type) pair (paper §III-C, attributes of
// the S-A edges).
class CommercialFeatures {
 public:
  // `nearby_radius_m` defines the "nearby stores" neighborhood used by
  // competitiveness.
  CommercialFeatures(const sim::Dataset& data, double nearby_radius_m = 1000);

  // Same-type stores in region / total stores in region + neighborhood.
  double Competitiveness(int region, int type) const {
    return competitiveness_[region][type];
  }
  // Complementarity f^cp_sa = sum_{a*} log(rho_{a*-a}) (N_{sa*} - N_{a*})
  // (paper's definition, Geo-spotting lineage), min-max normalized across
  // regions per type.
  double Complementarity(int region, int type) const {
    return complementarity_[region][type];
  }

 private:
  std::vector<std::vector<double>> competitiveness_;
  std::vector<std::vector<double>> complementarity_;
};

}  // namespace o2sr::features

#endif  // O2SR_FEATURES_REGION_FEATURES_H_
