#ifndef O2SR_FEATURES_ORDER_STATS_H_
#define O2SR_FEATURES_ORDER_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/dataset.h"

namespace o2sr::features {

// Delivery statistics of one (store-region -> customer-region) pair.
struct PairStats {
  double delivery_minutes_sum = 0.0;
  double distance_sum = 0.0;
  int transactions = 0;

  double mean_delivery_minutes() const {
    return transactions > 0 ? delivery_minutes_sum / transactions : 0.0;
  }
  double mean_distance_m() const {
    return transactions > 0 ? distance_sum / transactions : 0.0;
  }
};

// Aggregations over the order log that every downstream component (feature
// extraction, graph construction, baselines, motivation figures) consumes.
class OrderStats {
 public:
  // Builds all aggregations in one pass over `data.orders`.
  explicit OrderStats(const sim::Dataset& data);
  // Same, but aggregates only `orders` (e.g. the orders visible to a model
  // after a train/test split); `data` still provides geometry and courier
  // allocations.
  OrderStats(const sim::Dataset& data, const std::vector<sim::Order>& orders);

  // Incremental path for the out-of-core dataset (sim/stream.h): start
  // empty, Add() one row per order in any stream order, then
  // FinalizeSupplyDemand() exactly once. The Dataset constructors above
  // run through this same path, so streamed aggregates are bit-identical
  // to in-RAM ones when rows arrive in the same order.
  OrderStats(int num_regions, int num_types);

  // Empty stats; the error slot of StatusOr<OrderStats>.
  OrderStats() : OrderStats(0, 0) {}

  // Accumulates one order. `period` is sim::PeriodOfSlot(slot) of the
  // order's slot.
  void Add(int period, int store_region, int customer_region, int type,
           double delivery_minutes, double distance_m);

  // Seals the stats: divides the per-period city delivery means and
  // derives the supply-demand ratio from `courier_alloc_slot_region`
  // (indexed [slot][region]; may be empty → zero allocation). Call once,
  // after the last Add().
  void FinalizeSupplyDemand(
      const std::vector<std::vector<double>>& courier_alloc_slot_region,
      int num_days);

  int num_regions() const { return num_regions_; }
  int num_types() const { return num_types_; }

  // Total orders of type `a` whose store sits in region `s` — the ground
  // truth p_sa of Eq. 1.
  double OrdersOfTypeInRegion(int s, int a) const {
    return orders_region_type_[s][a];
  }
  const std::vector<std::vector<double>>& orders_region_type() const {
    return orders_region_type_;
  }

  // Same, restricted to one period.
  double OrdersOfTypeInRegionPeriod(int period, int s, int a) const {
    return orders_region_type_period_[period][s][a];
  }

  // Orders placed by customers living in region `u` for type `a` in
  // `period` (the U-A edge attribute phi_ua,t).
  double CustomerOrders(int period, int u, int a) const {
    return customer_orders_region_type_period_[period][u][a];
  }

  // Total orders per store region / per customer region.
  double TotalStoreRegionOrders(int s) const {
    return store_region_orders_[s];
  }
  double TotalStoreRegionOrdersPeriod(int period, int s) const {
    return store_region_orders_period_[period][s];
  }

  // Per-period (store-region, customer-region) delivery statistics; key
  // pairs with zero transactions are absent.
  const std::unordered_map<int64_t, PairStats>& PairsInPeriod(
      int period) const {
    return pair_stats_[period];
  }
  // Looks up one pair (nullptr if never observed).
  const PairStats* Pair(int period, int s, int u) const;

  // Farthest and mean delivery distance of orders whose store sits in
  // region `s` during `period` (the per-period delivery scope of Fig. 3).
  double FarthestDistance(int period, int s) const {
    return farthest_distance_[period][s];
  }
  double MeanDistance(int period, int s) const;

  // Mean delivery minutes of orders from store region `s` in `period`;
  // falls back to the period's city mean when the region has no orders.
  double MeanDeliveryMinutes(int period, int s) const;

  // Region-level supply-demand ratio: couriers allocated near `s` divided
  // by orders from `s` (per period, averaged over days).
  double SupplyDemandRatio(int period, int s) const {
    return supply_demand_[period][s];
  }

  int64_t PairKey(int s, int u) const {
    return static_cast<int64_t>(s) * num_regions_ + u;
  }

 private:
  int num_regions_;
  int num_types_;
  std::vector<std::vector<double>> orders_region_type_;
  std::vector<std::vector<std::vector<double>>> orders_region_type_period_;
  std::vector<std::vector<std::vector<double>>>
      customer_orders_region_type_period_;
  std::vector<double> store_region_orders_;
  std::vector<std::vector<double>> store_region_orders_period_;
  std::vector<std::unordered_map<int64_t, PairStats>> pair_stats_;
  std::vector<std::vector<double>> farthest_distance_;
  std::vector<std::vector<double>> distance_sum_;
  std::vector<std::vector<int>> distance_count_;
  std::vector<std::vector<double>> delivery_minutes_sum_;
  std::vector<std::vector<int>> delivery_minutes_count_;
  std::vector<double> city_mean_delivery_period_;
  std::vector<int> city_count_;  // Add()-side counts; consumed by Finalize
  std::vector<std::vector<double>> supply_demand_;
};

}  // namespace o2sr::features

#endif  // O2SR_FEATURES_ORDER_STATS_H_
