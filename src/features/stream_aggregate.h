#ifndef O2SR_FEATURES_STREAM_AGGREGATE_H_
#define O2SR_FEATURES_STREAM_AGGREGATE_H_

#include <cstdint>

#include "common/status.h"
#include "features/order_stats.h"
#include "sim/stream.h"

namespace o2sr::features {

// Streams a spilled dataset (sim::DatasetReader) into OrderStats without
// ever materializing the raw order vector — the aggregate-consuming build
// path of graph construction at paper scale. Rows are added in the
// reader's fixed shard order, so the result is bit-identical across
// resumed / killed / regenerated ingestion runs. `report` (optional)
// receives the reader's recovery counts.
common::StatusOr<OrderStats> AggregateSpill(sim::DatasetReader& reader,
                                            sim::SpillReadReport* report);

// Order-insensitive-map-safe fingerprint of an OrderStats: FNV-1a over a
// deterministic serialization of every aggregate table (pair stats sorted
// by key — unordered_map iteration order must not leak in). Two stats
// fingerprint equal iff every table is bit-identical; the equality proof
// behind the kill-at-any-boundary resume tests.
uint64_t FingerprintOrderStats(const OrderStats& stats);

}  // namespace o2sr::features

#endif  // O2SR_FEATURES_STREAM_AGGREGATE_H_
