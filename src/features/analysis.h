#ifndef O2SR_FEATURES_ANALYSIS_H_
#define O2SR_FEATURES_ANALYSIS_H_

#include <string>
#include <vector>

#include "sim/dataset.h"

namespace o2sr::features {

// Motivation-section analytics (paper §II). Each function computes the data
// series behind one figure/table; the corresponding bench binary prints it.

// Fig. 1: per-2-hour-slot courier count, order count (both normalized to
// max 1) and the supply-demand ratio.
struct SlotSupplyDemand {
  int slot = 0;  // 0..11, slot k covers hours [2k, 2k+2)
  double couriers_norm = 0.0;
  double orders_norm = 0.0;
  double supply_demand_ratio = 0.0;
};
std::vector<SlotSupplyDemand> SupplyDemandBySlot(const sim::Dataset& data);

// Fig. 2: Pearson correlation between the per-slot supply-demand ratio and
// the per-slot mean delivery time over the whole horizon (strongly
// negative: tighter capacity -> slower delivery).
double DeliveryTimeRatioCorrelation(const sim::Dataset& data);

// Fig. 3: average per-store-region delivery scope (farthest delivery
// distance, meters) per period.
std::vector<double> DeliveryScopeByPeriod(const sim::Dataset& data);

// Fig. 4: distribution of delivery minutes for orders in a distance band
// (default 2.5-3 km), per period, over the given minute bins
// (e.g. {10,20,30,40,50} produces 10-20, 20-30, ..., 50+ shares).
struct DeliveryTimeDistribution {
  std::vector<double> bin_edges_minutes;
  // share[period][bin] sums to 1 over bins for each period with data.
  std::vector<std::vector<double>> share;
};
DeliveryTimeDistribution DeliveryTimeDistributionByPeriod(
    const sim::Dataset& data, double distance_lo_m = 2500.0,
    double distance_hi_m = 3000.0,
    std::vector<double> bin_edges_minutes = {10, 20, 30, 40, 50});

// Fig. 5: the top-k store types by order count per period.
struct TopType {
  int type = 0;
  std::string name;
  double orders = 0.0;
};
std::vector<std::vector<TopType>> TopTypesByPeriod(const sim::Dataset& data,
                                                   int k = 3);

// Table II: Pearson correlation between per-(region, type) order counts and
// per-(region, type) customer preference counts aggregated over customer
// regions within `radius_m`.
double PreferenceOrderCorrelation(const sim::Dataset& data, double radius_m);

}  // namespace o2sr::features

#endif  // O2SR_FEATURES_ANALYSIS_H_
