#include "features/order_stats.h"

#include <algorithm>

#include "common/check.h"

namespace o2sr::features {

OrderStats::OrderStats(const sim::Dataset& data)
    : OrderStats(data, data.orders) {}

OrderStats::OrderStats(const sim::Dataset& data,
                       const std::vector<sim::Order>& orders)
    : OrderStats(data.num_regions(), data.num_types()) {
  for (const sim::Order& o : orders) {
    Add(static_cast<int>(o.period()), o.store_region, o.customer_region,
        o.type, o.delivery_minutes(), o.distance_m);
  }
  FinalizeSupplyDemand(data.courier_alloc_slot_region, data.config.num_days);
}

OrderStats::OrderStats(int num_regions, int num_types)
    : num_regions_(num_regions), num_types_(num_types) {
  const int P = sim::kNumPeriods;
  orders_region_type_.assign(num_regions_,
                             std::vector<double>(num_types_, 0.0));
  orders_region_type_period_.assign(
      P, std::vector<std::vector<double>>(
             num_regions_, std::vector<double>(num_types_, 0.0)));
  customer_orders_region_type_period_.assign(
      P, std::vector<std::vector<double>>(
             num_regions_, std::vector<double>(num_types_, 0.0)));
  store_region_orders_.assign(num_regions_, 0.0);
  store_region_orders_period_.assign(P,
                                     std::vector<double>(num_regions_, 0.0));
  pair_stats_.resize(P);
  farthest_distance_.assign(P, std::vector<double>(num_regions_, 0.0));
  distance_sum_.assign(P, std::vector<double>(num_regions_, 0.0));
  distance_count_.assign(P, std::vector<int>(num_regions_, 0));
  delivery_minutes_sum_.assign(P, std::vector<double>(num_regions_, 0.0));
  delivery_minutes_count_.assign(P, std::vector<int>(num_regions_, 0));
  city_mean_delivery_period_.assign(P, 0.0);
  city_count_.assign(P, 0);
  supply_demand_.assign(P, std::vector<double>(num_regions_, 0.0));
}

void OrderStats::Add(int period, int store_region, int customer_region,
                     int type, double delivery_minutes, double distance_m) {
  const int p = period;
  const int s = store_region;
  const int u = customer_region;
  const int a = type;
  // Rows reaching Add from disk are bounds-validated by the spill layer
  // (ParseShard / ValidateShardTypes); an out-of-range index here is a
  // programmer error upstream and must abort, not corrupt the heap.
  O2SR_CHECK(p >= 0 && p < sim::kNumPeriods);
  O2SR_CHECK(s >= 0 && s < num_regions_);
  O2SR_CHECK(u >= 0 && u < num_regions_);
  O2SR_CHECK(a >= 0 && a < num_types_);
  orders_region_type_[s][a] += 1.0;
  orders_region_type_period_[p][s][a] += 1.0;
  customer_orders_region_type_period_[p][u][a] += 1.0;
  store_region_orders_[s] += 1.0;
  store_region_orders_period_[p][s] += 1.0;

  PairStats& pair = pair_stats_[p][PairKey(s, u)];
  pair.delivery_minutes_sum += delivery_minutes;
  pair.distance_sum += distance_m;
  ++pair.transactions;

  farthest_distance_[p][s] = std::max(farthest_distance_[p][s], distance_m);
  distance_sum_[p][s] += distance_m;
  ++distance_count_[p][s];
  delivery_minutes_sum_[p][s] += delivery_minutes;
  ++delivery_minutes_count_[p][s];
  city_mean_delivery_period_[p] += delivery_minutes;
  ++city_count_[p];
}

void OrderStats::FinalizeSupplyDemand(
    const std::vector<std::vector<double>>& courier_alloc_slot_region,
    int num_days) {
  const int P = sim::kNumPeriods;
  for (int p = 0; p < P; ++p) {
    if (city_count_[p] > 0) city_mean_delivery_period_[p] /= city_count_[p];
  }

  // Supply-demand ratio: per period, average courier allocation across the
  // period's slots divided by per-day order volume from the region.
  std::vector<std::vector<double>> alloc(P,
                                         std::vector<double>(num_regions_));
  std::vector<int> slots_in_period(P, 0);
  for (int slot = 0; slot < sim::kSlotsPerDay; ++slot) {
    const int p = static_cast<int>(sim::PeriodOfSlot(slot));
    ++slots_in_period[p];
    if (courier_alloc_slot_region.empty()) continue;
    for (int r = 0; r < num_regions_; ++r) {
      alloc[p][r] += courier_alloc_slot_region[slot][r];
    }
  }
  const double days = std::max(1, num_days);
  for (int p = 0; p < P; ++p) {
    for (int r = 0; r < num_regions_; ++r) {
      const double couriers =
          slots_in_period[p] > 0 ? alloc[p][r] / slots_in_period[p] : 0.0;
      const double orders_per_day = store_region_orders_period_[p][r] / days;
      supply_demand_[p][r] = couriers / std::max(orders_per_day, 0.25);
    }
  }
}

const PairStats* OrderStats::Pair(int period, int s, int u) const {
  const auto& map = pair_stats_[period];
  const auto it = map.find(PairKey(s, u));
  return it == map.end() ? nullptr : &it->second;
}

double OrderStats::MeanDistance(int period, int s) const {
  return distance_count_[period][s] > 0
             ? distance_sum_[period][s] / distance_count_[period][s]
             : 0.0;
}

double OrderStats::MeanDeliveryMinutes(int period, int s) const {
  if (delivery_minutes_count_[period][s] > 0) {
    return delivery_minutes_sum_[period][s] /
           delivery_minutes_count_[period][s];
  }
  return city_mean_delivery_period_[period];
}

}  // namespace o2sr::features
