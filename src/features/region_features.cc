#include "features/region_features.h"

#include <cmath>

#include "common/math_util.h"
#include "geo/road_network.h"

namespace o2sr::features {

nn::Tensor RegionFeatureExtractor::Compute(const sim::Dataset& data) {
  const geo::Grid& grid = data.city.grid;
  const int num_regions = grid.NumRegions();
  const int num_types = data.num_types();

  const auto poi_counts = geo::CountPoisPerRegion(data.city.pois, grid);
  const auto traffic = geo::CountTrafficPerRegion(data.city.roads, grid);

  // Store counts per region and type for store diversity.
  std::vector<std::vector<double>> store_counts(
      num_regions, std::vector<double>(num_types, 0.0));
  for (const sim::Store& s : data.stores) {
    store_counts[s.region][s.type] += 1.0;
  }

  // Collect raw columns, then min-max normalize each across regions.
  std::vector<std::vector<double>> columns(kDim,
                                           std::vector<double>(num_regions));
  for (int r = 0; r < num_regions; ++r) {
    for (int c = 0; c < geo::kNumPoiCategories; ++c) {
      columns[c][r] = poi_counts[r][c];
    }
    columns[geo::kNumPoiCategories][r] = Entropy(poi_counts[r]);
    columns[geo::kNumPoiCategories + 1][r] = traffic[r].num_intersections;
    columns[geo::kNumPoiCategories + 2][r] = traffic[r].num_roads;
    columns[geo::kNumPoiCategories + 3][r] = Entropy(store_counts[r]);
  }
  nn::Tensor out(num_regions, kDim);
  for (int c = 0; c < kDim; ++c) {
    MinMaxNormalize(columns[c]);
    for (int r = 0; r < num_regions; ++r) {
      out.at(r, c) = static_cast<float>(columns[c][r]);
    }
  }
  return out;
}

CommercialFeatures::CommercialFeatures(const sim::Dataset& data,
                                       double nearby_radius_m) {
  const geo::Grid& grid = data.city.grid;
  const int num_regions = grid.NumRegions();
  const int num_types = data.num_types();

  std::vector<std::vector<double>> store_counts(
      num_regions, std::vector<double>(num_types, 0.0));
  for (const sim::Store& s : data.stores) {
    store_counts[s.region][s.type] += 1.0;
  }

  // Competitiveness: same-type stores in the region divided by all stores
  // in the region plus its neighborhood.
  competitiveness_.assign(num_regions, std::vector<double>(num_types, 0.0));
  for (int r = 0; r < num_regions; ++r) {
    double nearby_total = 0.0;
    for (int a = 0; a < num_types; ++a) nearby_total += store_counts[r][a];
    for (geo::RegionId n : grid.RegionsWithin(r, nearby_radius_m)) {
      for (int a = 0; a < num_types; ++a) nearby_total += store_counts[n][a];
    }
    if (nearby_total <= 0.0) continue;
    for (int a = 0; a < num_types; ++a) {
      competitiveness_[r][a] = store_counts[r][a] / nearby_total;
    }
  }

  // Complementarity (paper §III-C):
  //   rho_{a*-a}   = 2 N_set(a*, a) / (N_A (N_A - 1))
  //   f^cp_{sa}    = sum_{a*} log(rho_{a*-a}) (N_{sa*} - mean_a* count)
  // N_set counts regions where both types appear. A 0.5 smoothing keeps
  // log(rho) finite for never-co-occurring pairs.
  std::vector<std::vector<double>> co_occurrence(
      num_types, std::vector<double>(num_types, 0.0));
  std::vector<double> mean_count(num_types, 0.0);
  for (int r = 0; r < num_regions; ++r) {
    for (int a = 0; a < num_types; ++a) {
      mean_count[a] += store_counts[r][a];
      if (store_counts[r][a] <= 0.0) continue;
      for (int b = a + 1; b < num_types; ++b) {
        if (store_counts[r][b] > 0.0) {
          co_occurrence[a][b] += 1.0;
          co_occurrence[b][a] += 1.0;
        }
      }
    }
  }
  for (double& v : mean_count) v /= num_regions;

  const double pair_norm =
      num_types > 1 ? num_types * (num_types - 1.0) : 1.0;
  complementarity_.assign(num_regions, std::vector<double>(num_types, 0.0));
  for (int a = 0; a < num_types; ++a) {
    std::vector<double> column(num_regions, 0.0);
    for (int r = 0; r < num_regions; ++r) {
      double f = 0.0;
      for (int b = 0; b < num_types; ++b) {
        if (b == a) continue;
        const double rho = 2.0 * (co_occurrence[b][a] + 0.5) / pair_norm;
        f += std::log(rho) * (store_counts[r][b] - mean_count[b]);
      }
      column[r] = f;
    }
    MinMaxNormalize(column);
    for (int r = 0; r < num_regions; ++r) {
      complementarity_[r][a] = column[r];
    }
  }
}

}  // namespace o2sr::features
