#include "features/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace o2sr::features {

std::vector<SlotSupplyDemand> SupplyDemandBySlot(const sim::Dataset& data) {
  std::vector<double> couriers(sim::kSlotsPerDay, 0.0);
  std::vector<double> orders(sim::kSlotsPerDay, 0.0);
  for (const sim::SlotStats& s : data.slot_stats) {
    couriers[s.slot] += s.active_couriers;
    orders[s.slot] += s.orders;
  }
  const double max_couriers =
      std::max(1.0, *std::max_element(couriers.begin(), couriers.end()));
  const double max_orders =
      std::max(1.0, *std::max_element(orders.begin(), orders.end()));
  std::vector<SlotSupplyDemand> out(sim::kSlotsPerDay);
  for (int slot = 0; slot < sim::kSlotsPerDay; ++slot) {
    out[slot].slot = slot;
    out[slot].couriers_norm = couriers[slot] / max_couriers;
    out[slot].orders_norm = orders[slot] / max_orders;
    out[slot].supply_demand_ratio =
        orders[slot] > 0 ? couriers[slot] / orders[slot] : 0.0;
  }
  return out;
}

double DeliveryTimeRatioCorrelation(const sim::Dataset& data) {
  std::vector<double> ratios, minutes;
  for (const sim::SlotStats& s : data.slot_stats) {
    if (s.orders < 10) continue;
    ratios.push_back(static_cast<double>(s.active_couriers) / s.orders);
    minutes.push_back(s.mean_delivery_minutes);
  }
  return PearsonCorrelation(ratios, minutes);
}

std::vector<double> DeliveryScopeByPeriod(const sim::Dataset& data) {
  // Farthest delivery distance per (store, period), averaged over stores
  // that delivered in the period.
  const int num_stores = static_cast<int>(data.stores.size());
  std::vector<std::vector<double>> farthest(
      sim::kNumPeriods, std::vector<double>(num_stores, 0.0));
  for (const sim::Order& o : data.orders) {
    auto& f = farthest[static_cast<int>(o.period())][o.store_id];
    f = std::max(f, o.distance_m);
  }
  std::vector<double> out(sim::kNumPeriods, 0.0);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    double sum = 0.0;
    int count = 0;
    for (int s = 0; s < num_stores; ++s) {
      if (farthest[p][s] > 0.0) {
        sum += farthest[p][s];
        ++count;
      }
    }
    out[p] = count > 0 ? sum / count : 0.0;
  }
  return out;
}

DeliveryTimeDistribution DeliveryTimeDistributionByPeriod(
    const sim::Dataset& data, double distance_lo_m, double distance_hi_m,
    std::vector<double> bin_edges_minutes) {
  O2SR_CHECK_GE(bin_edges_minutes.size(), 2u);
  DeliveryTimeDistribution dist;
  dist.bin_edges_minutes = bin_edges_minutes;
  const int num_bins = static_cast<int>(bin_edges_minutes.size());
  dist.share.assign(sim::kNumPeriods, std::vector<double>(num_bins, 0.0));
  std::vector<double> totals(sim::kNumPeriods, 0.0);
  for (const sim::Order& o : data.orders) {
    if (o.distance_m < distance_lo_m || o.distance_m >= distance_hi_m) {
      continue;
    }
    const double dt = o.delivery_minutes();
    if (dt < bin_edges_minutes.front()) continue;
    int bin = num_bins - 1;  // last bin is open-ended ("50+")
    for (int b = 0; b + 1 < num_bins; ++b) {
      if (dt >= bin_edges_minutes[b] && dt < bin_edges_minutes[b + 1]) {
        bin = b;
        break;
      }
    }
    dist.share[static_cast<int>(o.period())][bin] += 1.0;
    totals[static_cast<int>(o.period())] += 1.0;
  }
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    if (totals[p] <= 0.0) continue;
    for (double& v : dist.share[p]) v /= totals[p];
  }
  return dist;
}

std::vector<std::vector<TopType>> TopTypesByPeriod(const sim::Dataset& data,
                                                   int k) {
  std::vector<std::vector<double>> counts(
      sim::kNumPeriods, std::vector<double>(data.num_types(), 0.0));
  for (const sim::Order& o : data.orders) {
    counts[static_cast<int>(o.period())][o.type] += 1.0;
  }
  std::vector<std::vector<TopType>> out(sim::kNumPeriods);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    const std::vector<int> order = ArgsortDescending(counts[p]);
    for (int i = 0; i < k && i < static_cast<int>(order.size()); ++i) {
      TopType t;
      t.type = order[i];
      t.name = data.type_catalog[order[i]].name;
      t.orders = counts[p][order[i]];
      out[p].push_back(std::move(t));
    }
  }
  return out;
}

double PreferenceOrderCorrelation(const sim::Dataset& data, double radius_m) {
  const geo::Grid& grid = data.city.grid;
  const int num_regions = grid.NumRegions();
  const int num_types = data.num_types();

  // Orders per (store-region, type) and per (customer-region, type).
  std::vector<std::vector<double>> store_orders(
      num_regions, std::vector<double>(num_types, 0.0));
  std::vector<std::vector<double>> customer_orders(
      num_regions, std::vector<double>(num_types, 0.0));
  for (const sim::Order& o : data.orders) {
    store_orders[o.store_region][o.type] += 1.0;
    customer_orders[o.customer_region][o.type] += 1.0;
  }

  // Which types are actually available in each region: with a sparse store
  // inventory (unlike Shanghai's 39k stores) a type absent from the region
  // has structurally zero orders regardless of demand, so the correlation
  // is computed over (region, type) pairs where the type is present — the
  // question site recommendation actually asks.
  std::vector<std::vector<bool>> type_present(
      num_regions, std::vector<bool>(num_types, false));
  for (const sim::Store& s : data.stores) {
    type_present[s.region][s.type] = true;
  }

  // For every region with stores, correlate its per-type order vector with
  // the preference vector of customers within `radius_m` (paper §II-C1).
  std::vector<double> xs, ys;
  for (int r = 0; r < num_regions; ++r) {
    double region_total = 0.0;
    for (double v : store_orders[r]) region_total += v;
    if (region_total <= 0.0) continue;
    std::vector<double> preference(num_types, 0.0);
    for (int a = 0; a < num_types; ++a) {
      preference[a] += customer_orders[r][a];
    }
    for (geo::RegionId n : grid.RegionsWithin(r, radius_m)) {
      for (int a = 0; a < num_types; ++a) {
        preference[a] += customer_orders[n][a];
      }
    }
    for (int a = 0; a < num_types; ++a) {
      if (!type_present[r][a]) continue;
      xs.push_back(store_orders[r][a]);
      ys.push_back(preference[a]);
    }
  }
  return PearsonCorrelation(xs, ys);
}

}  // namespace o2sr::features
