#include "features/stream_aggregate.h"

#include <algorithm>
#include <string>
#include <vector>

#include "nn/serialize.h"

namespace o2sr::features {

common::StatusOr<OrderStats> AggregateSpill(sim::DatasetReader& reader,
                                            sim::SpillReadReport* report) {
  const sim::World& world = reader.world();
  OrderStats stats(world.num_regions(), world.num_types());
  O2SR_RETURN_IF_ERROR(reader.Stream(
      [&stats](const sim::ShardColumns& cols, const sim::ShardInfo&) {
        const size_t n = cols.rows();
        for (size_t i = 0; i < n; ++i) {
          stats.Add(static_cast<int>(sim::PeriodOfSlot(cols.slot[i])),
                    static_cast<int>(cols.store_region[i]),
                    static_cast<int>(cols.customer_region[i]),
                    static_cast<int>(cols.type[i]), cols.delivery_minutes[i],
                    cols.distance_m[i]);
        }
        return common::Status::Ok();
      },
      report));
  stats.FinalizeSupplyDemand(world.courier_alloc, world.config.num_days);
  return stats;
}

uint64_t FingerprintOrderStats(const OrderStats& stats) {
  const int R = stats.num_regions();
  const int T = stats.num_types();
  const int P = sim::kNumPeriods;
  std::string bytes;
  nn::ByteWriter w(&bytes);
  w.Scalar<int32_t>(R);
  w.Scalar<int32_t>(T);
  for (int s = 0; s < R; ++s) {
    w.Scalar<double>(stats.TotalStoreRegionOrders(s));
    for (int a = 0; a < T; ++a) {
      w.Scalar<double>(stats.OrdersOfTypeInRegion(s, a));
    }
  }
  for (int p = 0; p < P; ++p) {
    for (int s = 0; s < R; ++s) {
      w.Scalar<double>(stats.TotalStoreRegionOrdersPeriod(p, s));
      w.Scalar<double>(stats.FarthestDistance(p, s));
      w.Scalar<double>(stats.MeanDistance(p, s));
      w.Scalar<double>(stats.MeanDeliveryMinutes(p, s));
      w.Scalar<double>(stats.SupplyDemandRatio(p, s));
      for (int a = 0; a < T; ++a) {
        w.Scalar<double>(stats.OrdersOfTypeInRegionPeriod(p, s, a));
        w.Scalar<double>(stats.CustomerOrders(p, s, a));
      }
    }
    // unordered_map iteration order is nondeterministic; serialize pairs
    // sorted by key so equal tables fingerprint equal.
    std::vector<int64_t> keys;
    keys.reserve(stats.PairsInPeriod(p).size());
    for (const auto& [key, unused] : stats.PairsInPeriod(p)) {
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    w.Scalar<uint64_t>(keys.size());
    for (const int64_t key : keys) {
      const auto& pair = stats.PairsInPeriod(p).at(key);
      w.Scalar<int64_t>(key);
      w.Scalar<double>(pair.delivery_minutes_sum);
      w.Scalar<double>(pair.distance_sum);
      w.Scalar<int32_t>(pair.transactions);
    }
  }
  return nn::Fnv1a(bytes);
}

}  // namespace o2sr::features
