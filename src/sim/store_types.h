#ifndef O2SR_SIM_STORE_TYPES_H_
#define O2SR_SIM_STORE_TYPES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/poi.h"
#include "sim/period.h"

namespace o2sr::sim {

// Daily demand archetypes for store types. Each archetype has a distinct
// activity profile over the 12 two-hour slots, which is what creates the
// per-period popularity differences of Fig. 5.
enum class TypeArchetype : int {
  kBreakfast = 0,   // peaks 06-10 (steamed buns, bakery, soy milk)
  kLunchMeal,       // peaks 10-14 (light meal, bento, salad)
  kAfternoonTreat,  // peaks 14-18 (coffee, milk tea, juice, fruit)
  kDinnerMeal,      // peaks 16-20 (hot pot, noodles, rice dishes)
  kLateNight,       // peaks 20-02 (fried chicken, bbq, snack)
  kAllDay,          // flat profile (convenience, pharmacy, dessert)
};

inline constexpr int kNumArchetypes = 6;

// A store type in the catalog (paper: 122 types such as light meal, coffee,
// snack; we generate a configurable number with the most referenced ones
// named to match the paper's figures).
struct StoreType {
  int id = 0;
  std::string name;
  TypeArchetype archetype = TypeArchetype::kAllDay;
  // Relative overall popularity (market share), normalized across the
  // catalog to sum to 1.
  double popularity = 0.0;
  // Activity multiplier per 2-hour slot (12 entries, mean ~1).
  std::vector<double> slot_activity;
  // Affinity to each POI category (12 entries, used to modulate regional
  // preferences, e.g. coffee sells near offices).
  std::vector<double> poi_affinity;
  // Average ticket preparation complexity; scales food prep time a bit.
  double prep_factor = 1.0;
};

// Generates a deterministic catalog of `num_types` store types. The first
// entries are the named types used by the paper's per-type figures (light
// meal, light salad, fruit, steamed buns, juice, fried chicken, ...);
// remaining types get generated names and randomized archetypes.
std::vector<StoreType> BuildTypeCatalog(int num_types, Rng& rng);

// Per-slot activity profile of an archetype (12 values, mean ~1).
std::vector<double> ArchetypeSlotActivity(TypeArchetype archetype);

// POI affinity vector of an archetype (kNumPoiCategories values in [0,1]).
std::vector<double> ArchetypePoiAffinity(TypeArchetype archetype);

}  // namespace o2sr::sim

#endif  // O2SR_SIM_STORE_TYPES_H_
