#ifndef O2SR_SIM_DATASET_H_
#define O2SR_SIM_DATASET_H_

#include <string>
#include <vector>

#include "geo/geometry.h"
#include "geo/grid.h"
#include "sim/city.h"
#include "sim/config.h"
#include "sim/period.h"
#include "sim/store_types.h"

namespace o2sr::sim {

// A store on the platform.
struct Store {
  int id = 0;
  int type = 0;
  geo::Point location;
  geo::RegionId region = 0;
  // Intrinsic attractiveness (menu, price, ratings), lognormal-ish around 1.
  double quality = 1.0;
};

// One delivered order (mirrors Table I of the paper).
struct Order {
  int order_id = 0;
  int store_id = 0;
  int courier_id = 0;
  int type = 0;
  geo::RegionId store_region = 0;
  geo::RegionId customer_region = 0;
  geo::Point store_location;
  geo::Point customer_location;
  // Timestamps in minutes since simulation start.
  double creation_min = 0.0;
  double acceptance_min = 0.0;
  double pickup_min = 0.0;
  double delivery_min = 0.0;
  double distance_m = 0.0;  // store-to-customer straight-line distance
  int day = 0;
  int slot = 0;  // 2-hour slot within the day, [0, 12)

  Period period() const { return PeriodOfSlot(slot); }
  double delivery_minutes() const { return delivery_min - creation_min; }
};

// A courier GPS trajectory (one delivery leg), 20-second samples.
struct TrajectoryPoint {
  double time_min = 0.0;
  geo::Point location;
};
struct Trajectory {
  int courier_id = 0;
  int order_id = 0;
  std::vector<TrajectoryPoint> points;
};

// Per-slot operational statistics the motivation figures need.
struct SlotStats {
  int day = 0;
  int slot = 0;
  int active_couriers = 0;
  int orders = 0;
  // City-level mean actual delivery minutes in this slot (0 if no orders).
  double mean_delivery_minutes = 0.0;
};

// The complete synthetic dataset: environment + platform records.
struct Dataset {
  SimConfig config;
  CityModel city;
  std::vector<StoreType> type_catalog;
  std::vector<Store> stores;
  std::vector<Order> orders;
  std::vector<Trajectory> trajectories;  // only if config.generate_trajectories
  std::vector<SlotStats> slot_stats;
  // Delivery-scope radius factor actually applied per period (pressure
  // control), recorded for Fig. 3 style analyses.
  std::vector<double> scope_factor_per_period;
  // Courier allocation (fractional couriers on duty) per 2-hour slot and
  // region: courier_alloc_slot_region[slot][region]. Constant across days.
  std::vector<std::vector<double>> courier_alloc_slot_region;

  explicit Dataset(const SimConfig& cfg, CityModel c)
      : config(cfg), city(std::move(c)) {}

  int num_regions() const { return city.grid.NumRegions(); }
  int num_types() const { return static_cast<int>(type_catalog.size()); }
};

// Runs the full simulation: city -> stores -> courier/order dynamics.
// Deterministic for a given config (seed included).
Dataset GenerateDataset(const SimConfig& config);

// The built-in city-wide demand activity per 2-hour slot (mean ~1, noon and
// evening rush peaks). Exposed so drift scenarios (sim/drift.h) can shift it
// instead of re-inventing it.
const std::vector<double>& DefaultDemandSlotProfile();

// Drift seam: pieces of the world a scenario may replace while everything
// else (city, catalog, courier dynamics, RNG stream) stays exactly as
// GenerateDataset would produce it. Empty/default members mean "no
// override", so a default-constructed WorldOverrides reproduces
// GenerateDataset(config) bit-for-bit.
struct WorldOverrides {
  // Replaces the generated store set. Ids must be contiguous 0..n-1 (order
  // records index per-store tables by id).
  bool use_stores = false;
  std::vector<Store> stores;
  // Replaces DefaultDemandSlotProfile(); size kSlotsPerDay when non-empty.
  std::vector<double> demand_slot_profile;
  // Per-type multiplier on StoreType::popularity in the customers'
  // type-choice weights; size num_store_types when non-empty.
  std::vector<double> type_popularity_scale;
};

Dataset GenerateDataset(const SimConfig& config,
                        const WorldOverrides& overrides);

// Generates store placements for a city (exposed for tests and for the
// drift scenario, which reuses the placement weighting for newly opened
// stores).
std::vector<Store> GenerateStores(const SimConfig& config,
                                  const CityModel& city,
                                  const std::vector<StoreType>& catalog,
                                  Rng& rng);

}  // namespace o2sr::sim

#endif  // O2SR_SIM_DATASET_H_
