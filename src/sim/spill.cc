#include "sim/spill.h"

#include <cstdio>
#include <cstring>

#include "common/fault.h"
#include "nn/serialize.h"
#include "sim/period.h"

namespace o2sr::sim {

namespace {

// Appends a column's raw bytes.
template <typename T>
void WriteColumn(std::string* out, const std::vector<T>& column) {
  const size_t pos = out->size();
  out->resize(pos + column.size() * sizeof(T));
  std::memcpy(out->data() + pos, column.data(), column.size() * sizeof(T));
}

template <typename T>
void ReadColumn(const std::string& bytes, size_t* pos, size_t rows,
                std::vector<T>* column) {
  column->resize(rows);
  std::memcpy(column->data(), bytes.data() + *pos, rows * sizeof(T));
  *pos += rows * sizeof(T);
}

constexpr size_t kRowBytes =
    2 * sizeof(uint32_t) + sizeof(uint16_t) + sizeof(uint8_t) +
    2 * sizeof(double);

common::Status Corrupt(const std::string& origin, const std::string& what) {
  return common::DataLossError("shard '" + origin + "': " + what);
}

}  // namespace

void ShardColumns::Append(const SpillRow& row) {
  store_region.push_back(row.store_region);
  customer_region.push_back(row.customer_region);
  type.push_back(row.type);
  slot.push_back(row.slot);
  delivery_minutes.push_back(row.delivery_minutes);
  distance_m.push_back(row.distance_m);
}

void ShardColumns::Reserve(size_t n) {
  store_region.reserve(n);
  customer_region.reserve(n);
  type.reserve(n);
  slot.reserve(n);
  delivery_minutes.reserve(n);
  distance_m.reserve(n);
}

void ShardColumns::Clear() {
  store_region.clear();
  customer_region.clear();
  type.clear();
  slot.clear();
  delivery_minutes.clear();
  distance_m.clear();
}

std::string ShardFileName(int block, int epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "shard-b%05d-e%05d.o2sp", block, epoch);
  return buf;
}

std::string SerializeShard(const ShardColumns& columns, ShardInfo* info) {
  info->rows = columns.rows();
  const uint64_t payload_bytes = info->rows * kRowBytes;

  std::string payload;
  payload.reserve(payload_bytes);
  WriteColumn(&payload, columns.store_region);
  WriteColumn(&payload, columns.customer_region);
  WriteColumn(&payload, columns.type);
  WriteColumn(&payload, columns.slot);
  WriteColumn(&payload, columns.delivery_minutes);
  WriteColumn(&payload, columns.distance_m);
  info->payload_fnv = nn::Fnv1a(payload);

  std::string out;
  out.reserve(kShardHeaderBytes + payload.size() + kShardFooterBytes);
  nn::ByteWriter w(&out);
  out.append(kShardMagic, 8);
  w.Scalar<uint32_t>(kShardVersion);
  w.Scalar<uint32_t>(info->block);
  w.Scalar<uint32_t>(info->epoch);
  w.Scalar<uint32_t>(info->region_begin);
  w.Scalar<uint32_t>(info->region_end);
  w.Scalar<uint32_t>(info->num_regions);
  w.Scalar<uint64_t>(info->config_hash);
  w.Scalar<uint64_t>(info->rows);
  w.Scalar<uint64_t>(payload_bytes);
  w.Scalar<uint64_t>(nn::Fnv1a(out));  // header checksum (bytes so far)

  out += payload;

  std::string footer;
  nn::ByteWriter f(&footer);
  f.Scalar<uint64_t>(info->rows);
  f.Scalar<uint64_t>(info->payload_fnv);
  f.Scalar<uint64_t>(nn::Fnv1a(footer));
  out += footer;
  return out;
}

common::Status ParseShard(const std::string& bytes, const std::string& origin,
                          ShardInfo* info, ShardColumns* columns) {
  if (bytes.size() < kShardHeaderBytes + kShardFooterBytes) {
    return Corrupt(origin, "file truncated below header + footer size");
  }
  if (std::memcmp(bytes.data(), kShardMagic, 8) != 0) {
    return Corrupt(origin, "bad magic");
  }
  const std::string header_bytes =
      bytes.substr(0, kShardHeaderBytes - sizeof(uint64_t));
  nn::ByteReader r(bytes);
  {  // skip magic
    char magic[8];
    O2SR_RETURN_IF_ERROR(r.Scalar(&magic));
  }
  uint32_t version = 0;
  uint64_t payload_bytes = 0, header_fnv = 0;
  O2SR_RETURN_IF_ERROR(r.Scalar(&version));
  O2SR_RETURN_IF_ERROR(r.Scalar(&info->block));
  O2SR_RETURN_IF_ERROR(r.Scalar(&info->epoch));
  O2SR_RETURN_IF_ERROR(r.Scalar(&info->region_begin));
  O2SR_RETURN_IF_ERROR(r.Scalar(&info->region_end));
  O2SR_RETURN_IF_ERROR(r.Scalar(&info->num_regions));
  O2SR_RETURN_IF_ERROR(r.Scalar(&info->config_hash));
  O2SR_RETURN_IF_ERROR(r.Scalar(&info->rows));
  O2SR_RETURN_IF_ERROR(r.Scalar(&payload_bytes));
  O2SR_RETURN_IF_ERROR(r.Scalar(&header_fnv));
  if (header_fnv != nn::Fnv1a(header_bytes)) {
    return Corrupt(origin, "header checksum mismatch");
  }
  if (version != kShardVersion) {
    return common::FailedPreconditionError(
        "shard '" + origin + "': format version " + std::to_string(version) +
        ", expected " + std::to_string(kShardVersion));
  }
  if (info->region_begin >= info->region_end ||
      info->region_end > info->num_regions) {
    return Corrupt(origin, "header region range is not a grid cell");
  }
  if (payload_bytes != info->rows * kRowBytes) {
    return Corrupt(origin, "payload size inconsistent with row count");
  }
  if (bytes.size() !=
      kShardHeaderBytes + payload_bytes + kShardFooterBytes) {
    return Corrupt(origin, "file size inconsistent with header");
  }

  const std::string payload =
      bytes.substr(kShardHeaderBytes, payload_bytes);
  const size_t footer_pos = kShardHeaderBytes + payload_bytes;
  uint64_t footer_rows = 0, footer_payload_fnv = 0, footer_fnv = 0;
  std::memcpy(&footer_rows, bytes.data() + footer_pos, 8);
  std::memcpy(&footer_payload_fnv, bytes.data() + footer_pos + 8, 8);
  std::memcpy(&footer_fnv, bytes.data() + footer_pos + 16, 8);
  if (footer_fnv != nn::Fnv1a(bytes.substr(footer_pos, 16))) {
    return Corrupt(origin, "footer checksum mismatch");
  }
  if (footer_rows != info->rows) {
    return Corrupt(origin, "footer row count disagrees with header");
  }
  info->payload_fnv = nn::Fnv1a(payload);
  if (info->payload_fnv != footer_payload_fnv) {
    return Corrupt(origin, "payload checksum mismatch");
  }

  // Checksums prove the bytes are the ones written; the bounds below prove
  // they are safe to index aggregation tables with. Validated straight off
  // the payload so a validate-only call (columns == nullptr) — the manifest
  // recovery path — rejects out-of-range rows too.
  {
    const char* base = bytes.data() + kShardHeaderBytes;
    const size_t rows = info->rows;
    const char* store_col = base;
    const char* customer_col = base + rows * sizeof(uint32_t);
    const char* slot_col = base + rows * (2 * sizeof(uint32_t) +
                                          sizeof(uint16_t));
    for (size_t i = 0; i < rows; ++i) {
      uint32_t store = 0, customer = 0;
      std::memcpy(&store, store_col + i * sizeof(uint32_t), sizeof(store));
      std::memcpy(&customer, customer_col + i * sizeof(uint32_t),
                  sizeof(customer));
      const uint8_t slot = static_cast<uint8_t>(slot_col[i]);
      if (store >= info->num_regions) {
        return Corrupt(origin, "row " + std::to_string(i) +
                                   " store_region out of range");
      }
      if (customer < info->region_begin || customer >= info->region_end) {
        return Corrupt(origin, "row " + std::to_string(i) +
                                   " customer_region outside the shard's "
                                   "region block");
      }
      if (slot >= kSlotsPerDay) {
        return Corrupt(origin,
                       "row " + std::to_string(i) + " slot out of range");
      }
    }
  }

  if (columns != nullptr) {
    const size_t rows = info->rows;
    size_t pos = kShardHeaderBytes;
    ReadColumn(bytes, &pos, rows, &columns->store_region);
    ReadColumn(bytes, &pos, rows, &columns->customer_region);
    ReadColumn(bytes, &pos, rows, &columns->type);
    ReadColumn(bytes, &pos, rows, &columns->slot);
    ReadColumn(bytes, &pos, rows, &columns->delivery_minutes);
    ReadColumn(bytes, &pos, rows, &columns->distance_m);
  }
  return common::Status::Ok();
}

common::Status ValidateShardTypes(const ShardColumns& columns, int num_types,
                                  const std::string& origin) {
  for (size_t i = 0; i < columns.type.size(); ++i) {
    if (static_cast<int>(columns.type[i]) >= num_types) {
      return Corrupt(origin, "row " + std::to_string(i) + " type " +
                                 std::to_string(columns.type[i]) +
                                 " out of range for " +
                                 std::to_string(num_types) + " store types");
    }
  }
  return common::Status::Ok();
}

common::StatusOr<ShardInfo> WriteShard(const std::string& path,
                                       const ShardColumns& columns,
                                       const ShardInfo& identity) {
  common::FaultInjector& faults = common::FaultInjector::Global();
  faults.InjectDelay("dataset.write");
  O2SR_RETURN_IF_ERROR(
      faults.InjectError("dataset.write").WithContext("writing " + path));
  ShardInfo info = identity;
  std::string bytes = SerializeShard(columns, &info);
  // An injected bitflip/trunc corrupts the *published* bytes: the shard
  // lands on disk torn, exactly like a bad disk or partial write, and the
  // read path must detect and quarantine it.
  faults.InjectCorruption("dataset.write", &bytes);
  O2SR_RETURN_IF_ERROR(nn::WriteFileAtomic(path, bytes));
  return info;
}

common::StatusOr<ShardInfo> ReadShard(const std::string& path,
                                      ShardColumns* columns) {
  common::FaultInjector& faults = common::FaultInjector::Global();
  faults.InjectDelay("dataset.read");
  O2SR_RETURN_IF_ERROR(
      faults.InjectError("dataset.read").WithContext("reading " + path));
  std::string bytes;
  O2SR_RETURN_IF_ERROR(nn::ReadFileToString(path, &bytes));
  faults.InjectCorruption("dataset.read", &bytes);
  ShardInfo info;
  O2SR_RETURN_IF_ERROR(ParseShard(bytes, path, &info, columns));
  return info;
}

}  // namespace o2sr::sim
