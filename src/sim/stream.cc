#include "sim/stream.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "common/math_util.h"
#include "nn/serialize.h"
#include "obs/env.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace o2sr::sim {

namespace fs = std::filesystem;

namespace {

constexpr int kDefaultMemBudgetMb = 2048;

uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string ResolveDataDir(const std::string& requested) {
  if (!requested.empty()) return requested;
  return obs::EnvString("O2SR_DATA_DIR", "o2sr_data");
}

int ResolveMemBudgetMb(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(
      obs::EnvInt("O2SR_MEM_BUDGET_MB", kDefaultMemBudgetMb, 64, 1048576));
}

std::string ManifestPath(const std::string& dir) {
  return (fs::path(dir) / kManifestFileName).string();
}

// Serialized size floor of one manifest entry: filename length prefix +
// the ShardInfo scalars. Guards the entry-count reserve against a
// corrupted count.
constexpr uint64_t kMinEntryBytes =
    sizeof(uint64_t) + 5 * sizeof(uint32_t) + 2 * sizeof(uint64_t);

std::string SerializeManifestPayload(const Manifest& m) {
  std::string payload;
  nn::ByteWriter w(&payload);
  w.Scalar<uint64_t>(m.config_hash);
  w.Scalar<uint32_t>(m.block_regions);
  w.Scalar<uint32_t>(m.num_blocks);
  w.Scalar<uint32_t>(m.epochs);
  w.Scalar<uint32_t>(m.num_regions);
  w.Scalar<uint64_t>(m.entries.size());
  for (const ManifestEntry& e : m.entries) {
    w.Str(e.filename);
    w.Scalar<uint32_t>(e.info.block);
    w.Scalar<uint32_t>(e.info.epoch);
    w.Scalar<uint32_t>(e.info.region_begin);
    w.Scalar<uint32_t>(e.info.region_end);
    w.Scalar<uint32_t>(e.info.num_regions);
    w.Scalar<uint64_t>(e.info.rows);
    w.Scalar<uint64_t>(e.info.payload_fnv);
  }
  return payload;
}

common::Status ParseManifestPayload(const std::string& payload,
                                    const std::string& origin, Manifest* m) {
  nn::ByteReader r(payload);
  O2SR_RETURN_IF_ERROR(r.Scalar(&m->config_hash));
  O2SR_RETURN_IF_ERROR(r.Scalar(&m->block_regions));
  O2SR_RETURN_IF_ERROR(r.Scalar(&m->num_blocks));
  O2SR_RETURN_IF_ERROR(r.Scalar(&m->epochs));
  O2SR_RETURN_IF_ERROR(r.Scalar(&m->num_regions));
  uint64_t count = 0;
  O2SR_RETURN_IF_ERROR(r.Scalar(&count));
  if (count > r.remaining() / kMinEntryBytes) {
    return common::DataLossError("manifest '" + origin + "' claims " +
                                 std::to_string(count) +
                                 " entries, more than its bytes can hold");
  }
  m->entries.clear();
  m->entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ManifestEntry e;
    O2SR_RETURN_IF_ERROR(r.Str(&e.filename));
    O2SR_RETURN_IF_ERROR(r.Scalar(&e.info.block));
    O2SR_RETURN_IF_ERROR(r.Scalar(&e.info.epoch));
    O2SR_RETURN_IF_ERROR(r.Scalar(&e.info.region_begin));
    O2SR_RETURN_IF_ERROR(r.Scalar(&e.info.region_end));
    O2SR_RETURN_IF_ERROR(r.Scalar(&e.info.num_regions));
    O2SR_RETURN_IF_ERROR(r.Scalar(&e.info.rows));
    O2SR_RETURN_IF_ERROR(r.Scalar(&e.info.payload_fnv));
    // Every journaled shard was written under the manifest's config; the
    // hash is manifest-level state, not serialized per entry.
    e.info.config_hash = m->config_hash;
    m->entries.push_back(std::move(e));
  }
  if (r.remaining() != 0) {
    return common::DataLossError("manifest '" + origin +
                                 "' has trailing bytes after its entries");
  }
  return common::Status::Ok();
}

// Quarantines `path` and logs; a failed move (e.g. the file vanished) only
// warns — the caller's recovery proceeds either way.
void QuarantineLoudly(const std::string& path, const std::string& reason) {
  O2SR_LOG(WARNING) << "quarantining '" << path << "': " << reason;
  const common::StatusOr<std::string> moved =
      nn::QuarantineFile(path, reason);
  if (!moved.ok()) {
    O2SR_LOG(WARNING) << "quarantine of '" << path
                      << "' failed: " << moved.status().ToString();
  }
}

int NumBlocks(int num_regions, int block_regions) {
  return (num_regions + block_regions - 1) / block_regions;
}

// Does `info` name a cell of the (block_regions, epochs) grid of this
// world, under the canonical file name? Used to adopt stray shards while
// rebuilding a lost manifest.
bool ShardFitsGrid(const ShardInfo& info, const std::string& filename,
                   int num_regions, int block_regions, int epochs) {
  const int blocks = NumBlocks(num_regions, block_regions);
  if (static_cast<int>(info.block) >= blocks) return false;
  if (static_cast<int>(info.epoch) >= epochs) return false;
  if (static_cast<int>(info.num_regions) != num_regions) return false;
  const uint32_t begin = info.block * block_regions;
  const uint32_t end = std::min<uint32_t>(begin + block_regions, num_regions);
  if (info.region_begin != begin || info.region_end != end) return false;
  return filename == ShardFileName(info.block, info.epoch);
}

// Scans `dir` for shard files; validated shards that fit the grid are
// adopted into a fresh manifest, everything else shard-shaped is
// quarantined. The recovery path of a lost/corrupt manifest.
Manifest RecoverManifestFromShards(const std::string& dir,
                                   uint64_t config_hash, int num_regions,
                                   int block_regions, int epochs,
                                   int* quarantined) {
  Manifest m;
  m.config_hash = config_hash;
  m.block_regions = block_regions;
  m.num_blocks = NumBlocks(num_regions, block_regions);
  m.epochs = epochs;
  m.num_regions = num_regions;

  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.size() > 5 && name.rfind("shard-", 0) == 0 &&
        name.compare(name.size() - 5, 5, ".o2sp") == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string path = (fs::path(dir) / name).string();
    const common::StatusOr<ShardInfo> info = ReadShard(path, nullptr);
    if (!info.ok()) {
      QuarantineLoudly(path, info.status().ToString());
      ++*quarantined;
      continue;
    }
    if (info->config_hash != config_hash) {
      QuarantineLoudly(path,
                       "valid shard was written under a different SimConfig "
                       "(fingerprint " + std::to_string(info->config_hash) +
                       ", this config " + std::to_string(config_hash) + ")");
      ++*quarantined;
      continue;
    }
    if (!ShardFitsGrid(*info, name, num_regions, block_regions, epochs)) {
      QuarantineLoudly(path,
                       "valid shard does not fit the dataset grid (foreign "
                       "blocking or epoch range)");
      ++*quarantined;
      continue;
    }
    m.entries.push_back(ManifestEntry{*info, name});
  }
  return m;
}

// Widest region range among validated same-config shards in `dir`; 0 when
// none. Lets a reader or a resuming generator re-infer the blocking after
// losing the manifest — a foreign shard must not dictate the tiling.
int InferBlockRegions(const std::string& dir, uint64_t config_hash) {
  int widest = 0;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const common::StatusOr<ShardInfo> info =
        ReadShard(ent.path().string(), nullptr);
    if (!info.ok() || info->config_hash != config_hash) continue;
    widest = std::max(widest,
                      static_cast<int>(info->region_end - info->region_begin));
  }
  return widest;
}

}  // namespace

uint64_t SimConfigHash(const SimConfig& c) {
  std::string bytes;
  nn::ByteWriter w(&bytes);
  w.Scalar<double>(c.city_width_m);
  w.Scalar<double>(c.city_height_m);
  w.Scalar<double>(c.cell_m);
  w.Scalar<int32_t>(c.num_store_types);
  w.Scalar<int32_t>(c.num_stores);
  w.Scalar<int32_t>(c.num_couriers);
  w.Scalar<int32_t>(c.num_days);
  w.Scalar<double>(c.peak_orders_per_region_slot);
  w.Scalar<double>(c.courier_speed_m_per_min);
  w.Scalar<double>(c.food_prep_minutes);
  w.Scalar<double>(c.queue_minutes_per_load);
  w.Scalar<double>(c.base_scope_m);
  w.Scalar<double>(c.min_scope_factor);
  w.Scalar<double>(c.max_scope_factor);
  w.Scalar<double>(c.tolerance_minutes);
  w.Scalar<double>(c.tolerance_softness);
  w.Scalar<double>(c.demographic_preference_weight);
  w.Scalar<double>(c.taste_noise_sigma);
  w.Scalar<int32_t>(static_cast<int32_t>(c.preset));
  w.Scalar<uint8_t>(c.generate_trajectories ? 1 : 0);
  w.Scalar<uint64_t>(c.seed);
  return nn::Fnv1a(bytes);
}

uint64_t ShardSeed(uint64_t seed, int epoch, int region) {
  const uint64_t z = SplitMix64(seed ^ static_cast<uint64_t>(epoch));
  return SplitMix64(z ^ static_cast<uint64_t>(region));
}

int AutoBlockRegions(const World& world, int mem_budget_mb) {
  const SimConfig& c = world.config;
  const int num_regions = world.num_regions();
  // Candidate-index footprint estimate: each store lands in the candidate
  // list of every region within delivery scope, so a region holds roughly
  // stores x (scope disc area / city area) entries.
  const double area = c.city_width_m * c.city_height_m;
  const double scope = c.base_scope_m * c.max_scope_factor;
  const double coverage = std::min(1.0, 3.14159265358979 * scope * scope /
                                            area);
  const double est_candidates =
      static_cast<double>(world.stores.size()) * coverage;
  // 16 bytes per TypedCandidate, plus generous slack for the per-type list
  // headers and the shard's row buffer.
  const double per_region_bytes = est_candidates * 16.0 + 65536.0;
  const double budget_bytes = static_cast<double>(mem_budget_mb) * 1048576.0;
  // Half the budget goes to the block (the rest covers the world tables);
  // cap at ceil(R/4) so every dataset gets at least 4 blocks of real
  // sharding.
  const int cap = (num_regions + 3) / 4;
  const int by_budget =
      static_cast<int>(budget_bytes * 0.5 / per_region_bytes);
  return Clamp(std::min(by_budget, cap), 1, num_regions);
}

void GenerateBlockRows(const World& world, const CandidateIndex& candidates,
                       int epoch, ShardColumns* out) {
  for (int u = candidates.region_begin; u < candidates.region_end; ++u) {
    Rng rng(ShardSeed(world.config.seed, epoch, u));
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      const double jitter = rng.Uniform(0.85, 1.15);
      const int attempts =
          rng.Poisson(world.expected_demand[slot][u] * jitter);
      for (int k = 0; k < attempts; ++k) {
        Order order;
        if (!SampleOrderAttempt(world, candidates, epoch, slot, u, rng,
                                &order)) {
          continue;
        }
        SpillRow row;
        row.store_region = static_cast<uint32_t>(order.store_region);
        row.customer_region = static_cast<uint32_t>(order.customer_region);
        row.type = static_cast<uint16_t>(order.type);
        row.slot = static_cast<uint8_t>(slot);
        row.delivery_minutes = order.delivery_minutes();
        row.distance_m = order.distance_m;
        out->Append(row);
      }
    }
  }
}

common::Status WriteManifest(const std::string& path, const Manifest& m) {
  common::FaultInjector& faults = common::FaultInjector::Global();
  faults.InjectDelay("dataset.manifest");
  O2SR_RETURN_IF_ERROR(
      faults.InjectError("dataset.manifest").WithContext("writing " + path));
  std::string payload = SerializeManifestPayload(m);
  // Corrupting the payload BEFORE the envelope is sealed publishes a
  // manifest whose container checksum passes but whose payload is garbage:
  // the reader's payload parser must hold the line on its own.
  faults.InjectCorruption("dataset.manifest", &payload);
  return nn::WriteContainerFile(path, kManifestMagic, kManifestVersion,
                                payload);
}

common::StatusOr<Manifest> ReadManifest(const std::string& path) {
  common::FaultInjector& faults = common::FaultInjector::Global();
  faults.InjectDelay("dataset.manifest");
  O2SR_ASSIGN_OR_RETURN(std::string payload,
                        nn::ReadContainerFile(path, kManifestMagic,
                                              kManifestVersion));
  faults.InjectCorruption("dataset.manifest", &payload);
  Manifest m;
  O2SR_RETURN_IF_ERROR(ParseManifestPayload(payload, path, &m));
  return m;
}

common::StatusOr<StreamResult> StreamGenerate(const SimConfig& config,
                                              const StreamOptions& options) {
  O2SR_TRACE_SCOPE("sim.stream_generate");
  StreamResult result;
  result.data_dir = ResolveDataDir(options.data_dir);
  result.resolved_mem_budget_mb = ResolveMemBudgetMb(options.mem_budget_mb);
  result.epochs = config.num_days;

  std::error_code ec;
  fs::create_directories(result.data_dir, ec);
  if (ec) {
    return common::UnavailableError("cannot create data dir '" +
                                    result.data_dir + "': " + ec.message());
  }

  Rng rng(config.seed);
  const World world = BuildWorld(config, WorldOverrides(), rng);
  const int num_regions = world.num_regions();
  const uint64_t config_hash = SimConfigHash(config);

  // The blocking a FRESH run would choose; a surviving manifest overrides
  // it (layout is part of the journal, resume must not re-tile).
  int block_regions =
      options.block_regions > 0
          ? Clamp(options.block_regions, 1, num_regions)
          : AutoBlockRegions(world, result.resolved_mem_budget_mb);

  const std::string manifest_path = ManifestPath(result.data_dir);
  Manifest manifest;
  common::StatusOr<Manifest> loaded = ReadManifest(manifest_path);
  if (loaded.ok()) {
    if (loaded->config_hash != config_hash) {
      return common::FailedPreconditionError(
          "dataset dir '" + result.data_dir +
          "' was ingested for a different SimConfig (manifest fingerprint " +
          std::to_string(loaded->config_hash) + ", this config " +
          std::to_string(config_hash) + "); refusing to mix shards");
    }
    if (static_cast<int>(loaded->block_regions) != block_regions) {
      O2SR_LOG(WARNING) << "resuming with the manifest's blocking ("
                        << loaded->block_regions << " regions/block), not "
                        << block_regions;
    }
    manifest = std::move(*loaded);
    block_regions = static_cast<int>(manifest.block_regions);
  } else if (loaded.status().code() == common::StatusCode::kNotFound) {
    manifest.config_hash = config_hash;
    manifest.block_regions = block_regions;
    manifest.num_blocks = NumBlocks(num_regions, block_regions);
    manifest.epochs = config.num_days;
    manifest.num_regions = num_regions;
  } else {
    // Torn or corrupt journal: quarantine it and rebuild from the shards
    // themselves — each shard is self-describing and self-checking. The
    // surviving shards, not this run's options/auto-sizing, decide the
    // blocking: a changed memory budget must not get every valid shard
    // quarantined as foreign and regenerated from scratch.
    QuarantineLoudly(manifest_path, loaded.status().ToString());
    ++result.quarantined;
    const int inferred = InferBlockRegions(result.data_dir, config_hash);
    if (inferred > 0 && inferred != block_regions) {
      O2SR_LOG(WARNING) << "recovering with the blocking inferred from "
                        << "surviving shards (" << inferred
                        << " regions/block), not " << block_regions;
    }
    if (inferred > 0) block_regions = inferred;
    manifest =
        RecoverManifestFromShards(result.data_dir, config_hash, num_regions,
                                  block_regions, config.num_days,
                                  &result.quarantined);
    O2SR_RETURN_IF_ERROR(WriteManifest(manifest_path, manifest));
  }

  result.block_regions = block_regions;
  result.num_blocks = NumBlocks(num_regions, block_regions);

  std::map<std::pair<uint32_t, uint32_t>, size_t> done;
  for (size_t i = 0; i < manifest.entries.size(); ++i) {
    const ShardInfo& info = manifest.entries[i].info;
    done[{info.block, info.epoch}] = i;
  }

  for (int block = 0; block < result.num_blocks && !result.stopped_early;
       ++block) {
    const int begin = block * block_regions;
    const int end = std::min(begin + block_regions, num_regions);
    // Skip fully journaled blocks without paying for their candidate
    // index — the common case when resuming near the end.
    bool all_done = true;
    for (int epoch = 0; epoch < config.num_days; ++epoch) {
      if (done.find({static_cast<uint32_t>(block),
                     static_cast<uint32_t>(epoch)}) == done.end()) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      result.shards_skipped += config.num_days;
      continue;
    }

    const CandidateIndex candidates = BuildCandidates(world, begin, end);
    ShardColumns columns;
    for (int epoch = 0; epoch < config.num_days; ++epoch) {
      if (done.count({static_cast<uint32_t>(block),
                      static_cast<uint32_t>(epoch)}) != 0) {
        ++result.shards_skipped;
        continue;
      }
      columns.Clear();
      GenerateBlockRows(world, candidates, epoch, &columns);

      ShardInfo identity;
      identity.block = block;
      identity.epoch = epoch;
      identity.region_begin = begin;
      identity.region_end = end;
      identity.num_regions = num_regions;
      identity.config_hash = config_hash;
      const std::string filename = ShardFileName(block, epoch);
      const std::string path =
          (fs::path(result.data_dir) / filename).string();
      O2SR_ASSIGN_OR_RETURN(const ShardInfo info,
                            WriteShard(path, columns, identity));

      // Journal the publish before moving on: kill-anywhere resume only
      // ever re-does the one shard whose journal write did not land (and
      // regenerating it writes the same bytes).
      manifest.entries.push_back(ManifestEntry{info, filename});
      O2SR_RETURN_IF_ERROR(WriteManifest(manifest_path, manifest));
      result.rows += info.rows;
      ++result.shards_written;
      if (options.max_shards_per_run > 0 &&
          result.shards_written >= options.max_shards_per_run) {
        result.stopped_early = true;
        break;
      }
    }
  }

  for (const ManifestEntry& e : manifest.entries) {
    result.total_rows += e.info.rows;
  }
  O2SR_LOG(DEBUG) << "stream ingest: " << result.shards_written
                  << " shards written, " << result.shards_skipped
                  << " resumed, " << result.total_rows << " total rows in '"
                  << result.data_dir << "'";
  return result;
}

common::StatusOr<DatasetReader> DatasetReader::Open(
    const SimConfig& config, const std::string& dir,
    const SpillReadOptions& options) {
  DatasetReader reader;
  reader.dir_ = ResolveDataDir(dir);
  reader.options_ = options;

  Rng rng(config.seed);
  reader.world_ = BuildWorld(config, WorldOverrides(), rng);
  const int num_regions = reader.world_.num_regions();
  const uint64_t config_hash = SimConfigHash(config);

  const std::string manifest_path = ManifestPath(reader.dir_);
  common::StatusOr<Manifest> loaded = ReadManifest(manifest_path);
  if (!loaded.ok()) {
    if (loaded.status().code() == common::StatusCode::kNotFound ||
        options.policy == SpillReadPolicy::kStrict) {
      return loaded.status().WithContext("opening dataset '" + reader.dir_ +
                                         "'");
    }
    // Corrupt journal, quarantine policy: re-infer the blocking from the
    // surviving shards, rebuild the manifest, and heal it on disk.
    QuarantineLoudly(manifest_path, loaded.status().ToString());
    const int block_regions = InferBlockRegions(reader.dir_, config_hash);
    if (block_regions <= 0) {
      return common::DataLossError(
          "dataset '" + reader.dir_ +
          "': manifest is corrupt and no readable shard survives to "
          "recover the layout from");
    }
    int quarantined = 0;
    reader.manifest_ = RecoverManifestFromShards(
        reader.dir_, config_hash, num_regions, block_regions,
        config.num_days, &quarantined);
    O2SR_RETURN_IF_ERROR(WriteManifest(manifest_path, reader.manifest_));
  } else {
    reader.manifest_ = std::move(*loaded);
  }
  if (reader.manifest_.config_hash != config_hash) {
    return common::FailedPreconditionError(
        "dataset '" + reader.dir_ +
        "' was ingested for a different SimConfig (manifest fingerprint " +
        std::to_string(reader.manifest_.config_hash) + ", this config " +
        std::to_string(config_hash) + ")");
  }
  if (static_cast<int>(reader.manifest_.num_regions) != num_regions) {
    return common::FailedPreconditionError(
        "dataset '" + reader.dir_ + "' covers " +
        std::to_string(reader.manifest_.num_regions) +
        " regions, this config builds " + std::to_string(num_regions));
  }
  return reader;
}

common::Status DatasetReader::Stream(const ShardSink& sink,
                                     SpillReadReport* report) {
  O2SR_TRACE_SCOPE("sim.stream_read");
  SpillReadReport local;
  SpillReadReport& rep = report != nullptr ? *report : local;
  rep = SpillReadReport();

  const int num_regions = manifest_.num_regions;
  const int block_regions = manifest_.block_regions;
  const int num_blocks = NumBlocks(num_regions, block_regions);
  const int epochs = manifest_.epochs;

  // Indices, not pointers: the regeneration path below push_backs into
  // manifest_.entries mid-loop, which may reallocate the vector and would
  // dangle any pointer held here. An index stays valid across growth; the
  // entry pointer is re-derived per cell.
  std::map<std::pair<uint32_t, uint32_t>, size_t> by_cell;
  for (size_t i = 0; i < manifest_.entries.size(); ++i) {
    const ManifestEntry& e = manifest_.entries[i];
    by_cell[{e.info.block, e.info.epoch}] = i;
  }

  // Lazily built per block, only when a shard in it needs regeneration.
  CandidateIndex candidates;
  bool have_candidates = false;
  int candidates_block = -1;

  // Epoch-major: within an epoch, blocks ascending visit regions 0..R-1 in
  // order, so the ROW order seen by the sink is (epoch, region, slot,
  // attempt) — independent of the blocking. Floating-point accumulation
  // downstream is therefore bit-identical across memory budgets.
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int block = 0; block < num_blocks; ++block) {
      const int begin = block * block_regions;
      const int end = std::min(begin + block_regions, num_regions);
      const auto it = by_cell.find(
          {static_cast<uint32_t>(block), static_cast<uint32_t>(epoch)});
      const ManifestEntry* entry =
          it == by_cell.end() ? nullptr : &manifest_.entries[it->second];
      const std::string filename =
          entry != nullptr ? entry->filename : ShardFileName(block, epoch);
      const std::string path = (fs::path(dir_) / filename).string();

      ShardColumns columns;
      bool have_rows = false;
      ShardInfo info;

      if (entry != nullptr) {
        common::StatusOr<ShardInfo> read = ReadShard(path, &columns);
        if (read.ok() &&
            (read->block != entry->info.block ||
             read->epoch != entry->info.epoch ||
             read->region_begin != entry->info.region_begin ||
             read->region_end != entry->info.region_end ||
             read->num_regions != entry->info.num_regions ||
             read->config_hash != entry->info.config_hash ||
             read->rows != entry->info.rows ||
             read->payload_fnv != entry->info.payload_fnv)) {
          read = common::DataLossError(
              "shard '" + path +
              "': intact file disagrees with its manifest record (swapped "
              "or stale shard)");
        }
        if (read.ok()) {
          // ParseShard bounded regions and slots against the shard's own
          // header; the store-type bound needs this world's config.
          const common::Status types =
              ValidateShardTypes(columns, world_.num_types(), path);
          if (!types.ok()) read = types;
        }
        if (read.ok()) {
          info = *read;
          have_rows = true;
          ++rep.shards_read;
        } else {
          if (options_.policy == SpillReadPolicy::kStrict) {
            return read.status().WithContext("reading dataset '" + dir_ +
                                             "'");
          }
          if (read.status().code() != common::StatusCode::kNotFound) {
            QuarantineLoudly(path, read.status().ToString());
          } else {
            O2SR_LOG(WARNING) << "shard '" << path
                              << "' is journaled but missing on disk";
          }
          ++rep.quarantined;
        }
      } else {
        if (options_.policy == SpillReadPolicy::kStrict) {
          return common::DataLossError(
              "dataset '" + dir_ + "': shard (block " +
              std::to_string(block) + ", epoch " + std::to_string(epoch) +
              ") was never journaled — ingestion is incomplete");
        }
        O2SR_LOG(WARNING) << "dataset '" << dir_ << "': cell (block "
                          << block << ", epoch " << epoch
                          << ") missing from the journal";
        ++rep.quarantined;
      }

      if (!have_rows) {
        if (!options_.regenerate) {
          ++rep.skipped;
          O2SR_LOG(WARNING)
              << "skipping lost shard (block " << block << ", epoch "
              << epoch << "); " << rep.skipped << "/"
              << options_.max_quarantined << " of the error budget used";
          if (rep.skipped > options_.max_quarantined) {
            return common::DataLossError(
                "dataset '" + dir_ + "': " + std::to_string(rep.skipped) +
                " shards lost, more than the max_quarantined budget of " +
                std::to_string(options_.max_quarantined));
          }
          continue;
        }
        // Regenerate the lost rows from the seeded simulator; the result
        // is bit-identical to the original publish.
        if (!have_candidates || candidates_block != block) {
          candidates = BuildCandidates(world_, begin, end);
          have_candidates = true;
          candidates_block = block;
        }
        columns.Clear();
        GenerateBlockRows(world_, candidates, epoch, &columns);
        ShardInfo identity;
        identity.block = block;
        identity.epoch = epoch;
        identity.region_begin = begin;
        identity.region_end = end;
        identity.num_regions = num_regions;
        identity.config_hash = manifest_.config_hash;
        info = identity;
        const std::string regen = SerializeShard(columns, &info);
        if (entry != nullptr && info.payload_fnv != entry->info.payload_fnv) {
          return common::DataLossError(
              "dataset '" + dir_ + "': regenerated shard (block " +
              std::to_string(block) + ", epoch " + std::to_string(epoch) +
              ") disagrees with its manifest record — the journal itself "
              "is untrustworthy");
        }
        // Heal the on-disk copy best-effort; the in-memory rows feed the
        // sink either way, so a read pass stays usable on a full disk.
        const common::Status healed = nn::WriteFileAtomic(path, regen);
        if (!healed.ok()) {
          O2SR_LOG(WARNING) << "could not re-publish regenerated shard '"
                            << path << "': " << healed.ToString();
        } else if (entry == nullptr) {
          manifest_.entries.push_back(ManifestEntry{info, filename});
          const common::Status journaled =
              WriteManifest(ManifestPath(dir_), manifest_);
          if (!journaled.ok()) {
            O2SR_LOG(WARNING) << "could not journal regenerated shard: "
                              << journaled.ToString();
          }
        }
        ++rep.regenerated;
        have_rows = true;
      }

      rep.rows += columns.rows();
      O2SR_RETURN_IF_ERROR(sink(columns, info));
    }
  }
  return common::Status::Ok();
}

}  // namespace o2sr::sim
