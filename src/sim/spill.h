#ifndef O2SR_SIM_SPILL_H_
#define O2SR_SIM_SPILL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace o2sr::sim {

// The on-disk shard format of the out-of-core dataset (DESIGN.md §15).
//
// The streaming generator (sim/stream.h) emits one shard per
// (region-block, epoch); each shard is a self-describing columnar file:
//
//   header:  [8B magic "O2SRSHRD"][u32 version][u32 block][u32 epoch]
//            [u32 region_begin][u32 region_end][u32 num_regions]
//            [u64 config_hash][u64 rows][u64 payload_bytes]
//            [u64 FNV of the header bytes]
//   payload: store_region u32[rows] | customer_region u32[rows]
//            | type u16[rows] | slot u8[rows]
//            | delivery_minutes f64[rows] | distance_m f64[rows]
//   footer:  [u64 rows][u64 FNV of the payload][u64 FNV of those 16 bytes]
//
// Every region of the file is covered by one of the three checksums, so a
// single flipped bit or truncated tail anywhere is detected (DATA_LOSS)
// before a row is consumed. The header carries the SimConfigHash of the
// ingesting config so a shard with valid checksums but a foreign origin
// (e.g. a dataset dir generated under different store-type counts) is
// rejected at adoption time rather than fed to aggregation. ParseShard
// additionally bounds-checks every row (store/customer region, slot)
// against the header's own grid — checksums prove the bytes are the ones
// written, the bounds prove they are safe to index with. Shards publish
// atomically (temp + rename) and carry the `dataset.write` /
// `dataset.read` fault sites of the O2SR_FAULTS grammar.
//
// Rows hold exactly what region-level aggregation (features::OrderStats)
// consumes — delivery times are stored as f64 so streamed aggregates are
// bit-identical to in-RAM ones.

inline constexpr char kShardMagic[] = "O2SRSHRD";  // 8 chars + NUL
inline constexpr uint32_t kShardVersion = 2;  // v2: +config_hash in header
inline constexpr size_t kShardHeaderBytes = 8 + 6 * 4 + 4 * 8;
inline constexpr size_t kShardFooterBytes = 3 * 8;

// One order row of the spill format.
struct SpillRow {
  uint32_t store_region = 0;
  uint32_t customer_region = 0;
  uint16_t type = 0;
  uint8_t slot = 0;
  double delivery_minutes = 0.0;
  double distance_m = 0.0;
};

// Column-major shard contents.
struct ShardColumns {
  std::vector<uint32_t> store_region;
  std::vector<uint32_t> customer_region;
  std::vector<uint16_t> type;
  std::vector<uint8_t> slot;
  std::vector<double> delivery_minutes;
  std::vector<double> distance_m;

  size_t rows() const { return slot.size(); }
  void Append(const SpillRow& row);
  void Reserve(size_t n);
  void Clear();
};

// Shard identity + integrity record (also the manifest entry payload).
struct ShardInfo {
  uint32_t block = 0;
  uint32_t epoch = 0;
  uint32_t region_begin = 0;
  uint32_t region_end = 0;
  uint32_t num_regions = 0;
  // SimConfigHash of the config that generated the rows; a shard whose
  // hash disagrees with the reading config is foreign and never adopted.
  uint64_t config_hash = 0;
  uint64_t rows = 0;
  uint64_t payload_fnv = 0;
};

// "shard-b<block>-e<epoch>.o2sp", zero-padded so lexicographic order is
// (block, epoch) order.
std::string ShardFileName(int block, int epoch);

// Serializes header + payload + footer; fills info->rows/payload_fnv.
std::string SerializeShard(const ShardColumns& columns, ShardInfo* info);

// Parses + validates serialized shard bytes (any mismatch is DATA_LOSS
// with the failing check named). `columns` may be nullptr to validate
// only — row bounds are checked either way, straight off the payload
// bytes: store_region/customer_region < num_regions, customer_region
// within [region_begin, region_end), slot < kSlotsPerDay.
common::Status ParseShard(const std::string& bytes, const std::string& origin,
                          ShardInfo* info, ShardColumns* columns);

// World-aware bound the header alone cannot prove: every row's type must
// index the reading config's store-type tables. DATA_LOSS on violation.
common::Status ValidateShardTypes(const ShardColumns& columns, int num_types,
                                  const std::string& origin);

// Full write path: serialize, apply `dataset.write` faults (delay, error,
// bitflip/trunc of the serialized bytes — corruption is *published* so the
// read path must catch it), then atomic temp + rename publish.
common::StatusOr<ShardInfo> WriteShard(const std::string& path,
                                       const ShardColumns& columns,
                                       const ShardInfo& identity);

// Full read path: read file, apply `dataset.read` faults, parse+validate.
common::StatusOr<ShardInfo> ReadShard(const std::string& path,
                                      ShardColumns* columns);

}  // namespace o2sr::sim

#endif  // O2SR_SIM_SPILL_H_
