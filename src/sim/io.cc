#include "sim/io.h"

#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace o2sr::sim {

namespace {

// Splits a CSV line (no quoting — none of our fields contain commas).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

class LineReader {
 public:
  explicit LineReader(std::FILE* file) : file_(file) {}

  bool Next(std::string* line) {
    line->clear();
    char buf[512];
    while (std::fgets(buf, sizeof(buf), file_) != nullptr) {
      line->append(buf);
      if (!line->empty() && line->back() == '\n') {
        line->pop_back();
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
    }
    return !line->empty();
  }

 private:
  std::FILE* file_;
};

}  // namespace

bool WriteOrdersCsv(const std::string& path, const Dataset& data,
                    const geo::CityFrame& frame) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "order_id,store_id,courier_id,store_type,"
               "store_lat,store_lng,customer_lat,customer_lng,"
               "creation_min,acceptance_min,pickup_min,delivery_min,"
               "distance_m\n");
  for (const Order& o : data.orders) {
    const geo::LatLng store = frame.ToLatLng(o.store_location);
    const geo::LatLng customer = frame.ToLatLng(o.customer_location);
    std::fprintf(f,
                 "%d,%d,%d,%d,%.7f,%.7f,%.7f,%.7f,%.4f,%.4f,%.4f,%.4f,%.2f\n",
                 o.order_id, o.store_id, o.courier_id, o.type, store.lat,
                 store.lng, customer.lat, customer.lng, o.creation_min,
                 o.acceptance_min, o.pickup_min, o.delivery_min,
                 o.distance_m);
  }
  std::fclose(f);
  return true;
}

bool ReadOrdersCsv(const std::string& path, const geo::CityFrame& frame,
                   const geo::Grid& grid, std::vector<Order>* orders) {
  O2SR_CHECK(orders != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  LineReader reader(f);
  std::string line;
  bool first = true;
  while (reader.Next(&line)) {
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    O2SR_CHECK_EQ(cells.size(), 13u);
    Order o;
    o.order_id = std::atoi(cells[0].c_str());
    o.store_id = std::atoi(cells[1].c_str());
    o.courier_id = std::atoi(cells[2].c_str());
    o.type = std::atoi(cells[3].c_str());
    o.store_location =
        frame.ToPoint({std::atof(cells[4].c_str()),
                       std::atof(cells[5].c_str())});
    o.customer_location =
        frame.ToPoint({std::atof(cells[6].c_str()),
                       std::atof(cells[7].c_str())});
    o.creation_min = std::atof(cells[8].c_str());
    o.acceptance_min = std::atof(cells[9].c_str());
    o.pickup_min = std::atof(cells[10].c_str());
    o.delivery_min = std::atof(cells[11].c_str());
    o.distance_m = std::atof(cells[12].c_str());
    o.store_region = grid.RegionOf(o.store_location);
    o.customer_region = grid.RegionOf(o.customer_location);
    const int total_min = static_cast<int>(o.creation_min);
    o.day = total_min / (24 * 60);
    o.slot = (total_min % (24 * 60)) / static_cast<int>(kSlotMinutes);
    orders->push_back(o);
  }
  std::fclose(f);
  return true;
}

bool WriteStoresCsv(const std::string& path, const Dataset& data,
                    const geo::CityFrame& frame) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "store_id,type_id,type_name,lat,lng,quality\n");
  for (const Store& s : data.stores) {
    const geo::LatLng ll = frame.ToLatLng(s.location);
    std::fprintf(f, "%d,%d,%s,%.7f,%.7f,%.5f\n", s.id, s.type,
                 data.type_catalog[s.type].name.c_str(), ll.lat, ll.lng,
                 s.quality);
  }
  std::fclose(f);
  return true;
}

bool ReadStoresCsv(const std::string& path, const geo::CityFrame& frame,
                   const geo::Grid& grid, std::vector<Store>* stores) {
  O2SR_CHECK(stores != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  LineReader reader(f);
  std::string line;
  bool first = true;
  while (reader.Next(&line)) {
    if (first) {
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    O2SR_CHECK_EQ(cells.size(), 6u);
    Store s;
    s.id = std::atoi(cells[0].c_str());
    s.type = std::atoi(cells[1].c_str());
    // cells[2] is the human-readable type name; ignored on import.
    s.location = frame.ToPoint(
        {std::atof(cells[3].c_str()), std::atof(cells[4].c_str())});
    s.quality = std::atof(cells[5].c_str());
    s.region = grid.RegionOf(s.location);
    stores->push_back(s);
  }
  std::fclose(f);
  return true;
}

bool WriteTrajectoriesCsv(const std::string& path, const Dataset& data,
                          const geo::CityFrame& frame) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "courier_id,order_id,time_min,lat,lng\n");
  for (const Trajectory& t : data.trajectories) {
    for (const TrajectoryPoint& p : t.points) {
      const geo::LatLng ll = frame.ToLatLng(p.location);
      std::fprintf(f, "%d,%d,%.4f,%.7f,%.7f\n", t.courier_id, t.order_id,
                   p.time_min, ll.lat, ll.lng);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace o2sr::sim
