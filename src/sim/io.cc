#include "sim/io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace o2sr::sim {

namespace {

using common::Status;

// Splits a CSV line (no quoting — none of our fields contain commas).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

class LineReader {
 public:
  explicit LineReader(std::FILE* file) : file_(file) {}

  bool Next(std::string* line) {
    line->clear();
    char buf[512];
    while (std::fgets(buf, sizeof(buf), file_) != nullptr) {
      line->append(buf);
      if (!line->empty() && line->back() == '\n') {
        line->pop_back();
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
    }
    return !line->empty();
  }

 private:
  std::FILE* file_;
};

// Closes the file on every exit path of the readers.
struct FileCloser {
  explicit FileCloser(std::FILE* f) : file(f) {}
  ~FileCloser() {
    if (file != nullptr) std::fclose(file);
  }
  std::FILE* file;
};

// Strict numeric field parsers: the whole cell must convert (atoi/atof
// would silently read "12abc" or "" as a number).
bool ParseIntField(const std::string& cell, int* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(cell.c_str(), &end, 10);
  if (errno != 0 || end != cell.c_str() + cell.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseDoubleField(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end != cell.c_str() + cell.size()) return false;
  *out = v;
  return true;
}

// One row's parse outcome: OK, or INVALID_ARGUMENT naming line and field.
Status RowError(const std::string& path, int line_number,
                const std::string& detail) {
  return common::InvalidArgumentError(path + " line " +
                                      std::to_string(line_number) + ": " +
                                      detail);
}

Status FieldError(const std::string& path, int line_number, const char* field,
                  const std::string& cell) {
  return RowError(path, line_number,
                  std::string("field '") + field + "': not a number: '" +
                      cell + "'");
}

// Parses one data row of the orders file into `o`.
Status ParseOrderRow(const std::string& path, int line_number,
                     const std::vector<std::string>& cells,
                     const geo::CityFrame& frame, const geo::Grid& grid,
                     Order* o) {
  static constexpr const char* kFields[] = {
      "order_id",     "store_id",       "courier_id",   "store_type",
      "store_lat",    "store_lng",      "customer_lat", "customer_lng",
      "creation_min", "acceptance_min", "pickup_min",   "delivery_min",
      "distance_m"};
  constexpr size_t kNumFields = sizeof(kFields) / sizeof(kFields[0]);
  if (cells.size() != kNumFields) {
    return RowError(path, line_number,
                    "expected " + std::to_string(kNumFields) +
                        " fields, got " + std::to_string(cells.size()));
  }
  int ints[4];
  for (int i = 0; i < 4; ++i) {
    if (!ParseIntField(cells[i], &ints[i])) {
      return FieldError(path, line_number, kFields[i], cells[i]);
    }
  }
  double doubles[9];
  for (int i = 0; i < 9; ++i) {
    if (!ParseDoubleField(cells[4 + i], &doubles[i])) {
      return FieldError(path, line_number, kFields[4 + i], cells[4 + i]);
    }
  }
  o->order_id = ints[0];
  o->store_id = ints[1];
  o->courier_id = ints[2];
  o->type = ints[3];
  o->store_location = frame.ToPoint({doubles[0], doubles[1]});
  o->customer_location = frame.ToPoint({doubles[2], doubles[3]});
  o->creation_min = doubles[4];
  o->acceptance_min = doubles[5];
  o->pickup_min = doubles[6];
  o->delivery_min = doubles[7];
  o->distance_m = doubles[8];
  o->store_region = grid.RegionOf(o->store_location);
  o->customer_region = grid.RegionOf(o->customer_location);
  const int total_min = static_cast<int>(o->creation_min);
  o->day = total_min / (24 * 60);
  o->slot = (total_min % (24 * 60)) / static_cast<int>(kSlotMinutes);
  return Status::Ok();
}

// Parses one data row of the stores file into `s`.
Status ParseStoreRow(const std::string& path, int line_number,
                     const std::vector<std::string>& cells,
                     const geo::CityFrame& frame, const geo::Grid& grid,
                     Store* s) {
  if (cells.size() != 6u) {
    return RowError(path, line_number,
                    "expected 6 fields, got " +
                        std::to_string(cells.size()));
  }
  int id, type;
  if (!ParseIntField(cells[0], &id)) {
    return FieldError(path, line_number, "store_id", cells[0]);
  }
  if (!ParseIntField(cells[1], &type)) {
    return FieldError(path, line_number, "type_id", cells[1]);
  }
  // cells[2] is the human-readable type name; ignored on import.
  double lat, lng, quality;
  if (!ParseDoubleField(cells[3], &lat)) {
    return FieldError(path, line_number, "lat", cells[3]);
  }
  if (!ParseDoubleField(cells[4], &lng)) {
    return FieldError(path, line_number, "lng", cells[4]);
  }
  if (!ParseDoubleField(cells[5], &quality)) {
    return FieldError(path, line_number, "quality", cells[5]);
  }
  s->id = id;
  s->type = type;
  s->location = frame.ToPoint({lat, lng});
  s->quality = quality;
  s->region = grid.RegionOf(s->location);
  return Status::Ok();
}

// Shared read driver: iterates data rows, applies `parse_row`, and applies
// the strict-vs-skip policy. `parse_row(line_number, cells)` must append to
// the output container itself on success.
template <typename ParseRowFn>
Status ReadCsvRows(const std::string& path, const CsvReadOptions& options,
                   CsvReadReport* report, ParseRowFn parse_row) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return common::NotFoundError("cannot open '" + path +
                                 "': " + std::strerror(errno));
  }
  FileCloser closer(f);
  LineReader reader(f);
  std::string line;
  int line_number = 0;
  bool first = true;
  while (reader.Next(&line)) {
    ++line_number;
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const Status row = parse_row(line_number, SplitCsvLine(line));
    if (row.ok()) {
      if (report != nullptr) ++report->rows_parsed;
      continue;
    }
    if (options.policy == CsvRowPolicy::kStrict) return row;
    if (report != nullptr) {
      ++report->rows_skipped;
      if (report->first_skipped.empty()) {
        report->first_skipped = row.ToString();
      }
    }
  }
  return Status::Ok();
}

}  // namespace

common::Status WriteOrdersCsv(const std::string& path, const Dataset& data,
                              const geo::CityFrame& frame) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::UnavailableError("cannot open '" + path +
                                    "' for writing: " + std::strerror(errno));
  }
  std::fprintf(f,
               "order_id,store_id,courier_id,store_type,"
               "store_lat,store_lng,customer_lat,customer_lng,"
               "creation_min,acceptance_min,pickup_min,delivery_min,"
               "distance_m\n");
  for (const Order& o : data.orders) {
    const geo::LatLng store = frame.ToLatLng(o.store_location);
    const geo::LatLng customer = frame.ToLatLng(o.customer_location);
    std::fprintf(f,
                 "%d,%d,%d,%d,%.7f,%.7f,%.7f,%.7f,%.4f,%.4f,%.4f,%.4f,%.2f\n",
                 o.order_id, o.store_id, o.courier_id, o.type, store.lat,
                 store.lng, customer.lat, customer.lng, o.creation_min,
                 o.acceptance_min, o.pickup_min, o.delivery_min,
                 o.distance_m);
  }
  const bool write_error = std::ferror(f) != 0;
  std::fclose(f);
  if (write_error) {
    return common::UnavailableError("write error on '" + path + "'");
  }
  return Status::Ok();
}

common::Status ReadOrdersCsv(const std::string& path,
                             const geo::CityFrame& frame,
                             const geo::Grid& grid,
                             std::vector<Order>* orders,
                             const CsvReadOptions& options,
                             CsvReadReport* report) {
  O2SR_CHECK(orders != nullptr);
  orders->clear();
  return ReadCsvRows(
      path, options, report,
      [&](int line_number, const std::vector<std::string>& cells) {
        Order o;
        O2SR_RETURN_IF_ERROR(
            ParseOrderRow(path, line_number, cells, frame, grid, &o));
        orders->push_back(o);
        return Status::Ok();
      });
}

common::Status WriteStoresCsv(const std::string& path, const Dataset& data,
                              const geo::CityFrame& frame) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::UnavailableError("cannot open '" + path +
                                    "' for writing: " + std::strerror(errno));
  }
  std::fprintf(f, "store_id,type_id,type_name,lat,lng,quality\n");
  for (const Store& s : data.stores) {
    const geo::LatLng ll = frame.ToLatLng(s.location);
    std::fprintf(f, "%d,%d,%s,%.7f,%.7f,%.5f\n", s.id, s.type,
                 data.type_catalog[s.type].name.c_str(), ll.lat, ll.lng,
                 s.quality);
  }
  const bool write_error = std::ferror(f) != 0;
  std::fclose(f);
  if (write_error) {
    return common::UnavailableError("write error on '" + path + "'");
  }
  return Status::Ok();
}

common::Status ReadStoresCsv(const std::string& path,
                             const geo::CityFrame& frame,
                             const geo::Grid& grid,
                             std::vector<Store>* stores,
                             const CsvReadOptions& options,
                             CsvReadReport* report) {
  O2SR_CHECK(stores != nullptr);
  stores->clear();
  return ReadCsvRows(
      path, options, report,
      [&](int line_number, const std::vector<std::string>& cells) {
        Store s;
        O2SR_RETURN_IF_ERROR(
            ParseStoreRow(path, line_number, cells, frame, grid, &s));
        stores->push_back(s);
        return Status::Ok();
      });
}

common::Status WriteTrajectoriesCsv(const std::string& path,
                                    const Dataset& data,
                                    const geo::CityFrame& frame) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::UnavailableError("cannot open '" + path +
                                    "' for writing: " + std::strerror(errno));
  }
  std::fprintf(f, "courier_id,order_id,time_min,lat,lng\n");
  for (const Trajectory& t : data.trajectories) {
    for (const TrajectoryPoint& p : t.points) {
      const geo::LatLng ll = frame.ToLatLng(p.location);
      std::fprintf(f, "%d,%d,%.4f,%.7f,%.7f\n", t.courier_id, t.order_id,
                   p.time_min, ll.lat, ll.lng);
    }
  }
  const bool write_error = std::ferror(f) != 0;
  std::fclose(f);
  if (write_error) {
    return common::UnavailableError("write error on '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace o2sr::sim
