#include "sim/world.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/trace.h"

namespace o2sr::sim {

namespace {

double SigmoidAcceptance(double expected_minutes, const SimConfig& cfg) {
  const double z =
      (cfg.tolerance_minutes - expected_minutes) / cfg.tolerance_softness;
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace

// Fraction of the courier fleet on shift per slot. Supply grows at rush
// hours but sub-linearly w.r.t. demand, so the supply-demand ratio dips at
// the two rush periods (the core observation of §II-B1).
const std::vector<double>& SupplySlotProfile() {
  static const std::vector<double> kProfile = {
      0.30, 0.18, 0.15, 0.50, 0.80, 1.00, 0.95, 0.80, 1.00, 0.95, 0.70, 0.45};
  return kProfile;
}

// Congestion (load per courier) of a region at a slot: expected orders
// divided by capacity. ~5 deliveries per courier per 2-hour slot.
double World::congestion(int slot, int region) const {
  constexpr double kOrdersPerCourierSlot = 5.0;
  const double couriers = std::max(courier_alloc[slot][region], 0.05);
  return expected_demand[slot][region] / (kOrdersPerCourierSlot * couriers);
}

// Delivery-scope pressure control (§II-B2): the platform shrinks a store
// region's scope when its couriers are overloaded.
double World::scope_factor(int slot, int region) const {
  const double load = std::max(congestion(slot, region), 0.3);
  return Clamp(1.0 / std::sqrt(load), config.min_scope_factor,
               config.max_scope_factor);
}

World BuildWorld(const SimConfig& config, const WorldOverrides& overrides,
                 Rng& rng) {
  World world;
  world.config = config;
  world.city = [&] {
    O2SR_TRACE_SCOPE("sim.city");
    return GenerateCity(config, rng);
  }();
  const int num_regions = world.city.grid.NumRegions();

  {
    O2SR_TRACE_SCOPE("sim.stores");
    world.type_catalog = BuildTypeCatalog(config.num_store_types, rng);
    // The generator always runs — even when its result is replaced — so the
    // RNG stream downstream of this point is identical with and without
    // overrides: a drifted world differs from the base world only by the
    // overridden content, never by phantom reshuffling.
    world.stores = GenerateStores(config, world.city, world.type_catalog, rng);
    if (overrides.use_stores) {
      world.stores = overrides.stores;
      for (size_t si = 0; si < world.stores.size(); ++si) {
        O2SR_CHECK_EQ(world.stores[si].id, static_cast<int>(si));
      }
    }
  }
  const int num_types = world.num_types();

  world.demand_slot_profile = overrides.demand_slot_profile.empty()
                                  ? DefaultDemandSlotProfile()
                                  : overrides.demand_slot_profile;
  O2SR_CHECK_EQ(world.demand_slot_profile.size(),
                static_cast<size_t>(kSlotsPerDay));
  std::vector<double> popularity_scale = overrides.type_popularity_scale;
  if (popularity_scale.empty()) {
    popularity_scale.assign(num_types, 1.0);
  }
  O2SR_CHECK_EQ(popularity_scale.size(), static_cast<size_t>(num_types));

  // Type-choice weights per (region, slot): global per-period popularity
  // modulated by region demographics (the customer-preference signal of
  // §II-C).
  // Idiosyncratic local taste per (region, type): stable over time, not
  // derivable from POI features — observable only through order history.
  std::vector<std::vector<double>> taste(num_regions,
                                         std::vector<double>(num_types, 1.0));
  if (config.taste_noise_sigma > 0.0) {
    for (int u = 0; u < num_regions; ++u) {
      for (int t = 0; t < num_types; ++t) {
        taste[u][t] = std::exp(rng.Normal(0.0, config.taste_noise_sigma));
      }
    }
  }

  world.type_weights.assign(num_regions,
                            std::vector<std::vector<double>>(kSlotsPerDay));
  for (int u = 0; u < num_regions; ++u) {
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      auto& w = world.type_weights[u][slot];
      w.resize(num_types);
      for (int t = 0; t < num_types; ++t) {
        const StoreType& type = world.type_catalog[t];
        double demo = 0.0;
        for (int c = 0; c < geo::kNumPoiCategories; ++c) {
          demo += type.poi_affinity[c] * world.city.demographics[u][c];
        }
        w[t] = type.popularity * popularity_scale[t] *
               type.slot_activity[slot] * taste[u][t] *
               (1.0 + config.demographic_preference_weight * demo) +
               1e-9;
      }
    }
  }

  // Expected demand per (region, slot), used for courier allocation and
  // congestion. density*num_regions ~ 1 for an average region.
  world.expected_demand.assign(kSlotsPerDay,
                               std::vector<double>(num_regions));
  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    for (int u = 0; u < num_regions; ++u) {
      world.expected_demand[slot][u] = config.peak_orders_per_region_slot *
                                       world.city.density[u] * num_regions *
                                       world.demand_slot_profile[slot];
    }
  }

  // Courier allocation per (slot, region): the fleet fraction on shift is
  // distributed across regions proportionally to expected_demand^0.85
  // (imperfect rebalancing), with per-slot noise drawn once.
  world.courier_alloc.assign(kSlotsPerDay, std::vector<double>(num_regions));
  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    const double active = config.num_couriers * SupplySlotProfile()[slot];
    std::vector<double> w(num_regions);
    double sum = 0.0;
    for (int u = 0; u < num_regions; ++u) {
      w[u] = std::pow(world.expected_demand[slot][u] + 0.05, 0.85) *
             rng.Uniform(0.6, 1.4);
      sum += w[u];
    }
    for (int u = 0; u < num_regions; ++u) {
      world.courier_alloc[slot][u] = active * w[u] / sum;
    }
  }

  // Courier ids homed per region: courier k belongs to the region where it
  // mostly works; ids are dealt out proportionally to allocation at noon.
  world.courier_pool.assign(num_regions, {});
  {
    std::vector<double> w = world.courier_alloc[5];  // noon slot
    for (int k = 0; k < config.num_couriers; ++k) {
      world.courier_pool[rng.Categorical(w)].push_back(k);
    }
  }

  return world;
}

Dataset WorldDataset(const World& world) {
  Dataset data(world.config, world.city);
  data.type_catalog = world.type_catalog;
  data.stores = world.stores;
  data.courier_alloc_slot_region = world.courier_alloc;
  return data;
}

CandidateIndex BuildCandidates(const World& world, int region_begin,
                               int region_end) {
  O2SR_CHECK_LE(0, region_begin);
  O2SR_CHECK_LE(region_begin, region_end);
  O2SR_CHECK_LE(region_end, world.num_regions());
  const double max_scope_m =
      world.config.base_scope_m * world.config.max_scope_factor;
  CandidateIndex index;
  index.region_begin = region_begin;
  index.region_end = region_end;
  index.by_region_type.resize(region_end - region_begin);
  for (int u = region_begin; u < region_end; ++u) {
    auto& by_type = index.by_region_type[u - region_begin];
    by_type.resize(world.num_types());
    const geo::Point uc = world.city.grid.Center(u);
    // Ascending store index, so each per-type list preserves the scan
    // order of the monolithic generator's mixed per-region list.
    for (size_t si = 0; si < world.stores.size(); ++si) {
      const double d = geo::EuclideanMeters(uc, world.stores[si].location);
      if (d <= max_scope_m) {
        by_type[world.stores[si].type].push_back({static_cast<int>(si), d});
      }
    }
  }
  return index;
}

bool SampleOrderAttempt(const World& world, const CandidateIndex& index,
                        int day, int slot, int region, Rng& rng,
                        Order* order) {
  const SimConfig& config = world.config;
  const bool open_data = config.preset == SimulationPreset::kOpenData;
  const double keep_prob = open_data ? 0.45 : 1.0;
  const double dt_noise_sigma = open_data ? 0.30 : 0.15;
  const int u = region;
  O2SR_CHECK_LE(index.region_begin, u);
  O2SR_CHECK_LT(u, index.region_end);

  // 1. Customer picks a cuisine type by regional preference.
  const int type = rng.Categorical(world.type_weights[u][slot]);

  // 2. Candidate stores of the type within the store's current delivery
  //    scope; preference decays with distance and expected delivery time.
  const std::vector<TypedCandidate>& typed =
      index.by_region_type[u - index.region_begin][type];
  double best_weight_sum = 0.0;
  std::vector<double> weights;
  std::vector<int> cand_idx;
  weights.reserve(8);
  cand_idx.reserve(8);
  for (size_t ci = 0; ci < typed.size(); ++ci) {
    const TypedCandidate& cand = typed[ci];
    const Store& store = world.stores[cand.store_index];
    const double scope =
        config.base_scope_m * world.scope_factor(slot, store.region);
    if (cand.distance_m > scope) continue;
    const double w = store.quality * std::exp(-cand.distance_m / 2400.0);
    weights.push_back(w);
    cand_idx.push_back(static_cast<int>(ci));
    best_weight_sum += w;
  }
  if (weights.empty() || best_weight_sum <= 0.0) return false;
  const TypedCandidate& cand = typed[cand_idx[rng.Categorical(weights)]];
  const Store& store = world.stores[cand.store_index];

  // 3. Expected delivery time under current courier capacity at the
  //    store's region.
  const double load = world.congestion(slot, store.region);
  const double prep =
      config.food_prep_minutes * world.type_catalog[type].prep_factor;
  const double pickup_leg_m = rng.Exponential(1.0 / 600.0);
  const double travel_min =
      (cand.distance_m + pickup_leg_m) / config.courier_speed_m_per_min;
  const double queue_min = std::min(
      config.queue_minutes_per_load * std::max(0.0, load - 0.8), 35.0);
  const double expected_dt = prep + travel_min + queue_min;

  // 4. Customer tolerance: long expected waits lose the order (§II-B3) —
  //    this is how capacity causally shapes demand.
  if (!rng.Bernoulli(SigmoidAcceptance(expected_dt, config))) return false;
  if (!rng.Bernoulli(keep_prob)) return false;

  order->order_id = 0;
  order->store_id = store.id;
  order->type = type;
  order->store_region = store.region;
  order->store_location = store.location;
  // Customer location: uniform within the region. The open-data preset
  // reconstructs customer locations from distances and "historical
  // transaction patterns" (paper §IV-A1); we model that reconstruction
  // error as a Gaussian jitter of ~0.75 cells, which misassigns a sizable
  // share of customers to neighboring regions without severing the
  // locality the reconstruction preserves.
  const geo::Point region_center = world.city.grid.Center(u);
  geo::Point cust = {
      Clamp(region_center.x + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
            config.city_width_m - 1.0),
      Clamp(region_center.y + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
            config.city_height_m - 1.0)};
  if (open_data) {
    cust = {Clamp(cust.x + rng.Normal(0.0, 0.75 * config.cell_m), 0.0,
                  config.city_width_m - 1.0),
            Clamp(cust.y + rng.Normal(0.0, 0.75 * config.cell_m), 0.0,
                  config.city_height_m - 1.0)};
  }
  order->customer_location = cust;
  order->customer_region = world.city.grid.RegionOf(cust);
  order->distance_m =
      geo::EuclideanMeters(store.location, order->customer_location);
  order->day = day;
  order->slot = slot;

  // 5. Timestamps. The realized delivery time is the expected time with
  //    lognormal noise; queueing happens while waiting for a courier
  //    (between acceptance and pickup).
  const double noise = std::exp(rng.Normal(0.0, dt_noise_sigma));
  const double actual_dt = expected_dt * noise;
  order->creation_min = (day * 24.0 * 60.0) + slot * kSlotMinutes +
                        rng.Uniform(0.0, kSlotMinutes);
  order->acceptance_min = order->creation_min + rng.Uniform(0.3, 2.0);
  const double travel_share = travel_min / std::max(expected_dt, 1.0);
  order->delivery_min = order->creation_min + actual_dt;
  order->pickup_min = order->delivery_min - actual_dt * travel_share * 0.85;
  if (order->pickup_min < order->acceptance_min) {
    order->pickup_min = order->acceptance_min + 0.5;
  }
  if (order->delivery_min <= order->pickup_min) {
    order->delivery_min = order->pickup_min + 1.0;
  }

  // 6. Courier assignment from the store region's pool (fallback: any
  //    courier).
  const auto& pool = world.courier_pool[store.region];
  order->courier_id =
      pool.empty()
          ? rng.UniformInt(0, config.num_couriers - 1)
          : pool[rng.UniformInt(0, static_cast<int>(pool.size()) - 1)];
  return true;
}

SimConfig PaperScaleConfig() {
  SimConfig cfg;
  cfg.city_width_m = 32000.0;  // 64x64 grid -> 4096 regions
  cfg.city_height_m = 32000.0;
  cfg.num_store_types = 122;
  cfg.num_stores = 39465;
  cfg.num_couriers = 30000;
  cfg.num_days = 30;
  // Tuned so a month clears the paper's 23.6M orders after tolerance
  // losses (bench_scale asserts the floor).
  cfg.peak_orders_per_region_slot = 18.0;
  cfg.seed = 2022;
  return cfg;
}

}  // namespace o2sr::sim
