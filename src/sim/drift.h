#ifndef O2SR_SIM_DRIFT_H_
#define O2SR_SIM_DRIFT_H_

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/dataset.h"

namespace o2sr::sim {

// Drifting-city scenario: the world of a SimConfig evolved over discrete
// drift epochs, the data side of the continual-retraining pipeline
// (src/pipeline, DESIGN.md §11). Each epoch:
//
//   * stores close (Bernoulli per store) and new ones open (placed with the
//     same market-equilibrium weighting as the base world);
//   * cuisine popularity takes a multiplicative log-normal random walk, so
//     customer type preferences wander away from what a stale model learned;
//   * the demand slot profile shifts circularly by a fractional number of
//     slots, moving the rush hours.
//
// Everything is a pure function of (base config, drift config, epoch):
// epoch 0 IS the base world bit-for-bit, and regenerating epoch k on
// another machine — or after a crash — yields the identical dataset. That
// determinism is what lets the pipeline's kill-and-resume test demand
// bit-identical snapshots.

struct DriftConfig {
  // Per-epoch probability that an existing store closes.
  double store_close_rate = 0.05;
  // New stores per epoch, as a fraction of the base store count.
  double store_open_rate = 0.07;
  // Std-dev of the per-type log-normal popularity step.
  double popularity_walk_sigma = 0.30;
  // Std-dev (in slots) of the per-epoch circular demand-profile shift.
  double rush_shift_slots = 0.35;
  // Seed of the drift process; independent of SimConfig::seed so the same
  // base world can drift along different futures.
  uint64_t seed = 17;
};

// What a drift evolution actually did (cumulative up to the epoch).
struct DriftStats {
  int epoch = 0;
  int stores_closed = 0;
  int stores_opened = 0;
  int num_stores = 0;           // store count of the drifted world
  double demand_shift_slots = 0.0;  // net circular shift applied
  std::vector<double> type_popularity_scale;  // current walk position
};

// Circularly shifts a slot profile by a fractional `shift` (in slots,
// positive = later in the day) with linear interpolation. Exposed for
// tests.
std::vector<double> ShiftSlotProfile(const std::vector<double>& profile,
                                     double shift);

// The world `epoch` drift steps after `base`. Epoch 0 returns
// GenerateDataset(base) exactly; epoch k replays k evolution steps (each
// deterministic under drift.seed) and regenerates the dataset with the
// evolved store set, popularity walk and shifted demand profile. `stats`
// may be null.
Dataset GenerateDriftedDataset(const SimConfig& base,
                               const DriftConfig& drift, int epoch,
                               DriftStats* stats = nullptr);

}  // namespace o2sr::sim

#endif  // O2SR_SIM_DRIFT_H_
