#include "sim/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/world.h"

namespace o2sr::sim {

// City-wide demand activity per 2-hour slot (mean ~1): order placement
// peaks at the noon rush (10-14) and evening rush (16-20), as in Fig. 1.
const std::vector<double>& DefaultDemandSlotProfile() {
  static const std::vector<double> kProfile = {
      0.25, 0.12, 0.10, 0.60, 1.20, 2.40, 2.20, 1.10, 2.10, 1.90, 0.90, 0.55};
  return kProfile;
}

std::vector<Store> GenerateStores(const SimConfig& config,
                                  const CityModel& city,
                                  const std::vector<StoreType>& catalog,
                                  Rng& rng) {
  const int num_regions = city.grid.NumRegions();
  // Stores open where their type sells: per-type region weights combine the
  // population density with the type's demographic affinity. This market-
  // equilibrium placement is what makes neighborhood customer preferences
  // strongly predictive of order counts (Table II of the paper).
  std::vector<std::vector<double>> region_weights_per_type(catalog.size());
  for (size_t t = 0; t < catalog.size(); ++t) {
    auto& w = region_weights_per_type[t];
    w.resize(num_regions);
    for (int r = 0; r < num_regions; ++r) {
      double affinity = 0.0;
      for (int c = 0; c < geo::kNumPoiCategories; ++c) {
        affinity += catalog[t].poi_affinity[c] * city.demographics[r][c];
      }
      w[r] = city.density[r] * std::pow(0.25 + affinity, 1.5) + 1e-12;
    }
  }
  std::vector<double> type_weights(catalog.size());
  for (size_t t = 0; t < catalog.size(); ++t) {
    type_weights[t] = catalog[t].popularity;
  }
  std::vector<Store> stores;
  stores.reserve(config.num_stores);
  for (int i = 0; i < config.num_stores; ++i) {
    Store store;
    store.id = i;
    store.type = rng.Categorical(type_weights);
    store.region = rng.Categorical(region_weights_per_type[store.type]);
    const int region = store.region;
    const geo::Point base = city.grid.Center(region);
    store.location = {
        Clamp(base.x + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
              config.city_width_m - 1.0),
        Clamp(base.y + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
              config.city_height_m - 1.0)};
    store.quality = std::exp(rng.Normal(0.0, 0.35));
    stores.push_back(store);
  }
  return stores;
}

Dataset GenerateDataset(const SimConfig& config) {
  return GenerateDataset(config, WorldOverrides());
}

Dataset GenerateDataset(const SimConfig& config,
                        const WorldOverrides& overrides) {
  O2SR_TRACE_SCOPE("sim.generate_dataset");
  Rng rng(config.seed);
  // The static world (city, stores, preference/courier tables) and the
  // per-attempt order sampler live in sim/world.h, shared with the
  // streaming out-of-core generator (sim/stream.h). BuildWorld and
  // SampleOrderAttempt consume `rng` in exactly the order the monolithic
  // generator did, so this function is bit-identical to its pre-split
  // self.
  const World world = BuildWorld(config, overrides, rng);
  Dataset data = WorldDataset(world);
  const int num_regions = data.num_regions();
  const int num_types = data.num_types();
  const CandidateIndex candidates = BuildCandidates(world, 0, num_regions);

  // ---- Order generation ---------------------------------------------------

  // Covers the day/slot demand loop and the courier dispatch inside it.
  O2SR_TRACE_SCOPE("sim.orders");
  data.scope_factor_per_period.assign(kNumPeriods, 0.0);
  std::vector<int> scope_samples(kNumPeriods, 0);

  int next_order_id = 0;
  for (int day = 0; day < config.num_days; ++day) {
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      const Period period = PeriodOfSlot(slot);
      SlotStats stats;
      stats.day = day;
      stats.slot = slot;
      stats.active_couriers = std::max(
          1, rng.Poisson(config.num_couriers * SupplySlotProfile()[slot]));
      double delivery_minutes_sum = 0.0;

      for (int u = 0; u < num_regions; ++u) {
        const int attempts = rng.Poisson(world.expected_demand[slot][u] *
                                         rng.Uniform(0.85, 1.15));
        if (attempts == 0) continue;
        for (int k = 0; k < attempts; ++k) {
          Order order;
          if (!SampleOrderAttempt(world, candidates, day, slot, u, rng,
                                  &order)) {
            continue;
          }
          order.order_id = next_order_id++;
          delivery_minutes_sum += order.delivery_minutes();
          ++stats.orders;
          data.orders.push_back(order);

          if (config.generate_trajectories) {
            const Order& o = data.orders.back();
            Trajectory traj;
            traj.courier_id = o.courier_id;
            traj.order_id = o.order_id;
            const double leg_min = o.delivery_min - o.pickup_min;
            const int samples =
                std::max(2, static_cast<int>(leg_min * 60.0 / 20.0));
            for (int sidx = 0; sidx < samples; ++sidx) {
              const double f = sidx / static_cast<double>(samples - 1);
              TrajectoryPoint tp;
              tp.time_min = o.pickup_min + f * leg_min;
              tp.location = {
                  o.store_location.x +
                      f * (o.customer_location.x - o.store_location.x),
                  o.store_location.y +
                      f * (o.customer_location.y - o.store_location.y)};
              traj.points.push_back(tp);
            }
            data.trajectories.push_back(std::move(traj));
          }
        }
        // Record the applied scope factor for this region/period (averaged
        // later).
        data.scope_factor_per_period[static_cast<int>(period)] +=
            world.scope_factor(slot, u);
        ++scope_samples[static_cast<int>(period)];
      }
      stats.mean_delivery_minutes =
          stats.orders > 0 ? delivery_minutes_sum / stats.orders : 0.0;
      data.slot_stats.push_back(stats);
    }
  }
  for (int p = 0; p < kNumPeriods; ++p) {
    if (scope_samples[p] > 0) {
      data.scope_factor_per_period[p] /= scope_samples[p];
    }
  }
  static obs::Counter* orders_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.orders_generated");
  orders_counter->Increment(data.orders.size());
  O2SR_LOG(DEBUG) << "simulated " << data.orders.size() << " orders across "
                  << num_regions << " regions (" << data.stores.size()
                  << " stores, " << num_types << " types)";
  return data;
}

}  // namespace o2sr::sim
