#include "sim/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace o2sr::sim {

namespace {

// Fraction of the courier fleet on shift per slot. Supply grows at rush
// hours but sub-linearly w.r.t. demand, so the supply-demand ratio dips at
// the two rush periods (the core observation of §II-B1).
const std::vector<double>& SupplySlotProfile() {
  static const std::vector<double> kProfile = {
      0.30, 0.18, 0.15, 0.50, 0.80, 1.00, 0.95, 0.80, 1.00, 0.95, 0.70, 0.45};
  return kProfile;
}

double SigmoidAcceptance(double expected_minutes, const SimConfig& cfg) {
  const double z =
      (cfg.tolerance_minutes - expected_minutes) / cfg.tolerance_softness;
  return 1.0 / (1.0 + std::exp(-z));
}

struct CandidateStore {
  int store_index = 0;
  double distance_m = 0.0;
};

}  // namespace

// City-wide demand activity per 2-hour slot (mean ~1): order placement
// peaks at the noon rush (10-14) and evening rush (16-20), as in Fig. 1.
const std::vector<double>& DefaultDemandSlotProfile() {
  static const std::vector<double> kProfile = {
      0.25, 0.12, 0.10, 0.60, 1.20, 2.40, 2.20, 1.10, 2.10, 1.90, 0.90, 0.55};
  return kProfile;
}

std::vector<Store> GenerateStores(const SimConfig& config,
                                  const CityModel& city,
                                  const std::vector<StoreType>& catalog,
                                  Rng& rng) {
  const int num_regions = city.grid.NumRegions();
  // Stores open where their type sells: per-type region weights combine the
  // population density with the type's demographic affinity. This market-
  // equilibrium placement is what makes neighborhood customer preferences
  // strongly predictive of order counts (Table II of the paper).
  std::vector<std::vector<double>> region_weights_per_type(catalog.size());
  for (size_t t = 0; t < catalog.size(); ++t) {
    auto& w = region_weights_per_type[t];
    w.resize(num_regions);
    for (int r = 0; r < num_regions; ++r) {
      double affinity = 0.0;
      for (int c = 0; c < geo::kNumPoiCategories; ++c) {
        affinity += catalog[t].poi_affinity[c] * city.demographics[r][c];
      }
      w[r] = city.density[r] * std::pow(0.25 + affinity, 1.5) + 1e-12;
    }
  }
  std::vector<double> type_weights(catalog.size());
  for (size_t t = 0; t < catalog.size(); ++t) {
    type_weights[t] = catalog[t].popularity;
  }
  std::vector<Store> stores;
  stores.reserve(config.num_stores);
  for (int i = 0; i < config.num_stores; ++i) {
    Store store;
    store.id = i;
    store.type = rng.Categorical(type_weights);
    store.region = rng.Categorical(region_weights_per_type[store.type]);
    const int region = store.region;
    const geo::Point base = city.grid.Center(region);
    store.location = {
        Clamp(base.x + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
              config.city_width_m - 1.0),
        Clamp(base.y + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
              config.city_height_m - 1.0)};
    store.quality = std::exp(rng.Normal(0.0, 0.35));
    stores.push_back(store);
  }
  return stores;
}

Dataset GenerateDataset(const SimConfig& config) {
  return GenerateDataset(config, WorldOverrides());
}

Dataset GenerateDataset(const SimConfig& config,
                        const WorldOverrides& overrides) {
  O2SR_TRACE_SCOPE("sim.generate_dataset");
  Rng rng(config.seed);
  CityModel city = [&] {
    O2SR_TRACE_SCOPE("sim.city");
    return GenerateCity(config, rng);
  }();
  Dataset data(config, std::move(city));
  const geo::Grid& grid = data.city.grid;
  const int num_regions = grid.NumRegions();

  {
    O2SR_TRACE_SCOPE("sim.stores");
    data.type_catalog = BuildTypeCatalog(config.num_store_types, rng);
    // The generator always runs — even when its result is replaced — so the
    // RNG stream downstream of this point is identical with and without
    // overrides: a drifted world differs from the base world only by the
    // overridden content, never by phantom reshuffling.
    data.stores = GenerateStores(config, data.city, data.type_catalog, rng);
    if (overrides.use_stores) {
      data.stores = overrides.stores;
      for (size_t si = 0; si < data.stores.size(); ++si) {
        O2SR_CHECK_EQ(data.stores[si].id, static_cast<int>(si));
      }
    }
  }
  const int num_types = data.num_types();

  const std::vector<double>& demand_slot_profile =
      overrides.demand_slot_profile.empty() ? DefaultDemandSlotProfile()
                                            : overrides.demand_slot_profile;
  O2SR_CHECK_EQ(demand_slot_profile.size(),
                static_cast<size_t>(kSlotsPerDay));
  std::vector<double> popularity_scale = overrides.type_popularity_scale;
  if (popularity_scale.empty()) {
    popularity_scale.assign(num_types, 1.0);
  }
  O2SR_CHECK_EQ(popularity_scale.size(), static_cast<size_t>(num_types));

  // ---- Static indexes -----------------------------------------------------

  // Candidate stores per customer region, within the maximum possible scope.
  const double max_scope_m = config.base_scope_m * config.max_scope_factor;
  std::vector<std::vector<CandidateStore>> candidates(num_regions);
  for (int u = 0; u < num_regions; ++u) {
    const geo::Point uc = grid.Center(u);
    for (size_t si = 0; si < data.stores.size(); ++si) {
      const double d = geo::EuclideanMeters(uc, data.stores[si].location);
      if (d <= max_scope_m) {
        candidates[u].push_back({static_cast<int>(si), d});
      }
    }
  }

  // Type-choice weights per (region, slot): global per-period popularity
  // modulated by region demographics (the customer-preference signal of
  // §II-C).
  // Idiosyncratic local taste per (region, type): stable over time, not
  // derivable from POI features — observable only through order history.
  std::vector<std::vector<double>> taste(num_regions,
                                         std::vector<double>(num_types, 1.0));
  if (config.taste_noise_sigma > 0.0) {
    for (int u = 0; u < num_regions; ++u) {
      for (int t = 0; t < num_types; ++t) {
        taste[u][t] = std::exp(rng.Normal(0.0, config.taste_noise_sigma));
      }
    }
  }

  std::vector<std::vector<std::vector<double>>> type_weights(
      num_regions, std::vector<std::vector<double>>(kSlotsPerDay));
  for (int u = 0; u < num_regions; ++u) {
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      auto& w = type_weights[u][slot];
      w.resize(num_types);
      for (int t = 0; t < num_types; ++t) {
        const StoreType& type = data.type_catalog[t];
        double demo = 0.0;
        for (int c = 0; c < geo::kNumPoiCategories; ++c) {
          demo += type.poi_affinity[c] * data.city.demographics[u][c];
        }
        w[t] = type.popularity * popularity_scale[t] *
               type.slot_activity[slot] * taste[u][t] *
               (1.0 + config.demographic_preference_weight * demo) +
               1e-9;
      }
    }
  }

  // Expected demand per (region, slot), used for courier allocation and
  // congestion. density*num_regions ~ 1 for an average region.
  std::vector<std::vector<double>> expected_demand(
      kSlotsPerDay, std::vector<double>(num_regions));
  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    for (int u = 0; u < num_regions; ++u) {
      expected_demand[slot][u] = config.peak_orders_per_region_slot *
                                 data.city.density[u] * num_regions *
                                 demand_slot_profile[slot];
    }
  }

  // Courier allocation per (slot, region): the fleet fraction on shift is
  // distributed across regions proportionally to expected_demand^0.85
  // (imperfect rebalancing), with per-slot noise drawn once.
  std::vector<std::vector<double>> courier_alloc(
      kSlotsPerDay, std::vector<double>(num_regions));
  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    const double active = config.num_couriers * SupplySlotProfile()[slot];
    std::vector<double> w(num_regions);
    double sum = 0.0;
    for (int u = 0; u < num_regions; ++u) {
      w[u] = std::pow(expected_demand[slot][u] + 0.05, 0.85) *
             rng.Uniform(0.6, 1.4);
      sum += w[u];
    }
    for (int u = 0; u < num_regions; ++u) {
      courier_alloc[slot][u] = active * w[u] / sum;
    }
  }

  data.courier_alloc_slot_region = courier_alloc;

  // Courier ids homed per region: courier k belongs to the region where it
  // mostly works; ids are dealt out proportionally to allocation at noon.
  std::vector<std::vector<int>> courier_pool(num_regions);
  {
    std::vector<double> w = courier_alloc[5];  // noon slot
    for (int k = 0; k < config.num_couriers; ++k) {
      courier_pool[rng.Categorical(w)].push_back(k);
    }
  }

  // Congestion (load per courier) of a region at a slot: expected orders
  // divided by capacity. ~8 deliveries per courier per 2-hour slot.
  constexpr double kOrdersPerCourierSlot = 5.0;
  auto congestion = [&](int slot, int region) {
    const double couriers = std::max(courier_alloc[slot][region], 0.05);
    return expected_demand[slot][region] / (kOrdersPerCourierSlot * couriers);
  };

  // Delivery-scope pressure control (§II-B2): the platform shrinks a store
  // region's scope when its couriers are overloaded.
  auto scope_factor = [&](int slot, int region) {
    const double load = std::max(congestion(slot, region), 0.3);
    return Clamp(1.0 / std::sqrt(load), config.min_scope_factor,
                 config.max_scope_factor);
  };

  // ---- Order generation ---------------------------------------------------

  // Covers the day/slot demand loop and the courier dispatch inside it.
  O2SR_TRACE_SCOPE("sim.orders");
  const bool open_data = config.preset == SimulationPreset::kOpenData;
  const double keep_prob = open_data ? 0.45 : 1.0;
  const double dt_noise_sigma = open_data ? 0.30 : 0.15;

  data.scope_factor_per_period.assign(kNumPeriods, 0.0);
  std::vector<int> scope_samples(kNumPeriods, 0);

  int next_order_id = 0;
  for (int day = 0; day < config.num_days; ++day) {
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      const Period period = PeriodOfSlot(slot);
      SlotStats stats;
      stats.day = day;
      stats.slot = slot;
      stats.active_couriers = std::max(
          1, rng.Poisson(config.num_couriers * SupplySlotProfile()[slot]));
      double delivery_minutes_sum = 0.0;

      for (int u = 0; u < num_regions; ++u) {
        const int attempts =
            rng.Poisson(expected_demand[slot][u] * rng.Uniform(0.85, 1.15));
        if (attempts == 0) continue;
        const geo::Point region_center = grid.Center(u);
        for (int k = 0; k < attempts; ++k) {
          // 1. Customer picks a cuisine type by regional preference.
          const int type = rng.Categorical(type_weights[u][slot]);

          // 2. Candidate stores of the type within the store's current
          //    delivery scope; preference decays with distance and expected
          //    delivery time.
          double best_weight_sum = 0.0;
          std::vector<double> weights;
          std::vector<int> cand_idx;
          weights.reserve(8);
          cand_idx.reserve(8);
          for (size_t ci = 0; ci < candidates[u].size(); ++ci) {
            const CandidateStore& cand = candidates[u][ci];
            const Store& store = data.stores[cand.store_index];
            if (store.type != type) continue;
            const double scope =
                config.base_scope_m * scope_factor(slot, store.region);
            if (cand.distance_m > scope) continue;
            const double w =
                store.quality * std::exp(-cand.distance_m / 2400.0);
            weights.push_back(w);
            cand_idx.push_back(static_cast<int>(ci));
            best_weight_sum += w;
          }
          if (weights.empty() || best_weight_sum <= 0.0) continue;
          const int chosen = cand_idx[rng.Categorical(weights)];
          const CandidateStore& cand = candidates[u][chosen];
          const Store& store = data.stores[cand.store_index];

          // 3. Expected delivery time under current courier capacity at the
          //    store's region.
          const double load = congestion(slot, store.region);
          const double prep = config.food_prep_minutes *
                              data.type_catalog[type].prep_factor;
          const double pickup_leg_m = rng.Exponential(1.0 / 600.0);
          const double travel_min =
              (cand.distance_m + pickup_leg_m) / config.courier_speed_m_per_min;
          const double queue_min = std::min(
              config.queue_minutes_per_load * std::max(0.0, load - 0.8),
              35.0);
          const double expected_dt = prep + travel_min + queue_min;

          // 4. Customer tolerance: long expected waits lose the order
          //    (§II-B3) — this is how capacity causally shapes demand.
          if (!rng.Bernoulli(SigmoidAcceptance(expected_dt, config))) {
            continue;
          }
          if (!rng.Bernoulli(keep_prob)) continue;

          Order order;
          order.order_id = next_order_id++;
          order.store_id = store.id;
          order.type = type;
          order.store_region = store.region;
          order.store_location = store.location;
          // Customer location: uniform within the region. The open-data
          // preset reconstructs customer locations from distances and
          // "historical transaction patterns" (paper §IV-A1); we model that
          // reconstruction error as a Gaussian jitter of ~0.75 cells, which
          // misassigns a sizable share of customers to neighboring regions
          // without severing the locality the reconstruction preserves.
          geo::Point cust = {
              Clamp(region_center.x + rng.Uniform(-0.5, 0.5) * config.cell_m,
                    0.0, config.city_width_m - 1.0),
              Clamp(region_center.y + rng.Uniform(-0.5, 0.5) * config.cell_m,
                    0.0, config.city_height_m - 1.0)};
          if (open_data) {
            cust = {Clamp(cust.x + rng.Normal(0.0, 0.75 * config.cell_m),
                          0.0, config.city_width_m - 1.0),
                    Clamp(cust.y + rng.Normal(0.0, 0.75 * config.cell_m),
                          0.0, config.city_height_m - 1.0)};
          }
          order.customer_location = cust;
          order.customer_region = grid.RegionOf(cust);
          order.distance_m =
              geo::EuclideanMeters(store.location, order.customer_location);
          order.day = day;
          order.slot = slot;

          // 5. Timestamps. The realized delivery time is the expected time
          //    with lognormal noise; queueing happens while waiting for a
          //    courier (between acceptance and pickup).
          const double noise = std::exp(rng.Normal(0.0, dt_noise_sigma));
          const double actual_dt = expected_dt * noise;
          order.creation_min = (day * 24.0 * 60.0) + slot * kSlotMinutes +
                               rng.Uniform(0.0, kSlotMinutes);
          order.acceptance_min = order.creation_min + rng.Uniform(0.3, 2.0);
          const double travel_share = travel_min / std::max(expected_dt, 1.0);
          order.delivery_min = order.creation_min + actual_dt;
          order.pickup_min =
              order.delivery_min - actual_dt * travel_share * 0.85;
          if (order.pickup_min < order.acceptance_min) {
            order.pickup_min = order.acceptance_min + 0.5;
          }
          if (order.delivery_min <= order.pickup_min) {
            order.delivery_min = order.pickup_min + 1.0;
          }

          // 6. Courier assignment from the store region's pool (fallback:
          //    any courier).
          const auto& pool = courier_pool[store.region];
          order.courier_id =
              pool.empty()
                  ? rng.UniformInt(0, config.num_couriers - 1)
                  : pool[rng.UniformInt(0, static_cast<int>(pool.size()) - 1)];

          delivery_minutes_sum += order.delivery_minutes();
          ++stats.orders;
          data.orders.push_back(order);

          if (config.generate_trajectories) {
            Trajectory traj;
            traj.courier_id = order.courier_id;
            traj.order_id = order.order_id;
            const double leg_min = order.delivery_min - order.pickup_min;
            const int samples =
                std::max(2, static_cast<int>(leg_min * 60.0 / 20.0));
            for (int sidx = 0; sidx < samples; ++sidx) {
              const double f = sidx / static_cast<double>(samples - 1);
              TrajectoryPoint tp;
              tp.time_min = order.pickup_min + f * leg_min;
              tp.location = {
                  store.location.x +
                      f * (order.customer_location.x - store.location.x),
                  store.location.y +
                      f * (order.customer_location.y - store.location.y)};
              traj.points.push_back(tp);
            }
            data.trajectories.push_back(std::move(traj));
          }
        }
        // Record the applied scope factor for this region/period (averaged
        // later).
        data.scope_factor_per_period[static_cast<int>(period)] +=
            scope_factor(slot, u);
        ++scope_samples[static_cast<int>(period)];
      }
      stats.mean_delivery_minutes =
          stats.orders > 0 ? delivery_minutes_sum / stats.orders : 0.0;
      data.slot_stats.push_back(stats);
    }
  }
  for (int p = 0; p < kNumPeriods; ++p) {
    if (scope_samples[p] > 0) {
      data.scope_factor_per_period[p] /= scope_samples[p];
    }
  }
  static obs::Counter* orders_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.orders_generated");
  orders_counter->Increment(data.orders.size());
  O2SR_LOG(DEBUG) << "simulated " << data.orders.size() << " orders across "
                  << num_regions << " regions (" << data.stores.size()
                  << " stores, " << num_types << " types)";
  return data;
}

}  // namespace o2sr::sim
