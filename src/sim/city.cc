#include "sim/city.h"

#include <cmath>

#include "common/math_util.h"

namespace o2sr::sim {

namespace {

// Mixing weight of downtown-vs-suburb POI profiles by normalized distance
// from the center.
double DowntownWeight(double center_dist_norm) {
  return std::exp(-2.5 * center_dist_norm * center_dist_norm);
}

}  // namespace

CityModel GenerateCity(const SimConfig& config, Rng& rng) {
  geo::Grid grid(config.city_width_m, config.city_height_m, config.cell_m);
  CityModel city(grid);
  const int num_regions = grid.NumRegions();

  // Population density: a dominant downtown core, one or two secondary
  // centers, plus multiplicative noise. Mirrors the monocentric-with-
  // subcenters structure of large Chinese cities.
  const int num_subcenters = 2;
  std::vector<geo::Point> subcenters;
  for (int i = 0; i < num_subcenters; ++i) {
    subcenters.push_back({rng.Uniform(0.2, 0.8) * config.city_width_m,
                          rng.Uniform(0.2, 0.8) * config.city_height_m});
  }
  city.density.resize(num_regions);
  double density_sum = 0.0;
  for (int r = 0; r < num_regions; ++r) {
    const double d0 = grid.CenterDistanceNorm(r);
    double value = std::exp(-3.0 * d0 * d0);
    const geo::Point c = grid.Center(r);
    for (const geo::Point& sc : subcenters) {
      const double d =
          geo::EuclideanMeters(c, sc) /
          (0.5 * std::min(config.city_width_m, config.city_height_m));
      value += 0.45 * std::exp(-6.0 * d * d);
    }
    value *= rng.Uniform(0.7, 1.3);
    city.density[r] = value;
    density_sum += value;
  }
  for (double& v : city.density) v /= density_sum;

  // POIs: expected total scales with the number of regions; per-region count
  // follows density, and category mix interpolates between a downtown and a
  // suburban profile.
  //
  // Category order matches geo::PoiCategory: residential, office, school,
  // hospital, mall, transit, park, hotel, restaurant, entertainment,
  // factory, government.
  const std::vector<double> downtown_mix = {0.14, 0.24, 0.05, 0.04, 0.12, 0.10,
                                            0.03, 0.07, 0.10, 0.08, 0.01, 0.02};
  const std::vector<double> suburb_mix = {0.34, 0.05, 0.09, 0.03, 0.04, 0.05,
                                          0.09, 0.02, 0.06, 0.03, 0.16, 0.04};
  const double pois_per_region = 18.0;
  for (int r = 0; r < num_regions; ++r) {
    const double w = DowntownWeight(grid.CenterDistanceNorm(r));
    // density[r] * num_regions is ~1 for an average region.
    const double relative_density = city.density[r] * num_regions;
    const double expected = pois_per_region * (0.3 + 0.7 * relative_density);
    const int count = rng.Poisson(expected * rng.Uniform(0.8, 1.2));
    std::vector<double> mix(geo::kNumPoiCategories);
    for (int c = 0; c < geo::kNumPoiCategories; ++c) {
      mix[c] = w * downtown_mix[c] + (1.0 - w) * suburb_mix[c];
    }
    const geo::Point base = grid.Center(r);
    for (int i = 0; i < count; ++i) {
      geo::Poi poi;
      poi.category = static_cast<geo::PoiCategory>(rng.Categorical(mix));
      poi.location = {
          Clamp(base.x + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
                config.city_width_m - 1.0),
          Clamp(base.y + rng.Uniform(-0.5, 0.5) * config.cell_m, 0.0,
                config.city_height_m - 1.0)};
      city.pois.push_back(poi);
    }
  }

  // Road network: intersections on a ~1 km lattice with jitter, denser
  // downtown; roads connect lattice neighbors when both endpoints exist.
  const double lattice_m = 1000.0;
  const int nx = static_cast<int>(config.city_width_m / lattice_m) + 1;
  const int ny = static_cast<int>(config.city_height_m / lattice_m) + 1;
  std::vector<int> node_index(static_cast<size_t>(nx) * ny, -1);
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      geo::Point p = {Clamp(ix * lattice_m + rng.Uniform(-150.0, 150.0), 0.0,
                            config.city_width_m - 1.0),
                      Clamp(iy * lattice_m + rng.Uniform(-150.0, 150.0), 0.0,
                            config.city_height_m - 1.0)};
      const double keep =
          0.45 + 0.55 * DowntownWeight(grid.CenterDistanceNorm(
                            grid.RegionOf(p)));
      if (!rng.Bernoulli(keep)) continue;
      node_index[static_cast<size_t>(iy) * nx + ix] =
          static_cast<int>(city.roads.intersections.size());
      city.roads.intersections.push_back(p);
    }
  }
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const int a = node_index[static_cast<size_t>(iy) * nx + ix];
      if (a < 0) continue;
      if (ix + 1 < nx) {
        const int b = node_index[static_cast<size_t>(iy) * nx + ix + 1];
        if (b >= 0) city.roads.roads.emplace_back(a, b);
      }
      if (iy + 1 < ny) {
        const int b = node_index[static_cast<size_t>(iy + 1) * nx + ix];
        if (b >= 0) city.roads.roads.emplace_back(a, b);
      }
    }
  }

  // Region demographics: normalized POI composition.
  const auto poi_counts = geo::CountPoisPerRegion(city.pois, grid);
  city.demographics.assign(num_regions,
                           std::vector<double>(geo::kNumPoiCategories, 0.0));
  for (int r = 0; r < num_regions; ++r) {
    double total = 0.0;
    for (double c : poi_counts[r]) total += c;
    if (total <= 0.0) continue;
    for (int c = 0; c < geo::kNumPoiCategories; ++c) {
      city.demographics[r][c] = poi_counts[r][c] / total;
    }
  }
  return city;
}

}  // namespace o2sr::sim
