#ifndef O2SR_SIM_CITY_H_
#define O2SR_SIM_CITY_H_

#include <vector>

#include "common/rng.h"
#include "geo/grid.h"
#include "geo/poi.h"
#include "geo/road_network.h"
#include "sim/config.h"

namespace o2sr::sim {

// The static urban environment: region grid, population density gradient,
// POIs and the road network. Substitutes for the paper's Gaode POI data and
// OpenStreetMap extract.
struct CityModel {
  geo::Grid grid;
  // Relative residential/working population weight per region (sums to 1).
  std::vector<double> density;
  std::vector<geo::Poi> pois;
  geo::RoadNetwork roads;
  // Normalized POI composition per region: demographics[r][category] in
  // [0,1], rows sum to 1 (all-zero rows allowed for empty regions).
  std::vector<std::vector<double>> demographics;

  // Placeholder single-cell city, so holders like sim::World can be
  // default-constructed before GenerateCity fills them in.
  CityModel() : grid(1.0, 1.0, 1.0) {}
  explicit CityModel(const geo::Grid& g) : grid(g) {}
};

// Generates the synthetic city: a downtown-centered density gradient with
// suburban noise, POI placement whose category mix shifts from
// office/mall-heavy downtown to residential/factory-heavy outskirts, and a
// grid-plus-jitter road network.
CityModel GenerateCity(const SimConfig& config, Rng& rng);

}  // namespace o2sr::sim

#endif  // O2SR_SIM_CITY_H_
