#include "sim/store_types.h"

#include <array>

#include "common/check.h"
#include "common/math_util.h"

namespace o2sr::sim {

namespace {

// Named types referenced by the paper (Fig. 5, Fig. 12-13) come first so
// that experiments can address them by stable ids.
struct NamedType {
  const char* name;
  TypeArchetype archetype;
  double popularity;  // unnormalized weight
};

constexpr std::array<NamedType, 16> kNamedTypes = {{
    {"light meal", TypeArchetype::kLunchMeal, 10.0},
    {"light salad", TypeArchetype::kLunchMeal, 4.0},
    {"fruit", TypeArchetype::kAfternoonTreat, 5.5},
    {"steamed buns", TypeArchetype::kBreakfast, 4.5},
    {"juice", TypeArchetype::kAfternoonTreat, 3.5},
    {"fried chicken", TypeArchetype::kLateNight, 6.0},
    {"coffee", TypeArchetype::kAfternoonTreat, 6.5},
    {"snack", TypeArchetype::kLateNight, 5.0},
    {"milk tea", TypeArchetype::kAfternoonTreat, 7.0},
    {"bakery", TypeArchetype::kBreakfast, 3.5},
    {"noodles", TypeArchetype::kDinnerMeal, 6.0},
    {"rice bowl", TypeArchetype::kDinnerMeal, 6.5},
    {"hot pot", TypeArchetype::kDinnerMeal, 3.0},
    {"bbq", TypeArchetype::kLateNight, 3.0},
    {"congee", TypeArchetype::kBreakfast, 2.5},
    {"convenience", TypeArchetype::kAllDay, 4.0},
}};

}  // namespace

std::vector<double> ArchetypeSlotActivity(TypeArchetype archetype) {
  // Slot k covers hours [2k, 2k+2). Values are relative activity levels;
  // BuildTypeCatalog rescales them so their mean is 1.
  switch (archetype) {
    case TypeArchetype::kBreakfast:
      return {0.1, 0.1, 0.3, 2.8, 3.2, 1.0, 0.4, 0.5, 0.6, 0.4, 0.2, 0.1};
    case TypeArchetype::kLunchMeal:
      return {0.1, 0.1, 0.1, 0.5, 1.5, 3.6, 1.0, 0.7, 2.2, 1.2, 0.4, 0.2};
    case TypeArchetype::kAfternoonTreat:
      return {0.1, 0.1, 0.1, 0.4, 1.0, 1.6, 2.6, 2.8, 1.6, 1.0, 0.6, 0.2};
    case TypeArchetype::kDinnerMeal:
      return {0.1, 0.1, 0.1, 0.3, 0.8, 2.0, 0.8, 1.0, 3.4, 2.2, 0.8, 0.3};
    case TypeArchetype::kLateNight:
      return {1.2, 0.6, 0.2, 0.2, 0.4, 0.8, 0.6, 0.8, 1.4, 2.6, 3.0, 2.2};
    case TypeArchetype::kAllDay:
      return {0.5, 0.3, 0.3, 0.9, 1.2, 1.4, 1.2, 1.2, 1.4, 1.3, 1.2, 0.9};
  }
  O2SR_CHECK(false);
  return {};
}

std::vector<double> ArchetypePoiAffinity(TypeArchetype archetype) {
  // Order matches geo::PoiCategory: residential, office, school, hospital,
  // mall, transit, park, hotel, restaurant, entertainment, factory, gov.
  switch (archetype) {
    case TypeArchetype::kBreakfast:
      return {0.9, 0.6, 0.7, 0.4, 0.2, 0.6, 0.1, 0.3, 0.3, 0.1, 0.8, 0.5};
    case TypeArchetype::kLunchMeal:
      return {0.4, 1.0, 0.5, 0.5, 0.5, 0.4, 0.1, 0.4, 0.5, 0.2, 0.7, 0.8};
    case TypeArchetype::kAfternoonTreat:
      return {0.3, 1.0, 0.8, 0.3, 0.8, 0.3, 0.3, 0.4, 0.4, 0.6, 0.2, 0.5};
    case TypeArchetype::kDinnerMeal:
      return {1.0, 0.4, 0.4, 0.4, 0.5, 0.4, 0.2, 0.6, 0.6, 0.4, 0.6, 0.3};
    case TypeArchetype::kLateNight:
      return {0.8, 0.2, 0.6, 0.3, 0.3, 0.2, 0.1, 0.7, 0.5, 1.0, 0.5, 0.1};
    case TypeArchetype::kAllDay:
      return {0.7, 0.6, 0.5, 0.6, 0.6, 0.5, 0.3, 0.6, 0.5, 0.5, 0.5, 0.5};
  }
  O2SR_CHECK(false);
  return {};
}

std::vector<StoreType> BuildTypeCatalog(int num_types, Rng& rng) {
  O2SR_CHECK_GT(num_types, 0);
  std::vector<StoreType> catalog;
  catalog.reserve(num_types);
  double popularity_sum = 0.0;
  for (int i = 0; i < num_types; ++i) {
    StoreType type;
    type.id = i;
    if (i < static_cast<int>(kNamedTypes.size())) {
      type.name = kNamedTypes[i].name;
      type.archetype = kNamedTypes[i].archetype;
      type.popularity = kNamedTypes[i].popularity;
    } else {
      type.archetype = static_cast<TypeArchetype>(i % kNumArchetypes);
      type.name = "type-" + std::to_string(i);
      // Long-tail popularity for generated types.
      type.popularity = 2.0 / (1.0 + 0.15 * (i - kNamedTypes.size())) *
                        rng.Uniform(0.6, 1.4);
    }
    type.slot_activity = ArchetypeSlotActivity(type.archetype);
    // Normalize the profile to mean 1 and add mild per-type variation so
    // types within an archetype are not identical.
    double mean = 0.0;
    for (double v : type.slot_activity) mean += v;
    mean /= type.slot_activity.size();
    for (double& v : type.slot_activity) {
      v = v / mean * rng.Uniform(0.85, 1.15);
    }
    type.poi_affinity = ArchetypePoiAffinity(type.archetype);
    for (double& v : type.poi_affinity) {
      v = Clamp(v * rng.Uniform(0.8, 1.2), 0.0, 1.2);
    }
    type.prep_factor = rng.Uniform(0.8, 1.3);
    popularity_sum += type.popularity;
    catalog.push_back(std::move(type));
  }
  for (StoreType& t : catalog) t.popularity /= popularity_sum;
  return catalog;
}

}  // namespace o2sr::sim
