#ifndef O2SR_SIM_STREAM_H_
#define O2SR_SIM_STREAM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/spill.h"
#include "sim/world.h"

namespace o2sr::sim {

// Out-of-core order generation (DESIGN.md §15).
//
// StreamGenerate simulates orders in bounded memory: regions are grouped
// into blocks sized from the memory budget, and the simulator emits one
// checksummed columnar shard (sim/spill.h) per (block, epoch=day). Each
// region's orders are drawn from an independent RNG stream seeded by
// (config.seed, epoch, region), so shard contents are bit-invariant to the
// block size, the memory budget, and how many times ingestion was killed
// and restarted.
//
// A checksummed manifest (container "O2SRMNFS") journals every published
// shard: it is rewritten atomically after each shard, so ingestion killed
// at ANY shard boundary resumes from the journal and converges to
// bit-identical output. A shard on disk but missing from the manifest is
// simply regenerated — the rewrite produces the same bytes.
//
// DatasetReader streams the shards back to aggregation / graph
// construction without ever materializing the raw order vector. Corrupt or
// torn shards (and a corrupt manifest) are detected by checksum, moved to
// `.quarantine/` with a reason record, and — policy permitting —
// regenerated from the seeded simulator or skipped under a bounded, loudly
// reported error budget.

inline constexpr char kManifestMagic[] = "O2SRMNFS";  // 8 chars + NUL
inline constexpr uint32_t kManifestVersion = 1;
inline constexpr char kManifestFileName[] = "manifest.o2sm";

// One journal record per published shard.
struct ManifestEntry {
  ShardInfo info;
  std::string filename;
};

// The ingestion journal: dataset layout plus every published shard.
struct Manifest {
  uint64_t config_hash = 0;
  uint32_t block_regions = 0;
  uint32_t num_blocks = 0;
  uint32_t epochs = 0;
  uint32_t num_regions = 0;
  std::vector<ManifestEntry> entries;
};

// Fingerprint of every SimConfig field; a manifest only matches a config
// that regenerates its shards bit-identically.
uint64_t SimConfigHash(const SimConfig& config);

// Seed of the independent RNG stream of (epoch, region): two chained
// splitmix64 rounds over the base seed. Block-size independent by
// construction.
uint64_t ShardSeed(uint64_t seed, int epoch, int region);

// Regions per block under `mem_budget_mb`, from an analytic estimate of
// the per-region candidate-index footprint. Capped at ceil(R/4) so even a
// huge budget exercises real sharding.
int AutoBlockRegions(const World& world, int mem_budget_mb);

// Draws every order of `epoch` for the candidate block, appending one
// SpillRow per converted attempt (regions ascending, slots ascending
// within a region). Deterministic given (config.seed, epoch, region).
void GenerateBlockRows(const World& world, const CandidateIndex& candidates,
                       int epoch, ShardColumns* out);

// Manifest I/O. Writes are atomic (container temp + rename) and carry the
// `dataset.manifest` fault site: delay/error before the write,
// bitflip/trunc applied to the payload (write) or to the
// envelope-validated payload (read) so the payload parser's own hardening
// is exercised.
common::Status WriteManifest(const std::string& path, const Manifest& m);
common::StatusOr<Manifest> ReadManifest(const std::string& path);

// Knobs of a streaming-generation run. Zero values defer to the
// environment (O2SR_DATA_DIR, O2SR_MEM_BUDGET_MB) or to auto-sizing.
struct StreamOptions {
  // Dataset directory; "" = $O2SR_DATA_DIR, falling back to "o2sr_data".
  std::string data_dir;
  // Regions per block; 0 = AutoBlockRegions from the memory budget. A
  // pre-existing manifest's blocking always wins (layout is part of the
  // journal).
  int block_regions = 0;
  // 0 = $O2SR_MEM_BUDGET_MB (default 2048, clamped to [64, 1048576]).
  int mem_budget_mb = 0;
  // Test hook: stop (successfully, stopped_early=true) after publishing
  // this many shards, i.e. at a journal boundary. 0 = run to completion.
  int max_shards_per_run = 0;
};

struct StreamResult {
  std::string data_dir;
  int block_regions = 0;
  int num_blocks = 0;
  int epochs = 0;
  uint64_t rows = 0;        // rows written by THIS run
  uint64_t total_rows = 0;  // rows across the whole manifest
  int shards_written = 0;
  int shards_skipped = 0;  // already journaled by a previous run
  int quarantined = 0;     // bad files found while recovering the manifest
  bool stopped_early = false;
  int resolved_mem_budget_mb = 0;
};

// Runs (or resumes) ingestion for `config`. Kill this at any point and
// call it again: it converges to the same manifest and bit-identical
// shards. FAILED_PRECONDITION if the directory holds a manifest for a
// different config.
common::StatusOr<StreamResult> StreamGenerate(const SimConfig& config,
                                              const StreamOptions& options);

// What DatasetReader does about a shard that is missing, torn, or fails a
// checksum.
enum class SpillReadPolicy {
  kStrict,      // fail fast: surface the DATA_LOSS, touch nothing
  kQuarantine,  // move the bad file to .quarantine/, then recover
};

struct SpillReadOptions {
  SpillReadPolicy policy = SpillReadPolicy::kQuarantine;
  // Under kQuarantine: regenerate the lost shard from the seeded simulator
  // (true), or skip it and charge the error budget (false).
  bool regenerate = true;
  // Skip budget when regenerate=false: reading fails loudly (DATA_LOSS)
  // once more than this many shards have been skipped.
  int max_quarantined = 0;
};

struct SpillReadReport {
  uint64_t rows = 0;
  int shards_read = 0;
  int quarantined = 0;
  int regenerated = 0;
  int skipped = 0;
};

// Streams a spilled dataset back shard-by-shard. Open() rebuilds the
// static world (cheap relative to orders) and validates the manifest;
// Stream() visits every (block, epoch) cell in a fixed order, verifying
// each shard against both its own checksums and its manifest record.
class DatasetReader {
 public:
  // `dir` = "" defers to $O2SR_DATA_DIR (fallback "o2sr_data").
  // FAILED_PRECONDITION if the manifest belongs to a different config;
  // under kQuarantine a corrupt manifest is quarantined and rebuilt by
  // scanning the shards themselves.
  static common::StatusOr<DatasetReader> Open(const SimConfig& config,
                                              const std::string& dir,
                                              const SpillReadOptions& options);

  using ShardSink =
      std::function<common::Status(const ShardColumns&, const ShardInfo&)>;

  // Calls `sink` once per (block, epoch) cell — epochs ascending, blocks
  // ascending within an epoch, so the row order the sink observes is the
  // canonical (epoch, region, slot, attempt) order regardless of how the
  // dataset was blocked. `report` (optional) receives read/recovery
  // counts.
  common::Status Stream(const ShardSink& sink, SpillReadReport* report);

  const World& world() const { return world_; }
  const Manifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }

  // Default-constructible only so StatusOr<DatasetReader> can hold an
  // error slot; use Open().
  DatasetReader() = default;

 private:
  std::string dir_;
  SpillReadOptions options_;
  World world_;
  Manifest manifest_;
};

}  // namespace o2sr::sim

#endif  // O2SR_SIM_STREAM_H_
