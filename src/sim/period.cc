#include "sim/period.h"

#include "common/check.h"

namespace o2sr::sim {

Period PeriodOfHour(int hour) {
  O2SR_CHECK(hour >= 0 && hour < 24);
  if (hour >= 6 && hour < 10) return Period::kMorning;
  if (hour >= 10 && hour < 14) return Period::kNoonRush;
  if (hour >= 14 && hour < 16) return Period::kAfternoon;
  if (hour >= 16 && hour < 20) return Period::kEveningRush;
  return Period::kNight;
}

Period PeriodOfSlot(int slot) {
  O2SR_CHECK(slot >= 0 && slot < kSlotsPerDay);
  return PeriodOfHour(slot * 2);
}

const char* PeriodName(Period period) {
  switch (period) {
    case Period::kMorning: return "morning";
    case Period::kNoonRush: return "noon-rush";
    case Period::kAfternoon: return "afternoon";
    case Period::kEveningRush: return "evening-rush";
    case Period::kNight: return "night";
  }
  O2SR_CHECK(false);
  return "";
}

}  // namespace o2sr::sim
