#ifndef O2SR_SIM_CONFIG_H_
#define O2SR_SIM_CONFIG_H_

#include <cstdint>

namespace o2sr::sim {

// Which dataset the simulator mimics (paper §IV-A1).
enum class SimulationPreset {
  // Substitute for the proprietary Eleme platform data: dense interactions,
  // full courier dynamics.
  kSyntheticEleme,
  // Substitute for the open-data-derived "simulation dataset": customer
  // locations are randomly displaced, interactions are sparser and noisier,
  // so all methods score lower (Table IV vs Table III).
  kOpenData,
};

// Tunable parameters of the O2O-platform simulator. Defaults produce a
// medium city that trains the full model in seconds; tests use smaller
// values and the benchmark harness uses larger ones.
struct SimConfig {
  // Geometry (paper: Shanghai, 500 m x 500 m regions).
  double city_width_m = 10000.0;
  double city_height_m = 10000.0;
  double cell_m = 500.0;

  // Inventory.
  int num_store_types = 24;   // paper: 122
  int num_stores = 1200;      // paper: 39,465
  int num_couriers = 660;

  // Horizon (paper: one month).
  int num_days = 8;

  // Demand scale: expected orders per region per 2-hour slot at peak
  // activity in the densest region.
  double peak_orders_per_region_slot = 6.0;

  // Courier behaviour.
  double courier_speed_m_per_min = 260.0;  // ~15.6 km/h e-bike
  double food_prep_minutes = 8.0;
  // Minutes of queueing delay added per unit of courier overload.
  double queue_minutes_per_load = 14.0;

  // Delivery scope control (paper §II-B2): base radius and the pressure
  // scaling bounds applied by the platform per period.
  double base_scope_m = 3000.0;
  double min_scope_factor = 0.72;
  double max_scope_factor = 1.25;

  // Customer tolerance: acceptance probability is
  // sigmoid((tolerance_minutes - expected_delivery) / tolerance_softness).
  double tolerance_minutes = 46.0;
  double tolerance_softness = 9.0;

  // Strength of region-demographics influence on type preferences (0 = all
  // regions share the global per-period type popularity).
  double demographic_preference_weight = 1.6;

  // Lognormal sigma of the per-(region, type) idiosyncratic taste factor:
  // local preferences not explained by POI demographics. This is the signal
  // that customer-order history carries but static context features do not.
  double taste_noise_sigma = 0.5;

  // Preset-dependent noise.
  SimulationPreset preset = SimulationPreset::kSyntheticEleme;

  // Whether to synthesize courier GPS trajectories (20 s samples) for each
  // order. Off by default: downstream models only need region-pair delivery
  // times, which order records already carry.
  bool generate_trajectories = false;

  uint64_t seed = 42;
};

}  // namespace o2sr::sim

#endif  // O2SR_SIM_CONFIG_H_
