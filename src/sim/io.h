#ifndef O2SR_SIM_IO_H_
#define O2SR_SIM_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/dataset.h"

namespace o2sr::sim {

// CSV import/export of the platform records, mirroring the field layout of
// the paper's Table I (store/customer coordinates, the four timestamps,
// ids, distance and store type). Lets users persist a simulated dataset or
// bring their own order log into the pipeline.
//
// All functions return a Status. Unopenable files yield NOT_FOUND (read) or
// UNAVAILABLE (write); malformed rows are recoverable parse errors
// (INVALID_ARGUMENT) that name the offending line and field. The row policy
// decides whether a malformed row fails the whole read or is skipped and
// counted — external order logs routinely carry a few bad rows, and a
// production ingest must survive them.

// What to do with a row that fails to parse.
enum class CsvRowPolicy {
  kStrict,       // first malformed row fails the read
  kSkipBadRows,  // malformed rows are skipped and counted in CsvReadReport
};

struct CsvReadOptions {
  CsvRowPolicy policy = CsvRowPolicy::kStrict;
};

// Filled by the readers (when provided) with what happened row-by-row.
struct CsvReadReport {
  int rows_parsed = 0;   // rows successfully converted
  int rows_skipped = 0;  // malformed rows dropped under kSkipBadRows
  // Human-readable description of the first skipped row (empty if none).
  std::string first_skipped;
};

// Orders: one row per order, header included. Coordinates are written as
// lat/lng via the given city frame (defaults to the Shanghai-like anchor).
common::Status WriteOrdersCsv(const std::string& path, const Dataset& data,
                              const geo::CityFrame& frame = geo::CityFrame());

// Reads orders written by WriteOrdersCsv back into planar coordinates.
// Region/store-type consistency is restored from the coordinates and the
// accompanying fields. `orders` is cleared first; on a non-OK return its
// contents are unspecified.
common::Status ReadOrdersCsv(const std::string& path,
                             const geo::CityFrame& frame,
                             const geo::Grid& grid,
                             std::vector<Order>* orders,
                             const CsvReadOptions& options = {},
                             CsvReadReport* report = nullptr);

// Stores: id, type id, type name, lat, lng, quality.
common::Status WriteStoresCsv(const std::string& path, const Dataset& data,
                              const geo::CityFrame& frame = geo::CityFrame());
common::Status ReadStoresCsv(const std::string& path,
                             const geo::CityFrame& frame,
                             const geo::Grid& grid,
                             std::vector<Store>* stores,
                             const CsvReadOptions& options = {},
                             CsvReadReport* report = nullptr);

// Courier trajectories (only present when the simulation generated them):
// courier id, order id, timestamp (minutes), lat, lng — the 20-second GPS
// samples of the paper's trajectory data.
common::Status WriteTrajectoriesCsv(
    const std::string& path, const Dataset& data,
    const geo::CityFrame& frame = geo::CityFrame());

}  // namespace o2sr::sim

#endif  // O2SR_SIM_IO_H_
