#ifndef O2SR_SIM_IO_H_
#define O2SR_SIM_IO_H_

#include <string>
#include <vector>

#include "sim/dataset.h"

namespace o2sr::sim {

// CSV import/export of the platform records, mirroring the field layout of
// the paper's Table I (store/customer coordinates, the four timestamps,
// ids, distance and store type). Lets users persist a simulated dataset or
// bring their own order log into the pipeline.
//
// All functions return false (and write nothing further) on I/O errors;
// malformed rows abort via CHECK, as they indicate programmer error or file
// corruption rather than recoverable conditions.

// Orders: one row per order, header included. Coordinates are written as
// lat/lng via the given city frame (defaults to the Shanghai-like anchor).
bool WriteOrdersCsv(const std::string& path, const Dataset& data,
                    const geo::CityFrame& frame = geo::CityFrame());

// Reads orders written by WriteOrdersCsv back into planar coordinates.
// Region/store-type consistency is restored from the coordinates and the
// accompanying fields. Returns false if the file cannot be opened.
bool ReadOrdersCsv(const std::string& path, const geo::CityFrame& frame,
                   const geo::Grid& grid, std::vector<Order>* orders);

// Stores: id, type id, type name, lat, lng, quality.
bool WriteStoresCsv(const std::string& path, const Dataset& data,
                    const geo::CityFrame& frame = geo::CityFrame());
bool ReadStoresCsv(const std::string& path, const geo::CityFrame& frame,
                   const geo::Grid& grid, std::vector<Store>* stores);

// Courier trajectories (only present when the simulation generated them):
// courier id, order id, timestamp (minutes), lat, lng — the 20-second GPS
// samples of the paper's trajectory data.
bool WriteTrajectoriesCsv(const std::string& path, const Dataset& data,
                          const geo::CityFrame& frame = geo::CityFrame());

}  // namespace o2sr::sim

#endif  // O2SR_SIM_IO_H_
