#ifndef O2SR_SIM_WORLD_H_
#define O2SR_SIM_WORLD_H_

#include <vector>

#include "sim/dataset.h"

namespace o2sr::sim {

// The static part of a simulated city: everything GenerateDataset derives
// from the config before the first order is drawn. Extracted so the
// streaming generator (sim/stream.h) can build the world once and then
// emit orders block-by-block with bounded memory, while GenerateDataset
// keeps producing the exact same in-RAM dataset it always has (BuildWorld
// consumes the RNG in the same order the monolithic generator did).
struct World {
  SimConfig config;
  CityModel city;
  std::vector<StoreType> type_catalog;
  std::vector<Store> stores;
  // Resolved demand profile (overrides applied), size kSlotsPerDay.
  std::vector<double> demand_slot_profile;
  // Customer type-choice weights per (region, slot): type_weights[u][slot][t].
  std::vector<std::vector<std::vector<double>>> type_weights;
  // Expected demand per (slot, region).
  std::vector<std::vector<double>> expected_demand;
  // Courier allocation per (slot, region), constant across days.
  std::vector<std::vector<double>> courier_alloc;
  // Courier ids homed per region.
  std::vector<std::vector<int>> courier_pool;

  int num_regions() const { return city.grid.NumRegions(); }
  int num_types() const { return static_cast<int>(type_catalog.size()); }

  // Load per courier of a region at a slot (expected orders / capacity).
  double congestion(int slot, int region) const;
  // Delivery-scope pressure control (§II-B2).
  double scope_factor(int slot, int region) const;
};

// Fraction of the courier fleet on shift per 2-hour slot (§II-B1).
const std::vector<double>& SupplySlotProfile();

// Builds the world, drawing from `rng` exactly as GenerateDataset does
// before its order loop: city -> catalog -> stores -> taste ->
// courier allocation -> courier pool.
World BuildWorld(const SimConfig& config, const WorldOverrides& overrides,
                 Rng& rng);

// An orders-free Dataset over the world (config, city, catalog, stores,
// courier allocation). Graph construction and region features consume only
// these plus region-level aggregates (features::OrderStats), so this is
// all the "dataset" the out-of-core path ever materializes.
Dataset WorldDataset(const World& world);

// Candidate stores per (region, type) for regions [region_begin,
// region_end), each list ordered by ascending store index (the same order
// the monolithic generator scans its mixed per-region list in, so
// Categorical draws see identical weight vectors).
struct TypedCandidate {
  int store_index = 0;
  double distance_m = 0.0;
};
struct CandidateIndex {
  int region_begin = 0;
  int region_end = 0;
  // by_region_type[u - region_begin][t]
  std::vector<std::vector<std::vector<TypedCandidate>>> by_region_type;
};
CandidateIndex BuildCandidates(const World& world, int region_begin,
                               int region_end);

// Draws one customer order attempt in `region` at (day, slot), consuming
// `rng` exactly as the monolithic generator's attempt body does. Returns
// true and fills `order` (order_id left 0 for the caller to assign) when
// the attempt converts; false when the customer walks away.
bool SampleOrderAttempt(const World& world, const CandidateIndex& index,
                        int day, int slot, int region, Rng& rng, Order* order);

// The paper's workload: ~39.5k stores in a 32 km x 32 km city (4096
// regions), 122 store types, one month of orders (>= 23.6M). Only the
// streaming generator should run this preset — the in-RAM order vector
// alone would be ~4 GB.
SimConfig PaperScaleConfig();

}  // namespace o2sr::sim

#endif  // O2SR_SIM_WORLD_H_
