#include "sim/drift.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "sim/city.h"
#include "sim/period.h"
#include "sim/store_types.h"

namespace o2sr::sim {

namespace {

// Popularity multipliers are clamped so the walk cannot extinguish a
// cuisine entirely or let one dominate the city.
constexpr double kMinPopularityScale = 0.2;
constexpr double kMaxPopularityScale = 5.0;

uint64_t EpochSeed(const DriftConfig& drift, int epoch) {
  return drift.seed ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(epoch));
}

}  // namespace

std::vector<double> ShiftSlotProfile(const std::vector<double>& profile,
                                     double shift) {
  const int n = static_cast<int>(profile.size());
  if (n == 0) return profile;
  std::vector<double> out(n);
  for (int s = 0; s < n; ++s) {
    // out[s] samples the original profile at (s - shift), wrapped.
    double pos = std::fmod(s - shift, static_cast<double>(n));
    if (pos < 0.0) pos += n;
    const int lo = static_cast<int>(pos) % n;
    const int hi = (lo + 1) % n;
    const double frac = pos - std::floor(pos);
    out[s] = profile[lo] * (1.0 - frac) + profile[hi] * frac;
  }
  return out;
}

Dataset GenerateDriftedDataset(const SimConfig& base,
                               const DriftConfig& drift, int epoch,
                               DriftStats* stats) {
  O2SR_CHECK_GE(epoch, 0);
  DriftStats local;
  DriftStats& st = stats != nullptr ? *stats : local;
  st = DriftStats();
  st.epoch = epoch;
  if (epoch == 0) {
    Dataset data = GenerateDataset(base);
    st.num_stores = static_cast<int>(data.stores.size());
    st.type_popularity_scale.assign(data.num_types(), 1.0);
    return data;
  }

  // Rebuild the epoch-0 world pieces exactly as GenerateDataset draws them
  // (same RNG consumption order: city, catalog, stores).
  Rng base_rng(base.seed);
  const CityModel city = GenerateCity(base, base_rng);
  const std::vector<StoreType> catalog =
      BuildTypeCatalog(base.num_store_types, base_rng);
  std::vector<Store> stores =
      GenerateStores(base, city, catalog, base_rng);

  const int num_types = static_cast<int>(catalog.size());
  std::vector<double> scale(num_types, 1.0);
  double total_shift = 0.0;
  const int opens_per_epoch = std::max(
      0, static_cast<int>(std::lround(drift.store_open_rate *
                                      base.num_stores)));

  for (int e = 1; e <= epoch; ++e) {
    // Each epoch's step is drawn from its own stream, so the world at epoch
    // k never depends on how (or whether) earlier epochs were materialized.
    Rng rng(EpochSeed(drift, e));

    // Closures.
    std::vector<Store> survivors;
    survivors.reserve(stores.size());
    for (const Store& s : stores) {
      if (rng.Bernoulli(drift.store_close_rate)) {
        ++st.stores_closed;
      } else {
        survivors.push_back(s);
      }
    }
    stores.swap(survivors);

    // Openings: reuse the market-equilibrium placement of the base
    // generator for a batch of new stores, with an evolved popularity mix.
    if (opens_per_epoch > 0) {
      SimConfig open_cfg = base;
      open_cfg.num_stores = opens_per_epoch;
      std::vector<StoreType> current_catalog = catalog;
      for (int t = 0; t < num_types; ++t) {
        current_catalog[t].popularity *= scale[t];
      }
      std::vector<Store> opened =
          GenerateStores(open_cfg, city, current_catalog, rng);
      st.stores_opened += static_cast<int>(opened.size());
      for (Store& s : opened) stores.push_back(s);
    }

    // Popularity walk and rush-hour shift.
    for (int t = 0; t < num_types; ++t) {
      scale[t] = Clamp(
          scale[t] * std::exp(rng.Normal(0.0, drift.popularity_walk_sigma)),
          kMinPopularityScale, kMaxPopularityScale);
    }
    total_shift += rng.Normal(0.0, drift.rush_shift_slots);
  }

  // Downstream consumers index per-store tables by id, so the drifted set
  // is reindexed contiguously; store identity across epochs is carried by
  // location/type/quality, not by id.
  for (size_t si = 0; si < stores.size(); ++si) {
    stores[si].id = static_cast<int>(si);
  }

  WorldOverrides overrides;
  overrides.use_stores = true;
  overrides.stores = std::move(stores);
  overrides.demand_slot_profile =
      ShiftSlotProfile(DefaultDemandSlotProfile(), total_shift);
  overrides.type_popularity_scale = scale;

  st.num_stores = static_cast<int>(overrides.stores.size());
  st.demand_shift_slots = total_shift;
  st.type_popularity_scale = scale;
  O2SR_LOG(DEBUG) << "drift epoch " << epoch << ": " << st.num_stores
                  << " stores (" << st.stores_closed << " closed, "
                  << st.stores_opened << " opened), demand shift "
                  << total_shift << " slots";
  return GenerateDataset(base, overrides);
}

}  // namespace o2sr::sim
