#ifndef O2SR_SIM_PERIOD_H_
#define O2SR_SIM_PERIOD_H_

namespace o2sr::sim {

// The five daily periods the paper analyses (morning, noon rush hour,
// afternoon, evening rush hour, night). Hours outside 6-24 count as night.
enum class Period : int {
  kMorning = 0,      // 06-10
  kNoonRush = 1,     // 10-14
  kAfternoon = 2,    // 14-16
  kEveningRush = 3,  // 16-20
  kNight = 4,        // 20-06
};

inline constexpr int kNumPeriods = 5;

// Two-hour slots within a day, as used by Fig. 1-2 (12 slots: 00-02 ... 22-24).
inline constexpr int kSlotsPerDay = 12;
inline constexpr double kSlotMinutes = 120.0;

// Period of a day hour in [0, 24).
Period PeriodOfHour(int hour);

// Period of a 2-hour slot index in [0, 12).
Period PeriodOfSlot(int slot);

// Display name, e.g. "noon-rush".
const char* PeriodName(Period period);

}  // namespace o2sr::sim

#endif  // O2SR_SIM_PERIOD_H_
