#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace o2sr::nn {

Tensor Tensor::Full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(int rows, int cols,
                          const std::vector<float>& values) {
  O2SR_CHECK_EQ(static_cast<size_t>(rows) * cols, values.size());
  Tensor t(rows, cols);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::RandomNormal(int rows, int cols, double stddev, Rng& rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Xavier(int rows, int cols, Rng& rng) {
  Tensor t(rows, cols);
  const double limit = std::sqrt(6.0 / (rows + cols));
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  O2SR_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::ScaleInPlace(float scalar) {
  for (float& v : data_) v *= scalar;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::MeanAbs() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (float v : data_) s += std::fabs(v);
  return s / static_cast<double>(data_.size());
}

std::string Tensor::ShapeString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[%dx%d]", rows_, cols_);
  return buf;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  O2SR_CHECK_EQ(a.cols(), b.rows());
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  O2SR_CHECK_EQ(a.rows(), b.rows());
  Tensor c(a.cols(), b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  O2SR_CHECK_EQ(a.cols(), b.cols());
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      // Four independent accumulator chains let the compiler vectorize the
      // reduction without -ffast-math.
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        acc0 += arow[p] * brow[p];
        acc1 += arow[p + 1] * brow[p + 1];
        acc2 += arow[p + 2] * brow[p + 2];
        acc3 += arow[p + 3] * brow[p + 3];
      }
      for (; p < k; ++p) acc0 += arow[p] * brow[p];
      crow[j] = (acc0 + acc1) + (acc2 + acc3);
    }
  }
  return c;
}

}  // namespace o2sr::nn
