#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "exec/thread_pool.h"
#include "obs/profiler.h"

namespace o2sr::nn {

namespace {

// Kernels dispatch to exec::CurrentPool() with grain sizes that keep a
// chunk at roughly this many flops; anything smaller runs inline (a single
// chunk never leaves the calling thread). The grain depends only on the
// shapes, never on the thread count, which is what keeps results
// bit-identical at any O2SR_THREADS (see DESIGN.md §8).
constexpr int64_t kFlopsPerChunk = int64_t{1} << 16;
// Elementwise ops and reductions chunk by element count.
constexpr int64_t kElementGrain = int64_t{1} << 15;

int64_t RowGrain(int64_t flops_per_row) {
  return std::max<int64_t>(1, kFlopsPerChunk / std::max<int64_t>(1, flops_per_row));
}

}  // namespace

Tensor Tensor::Full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(int rows, int cols,
                          const std::vector<float>& values) {
  O2SR_CHECK_EQ(static_cast<size_t>(rows) * cols, values.size());
  Tensor t(rows, cols);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::RandomNormal(int rows, int cols, double stddev, Rng& rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Xavier(int rows, int cols, Rng& rng) {
  Tensor t(rows, cols);
  const double limit = std::sqrt(6.0 / (rows + cols));
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  O2SR_CHECK(SameShape(other));
  O2SR_PROFILE_OP("tensor.add_inplace", 0,
                  uint64_t{3} * data_.size() * sizeof(float), data_.size());
  exec::CurrentPool().RunChunks(
      static_cast<int64_t>(data_.size()), kElementGrain,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) data_[i] += other.data_[i];
      },
      nullptr, "tensor.add_inplace");
}

void Tensor::ScaleInPlace(float scalar) {
  O2SR_PROFILE_OP("tensor.scale_inplace", 0,
                  uint64_t{2} * data_.size() * sizeof(float), data_.size());
  exec::CurrentPool().RunChunks(
      static_cast<int64_t>(data_.size()), kElementGrain,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) data_[i] *= scalar;
      },
      nullptr, "tensor.scale_inplace");
}

// Reductions fold fixed kElementGrain-sized partials left-to-right (see
// exec::ThreadPool::ParallelReduce): the association is defined by the
// grain, so the value is the same at every thread count.
double Tensor::Sum() const {
  O2SR_PROFILE_OP("tensor.sum", 0, data_.size() * sizeof(float),
                  data_.size());
  return exec::CurrentPool().ParallelReduce(
      static_cast<int64_t>(data_.size()), kElementGrain, 0.0,
      [&](int64_t begin, int64_t end) {
        double s = 0.0;
        for (int64_t i = begin; i < end; ++i) s += data_[i];
        return s;
      },
      [](double acc, double partial) { return acc + partial; }, nullptr,
      "tensor.sum");
}

double Tensor::MeanAbs() const {
  if (data_.empty()) return 0.0;
  O2SR_PROFILE_OP("tensor.mean_abs", 0, data_.size() * sizeof(float),
                  data_.size());
  const double s = exec::CurrentPool().ParallelReduce(
      static_cast<int64_t>(data_.size()), kElementGrain, 0.0,
      [&](int64_t begin, int64_t end) {
        double partial = 0.0;
        for (int64_t i = begin; i < end; ++i) partial += std::fabs(data_[i]);
        return partial;
      },
      [](double acc, double partial) { return acc + partial; }, nullptr,
      "tensor.mean_abs");
  return s / static_cast<double>(data_.size());
}

std::string Tensor::ShapeString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[%dx%d]", rows_, cols_);
  return buf;
}

// The matmul variants parallelize over output rows: every output row is
// produced by exactly one chunk and its per-element accumulation order is
// the same as in a straight serial loop, so the product is bit-identical
// at every thread count.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  O2SR_CHECK_EQ(a.cols(), b.rows());
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  O2SR_PROFILE_OP("tensor.matmul", c.size() * sizeof(float),
                  (a.size() + b.size() + c.size()) * sizeof(float),
                  uint64_t{2} * m * k * n);
  exec::CurrentPool().ParallelFor(
      m, RowGrain(int64_t{2} * k * n), [&](int64_t i) {
        const float* arow = a.row(static_cast<int>(i));
        float* crow = c.row(static_cast<int>(i));
        for (int p = 0; p < k; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          const float* brow = b.row(p);
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      },
      nullptr, "tensor.matmul");
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  O2SR_CHECK_EQ(a.rows(), b.rows());
  Tensor c(a.cols(), b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  O2SR_PROFILE_OP("tensor.matmul_ta", c.size() * sizeof(float),
                  (a.size() + b.size() + c.size()) * sizeof(float),
                  uint64_t{2} * m * k * n);
  // Output row i reads column i of a; for each output element the sum still
  // runs over p in ascending order, matching the p-outer serial loop.
  exec::CurrentPool().ParallelFor(
      m, RowGrain(int64_t{2} * k * n), [&](int64_t i) {
        float* crow = c.row(static_cast<int>(i));
        for (int p = 0; p < k; ++p) {
          const float av = a.row(p)[i];
          if (av == 0.0f) continue;
          const float* brow = b.row(p);
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      },
      nullptr, "tensor.matmul_ta");
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  O2SR_CHECK_EQ(a.cols(), b.cols());
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  O2SR_PROFILE_OP("tensor.matmul_tb", c.size() * sizeof(float),
                  (a.size() + b.size() + c.size()) * sizeof(float),
                  uint64_t{2} * m * k * n);
  exec::CurrentPool().ParallelFor(
      m, RowGrain(int64_t{2} * k * n), [&](int64_t i) {
        const float* arow = a.row(static_cast<int>(i));
        float* crow = c.row(static_cast<int>(i));
        for (int j = 0; j < n; ++j) {
          const float* brow = b.row(j);
          // Four independent accumulator chains let the compiler vectorize
          // the reduction without -ffast-math.
          float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
          int p = 0;
          for (; p + 4 <= k; p += 4) {
            acc0 += arow[p] * brow[p];
            acc1 += arow[p + 1] * brow[p + 1];
            acc2 += arow[p + 2] * brow[p + 2];
            acc3 += arow[p + 3] * brow[p + 3];
          }
          for (; p < k; ++p) acc0 += arow[p] * brow[p];
          crow[j] = (acc0 + acc1) + (acc2 + acc3);
        }
      },
      nullptr, "tensor.matmul_tb");
  return c;
}

}  // namespace o2sr::nn
