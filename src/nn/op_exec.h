#ifndef O2SR_NN_OP_EXEC_H_
#define O2SR_NN_OP_EXEC_H_

#include <vector>

#include "nn/op.h"
#include "nn/tensor.h"

namespace o2sr::nn {

// One tape node: the op descriptor plus its (possibly lazily materialized)
// value and gradient slots. The eager executor fills `value` at record time
// and `grad` with zeros; the planned executor leaves both empty until a
// flush materializes them (often from a plan's buffer arena).
struct TapeNode {
  OpDesc desc;
  Tensor value;
  Tensor grad;
};

namespace detail {

// The single op dispatcher shared by the eager reference path and the
// compiled-plan path (DESIGN.md §13). Semantics — accumulation order, the
// float/double conversions, the scatter orders — are the bit-exactness
// contract: both executors call exactly these functions, so they cannot
// drift apart.

// Materializes nodes[id].value (allocating the output when the slot is
// empty) by running the op's forward kernels. kParam leaves are
// materialized as a copy of Parameter::value; kInput leaves must already
// hold their tensor.
void ExecuteForward(std::vector<TapeNode>& nodes, int id);

// Accumulates the gradients of nodes[id]'s inputs from nodes[id].grad
// (materializing grad slots with zeros as needed). For kParam leaves the
// gradient lands in Parameter::grad.
void ExecuteBackward(std::vector<TapeNode>& nodes, int id);

// Input-value resolution with the planned-mode fallbacks: an empty kParam
// slot reads Parameter::value directly (no copy), any other empty slot —
// an intermediate the plan fused away that a later op still reads — is
// recomputed once into its slot.
const Tensor& InputValue(std::vector<TapeNode>& nodes, int id);

// Gradient slot of a node, materialized with zeros when empty.
Tensor& GradSlot(std::vector<TapeNode>& nodes, int id);

// --- fused execution (plan fusion groups; see plan.h) ---
// Op semantics stay in this translation unit: the plan compiler only
// decides *which* of these run, never what they compute.

// Pattern A: MatMul [+ AddRowBroadcast] [+ activation] executed as one
// region ("nn.linear_act"). Only the group tail's value is materialized;
// each row is multiplied, biased and activated in place, with per-element
// arithmetic identical to the unfused ops. bias_id / act_id are -1 when
// the group lacks that member (at least one must be present).
void FusedLinearForward(std::vector<TapeNode>& nodes, int matmul_id,
                        int bias_id, int act_id);
// Backward of pattern A. The activation backward reads the activation
// *output* (sign-equivalent to the input test for relu/leaky-relu, exact
// for sigmoid/tanh), so the fused-away pre-activation value is never
// needed. Gradients of every group node are materialized — external reads
// behave exactly as in eager mode.
void FusedLinearBackward(std::vector<TapeNode>& nodes, int matmul_id,
                         int bias_id, int act_id);
// Pattern B: MulColBroadcast -> SegmentSum as one scatter
// ("nn.mul_col_segment_sum"); the [E x C] product is never materialized.
// Backward needs no fused form (neither op's backward reads the product).
void FusedScatterForward(std::vector<TapeNode>& nodes, int mul_id,
                         int segsum_id);

}  // namespace detail
}  // namespace o2sr::nn

#endif  // O2SR_NN_OP_EXEC_H_
