#ifndef O2SR_NN_PLAN_H_
#define O2SR_NN_PLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/op_exec.h"

namespace o2sr::nn {

// Compiled execution schedules for tape segments (DESIGN.md §13).
//
// In planned mode (O2SR_PLAN unset/on) the tape records ops without running
// them; the first value/grad/Backward access flushes the pending segment:
// the segment's structural signature is looked up in the process-wide
// PlanCache, compiled once into a Plan — a per-node schedule with fusion
// groups — and executed inside one exec::Session so every parallel region
// of the step reuses the same hot worker set.
//
// Fusion rules (both patterns require consecutive node ids and
// single-consumer intermediates, which keeps the order of
// externally-visible gradient accumulations identical to eager mode):
//   A. MatMul [+ AddRowBroadcast] [+ Relu|LeakyRelu|Sigmoid|Tanh]
//      -> one "nn.linear_act" region; intermediates never materialize.
//   B. MulColBroadcast + SegmentSum
//      -> one "nn.mul_col_segment_sum" scatter; the edgewise product
//      never materializes.
//
// A Plan holds no tensors and no index data — it is pure schedule — so one
// cached Plan serves every step (and every serving thread) whose segment
// has the same structure.

// How the planned executor treats one node.
enum class PlanRole : uint8_t {
  kDefault,         // forward + backward through the shared op dispatcher
  kParamLeaf,       // forward skipped: InputValue reads Parameter::value
                    // directly (no per-step table copy); backward normal
  kLinearHead,      // pattern A head (the MatMul): fused forward/backward
  kLinearInternal,  // pattern A member: both passes handled at the head
  kScatterHead,     // pattern B head (the MulColBroadcast): fused forward,
                    // generic backward
  kScatterTail,     // pattern B tail (the SegmentSum): forward written by
                    // the head, generic backward
};

struct PlanStep {
  PlanRole role = PlanRole::kDefault;
  // Pattern A group members (absolute node ids, -1 when absent).
  int bias_node = -1;
  int act_node = -1;
  // Pattern B tail node id.
  int tail = -1;
};

class Plan {
 public:
  // Node id range [begin, end) this plan schedules.
  int begin = 0;
  int end = 0;
  // One step per node in [begin, end).
  std::vector<PlanStep> steps;

  // Analyzes the segment and builds the schedule (fusion legality only
  // depends on op kinds, shapes and the def-use structure, all known at
  // record time).
  static std::shared_ptr<const Plan> Compile(
      const std::vector<TapeNode>& nodes, int begin, int end);
};

// Process-wide cache keyed by the exact structural signature of a segment
// (op kinds, shapes, attributes and relative input ids — byte-for-byte, so
// two segments share a plan only when they are structurally identical).
class PlanCache {
 public:
  static PlanCache& Global();

  std::shared_ptr<const Plan> GetOrCompile(const std::vector<TapeNode>& nodes,
                                           int begin, int end);

  size_t size() const;
  void Clear();

 private:
  PlanCache() = default;

  // Recompiling is cheap; past this many cached plans the cache is simply
  // reset (a safety valve against unbounded structural variety, not an
  // LRU anyone should hit in practice).
  static constexpr size_t kMaxPlans = 256;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Plan>> plans_;
};

// True when O2SR_PLAN enables the planned executor (default on; "off",
// "0" and "eager" select the bit-identical eager reference path).
bool PlanEnabledFromEnv();

namespace detail {

// Executes a flushed segment's forward pass under one exec::Session.
void RunPlanForward(const Plan& plan, std::vector<TapeNode>& nodes);

// Reverse walk from loss_id to node 0 under one exec::Session. `steps` is
// the tape's per-node schedule (concatenated over its flushed segments).
// Every node id <= loss_id is visited, exactly like the eager walk.
void RunPlanBackward(const std::vector<PlanStep>& steps,
                     std::vector<TapeNode>& nodes, int loss_id);

}  // namespace detail
}  // namespace o2sr::nn

#endif  // O2SR_NN_PLAN_H_
