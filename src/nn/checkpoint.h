#ifndef O2SR_NN_CHECKPOINT_H_
#define O2SR_NN_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/parameter.h"

namespace o2sr::nn {

// Crash-safe binary checkpointing of a training run: every nn::Parameter of
// a ParameterStore (by name and shape), the Adam moment estimates, and the
// trainer bookkeeping needed to resume bit-identically (epoch, learning
// rate, recovery count, RNG stream state, best loss).
//
// Format (little-endian): an 8-byte magic "O2SRCKPT", a u32 format version,
// a u64 payload size, the payload, and a u64 FNV-1a checksum of the
// payload. Files are written atomically (temp file in the same directory,
// then rename), so an interrupted save never leaves a half-written
// checkpoint under the real name — the previous checkpoint survives.
//
// Loading validates magic, version, size and checksum (DATA_LOSS on any
// mismatch, including truncation) and that the parameter names and shapes
// match the live store exactly (FAILED_PRECONDITION otherwise — the
// checkpoint belongs to a different model or configuration).

inline constexpr uint32_t kCheckpointFormatVersion = 1;

// Trainer bookkeeping stored alongside the tensors.
struct CheckpointMeta {
  int32_t epoch = 0;           // completed epochs
  double learning_rate = 0.0;  // possibly backed off from the initial rate
  int32_t recoveries = 0;      // sentinel trips recovered so far
  double best_loss = 0.0;      // divergence-monitor reference
  std::string rng_state;       // Rng::SaveState of the training RNG
};

// Serializes meta + parameter values + optimizer moments to `path`
// atomically. `adam` is captured via AdamOptimizer::SaveState().
common::Status SaveCheckpoint(const std::string& path,
                              const CheckpointMeta& meta,
                              const ParameterStore& store,
                              const AdamState& adam);

// Restores a checkpoint into an existing store (values are written in
// place; gradients are untouched). `adam` receives the saved moments; pass
// it to AdamOptimizer::LoadState afterwards.
common::Status LoadCheckpoint(const std::string& path, CheckpointMeta* meta,
                              ParameterStore* store, AdamState* adam);

// True when `path` exists and is readable (used to decide resume-vs-fresh).
bool CheckpointExists(const std::string& path);

}  // namespace o2sr::nn

#endif  // O2SR_NN_CHECKPOINT_H_
