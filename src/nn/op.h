#ifndef O2SR_NN_OP_H_
#define O2SR_NN_OP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace o2sr::nn {

class Parameter;

// The op vocabulary of the tape. One OpDesc fully describes a node: kind,
// output shape, producer ids and the op's scalar/index attributes. Both
// executors consume the same descriptor — the eager reference path runs it
// immediately, the planned path records it and compiles a schedule — so op
// semantics exist in exactly one place (op_exec.cc).
enum class OpKind : uint8_t {
  kInput,
  kParam,
  kMatMul,
  kAdd,
  kAddN,
  kSub,
  kMul,
  kScale,
  kAddRowBroadcast,
  kMulColBroadcast,
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kTanh,
  kSoftmaxRows,
  kConcatCols,
  kSliceCols,
  kRowwiseDot,
  kDropout,
  kGatherRows,
  kSegmentSoftmax,
  kSegmentSum,
  kSegmentMean,
  kMeanAll,
  kMseLoss,
  kMaeLoss,
};

const char* OpKindName(OpKind kind);

struct OpDesc {
  OpKind kind = OpKind::kInput;
  // Output shape, known at record time (shape inference never needs the
  // input *values*, which is what makes deferred execution possible).
  int rows = 0;
  int cols = 0;
  // Scale factor (kScale) or negative slope (kLeakyRelu).
  float alpha = 0.0f;
  // kSliceCols start column (the width is `cols`).
  int slice_start = 0;
  // kSegment*: number of output segments.
  int num_segments = 0;
  // Producer node ids, in op order.
  std::vector<int> inputs;
  // Row/segment indices (kGatherRows, kSegment*); shared so plans can hold
  // the schedule without copying index vectors.
  std::shared_ptr<const std::vector<int>> index;
  // kSegmentMean: per-segment element counts.
  std::shared_ptr<const std::vector<int>> counts;
  // kDropout: the inverted-dropout mask, drawn at record time so the RNG
  // consumption order is identical in eager and planned execution.
  std::shared_ptr<const Tensor> mask;
  // kParam leaf.
  Parameter* param = nullptr;
};

}  // namespace o2sr::nn

#endif  // O2SR_NN_OP_H_
