#include "nn/op_exec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "exec/thread_pool.h"
#include "nn/buffer_pool.h"
#include "nn/kernels/kernels.h"
#include "nn/parameter.h"
#include "obs/profiler.h"

namespace o2sr::nn {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kParam: return "param";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kAdd: return "add";
    case OpKind::kAddN: return "add_n";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kScale: return "scale";
    case OpKind::kAddRowBroadcast: return "add_row_broadcast";
    case OpKind::kMulColBroadcast: return "mul_col_broadcast";
    case OpKind::kRelu: return "relu";
    case OpKind::kLeakyRelu: return "leaky_relu";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kTanh: return "tanh";
    case OpKind::kSoftmaxRows: return "softmax_rows";
    case OpKind::kConcatCols: return "concat_cols";
    case OpKind::kSliceCols: return "slice_cols";
    case OpKind::kRowwiseDot: return "rowwise_dot";
    case OpKind::kDropout: return "dropout";
    case OpKind::kGatherRows: return "gather_rows";
    case OpKind::kSegmentSoftmax: return "segment_softmax";
    case OpKind::kSegmentSum: return "segment_sum";
    case OpKind::kSegmentMean: return "segment_mean";
    case OpKind::kMeanAll: return "mean_all";
    case OpKind::kMseLoss: return "mse_loss";
    case OpKind::kMaeLoss: return "mae_loss";
  }
  return "unknown";
}

namespace detail {
namespace {

// Grains are pure functions of the shapes, never of the thread count
// (DESIGN.md §8). They are deliberately much coarser than the tensor.cc
// legacy policy: every kernel dispatched here parallelizes over disjoint
// output rows/elements (no cross-chunk accumulation), so the chunk size
// cannot change bits — only scheduling overhead. ~2M flops per chunk keeps
// the big [edges x dim] matmuls at a handful of chunks per region (still
// plenty for a 4-lane pool) instead of the thousands the old 64K-flop
// grain produced. Reductions are NOT dispatched through this file; their
// fold association is pinned by the tensor.cc grain, which must not change.
constexpr int64_t kFlopsPerChunk = int64_t{1} << 21;
constexpr int64_t kElementGrain = int64_t{1} << 18;

int64_t RowGrain(int64_t flops_per_row) {
  return std::max<int64_t>(1,
                           kFlopsPerChunk / std::max<int64_t>(1, flops_per_row));
}

// Row grain for elementwise-cost row ops (copies, broadcasts).
int64_t RowGrainElems(int cols) {
  return std::max<int64_t>(1, kElementGrain / std::max(1, cols));
}

// Runs chunk_fn over [0, n) in grain-sized chunks. A single-chunk kernel
// runs directly on the caller — such a region could never leave the calling
// thread, so it is not recorded as a parallel region (this is most of the
// chunk-count reduction the plan executor is gated on; the multi-chunk
// dispatch path keeps full accounting under `name`).
template <typename Fn>
void Dispatch(int64_t n, int64_t grain, const char* name, Fn&& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n <= grain) {
    fn(int64_t{0}, n);
    return;
  }
  exec::CurrentPool().RunChunks(n, grain, fn, nullptr, name);
}

// Forward-pass attribution, same accounting as the pre-plan tape: each op
// allocates its output plus a same-shaped grad, and moves its operands and
// output once. Items = output elements.
inline void ProfileOp(const char* name, const Tensor& out,
                      uint64_t operand_bytes) {
  O2SR_PROFILE_OP(name, uint64_t{2} * out.size() * sizeof(float),
                  operand_bytes + out.size() * sizeof(float), out.size());
}

inline uint64_t TensorBytes(const Tensor& t) {
  return t.size() * sizeof(float);
}

bool Materialized(const TapeNode& n) {
  return n.value.rows() == n.desc.rows && n.value.cols() == n.desc.cols;
}

// Output slot, drawn from the recycling pool when not already materialized.
// Pooled buffers carry stale contents; every forward op either fully
// overwrites its output or Fill(0)s it first, so reuse cannot change bits.
Tensor& EnsureOut(TapeNode& n) {
  if (!Materialized(n)) {
    n.value = TensorPool::Global().Acquire(n.desc.rows, n.desc.cols);
  }
  return n.value;
}

}  // namespace

const Tensor& InputValue(std::vector<TapeNode>& nodes, int id) {
  TapeNode& n = nodes[static_cast<size_t>(id)];
  // A param leaf the plan left unmaterialized reads the parameter storage
  // directly (saves the per-step embedding-table copy).
  if (n.desc.kind == OpKind::kParam && n.value.empty()) {
    return n.desc.param->value;
  }
  // A fused-away intermediate read from outside its fusion group: recompute
  // it once into its slot.
  if (!Materialized(n)) ExecuteForward(nodes, id);
  return n.value;
}

Tensor& GradSlot(std::vector<TapeNode>& nodes, int id) {
  TapeNode& n = nodes[static_cast<size_t>(id)];
  if (n.grad.rows() != n.desc.rows || n.grad.cols() != n.desc.cols) {
    n.grad = TensorPool::Global().AcquireZeroed(n.desc.rows, n.desc.cols);
  }
  return n.grad;
}

void ExecuteForward(std::vector<TapeNode>& nodes, int id) {
  TapeNode& node = nodes[static_cast<size_t>(id)];
  const OpDesc& d = node.desc;
  const kernels::KernelTable& K = kernels::Active();
  switch (d.kind) {
    case OpKind::kInput:
      O2SR_CHECK(Materialized(node));  // inputs carry their tensor
      return;
    case OpKind::kParam:
      if (!Materialized(node)) node.value = d.param->value;
      return;
    case OpKind::kMatMul: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      const int k = a.cols(), n = b.cols();
      ProfileOp("tape.matmul", out, TensorBytes(a) + TensorBytes(b));
      Dispatch(a.rows(), RowGrain(int64_t{2} * k * n), "nn.matmul",
               [&](int64_t rb, int64_t re) {
                 K.matmul_rows(a.data(), b.data(), out.data(), rb, re, k, n,
                               /*accumulate=*/false);
               });
      return;
    }
    case OpKind::kAdd: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.add", out, TensorBytes(a) + TensorBytes(b));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.add",
               [&](int64_t bi, int64_t ei) {
                 K.add(a.data(), b.data(), out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kAddN: {
      std::vector<const float*> ins;
      ins.reserve(d.inputs.size());
      for (int in : d.inputs) ins.push_back(InputValue(nodes, in).data());
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.add_n", out,
                static_cast<uint64_t>(d.inputs.size()) * TensorBytes(out));
      float* o = out.data();
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.add",
               [&](int64_t bi, int64_t ei) {
                 if (ins.size() == 1) {
                   std::copy(ins[0] + bi, ins[0] + ei, o + bi);
                   return;
                 }
                 K.add(ins[0], ins[1], o, bi, ei);
                 for (size_t i = 2; i < ins.size(); ++i) {
                   K.acc_add(o, ins[i], bi, ei);
                 }
               });
      return;
    }
    case OpKind::kSub: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.sub", out, TensorBytes(a) + TensorBytes(b));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.sub",
               [&](int64_t bi, int64_t ei) {
                 K.sub(a.data(), b.data(), out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kMul: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.mul", out, TensorBytes(a) + TensorBytes(b));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.mul",
               [&](int64_t bi, int64_t ei) {
                 K.mul(a.data(), b.data(), out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kScale: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.scale", out, TensorBytes(out));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.scale",
               [&](int64_t bi, int64_t ei) {
                 K.scale(a.data(), d.alpha, out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kAddRowBroadcast: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.add_row_broadcast", out,
                TensorBytes(x) + TensorBytes(b));
      Dispatch(x.rows(), RowGrainElems(x.cols()), "nn.add_row_broadcast",
               [&](int64_t rb, int64_t re) {
                 K.add_row_broadcast(x.data(), b.data(), out.data(), rb, re,
                                     x.cols());
               });
      return;
    }
    case OpKind::kMulColBroadcast: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      const Tensor& c = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.mul_col_broadcast", out,
                TensorBytes(x) + TensorBytes(c));
      Dispatch(x.rows(), RowGrainElems(x.cols()), "nn.mul_col_broadcast",
               [&](int64_t rb, int64_t re) {
                 K.mul_col_broadcast(x.data(), c.data(), out.data(), rb, re,
                                     x.cols());
               });
      return;
    }
    case OpKind::kRelu: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.relu", out, TensorBytes(out));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.relu",
               [&](int64_t bi, int64_t ei) {
                 K.relu(x.data(), out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kLeakyRelu: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.leaky_relu", out, TensorBytes(x));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain,
               "nn.leaky_relu", [&](int64_t bi, int64_t ei) {
                 K.leaky_relu(x.data(), d.alpha, out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kSigmoid: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.sigmoid", out, TensorBytes(x));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.sigmoid",
               [&](int64_t bi, int64_t ei) {
                 kernels::SigmoidForward(x.data(), out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kTanh: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.tanh", out, TensorBytes(x));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.tanh",
               [&](int64_t bi, int64_t ei) {
                 kernels::TanhForward(x.data(), out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kSoftmaxRows: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.softmax_rows", out, TensorBytes(x));
      Dispatch(x.rows(), RowGrainElems(x.cols()), "nn.softmax_rows",
               [&](int64_t rb, int64_t re) {
                 kernels::SoftmaxRowsForward(x.data(), out.data(), rb, re,
                                             x.cols());
               });
      return;
    }
    case OpKind::kConcatCols: {
      std::vector<const float*> ins;
      std::vector<int> widths;
      ins.reserve(d.inputs.size());
      widths.reserve(d.inputs.size());
      for (int in : d.inputs) {
        const Tensor& t = InputValue(nodes, in);
        ins.push_back(t.data());
        widths.push_back(t.cols());
      }
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.concat_cols", out, TensorBytes(out));
      const int total = out.cols();
      float* o = out.data();
      Dispatch(out.rows(), RowGrainElems(total), "nn.concat_cols",
               [&](int64_t rb, int64_t re) {
                 for (int64_t r = rb; r < re; ++r) {
                   float* dst = o + r * total;
                   for (size_t k = 0; k < ins.size(); ++k) {
                     const float* src = ins[k] + r * widths[k];
                     std::copy(src, src + widths[k], dst);
                     dst += widths[k];
                   }
                 }
               });
      return;
    }
    case OpKind::kSliceCols: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.slice_cols", out, TensorBytes(out));
      const int xc = x.cols(), count = out.cols(), start = d.slice_start;
      const float* xp = x.data();
      float* o = out.data();
      Dispatch(out.rows(), RowGrainElems(count), "nn.slice_cols",
               [&](int64_t rb, int64_t re) {
                 for (int64_t r = rb; r < re; ++r) {
                   const float* src = xp + r * xc + start;
                   std::copy(src, src + count, o + r * count);
                 }
               });
      return;
    }
    case OpKind::kRowwiseDot: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.rowwise_dot", out, TensorBytes(a) + TensorBytes(b));
      Dispatch(a.rows(), RowGrain(2 * a.cols()), "nn.rowwise_dot",
               [&](int64_t rb, int64_t re) {
                 kernels::RowwiseDotForward(a.data(), b.data(), out.data(),
                                            rb, re, a.cols());
               });
      return;
    }
    case OpKind::kDropout: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      const Tensor& mask = *d.mask;
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.dropout", out, TensorBytes(x) + TensorBytes(mask));
      Dispatch(static_cast<int64_t>(out.size()), kElementGrain, "nn.mul",
               [&](int64_t bi, int64_t ei) {
                 K.mul(x.data(), mask.data(), out.data(), bi, ei);
               });
      return;
    }
    case OpKind::kGatherRows: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.gather_rows", out, TensorBytes(out));
      const int cols = x.cols();
      const int* idx = d.index->data();
      Dispatch(static_cast<int64_t>(d.index->size()), RowGrainElems(cols),
               "nn.gather_rows", [&](int64_t eb, int64_t ee) {
                 kernels::GatherRowsForward(x.data(), idx + eb, ee - eb,
                                            out.data() + eb * cols, cols);
               });
      return;
    }
    case OpKind::kSegmentSoftmax: {
      const Tensor& s = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.segment_softmax", out, TensorBytes(s));
      // Cross-element segment reductions: one ordered pass (the segment
      // max/sum accumulation order is the contract).
      kernels::SegmentSoftmaxForward(s.data(), d.index->data(), s.rows(),
                                     d.num_segments, out.data());
      return;
    }
    case OpKind::kSegmentSum: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      out.Fill(0.0f);  // arena buffers carry the previous step's values
      ProfileOp("tape.segment_sum", out, TensorBytes(x));
      kernels::SegmentSumForward(x.data(), d.index->data(), x.rows(),
                                 out.data(), x.cols());
      return;
    }
    case OpKind::kSegmentMean: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      out.Fill(0.0f);
      ProfileOp("tape.segment_mean", out, TensorBytes(x));
      kernels::SegmentMeanForward(x.data(), d.index->data(),
                                  d.counts->data(), x.rows(), out.data(),
                                  x.cols());
      return;
    }
    case OpKind::kMeanAll: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.mean_all", out, TensorBytes(x));
      // Tensor::Sum folds fixed-grain partials left-to-right; that
      // association is the contract at every thread count.
      out.at(0, 0) = static_cast<float>(x.Sum() / x.size());
      return;
    }
    case OpKind::kMseLoss: {
      const Tensor& p = InputValue(nodes, d.inputs[0]);
      const Tensor& t = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.mse_loss", out, TensorBytes(p) + TensorBytes(t));
      out.at(0, 0) = static_cast<float>(
          kernels::MseForward(p.data(), t.data(),
                              static_cast<int64_t>(p.size())));
      return;
    }
    case OpKind::kMaeLoss: {
      const Tensor& p = InputValue(nodes, d.inputs[0]);
      const Tensor& t = InputValue(nodes, d.inputs[1]);
      Tensor& out = EnsureOut(node);
      ProfileOp("tape.mae_loss", out, TensorBytes(p) + TensorBytes(t));
      out.at(0, 0) = static_cast<float>(
          kernels::MaeForward(p.data(), t.data(),
                              static_cast<int64_t>(p.size())));
      return;
    }
  }
  O2SR_CHECK(false);  // unreachable: every kind returns above
}

void ExecuteBackward(std::vector<TapeNode>& nodes, int id) {
  TapeNode& node = nodes[static_cast<size_t>(id)];
  const OpDesc& d = node.desc;
  const kernels::KernelTable& K = kernels::Active();
  const Tensor& g = GradSlot(nodes, id);
  switch (d.kind) {
    case OpKind::kInput:
      return;
    case OpKind::kParam:
      d.param->grad.AddInPlace(g);
      return;
    case OpKind::kMatMul: {
      // dA += dC * B^T ; dB += A^T * dC. Accumulate-mode kernels replicate
      // the reference temp-then-add (the row sum is built first, then added
      // once per element), without materializing the temps.
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& ga = GradSlot(nodes, d.inputs[0]);
      Tensor& gb = GradSlot(nodes, d.inputs[1]);
      const int m = a.rows(), k = a.cols(), n = b.cols();
      ProfileOp("tape.matmul_bwd", g, TensorBytes(a) + TensorBytes(b));
      Dispatch(m, RowGrain(int64_t{2} * n * k), "nn.matmul_tb",
               [&](int64_t rb, int64_t re) {
                 K.matmul_tb_rows(g.data(), b.data(), ga.data(), rb, re,
                                  /*k=*/n, /*n=*/k, /*accumulate=*/true);
               });
      Dispatch(k, RowGrain(int64_t{2} * m * n), "nn.matmul_ta",
               [&](int64_t rb, int64_t re) {
                 K.matmul_ta_rows(a.data(), g.data(), gb.data(), rb, re,
                                  /*m=*/k, /*k=*/m, /*n=*/n,
                                  /*accumulate=*/true);
               });
      return;
    }
    case OpKind::kAdd: {
      Tensor& ga = GradSlot(nodes, d.inputs[0]);
      Tensor& gb = GradSlot(nodes, d.inputs[1]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain, "nn.acc_add",
               [&](int64_t bi, int64_t ei) {
                 K.acc_add(ga.data(), g.data(), bi, ei);
                 K.acc_add(gb.data(), g.data(), bi, ei);
               });
      return;
    }
    case OpKind::kAddN: {
      std::vector<float*> gs;
      gs.reserve(d.inputs.size());
      for (int in : d.inputs) gs.push_back(GradSlot(nodes, in).data());
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain, "nn.acc_add",
               [&](int64_t bi, int64_t ei) {
                 for (float* gi : gs) K.acc_add(gi, g.data(), bi, ei);
               });
      return;
    }
    case OpKind::kSub: {
      Tensor& ga = GradSlot(nodes, d.inputs[0]);
      Tensor& gb = GradSlot(nodes, d.inputs[1]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain, "nn.acc_add",
               [&](int64_t bi, int64_t ei) {
                 K.acc_add(ga.data(), g.data(), bi, ei);
                 K.acc_sub(gb.data(), g.data(), bi, ei);
               });
      return;
    }
    case OpKind::kMul: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& ga = GradSlot(nodes, d.inputs[0]);
      Tensor& gb = GradSlot(nodes, d.inputs[1]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain, "nn.acc_mul",
               [&](int64_t bi, int64_t ei) {
                 K.acc_mul(ga.data(), g.data(), b.data(), bi, ei);
                 K.acc_mul(gb.data(), g.data(), a.data(), bi, ei);
               });
      return;
    }
    case OpKind::kScale: {
      Tensor& ga = GradSlot(nodes, d.inputs[0]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain, "nn.acc_scale",
               [&](int64_t bi, int64_t ei) {
                 K.acc_scale(ga.data(), g.data(), d.alpha, bi, ei);
               });
      return;
    }
    case OpKind::kAddRowBroadcast: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      Tensor& gb = GradSlot(nodes, d.inputs[1]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain, "nn.acc_add",
               [&](int64_t bi, int64_t ei) {
                 K.acc_add(gx.data(), g.data(), bi, ei);
               });
      // Bias gradient sums rows in order (the accumulation order pins the
      // result); runs unchunked.
      kernels::ColSumAcc(g.data(), gb.data(), g.rows(), g.cols());
      return;
    }
    case OpKind::kMulColBroadcast: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      const Tensor& c = InputValue(nodes, d.inputs[1]);
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      Tensor& gc = GradSlot(nodes, d.inputs[1]);
      Dispatch(g.rows(), RowGrainElems(g.cols()), "nn.acc_mul_col_bwd_x",
               [&](int64_t rb, int64_t re) {
                 K.acc_mul_col_bwd_x(g.data(), c.data(), gx.data(), rb, re,
                                     g.cols());
               });
      Dispatch(g.rows(), RowGrain(2 * g.cols()), "nn.mul_col_bwd_col",
               [&](int64_t rb, int64_t re) {
                 kernels::MulColBwdColAcc(g.data(), x.data(), gc.data(), rb,
                                          re, g.cols());
               });
      return;
    }
    case OpKind::kRelu: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain,
               "nn.acc_relu_bwd", [&](int64_t bi, int64_t ei) {
                 K.acc_relu_bwd(x.data(), g.data(), gx.data(), bi, ei);
               });
      return;
    }
    case OpKind::kLeakyRelu: {
      const Tensor& x = InputValue(nodes, d.inputs[0]);
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain,
               "nn.acc_leaky_bwd", [&](int64_t bi, int64_t ei) {
                 K.acc_leaky_bwd(x.data(), d.alpha, g.data(), gx.data(), bi,
                                 ei);
               });
      return;
    }
    case OpKind::kSigmoid: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain,
               "nn.acc_sigmoid_bwd", [&](int64_t bi, int64_t ei) {
                 K.acc_sigmoid_bwd(node.value.data(), g.data(), gx.data(),
                                   bi, ei);
               });
      return;
    }
    case OpKind::kTanh: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain,
               "nn.acc_tanh_bwd", [&](int64_t bi, int64_t ei) {
                 K.acc_tanh_bwd(node.value.data(), g.data(), gx.data(), bi,
                                ei);
               });
      return;
    }
    case OpKind::kSoftmaxRows: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      Dispatch(g.rows(), RowGrain(2 * g.cols()), "nn.softmax_rows_bwd",
               [&](int64_t rb, int64_t re) {
                 kernels::SoftmaxRowsBackward(node.value.data(), g.data(),
                                              gx.data(), rb, re, g.cols());
               });
      return;
    }
    case OpKind::kConcatCols: {
      int offset = 0;
      for (int in : d.inputs) {
        Tensor& gi = GradSlot(nodes, in);
        const int w = gi.cols(), total = g.cols(), off = offset;
        Dispatch(g.rows(), RowGrainElems(w), "nn.acc_add",
                 [&](int64_t rb, int64_t re) {
                   for (int64_t r = rb; r < re; ++r) {
                     K.acc_add(gi.data() + r * w, g.data() + r * total + off,
                               0, w);
                   }
                 });
        offset += w;
      }
      return;
    }
    case OpKind::kSliceCols: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      const int xc = gx.cols(), count = g.cols(), start = d.slice_start;
      Dispatch(g.rows(), RowGrainElems(count), "nn.acc_add",
               [&](int64_t rb, int64_t re) {
                 for (int64_t r = rb; r < re; ++r) {
                   K.acc_add(gx.data() + r * xc + start,
                             g.data() + r * count, 0, count);
                 }
               });
      return;
    }
    case OpKind::kRowwiseDot: {
      const Tensor& a = InputValue(nodes, d.inputs[0]);
      const Tensor& b = InputValue(nodes, d.inputs[1]);
      Tensor& ga = GradSlot(nodes, d.inputs[0]);
      Tensor& gb = GradSlot(nodes, d.inputs[1]);
      Dispatch(a.rows(), RowGrainElems(a.cols()), "nn.acc_rowwise_dot_bwd",
               [&](int64_t rb, int64_t re) {
                 K.acc_rowwise_dot_bwd(g.data(), a.data(), b.data(),
                                       ga.data(), gb.data(), rb, re,
                                       a.cols());
               });
      return;
    }
    case OpKind::kDropout: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      const Tensor& mask = *d.mask;
      Dispatch(static_cast<int64_t>(g.size()), kElementGrain, "nn.acc_mul",
               [&](int64_t bi, int64_t ei) {
                 K.acc_mul(gx.data(), g.data(), mask.data(), bi, ei);
               });
      return;
    }
    case OpKind::kGatherRows: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      // Scatter-add with possibly duplicate indices: e-order is the
      // contract, runs unchunked.
      kernels::GatherRowsBackward(g.data(), d.index->data(),
                                  static_cast<int64_t>(d.index->size()),
                                  gx.data(), gx.cols());
      return;
    }
    case OpKind::kSegmentSoftmax: {
      Tensor& gs = GradSlot(nodes, d.inputs[0]);
      kernels::SegmentSoftmaxBackward(node.value.data(), g.data(),
                                      d.index->data(), node.value.rows(),
                                      d.num_segments, gs.data());
      return;
    }
    case OpKind::kSegmentSum: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      const int cols = gx.cols();
      const int* seg = d.index->data();
      Dispatch(gx.rows(), RowGrainElems(cols), "nn.segment_sum_bwd",
               [&](int64_t eb, int64_t ee) {
                 kernels::SegmentSumBackward(g.data(), seg + eb, ee - eb,
                                             gx.data() + eb * cols, cols);
               });
      return;
    }
    case OpKind::kSegmentMean: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      const int cols = gx.cols();
      const int* seg = d.index->data();
      const int* counts = d.counts->data();
      Dispatch(gx.rows(), RowGrainElems(cols), "nn.segment_mean_bwd",
               [&](int64_t eb, int64_t ee) {
                 kernels::SegmentMeanBackward(g.data(), seg + eb, counts,
                                              ee - eb, gx.data() + eb * cols,
                                              cols);
               });
      return;
    }
    case OpKind::kMeanAll: {
      Tensor& gx = GradSlot(nodes, d.inputs[0]);
      const float gv = g.at(0, 0) / static_cast<float>(gx.size());
      Dispatch(static_cast<int64_t>(gx.size()), kElementGrain,
               "nn.acc_const", [&](int64_t bi, int64_t ei) {
                 K.acc_const(gx.data(), gv, bi, ei);
               });
      return;
    }
    case OpKind::kMseLoss: {
      const Tensor& p = InputValue(nodes, d.inputs[0]);
      const Tensor& t = InputValue(nodes, d.inputs[1]);
      Tensor& gp = GradSlot(nodes, d.inputs[0]);
      Tensor& gt = GradSlot(nodes, d.inputs[1]);
      const float scale = 2.0f * g.at(0, 0) / static_cast<float>(p.size());
      Dispatch(static_cast<int64_t>(p.size()), kElementGrain, "nn.mse_bwd",
               [&](int64_t bi, int64_t ei) {
                 kernels::MseBackward(p.data() + bi, t.data() + bi, scale,
                                      gp.data() + bi, gt.data() + bi,
                                      ei - bi);
               });
      return;
    }
    case OpKind::kMaeLoss: {
      const Tensor& p = InputValue(nodes, d.inputs[0]);
      const Tensor& t = InputValue(nodes, d.inputs[1]);
      Tensor& gp = GradSlot(nodes, d.inputs[0]);
      Tensor& gt = GradSlot(nodes, d.inputs[1]);
      const float scale = g.at(0, 0) / static_cast<float>(p.size());
      Dispatch(static_cast<int64_t>(p.size()), kElementGrain, "nn.mae_bwd",
               [&](int64_t bi, int64_t ei) {
                 kernels::MaeBackward(p.data() + bi, t.data() + bi, scale,
                                      gp.data() + bi, gt.data() + bi,
                                      ei - bi);
               });
      return;
    }
  }
  O2SR_CHECK(false);  // unreachable
}

void FusedLinearForward(std::vector<TapeNode>& nodes, int matmul_id,
                        int bias_id, int act_id) {
  const OpDesc& md = nodes[static_cast<size_t>(matmul_id)].desc;
  const Tensor& a = InputValue(nodes, md.inputs[0]);
  const Tensor& w = InputValue(nodes, md.inputs[1]);
  const float* bias = nullptr;
  uint64_t operand_bytes = TensorBytes(a) + TensorBytes(w);
  if (bias_id >= 0) {
    const Tensor& b =
        InputValue(nodes, nodes[static_cast<size_t>(bias_id)].desc.inputs[1]);
    bias = b.data();
    operand_bytes += TensorBytes(b);
  }
  const int out_id = act_id >= 0 ? act_id : bias_id;
  TapeNode& out_node = nodes[static_cast<size_t>(out_id)];
  const OpKind act =
      act_id >= 0 ? out_node.desc.kind : OpKind::kInput /*none*/;
  const float slope = act_id >= 0 ? out_node.desc.alpha : 0.0f;
  Tensor& out = EnsureOut(out_node);
  const int k = a.cols(), n = w.cols();
  ProfileOp("plan.linear_act", out, operand_bytes);
  const kernels::KernelTable& K = kernels::Active();
  Dispatch(a.rows(), RowGrain(int64_t{2} * k * n), "nn.linear_act",
           [&](int64_t rb, int64_t re) {
             // Row block: matmul, then bias and activation in place. Same
             // per-element expressions as the unfused ops, so the result
             // is bit-identical — only the intermediates go away.
             K.matmul_rows(a.data(), w.data(), out.data(), rb, re, k, n,
                           /*accumulate=*/false);
             if (bias != nullptr) {
               K.add_row_broadcast(out.data(), bias, out.data(), rb, re, n);
             }
             const int64_t eb = rb * n, ee = re * n;
             switch (act) {
               case OpKind::kRelu:
                 K.relu(out.data(), out.data(), eb, ee);
                 break;
               case OpKind::kLeakyRelu:
                 K.leaky_relu(out.data(), slope, out.data(), eb, ee);
                 break;
               case OpKind::kSigmoid:
                 kernels::SigmoidForward(out.data(), out.data(), eb, ee);
                 break;
               case OpKind::kTanh:
                 kernels::TanhForward(out.data(), out.data(), eb, ee);
                 break;
               default:
                 break;  // bias-only group
             }
           });
}

void FusedLinearBackward(std::vector<TapeNode>& nodes, int matmul_id,
                         int bias_id, int act_id) {
  const kernels::KernelTable& K = kernels::Active();
  if (act_id >= 0) {
    // Activation backward into the pre-activation node's grad slot, read
    // from the activation *output* (the pre-activation value was fused
    // away; for relu/leaky-relu sign(out) == sign(in) because the slope is
    // positive, for sigmoid/tanh the reference backward uses the output).
    TapeNode& act = nodes[static_cast<size_t>(act_id)];
    const Tensor& g = GradSlot(nodes, act_id);
    const Tensor& y = act.value;
    const int pre_id = bias_id >= 0 ? bias_id : matmul_id;
    Tensor& gpre = GradSlot(nodes, pre_id);
    const int64_t sz = static_cast<int64_t>(g.size());
    switch (act.desc.kind) {
      case OpKind::kRelu:
        Dispatch(sz, kElementGrain, "nn.acc_relu_bwd",
                 [&](int64_t bi, int64_t ei) {
                   K.acc_relu_bwd(y.data(), g.data(), gpre.data(), bi, ei);
                 });
        break;
      case OpKind::kLeakyRelu:
        Dispatch(sz, kElementGrain, "nn.acc_leaky_bwd",
                 [&](int64_t bi, int64_t ei) {
                   K.acc_leaky_bwd(y.data(), act.desc.alpha, g.data(),
                                   gpre.data(), bi, ei);
                 });
        break;
      case OpKind::kSigmoid:
        Dispatch(sz, kElementGrain, "nn.acc_sigmoid_bwd",
                 [&](int64_t bi, int64_t ei) {
                   K.acc_sigmoid_bwd(y.data(), g.data(), gpre.data(), bi, ei);
                 });
        break;
      case OpKind::kTanh:
        Dispatch(sz, kElementGrain, "nn.acc_tanh_bwd",
                 [&](int64_t bi, int64_t ei) {
                   K.acc_tanh_bwd(y.data(), g.data(), gpre.data(), bi, ei);
                 });
        break;
      default:
        O2SR_CHECK(false);  // not an activation
    }
  }
  if (bias_id >= 0) {
    // AddRowBroadcast backward: forward the row grad to the matmul node
    // (the reference's gx += g), then column-sum into the bias leaf.
    TapeNode& bias = nodes[static_cast<size_t>(bias_id)];
    Tensor& g2 = GradSlot(nodes, bias_id);
    Tensor& g1 = GradSlot(nodes, matmul_id);
    Dispatch(static_cast<int64_t>(g2.size()), kElementGrain, "nn.acc_add",
             [&](int64_t bi, int64_t ei) {
               K.acc_add(g1.data(), g2.data(), bi, ei);
             });
    Tensor& gb = GradSlot(nodes, bias.desc.inputs[1]);
    kernels::ColSumAcc(g2.data(), gb.data(), g2.rows(), g2.cols());
  }
  // The matmul backward proper (reads the matmul node's own grad slot,
  // records tape.matmul_bwd like the generic path).
  ExecuteBackward(nodes, matmul_id);
}

void FusedScatterForward(std::vector<TapeNode>& nodes, int mul_id,
                         int segsum_id) {
  const OpDesc& md = nodes[static_cast<size_t>(mul_id)].desc;
  const Tensor& x = InputValue(nodes, md.inputs[0]);
  const Tensor& col = InputValue(nodes, md.inputs[1]);
  TapeNode& out_node = nodes[static_cast<size_t>(segsum_id)];
  Tensor& out = EnsureOut(out_node);
  out.Fill(0.0f);
  ProfileOp("plan.mul_col_segment_sum", out,
            TensorBytes(x) + TensorBytes(col));
  // Scatter-add with duplicate segments: e-order is the contract, runs
  // unchunked.
  kernels::MulColSegmentSumForward(x.data(), col.data(),
                                   out_node.desc.index->data(), x.rows(),
                                   out.data(), x.cols());
}

}  // namespace detail
}  // namespace o2sr::nn
