#include "nn/buffer_pool.h"

#include <utility>

namespace o2sr::nn {

TensorPool& TensorPool::Global() {
  static TensorPool* pool = new TensorPool();
  return *pool;
}

Tensor TensorPool::Acquire(int rows, int cols) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = free_.find(ShapeKey(rows, cols));
    if (it != free_.end() && !it->second.empty()) {
      Tensor t = std::move(it->second.back());
      it->second.pop_back();
      bytes_ -= t.size() * sizeof(float);
      return t;
    }
  }
  return Tensor(rows, cols);
}

Tensor TensorPool::AcquireZeroed(int rows, int cols) {
  Tensor t = Acquire(rows, cols);
  t.Fill(0.0f);
  return t;
}

void TensorPool::Release(Tensor t) {
  if (t.size() == 0) return;
  const size_t bytes = t.size() * sizeof(float);
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes_ + bytes > kMaxBytes) return;  // drop: pool at capacity
  bytes_ += bytes;
  free_[ShapeKey(t.rows(), t.cols())].push_back(std::move(t));
}

size_t TensorPool::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void TensorPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.clear();
  bytes_ = 0;
}

}  // namespace o2sr::nn
