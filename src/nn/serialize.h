#ifndef O2SR_NN_SERIALIZE_H_
#define O2SR_NN_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "nn/parameter.h"
#include "nn/tensor.h"

namespace o2sr::nn {

// Shared binary-serialization layer behind every persisted artifact
// (training checkpoints, serving snapshots): fixed-width little-endian
// scalars, length-prefixed blobs, tensor records, and the versioned +
// checksummed container file format
//
//   [8-byte magic][u32 format version][u64 payload size][payload]
//   [u64 FNV-1a checksum of the payload]
//
// Files are published atomically (sibling temp file + rename), so an
// interrupted save never corrupts the previous artifact under the same
// name. Reads validate magic, version, size and checksum (DATA_LOSS on any
// mismatch, including truncation) before handing back the payload.

// FNV-1a over a byte string; the container checksum.
uint64_t Fnv1a(const std::string& bytes);

// Appends fixed-width little-endian scalars / length-prefixed blobs to a
// byte buffer. The project only targets little-endian hosts, so raw memcpy
// of the in-memory representation is the on-disk format.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  template <typename T>
  void Scalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t pos = out_->size();
    out_->resize(pos + sizeof(T));
    std::memcpy(out_->data() + pos, &value, sizeof(T));
  }

  void Blob(const void* data, size_t bytes) {
    Scalar<uint64_t>(bytes);
    const size_t pos = out_->size();
    out_->resize(pos + bytes);
    std::memcpy(out_->data() + pos, data, bytes);
  }

  void Str(const std::string& s) { Blob(s.data(), s.size()); }

  void TensorData(const Tensor& t) {
    Scalar<int32_t>(t.rows());
    Scalar<int32_t>(t.cols());
    Blob(t.data(), t.size() * sizeof(float));
  }

 private:
  std::string* out_;
};

// Mirror of ByteWriter; every read is bounds-checked so a truncated or
// corrupted payload surfaces as a Status instead of undefined behavior.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  common::Status Scalar(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    O2SR_RETURN_IF_ERROR(Need(sizeof(T)));
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return common::Status::Ok();
  }

  common::Status Str(std::string* out);
  common::Status TensorData(Tensor* out);

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  common::Status Need(uint64_t bytes);

  const std::string& bytes_;
  size_t pos_ = 0;
};

// Reads the whole file into `out` (NOT_FOUND when it cannot be opened).
common::Status ReadFileToString(const std::string& path, std::string* out);

// Writes `contents` to a sibling temp file and renames it over `path`.
common::Status WriteFileAtomic(const std::string& path,
                               const std::string& contents);

// Moves a damaged artifact into a `.quarantine/` directory next to it and
// drops a `<name>.reason` record alongside, returning the quarantined
// path. The move stands even if the reason record fails to write (losing
// the note must not resurrect the artifact); that failure surfaces in the
// returned Status. NOT_FOUND when `path` does not exist.
common::StatusOr<std::string> QuarantineFile(const std::string& path,
                                             const std::string& reason);

// Wraps `payload` in the container envelope and publishes it atomically.
// `magic` must be exactly 8 bytes.
common::Status WriteContainerFile(const std::string& path, const char* magic,
                                  uint32_t version,
                                  const std::string& payload);

// Reads a container file, validating magic, version, size and checksum;
// returns the payload. Mismatches are DATA_LOSS except a version
// disagreement, which is FAILED_PRECONDITION (the file is intact but from
// an incompatible writer).
common::StatusOr<std::string> ReadContainerFile(const std::string& path,
                                                const char* magic,
                                                uint32_t version);

// Weight export hook: writes every parameter of `store` (count, then
// name + tensor per parameter) — the learned state of a model, without the
// optimizer bookkeeping.
void WriteParameterValues(ByteWriter& w, const ParameterStore& store);

// Reads a WriteParameterValues record, validating that parameter count,
// names and shapes match `store` exactly (FAILED_PRECONDITION otherwise —
// the artifact belongs to a different model or configuration). The tensors
// are staged into `values` aligned with store.params(); the caller commits
// them, so a corrupt tail cannot leave the model half-restored. `origin`
// names the artifact in error messages.
common::Status ReadParameterValues(ByteReader& r, const ParameterStore& store,
                                   std::vector<Tensor>* values,
                                   const std::string& origin);

// A parameter record detached from any live model — the donor format of
// warm-start retraining (nn/trainer.h). Unlike ReadParameterValues, which
// insists the artifact matches a model exactly, raw records carry whatever
// the artifact holds; the consumer decides what is transferable.
struct NamedTensor {
  std::string name;
  Tensor tensor;
};

// Reads a WriteParameterValues record without a reference model: every
// parameter is accepted as long as the bytes decode (DATA_LOSS otherwise).
// `origin` names the artifact in error messages.
common::Status ReadRawParameterRecord(ByteReader& r,
                                      std::vector<NamedTensor>* out,
                                      const std::string& origin);

// Snapshots the current parameter values of `store` as a donor record
// (deep copies — the store may keep training afterwards).
std::vector<NamedTensor> ExtractNamedTensors(const ParameterStore& store);

}  // namespace o2sr::nn

#endif  // O2SR_NN_SERIALIZE_H_
