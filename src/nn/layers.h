#ifndef O2SR_NN_LAYERS_H_
#define O2SR_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "nn/tape.h"

namespace o2sr::nn {

// Affine layer y = x W + b. Parameters live in the supplied ParameterStore;
// the layer object itself holds only non-owning pointers, so it can be
// copied freely and reused across tapes.
class Linear {
 public:
  Linear() = default;
  Linear(ParameterStore* store, const std::string& name, int in_dim,
         int out_dim, Rng& rng, bool with_bias = true);

  // Applies the layer to x: [N, in_dim] -> [N, out_dim].
  Value Apply(Tape& tape, Value x) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  Parameter* weight_ = nullptr;
  Parameter* bias_ = nullptr;  // null when constructed without bias
  int in_dim_ = 0;
  int out_dim_ = 0;
};

// Activation selector for Mlp layers.
enum class Activation { kNone, kRelu, kSigmoid, kTanh };

// Applies the chosen activation on the tape.
Value Activate(Tape& tape, Value x, Activation activation);

// Multi-layer perceptron with a configurable activation between layers
// (the final layer's activation is configured separately, kNone by default).
class Mlp {
 public:
  Mlp() = default;
  Mlp(ParameterStore* store, const std::string& name,
      const std::vector<int>& dims, Rng& rng,
      Activation hidden_activation = Activation::kRelu,
      Activation output_activation = Activation::kNone);

  Value Apply(Tape& tape, Value x) const;

 private:
  std::vector<Linear> layers_;
  Activation hidden_activation_ = Activation::kRelu;
  Activation output_activation_ = Activation::kNone;
};

// Learned embedding table: one row per entity id. Lookup gathers rows, so
// gradients flow back only to the referenced rows.
class Embedding {
 public:
  Embedding() = default;
  Embedding(ParameterStore* store, const std::string& name, int num_entities,
            int dim, Rng& rng);

  // ids index into the table; result is [ids.size(), dim].
  Value Lookup(Tape& tape, const std::vector<int>& ids) const;
  // Places the full table on the tape: [num_entities, dim].
  Value Full(Tape& tape) const;

  int dim() const { return dim_; }
  int num_entities() const { return num_entities_; }

 private:
  Parameter* table_ = nullptr;
  int num_entities_ = 0;
  int dim_ = 0;
};

}  // namespace o2sr::nn

#endif  // O2SR_NN_LAYERS_H_
