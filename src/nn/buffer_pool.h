#ifndef O2SR_NN_BUFFER_POOL_H_
#define O2SR_NN_BUFFER_POOL_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"

namespace o2sr::nn {

// Process-wide recycling pool for tape value/grad buffers, keyed by shape.
//
// A training step allocates and frees the same few dozen tensor shapes every
// iteration; without reuse that is hundreds of gigabytes of zero-fill and
// page churn over a run (the dominant cost the pre-plan profiler reports
// under tensor allocation). The tape returns its buffers here on
// destruction and the executors draw from the pool instead of the heap.
//
// Acquire() returns a buffer with *stale contents* — callers either fully
// overwrite it (every forward op does) or ask for AcquireZeroed() (gradient
// slots, which are accumulated into). Reuse therefore never changes any
// computed bit, only where the bytes live.
//
// The pool is bounded: Release() beyond the cap simply drops the tensor,
// so a burst of odd shapes cannot grow the pool without limit.
class TensorPool {
 public:
  static TensorPool& Global();

  // A buffer of the given shape with unspecified contents.
  Tensor Acquire(int rows, int cols);
  // A buffer of the given shape filled with zeros.
  Tensor AcquireZeroed(int rows, int cols);
  // Returns a buffer to the pool (dropped when the pool is at capacity or
  // the tensor is empty).
  void Release(Tensor t);

  // Bytes currently parked in the pool (for tests / introspection).
  size_t pooled_bytes() const;
  void Clear();

 private:
  TensorPool() = default;

  static constexpr size_t kMaxBytes = size_t{512} << 20;

  static uint64_t ShapeKey(int rows, int cols) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(rows)) << 32) |
           static_cast<uint32_t>(cols);
  }

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<Tensor>> free_;
  size_t bytes_ = 0;
};

}  // namespace o2sr::nn

#endif  // O2SR_NN_BUFFER_POOL_H_
