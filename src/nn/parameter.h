#ifndef O2SR_NN_PARAMETER_H_
#define O2SR_NN_PARAMETER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace o2sr::nn {

// A trainable tensor. Gradients are accumulated by Tape::Backward and
// consumed/cleared by the optimizer.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}
};

// Owns the parameters of a model. Models create their parameters here once
// and reference them on every training step's tape.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  // Xavier-uniform weight matrix.
  Parameter* CreateXavier(const std::string& name, int rows, int cols,
                          Rng& rng);
  // Gaussian-initialized matrix (used for embedding tables).
  Parameter* CreateNormal(const std::string& name, int rows, int cols,
                          double stddev, Rng& rng);
  // Zero-initialized matrix (used for biases).
  Parameter* CreateZeros(const std::string& name, int rows, int cols);

  void ZeroGrads();

  // Total number of scalar parameters.
  size_t NumScalars() const;

  const std::vector<std::unique_ptr<Parameter>>& params() const {
    return params_;
  }
  std::vector<std::unique_ptr<Parameter>>& params() { return params_; }

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

// Deep copy of an optimizer's internal state (step count and per-parameter
// moment estimates). Used by the fault-tolerant trainer for in-memory
// rollback snapshots and by nn/checkpoint for crash-safe persistence.
struct AdamState {
  int64_t step = 0;
  std::vector<Tensor> m;
  std::vector<Tensor> v;
};

// Adam optimizer (Kingma & Ba) over a ParameterStore. The paper trains with
// Adam at lr=1e-4; benchmark configs may use a larger rate for speed.
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    // Gradient L2-norm clip; <= 0 disables clipping.
    double clip_norm = 5.0;
  };

  AdamOptimizer(ParameterStore* store, Options options);

  // Applies one update using the accumulated gradients, then zeroes them.
  void Step();

  // Snapshots the optimizer state (materializing moment buffers for
  // parameters that have not been stepped yet).
  AdamState SaveState();
  // Restores a state captured from an optimizer over the same parameter
  // set; shape disagreement is a checked programmer error.
  void LoadState(const AdamState& state);

  int64_t step_count() const { return step_; }
  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  // Allocates moment buffers for parameters added after construction.
  void EnsureMoments();

  ParameterStore* store_;  // not owned
  Options options_;
  int64_t step_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace o2sr::nn

#endif  // O2SR_NN_PARAMETER_H_
