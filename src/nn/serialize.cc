#include "nn/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/check.h"
#include "common/fault.h"

namespace o2sr::nn {

using common::Status;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Status ByteReader::Need(uint64_t bytes) {
  // Compare against the remaining span, never `pos_ + bytes`: a corrupted
  // length prefix near UINT64_MAX would overflow the addition, pass the
  // check, and turn the next memcpy into an out-of-bounds read.
  if (bytes > bytes_.size() - pos_) {
    return common::DataLossError("payload truncated");
  }
  return Status::Ok();
}

Status ByteReader::Str(std::string* out) {
  uint64_t bytes = 0;
  O2SR_RETURN_IF_ERROR(Scalar(&bytes));
  O2SR_RETURN_IF_ERROR(Need(bytes));
  out->assign(bytes_.data() + pos_, bytes);
  pos_ += bytes;
  return Status::Ok();
}

Status ByteReader::TensorData(Tensor* out) {
  int32_t rows = 0, cols = 0;
  O2SR_RETURN_IF_ERROR(Scalar(&rows));
  O2SR_RETURN_IF_ERROR(Scalar(&cols));
  if (rows < 0 || cols < 0) {
    return common::DataLossError("negative tensor shape in payload");
  }
  uint64_t bytes = 0;
  O2SR_RETURN_IF_ERROR(Scalar(&bytes));
  const uint64_t expected = static_cast<uint64_t>(rows) * cols * sizeof(float);
  if (bytes != expected) {
    return common::DataLossError("tensor payload size mismatch");
  }
  O2SR_RETURN_IF_ERROR(Need(bytes));
  *out = Tensor(rows, cols);
  std::memcpy(out->data(), bytes_.data() + pos_, bytes);
  pos_ += bytes;
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::NotFoundError("cannot open '" + path +
                                 "': " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return common::UnavailableError("read error on '" + path + "'");
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  // Injection site "serialize.write": a full disk / failed publish.
  O2SR_RETURN_IF_ERROR(
      common::FaultInjector::Global().InjectError("serialize.write"));
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return common::UnavailableError("cannot open '" + tmp +
                                    "' for writing: " + std::strerror(errno));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool write_error = std::ferror(f) != 0 || written != contents.size();
  std::fclose(f);
  if (write_error) {
    std::remove(tmp.c_str());
    return common::UnavailableError("write error on '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return common::UnavailableError("cannot rename '" + tmp + "' to '" +
                                    path + "': " + std::strerror(errno));
  }
  return Status::Ok();
}

common::StatusOr<std::string> QuarantineFile(const std::string& path,
                                             const std::string& reason) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path source(path);
  if (!fs::exists(source, ec)) {
    return common::NotFoundError("cannot quarantine '" + path +
                                 "': file does not exist");
  }
  const fs::path dir = source.parent_path() / ".quarantine";
  fs::create_directories(dir, ec);
  if (ec) {
    return common::UnavailableError("cannot create quarantine dir '" +
                                    dir.string() + "': " + ec.message());
  }
  const fs::path target = dir / source.filename();
  fs::rename(source, target, ec);
  if (ec) {
    return common::UnavailableError("cannot move '" + path + "' to '" +
                                    target.string() + "': " + ec.message());
  }
  // The reason record rides along best-effort: losing it must not resurrect
  // the artifact, so a write failure surfaces in the Status but the move
  // stands.
  const std::string reason_path = target.string() + ".reason";
  O2SR_RETURN_IF_ERROR(WriteFileAtomic(reason_path, reason + "\n")
                           .WithContext("quarantined to '" + target.string() +
                                        "' but the reason record failed"));
  return target.string();
}

namespace {
constexpr size_t kMagicBytes = 8;
constexpr size_t kHeaderBytes =
    kMagicBytes + sizeof(uint32_t) + sizeof(uint64_t);
}  // namespace

Status WriteContainerFile(const std::string& path, const char* magic,
                          uint32_t version, const std::string& payload) {
  std::string file;
  file.reserve(kHeaderBytes + payload.size() + sizeof(uint64_t));
  file.append(magic, kMagicBytes);
  ByteWriter header(&file);
  header.Scalar<uint32_t>(version);
  header.Scalar<uint64_t>(payload.size());
  file += payload;
  header.Scalar<uint64_t>(Fnv1a(payload));
  return WriteFileAtomic(path, file);
}

common::StatusOr<std::string> ReadContainerFile(const std::string& path,
                                                const char* magic,
                                                uint32_t version) {
  std::string file;
  O2SR_RETURN_IF_ERROR(ReadFileToString(path, &file));
  // Injection site "serialize.read": pre-checksum corruption of the raw
  // container bytes (torn writes, bad media). The envelope validation below
  // must catch every such fault as DATA_LOSS.
  common::FaultInjector::Global().InjectCorruption("serialize.read", &file);
  if (file.size() < kHeaderBytes + sizeof(uint64_t)) {
    return common::DataLossError("'" + path + "' truncated: " +
                                 std::to_string(file.size()) + " bytes");
  }
  if (std::memcmp(file.data(), magic, kMagicBytes) != 0) {
    return common::DataLossError("'" + path + "' has a bad magic number");
  }
  uint32_t file_version = 0;
  std::memcpy(&file_version, file.data() + kMagicBytes, sizeof(file_version));
  if (file_version != version) {
    return common::FailedPreconditionError(
        "'" + path + "' has format version " + std::to_string(file_version) +
        ", expected " + std::to_string(version));
  }
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, file.data() + kMagicBytes + sizeof(uint32_t),
              sizeof(payload_size));
  if (file.size() != kHeaderBytes + payload_size + sizeof(uint64_t)) {
    return common::DataLossError(
        "'" + path + "' truncated: payload claims " +
        std::to_string(payload_size) + " bytes, file holds " +
        std::to_string(file.size() - kHeaderBytes - sizeof(uint64_t)));
  }
  std::string payload = file.substr(kHeaderBytes, payload_size);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, file.data() + kHeaderBytes + payload_size,
              sizeof(stored_checksum));
  if (Fnv1a(payload) != stored_checksum) {
    return common::DataLossError("'" + path + "' failed its checksum");
  }
  return payload;
}

void WriteParameterValues(ByteWriter& w, const ParameterStore& store) {
  w.Scalar<uint32_t>(static_cast<uint32_t>(store.params().size()));
  for (const auto& p : store.params()) {
    w.Str(p->name);
    w.TensorData(p->value);
  }
}

Status ReadParameterValues(ByteReader& r, const ParameterStore& store,
                           std::vector<Tensor>* values,
                           const std::string& origin) {
  O2SR_CHECK(values != nullptr);
  uint32_t num_params = 0;
  O2SR_RETURN_IF_ERROR(r.Scalar(&num_params));
  if (num_params != store.params().size()) {
    return common::FailedPreconditionError(
        origin + " holds " + std::to_string(num_params) +
        " parameters, model has " + std::to_string(store.params().size()));
  }
  values->assign(num_params, Tensor());
  for (uint32_t k = 0; k < num_params; ++k) {
    const Parameter& p = *store.params()[k];
    std::string name;
    O2SR_RETURN_IF_ERROR(r.Str(&name));
    if (name != p.name) {
      return common::FailedPreconditionError(
          origin + " parameter " + std::to_string(k) + " is '" + name +
          "', model expects '" + p.name + "'");
    }
    O2SR_RETURN_IF_ERROR(r.TensorData(&(*values)[k]));
    if (!(*values)[k].SameShape(p.value)) {
      return common::FailedPreconditionError(
          origin + " parameter '" + name + "' has shape " +
          (*values)[k].ShapeString() + ", model expects " +
          p.value.ShapeString());
    }
  }
  return Status::Ok();
}

Status ReadRawParameterRecord(ByteReader& r, std::vector<NamedTensor>* out,
                              const std::string& origin) {
  O2SR_CHECK(out != nullptr);
  uint32_t num_params = 0;
  O2SR_RETURN_IF_ERROR(r.Scalar(&num_params));
  // Each parameter record is at least a name length + tensor header; a
  // corrupted count larger than the remaining bytes could allow would
  // otherwise drive a multi-gigabyte reserve before the first read fails.
  if (num_params > r.remaining() / (sizeof(uint64_t) + 2 * sizeof(int32_t))) {
    return common::DataLossError(origin + " claims " +
                                 std::to_string(num_params) +
                                 " parameters, more than its bytes can hold");
  }
  out->clear();
  out->reserve(num_params);
  for (uint32_t k = 0; k < num_params; ++k) {
    NamedTensor p;
    O2SR_RETURN_IF_ERROR(r.Str(&p.name));
    O2SR_RETURN_IF_ERROR(r.TensorData(&p.tensor));
    out->push_back(std::move(p));
  }
  return Status::Ok();
}

std::vector<NamedTensor> ExtractNamedTensors(const ParameterStore& store) {
  std::vector<NamedTensor> out;
  out.reserve(store.params().size());
  for (const auto& p : store.params()) {
    out.push_back(NamedTensor{p->name, p->value});
  }
  return out;
}

}  // namespace o2sr::nn
