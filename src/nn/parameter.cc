#include "nn/parameter.h"

#include <cmath>

namespace o2sr::nn {

Parameter* ParameterStore::CreateXavier(const std::string& name, int rows,
                                        int cols, Rng& rng) {
  params_.push_back(
      std::make_unique<Parameter>(name, Tensor::Xavier(rows, cols, rng)));
  return params_.back().get();
}

Parameter* ParameterStore::CreateNormal(const std::string& name, int rows,
                                        int cols, double stddev, Rng& rng) {
  params_.push_back(std::make_unique<Parameter>(
      name, Tensor::RandomNormal(rows, cols, stddev, rng)));
  return params_.back().get();
}

Parameter* ParameterStore::CreateZeros(const std::string& name, int rows,
                                       int cols) {
  params_.push_back(
      std::make_unique<Parameter>(name, Tensor::Zeros(rows, cols)));
  return params_.back().get();
}

void ParameterStore::ZeroGrads() {
  for (auto& p : params_) p->grad.SetZero();
}

size_t ParameterStore::NumScalars() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

AdamOptimizer::AdamOptimizer(ParameterStore* store, Options options)
    : store_(store), options_(options) {
  O2SR_CHECK(store != nullptr);
}

void AdamOptimizer::EnsureMoments() {
  // Lazily (re)allocate moment buffers if parameters were added after
  // construction.
  while (m_.size() < store_->params().size()) {
    const auto& p = store_->params()[m_.size()];
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

AdamState AdamOptimizer::SaveState() {
  EnsureMoments();
  return AdamState{step_, m_, v_};
}

void AdamOptimizer::LoadState(const AdamState& state) {
  EnsureMoments();
  O2SR_CHECK_EQ(state.m.size(), m_.size());
  O2SR_CHECK_EQ(state.v.size(), v_.size());
  for (size_t k = 0; k < m_.size(); ++k) {
    O2SR_CHECK(state.m[k].SameShape(m_[k]));
    O2SR_CHECK(state.v[k].SameShape(v_[k]));
  }
  step_ = state.step;
  m_ = state.m;
  v_ = state.v;
}

void AdamOptimizer::Step() {
  EnsureMoments();
  ++step_;

  // Global gradient-norm clipping stabilizes the attention models on small
  // batches.
  if (options_.clip_norm > 0.0) {
    double sq = 0.0;
    for (const auto& p : store_->params()) {
      for (size_t i = 0; i < p->grad.size(); ++i) {
        const double g = p->grad.data()[i];
        sq += g * g;
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) {
      const float scale = static_cast<float>(options_.clip_norm / norm);
      for (const auto& p : store_->params()) p->grad.ScaleInPlace(scale);
    }
  }

  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_));
  for (size_t k = 0; k < store_->params().size(); ++k) {
    Parameter& p = *store_->params()[k];
    float* w = p.value.data();
    float* g = p.grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (size_t i = 0; i < p.value.size(); ++i) {
      m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * g[i]);
      v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * g[i] * g[i]);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      w[i] -= static_cast<float>(options_.learning_rate * m_hat /
                                 (std::sqrt(v_hat) + options_.epsilon));
    }
  }
  store_->ZeroGrads();
}

}  // namespace o2sr::nn
