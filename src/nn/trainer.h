#ifndef O2SR_NN_TRAINER_H_
#define O2SR_NN_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/parameter.h"
#include "nn/serialize.h"
#include "obs/telemetry.h"

namespace o2sr::nn {

// Fault-tolerant full-batch training runner shared by every trainable model
// in the repository (O2SiteRec, the standalone courier-capacity training,
// and the gradient baselines).
//
// Each epoch it (1) runs the model's forward/backward callback, (2) sweeps
// loss, gradients and — after the optimizer step — parameters for NaN/Inf,
// and (3) tracks loss divergence. A tripped sentinel rolls the run back to
// the last good snapshot (parameter values, Adam moments, RNG stream),
// halves the learning rate (bounded exponential backoff) and retries, up to
// a configurable recovery budget; an exhausted budget returns a descriptive
// Status instead of training on garbage.
//
// When a checkpoint path is configured, the runner persists its full state
// atomically every few epochs and transparently resumes from an existing
// checkpoint file, such that an interrupted-then-resumed run is
// bit-identical to an uninterrupted one (see tests/checkpoint_test.cc).

struct GuardrailOptions {
  // Per-epoch NaN/Inf sweep over loss, gradients and parameters.
  bool check_finite = true;
  // Divergence monitor: an epoch loss above `divergence_factor` times the
  // best loss seen so far counts as diverged; `divergence_patience`
  // consecutive diverged epochs trip the sentinel. <= 0 disables.
  double divergence_factor = 25.0;
  int divergence_patience = 3;
  // Rollback/backoff budget: how many sentinel trips may be recovered
  // before training gives up with RESOURCE_EXHAUSTED.
  int max_recoveries = 4;
  // Learning-rate multiplier applied on each recovery, floored at
  // `min_learning_rate`.
  double lr_backoff = 0.5;
  double min_learning_rate = 1e-8;
  // Crash-safe checkpointing; empty path disables. A checkpoint is written
  // after every `checkpoint_every` completed epochs and after the final
  // epoch. If the file already exists when training starts, the run
  // resumes from it (FAILED_PRECONDITION if it belongs to another model,
  // DATA_LOSS if it is corrupt).
  std::string checkpoint_path;
  int checkpoint_every = 5;
};
// Recoveries and resumes are narrated through the leveled logger
// (obs/log.h): recoveries at WARNING, resumes at INFO. Set
// O2SR_LOG_LEVEL=off to silence them (the old GuardrailOptions::verbose
// flag is gone).

// Test/diagnostic instrumentation points.
struct TrainHooks {
  // Runs right after the model's forward/backward callback, before the
  // finite sweep; fault-injection tests use it to poison gradients.
  std::function<void(int epoch, ParameterStore& store)> post_backward;
  // Runs after each successfully completed epoch.
  std::function<void(int epoch, double loss)> on_epoch_end;
  // Telemetry stream: one obs::TrainEvent per completed epoch (loss, grad
  // norm, learning rate) plus one per recovery/resume, in emission order.
  // Typically bound to obs::TelemetryStream::Append for JSONL output.
  std::function<void(const obs::TrainEvent&)> on_event;
};

// What actually happened during a guarded run.
struct TrainReport {
  bool resumed = false;  // picked up an existing checkpoint
  int start_epoch = 0;   // first epoch executed in this process
  int epochs_run = 0;    // epochs executed (retries count once)
  int recoveries = 0;    // sentinel trips recovered via rollback
  double final_loss = 0.0;
  double final_learning_rate = 0.0;
  // The full telemetry stream of the run (same records as
  // TrainHooks::on_event receives).
  std::vector<obs::TrainEvent> events;
};

// One epoch of model-specific work: run forward + backward for epoch
// `epoch`, leaving gradients accumulated in the store, and return the
// epoch's scalar loss. Must be deterministic given the parameter values and
// the state of the RNG passed to RunGuardedTraining (that is what makes
// rollback and resume exact).
using EpochFn = std::function<double(int epoch)>;

// Runs `epochs` guarded epochs. `epoch_rng` is the RNG consumed inside
// `epoch_fn` (dropout, shuffling); it is snapshotted and rolled back with
// the parameters so retried epochs replay the same stream (pass nullptr if
// `epoch_fn` uses no randomness). `report` may be nullptr.
common::Status RunGuardedTraining(ParameterStore* store, AdamOptimizer* adam,
                                  Rng* epoch_rng, int epochs,
                                  const EpochFn& epoch_fn,
                                  const GuardrailOptions& options = {},
                                  const TrainHooks& hooks = {},
                                  TrainReport* report = nullptr);

// --- Warm-start incremental retraining ------------------------------------
//
// The continual pipeline (src/pipeline) refreshes a model on a drifted data
// window. Drift changes the world — stores open and close, so embedding
// tables change row counts between cycles — which rules out a strict
// checkpoint restore. WarmStartParameters transfers whatever the previous
// cycle learned: parameters are matched by name; an exact shape match copies
// the full tensor, a changed shape copies the overlapping top-left block
// (surviving node rows keep their embeddings, new rows keep their fresh
// init), and parameters absent from the donor stay freshly initialized.

struct WarmStartReport {
  int params_matched = 0;   // full tensor copied (name + shape matched)
  int params_partial = 0;   // overlapping block copied (shape changed)
  int params_fresh = 0;     // no donor entry; fresh init kept
  uint64_t scalars_copied = 0;  // total floats transferred
};

WarmStartReport WarmStartParameters(const std::vector<NamedTensor>& donor,
                                    ParameterStore* store);

}  // namespace o2sr::nn

#endif  // O2SR_NN_TRAINER_H_
