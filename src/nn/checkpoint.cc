#include "nn/checkpoint.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace o2sr::nn {

namespace {

using common::Status;

constexpr char kMagic[8] = {'O', '2', 'S', 'R', 'C', 'K', 'P', 'T'};

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// Appends fixed-width little-endian scalars / length-prefixed blobs to a
// byte buffer. The project only targets little-endian hosts, so raw memcpy
// of the in-memory representation is the on-disk format.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  template <typename T>
  void Scalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t pos = out_->size();
    out_->resize(pos + sizeof(T));
    std::memcpy(out_->data() + pos, &value, sizeof(T));
  }

  void Blob(const void* data, size_t bytes) {
    Scalar<uint64_t>(bytes);
    const size_t pos = out_->size();
    out_->resize(pos + bytes);
    std::memcpy(out_->data() + pos, data, bytes);
  }

  void Str(const std::string& s) { Blob(s.data(), s.size()); }

  void TensorData(const Tensor& t) {
    Scalar<int32_t>(t.rows());
    Scalar<int32_t>(t.cols());
    Blob(t.data(), t.size() * sizeof(float));
  }

 private:
  std::string* out_;
};

// Mirror of Writer; every read is bounds-checked so a truncated or
// corrupted payload surfaces as a Status instead of undefined behavior.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  Status Scalar(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    O2SR_RETURN_IF_ERROR(Need(sizeof(T)));
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  Status Str(std::string* out) {
    uint64_t bytes = 0;
    O2SR_RETURN_IF_ERROR(Scalar(&bytes));
    O2SR_RETURN_IF_ERROR(Need(bytes));
    out->assign(bytes_.data() + pos_, bytes);
    pos_ += bytes;
    return Status::Ok();
  }

  Status TensorData(Tensor* out) {
    int32_t rows = 0, cols = 0;
    O2SR_RETURN_IF_ERROR(Scalar(&rows));
    O2SR_RETURN_IF_ERROR(Scalar(&cols));
    if (rows < 0 || cols < 0) {
      return common::DataLossError("negative tensor shape in checkpoint");
    }
    uint64_t bytes = 0;
    O2SR_RETURN_IF_ERROR(Scalar(&bytes));
    const uint64_t expected =
        static_cast<uint64_t>(rows) * cols * sizeof(float);
    if (bytes != expected) {
      return common::DataLossError("tensor payload size mismatch");
    }
    O2SR_RETURN_IF_ERROR(Need(bytes));
    *out = Tensor(rows, cols);
    std::memcpy(out->data(), bytes_.data() + pos_, bytes);
    pos_ += bytes;
    return Status::Ok();
  }

 private:
  Status Need(uint64_t bytes) {
    if (pos_ + bytes > bytes_.size()) {
      return common::DataLossError("checkpoint payload truncated");
    }
    return Status::Ok();
  }

  const std::string& bytes_;
  size_t pos_ = 0;
};

Status ReadAll(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::NotFoundError("cannot open checkpoint '" + path +
                                 "': " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return common::UnavailableError("read error on checkpoint '" + path +
                                    "'");
  }
  return Status::Ok();
}

}  // namespace

bool CheckpointExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

common::Status SaveCheckpoint(const std::string& path,
                              const CheckpointMeta& meta,
                              const ParameterStore& store,
                              const AdamState& adam) {
  O2SR_CHECK_EQ(adam.m.size(), store.params().size());
  O2SR_CHECK_EQ(adam.v.size(), store.params().size());

  std::string payload;
  Writer w(&payload);
  w.Scalar<int32_t>(meta.epoch);
  w.Scalar<double>(meta.learning_rate);
  w.Scalar<int32_t>(meta.recoveries);
  w.Scalar<double>(meta.best_loss);
  w.Str(meta.rng_state);
  w.Scalar<uint32_t>(static_cast<uint32_t>(store.params().size()));
  for (const auto& p : store.params()) {
    w.Str(p->name);
    w.TensorData(p->value);
  }
  w.Scalar<int64_t>(adam.step);
  for (size_t k = 0; k < adam.m.size(); ++k) {
    w.TensorData(adam.m[k]);
    w.TensorData(adam.v[k]);
  }

  std::string file;
  Writer header(&file);
  file.append(kMagic, sizeof(kMagic));
  header.Scalar<uint32_t>(kCheckpointFormatVersion);
  header.Scalar<uint64_t>(payload.size());
  file += payload;
  header.Scalar<uint64_t>(Fnv1a(payload));

  // Atomic publish: write a sibling temp file, then rename over the target.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return common::UnavailableError("cannot open '" + tmp +
                                    "' for writing: " + std::strerror(errno));
  }
  const size_t written = std::fwrite(file.data(), 1, file.size(), f);
  const bool write_error = std::ferror(f) != 0 || written != file.size();
  std::fclose(f);
  if (write_error) {
    std::remove(tmp.c_str());
    return common::UnavailableError("write error on '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return common::UnavailableError("cannot rename '" + tmp + "' to '" +
                                    path + "': " + std::strerror(errno));
  }
  return Status::Ok();
}

common::Status LoadCheckpoint(const std::string& path, CheckpointMeta* meta,
                              ParameterStore* store, AdamState* adam) {
  O2SR_CHECK(meta != nullptr);
  O2SR_CHECK(store != nullptr);
  O2SR_CHECK(adam != nullptr);

  std::string file;
  O2SR_RETURN_IF_ERROR(ReadAll(path, &file));
  const size_t header_size = sizeof(kMagic) + sizeof(uint32_t) +
                             sizeof(uint64_t);
  if (file.size() < header_size + sizeof(uint64_t)) {
    return common::DataLossError("checkpoint '" + path +
                                 "' truncated: " +
                                 std::to_string(file.size()) + " bytes");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return common::DataLossError("checkpoint '" + path +
                                 "' has a bad magic number");
  }
  uint32_t version = 0;
  std::memcpy(&version, file.data() + sizeof(kMagic), sizeof(version));
  if (version != kCheckpointFormatVersion) {
    return common::FailedPreconditionError(
        "checkpoint '" + path + "' has format version " +
        std::to_string(version) + ", expected " +
        std::to_string(kCheckpointFormatVersion));
  }
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, file.data() + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(payload_size));
  if (file.size() != header_size + payload_size + sizeof(uint64_t)) {
    return common::DataLossError(
        "checkpoint '" + path + "' truncated: payload claims " +
        std::to_string(payload_size) + " bytes, file holds " +
        std::to_string(file.size() - header_size - sizeof(uint64_t)));
  }
  const std::string payload = file.substr(header_size, payload_size);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, file.data() + header_size + payload_size,
              sizeof(stored_checksum));
  if (Fnv1a(payload) != stored_checksum) {
    return common::DataLossError("checkpoint '" + path +
                                 "' failed its checksum");
  }

  Reader r(payload);
  CheckpointMeta parsed;
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.epoch));
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.learning_rate));
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.recoveries));
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.best_loss));
  O2SR_RETURN_IF_ERROR(r.Str(&parsed.rng_state));

  uint32_t num_params = 0;
  O2SR_RETURN_IF_ERROR(r.Scalar(&num_params));
  if (num_params != store->params().size()) {
    return common::FailedPreconditionError(
        "checkpoint '" + path + "' holds " + std::to_string(num_params) +
        " parameters, model has " +
        std::to_string(store->params().size()));
  }
  // Stage all tensors before touching the live store, so a corrupt tail
  // cannot leave the model half-restored.
  std::vector<Tensor> values(num_params);
  for (uint32_t k = 0; k < num_params; ++k) {
    Parameter& p = *store->params()[k];
    std::string name;
    O2SR_RETURN_IF_ERROR(r.Str(&name));
    if (name != p.name) {
      return common::FailedPreconditionError(
          "checkpoint '" + path + "' parameter " + std::to_string(k) +
          " is '" + name + "', model expects '" + p.name + "'");
    }
    O2SR_RETURN_IF_ERROR(r.TensorData(&values[k]));
    if (!values[k].SameShape(p.value)) {
      return common::FailedPreconditionError(
          "checkpoint '" + path + "' parameter '" + name + "' has shape " +
          values[k].ShapeString() + ", model expects " +
          p.value.ShapeString());
    }
  }
  AdamState state;
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.step));
  state.m.resize(num_params);
  state.v.resize(num_params);
  for (uint32_t k = 0; k < num_params; ++k) {
    O2SR_RETURN_IF_ERROR(r.TensorData(&state.m[k]));
    O2SR_RETURN_IF_ERROR(r.TensorData(&state.v[k]));
    if (!state.m[k].SameShape(store->params()[k]->value) ||
        !state.v[k].SameShape(store->params()[k]->value)) {
      return common::FailedPreconditionError(
          "checkpoint '" + path + "' optimizer moments for '" +
          store->params()[k]->name + "' do not match the parameter shape");
    }
  }

  for (uint32_t k = 0; k < num_params; ++k) {
    store->params()[k]->value = std::move(values[k]);
  }
  *meta = std::move(parsed);
  *adam = std::move(state);
  return Status::Ok();
}

}  // namespace o2sr::nn
