#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "nn/serialize.h"

namespace o2sr::nn {

namespace {

using common::Status;

constexpr char kMagic[8] = {'O', '2', 'S', 'R', 'C', 'K', 'P', 'T'};

}  // namespace

bool CheckpointExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

common::Status SaveCheckpoint(const std::string& path,
                              const CheckpointMeta& meta,
                              const ParameterStore& store,
                              const AdamState& adam) {
  O2SR_CHECK_EQ(adam.m.size(), store.params().size());
  O2SR_CHECK_EQ(adam.v.size(), store.params().size());

  std::string payload;
  ByteWriter w(&payload);
  w.Scalar<int32_t>(meta.epoch);
  w.Scalar<double>(meta.learning_rate);
  w.Scalar<int32_t>(meta.recoveries);
  w.Scalar<double>(meta.best_loss);
  w.Str(meta.rng_state);
  WriteParameterValues(w, store);
  w.Scalar<int64_t>(adam.step);
  for (size_t k = 0; k < adam.m.size(); ++k) {
    w.TensorData(adam.m[k]);
    w.TensorData(adam.v[k]);
  }
  // Injection site "checkpoint.write": a failed checkpoint publish (full
  // disk, torn rename) as the pipeline supervisor sees it — distinct from
  // the container-level "serialize.write" so recipes can target training
  // checkpoints without also failing snapshots and journals.
  auto& faults = common::FaultInjector::Global();
  faults.InjectDelay("checkpoint.write");
  O2SR_RETURN_IF_ERROR(faults.InjectError("checkpoint.write"));
  return WriteContainerFile(path, kMagic, kCheckpointFormatVersion, payload);
}

common::Status LoadCheckpoint(const std::string& path, CheckpointMeta* meta,
                              ParameterStore* store, AdamState* adam) {
  O2SR_CHECK(meta != nullptr);
  O2SR_CHECK(store != nullptr);
  O2SR_CHECK(adam != nullptr);

  O2SR_ASSIGN_OR_RETURN(
      std::string payload,
      ReadContainerFile(path, kMagic, kCheckpointFormatVersion));

  // Injection site "checkpoint.read": delay, transient error, or
  // post-checksum corruption of the decoded payload — the crash-resume path
  // of the retraining supervisor must ride out all three (retry redraws;
  // persistent corruption surfaces as DATA_LOSS, never a crash).
  auto& faults = common::FaultInjector::Global();
  faults.InjectDelay("checkpoint.read");
  O2SR_RETURN_IF_ERROR(faults.InjectError("checkpoint.read"));
  faults.InjectCorruption("checkpoint.read", &payload);

  ByteReader r(payload);
  CheckpointMeta parsed;
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.epoch));
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.learning_rate));
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.recoveries));
  O2SR_RETURN_IF_ERROR(r.Scalar(&parsed.best_loss));
  O2SR_RETURN_IF_ERROR(r.Str(&parsed.rng_state));

  // Stage all tensors before touching the live store, so a corrupt tail
  // cannot leave the model half-restored.
  std::vector<Tensor> values;
  O2SR_RETURN_IF_ERROR(ReadParameterValues(r, *store, &values,
                                           "checkpoint '" + path + "'"));
  const size_t num_params = store->params().size();
  AdamState state;
  O2SR_RETURN_IF_ERROR(r.Scalar(&state.step));
  state.m.resize(num_params);
  state.v.resize(num_params);
  for (size_t k = 0; k < num_params; ++k) {
    O2SR_RETURN_IF_ERROR(r.TensorData(&state.m[k]));
    O2SR_RETURN_IF_ERROR(r.TensorData(&state.v[k]));
    if (!state.m[k].SameShape(store->params()[k]->value) ||
        !state.v[k].SameShape(store->params()[k]->value)) {
      return common::FailedPreconditionError(
          "checkpoint '" + path + "' optimizer moments for '" +
          store->params()[k]->name + "' do not match the parameter shape");
    }
  }

  for (size_t k = 0; k < num_params; ++k) {
    store->params()[k]->value = std::move(values[k]);
  }
  *meta = std::move(parsed);
  *adam = std::move(state);
  return Status::Ok();
}

}  // namespace o2sr::nn
