#ifndef O2SR_NN_TAPE_H_
#define O2SR_NN_TAPE_H_

#include <vector>

#include "common/rng.h"
#include "nn/op_exec.h"
#include "nn/parameter.h"
#include "nn/plan.h"
#include "nn/tensor.h"

namespace o2sr::nn {

// Handle to a node on a Tape. Cheap to copy; only valid for the Tape that
// created it.
struct Value {
  int id = -1;
  bool valid() const { return id >= 0; }
};

// Reverse-mode automatic differentiation over 2-D tensors.
//
// A fresh Tape is built for every forward pass (define-by-run). Each op
// records an OpDesc node; execution happens in one of two modes
// (DESIGN.md §13):
//
//   eager   (O2SR_PLAN=off) — every op runs at record time through the
//           shared dispatcher in op_exec.cc. This is the bit-exact
//           reference path.
//   planned (default)       — ops are recorded unexecuted; the first
//           value/grad/Backward access flushes the pending segment through
//           a compiled Plan (PlanCache-memoized fusion + schedule, one
//           exec::Session per step). Results are bit-identical to eager:
//           both modes dispatch to the same kernels with the same
//           accumulation orders; fusion only elides intermediates.
//
// Shape inference is part of the op descriptors, so rows()/cols() and all
// record-time shape checks work in both modes without materializing values.
//
// In addition to dense ops, the tape provides the three sparse "segment"
// primitives that graph attention needs (GatherRows, SegmentSoftmax,
// SegmentSum): together with MatMul/Concat they express every equation of
// the paper (Eq. 2-17) without dense adjacency matrices.
class Tape {
 public:
  explicit Tape(bool training = true);
  ~Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  bool training() const { return training_; }
  // True when this tape defers execution to the plan compiler.
  bool planned() const { return planned_; }

  // Execution-mode override for tests (process-wide, applies to tapes
  // constructed afterwards). kEnv restores the O2SR_PLAN resolution.
  enum class Mode { kEnv, kEager, kPlanned };
  static void SetModeForTest(Mode mode);

  // Leaves ------------------------------------------------------------------

  // Constant input (no gradient flows out of the tape through it).
  Value Input(Tensor t);
  // Trainable leaf; Backward() accumulates into p->grad.
  Value Param(Parameter* p);

  // Accessors ---------------------------------------------------------------

  // Flush (in planned mode) and materialize on demand, so both are valid
  // at any point in either mode.
  const Tensor& value(Value v) const;
  const Tensor& grad(Value v) const;
  // Shapes come from the descriptors: always available, never flush.
  int rows(Value v) const { return desc_of(v.id).rows; }
  int cols(Value v) const { return desc_of(v.id).cols; }
  size_t num_nodes() const { return nodes_.size(); }

  // Dense ops ---------------------------------------------------------------

  Value MatMul(Value a, Value b);
  Value Add(Value a, Value b);
  Value AddN(const std::vector<Value>& xs);
  Value Sub(Value a, Value b);
  Value Mul(Value a, Value b);  // elementwise
  Value Scale(Value a, float s);
  // x: [N,C], bias: [1,C]; adds bias to every row.
  Value AddRowBroadcast(Value x, Value bias);
  // x: [N,C], col: [N,1]; scales row i of x by col[i].
  Value MulColBroadcast(Value x, Value col);
  Value Relu(Value x);
  Value LeakyRelu(Value x, float negative_slope = 0.2f);
  Value Sigmoid(Value x);
  Value Tanh(Value x);
  // Row-wise softmax of [N,C].
  Value SoftmaxRows(Value x);
  // Horizontal concatenation (all inputs share the row count).
  Value ConcatCols(const std::vector<Value>& xs);
  // Extracts columns [start, start+count) of x.
  Value SliceCols(Value x, int start, int count);
  // Row-wise dot product of two [N,C] tensors -> [N,1].
  Value RowwiseDot(Value a, Value b);
  // Inverted dropout; identity when the tape is in inference mode or p == 0.
  // The mask is drawn at record time, so the RNG consumption order is
  // identical in eager and planned mode.
  Value Dropout(Value x, double p, Rng& rng);

  // Sparse / graph ops ------------------------------------------------------

  // out[e, :] = x[index[e], :]. Backward scatter-adds.
  Value GatherRows(Value x, std::vector<int> index);
  // Softmax of scores[:,0] within each segment. scores: [E,1];
  // segment[e] in [0, num_segments). Empty segments are allowed.
  Value SegmentSoftmax(Value scores, std::vector<int> segment,
                       int num_segments);
  // out[s, :] = sum over {e : segment[e] == s} of x[e, :]. -> [S,C].
  Value SegmentSum(Value x, std::vector<int> segment, int num_segments);
  // Like SegmentSum but divides by the segment size (empty segments -> 0).
  Value SegmentMean(Value x, std::vector<int> segment, int num_segments);

  // Reductions / losses -----------------------------------------------------

  // Mean of all entries -> [1,1].
  Value MeanAll(Value x);
  // Mean squared error between same-shaped tensors -> [1,1] (Eq. 16).
  Value MseLoss(Value pred, Value target);
  // Mean absolute error -> [1,1] (Eq. 6).
  Value MaeLoss(Value pred, Value target);

  // Runs backpropagation from `loss`, which must be [1,1]. May be called
  // once per tape.
  void Backward(Value loss);

 private:
  TapeNode& node(int id) {
    O2SR_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<size_t>(id)];
  }
  const TapeNode& node(int id) const {
    O2SR_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<size_t>(id)];
  }
  const OpDesc& desc_of(int id) const { return node(id).desc; }

  // Appends a node; in eager mode runs it immediately (and pre-allocates
  // the zeroed grad slot, like the reference tape always did).
  Value Push(OpDesc desc);

  // Planned mode: compile + execute every node not yet materialized.
  void Flush() const;

  bool training_;
  bool planned_;
  bool backward_done_ = false;
  // Planned mode: nodes below this index have been executed.
  size_t executed_ = 0;
  std::vector<TapeNode> nodes_;
  // Planned mode: per-node schedule, concatenated over flushed segments.
  std::vector<PlanStep> plan_steps_;
};

}  // namespace o2sr::nn

#endif  // O2SR_NN_TAPE_H_
