#include "nn/tape.h"

#include <atomic>
#include <memory>
#include <utility>

#include "nn/buffer_pool.h"

namespace o2sr::nn {

namespace {

// -1: resolve from O2SR_PLAN; 0: force eager; 1: force planned.
std::atomic<int> g_mode_override{-1};

bool Materialized(const TapeNode& n) {
  return n.value.rows() == n.desc.rows && n.value.cols() == n.desc.cols;
}

}  // namespace

Tape::Tape(bool training) : training_(training) {
  const int ov = g_mode_override.load(std::memory_order_relaxed);
  planned_ = ov < 0 ? PlanEnabledFromEnv() : ov == 1;
}

Tape::~Tape() {
  // Return every materialized buffer to the pool: the next step's tape
  // reuses them instead of re-faulting fresh pages.
  TensorPool& pool = TensorPool::Global();
  for (TapeNode& n : nodes_) {
    pool.Release(std::move(n.value));
    pool.Release(std::move(n.grad));
  }
}

void Tape::SetModeForTest(Mode mode) {
  g_mode_override.store(
      mode == Mode::kEnv ? -1 : (mode == Mode::kPlanned ? 1 : 0),
      std::memory_order_relaxed);
}

Value Tape::Push(OpDesc desc) {
  TapeNode n;
  n.desc = std::move(desc);
  nodes_.push_back(std::move(n));
  const int id = static_cast<int>(nodes_.size()) - 1;
  if (!planned_) {
    detail::ExecuteForward(nodes_, id);
    detail::GradSlot(nodes_, id);
    executed_ = nodes_.size();
  }
  return Value{id};
}

void Tape::Flush() const {
  if (executed_ == nodes_.size()) return;
  auto* self = const_cast<Tape*>(this);
  const int begin = static_cast<int>(executed_);
  const int end = static_cast<int>(nodes_.size());
  std::shared_ptr<const Plan> plan =
      PlanCache::Global().GetOrCompile(nodes_, begin, end);
  self->plan_steps_.resize(nodes_.size());
  for (int i = begin; i < end; ++i) {
    self->plan_steps_[static_cast<size_t>(i)] =
        plan->steps[static_cast<size_t>(i - begin)];
  }
  detail::RunPlanForward(*plan, self->nodes_);
  self->executed_ = nodes_.size();
}

const Tensor& Tape::value(Value v) const {
  Flush();
  auto* self = const_cast<Tape*>(this);
  TapeNode& n = self->node(v.id);
  // A param leaf or fused-away intermediate materializes on first read
  // (for params this is the same snapshot copy the eager path makes).
  if (!Materialized(n)) detail::ExecuteForward(self->nodes_, v.id);
  return n.value;
}

const Tensor& Tape::grad(Value v) const {
  Flush();
  auto* self = const_cast<Tape*>(this);
  self->node(v.id);  // bounds check
  return detail::GradSlot(self->nodes_, v.id);
}

Value Tape::Input(Tensor t) {
  OpDesc d;
  d.kind = OpKind::kInput;
  d.rows = t.rows();
  d.cols = t.cols();
  TapeNode n;
  n.desc = std::move(d);
  n.value = std::move(t);
  nodes_.push_back(std::move(n));
  const int id = static_cast<int>(nodes_.size()) - 1;
  if (!planned_) {
    detail::GradSlot(nodes_, id);
    executed_ = nodes_.size();
  }
  return Value{id};
}

Value Tape::Param(Parameter* p) {
  O2SR_CHECK(p != nullptr);
  OpDesc d;
  d.kind = OpKind::kParam;
  d.rows = p->value.rows();
  d.cols = p->value.cols();
  d.param = p;
  return Push(std::move(d));
}

Value Tape::MatMul(Value a, Value b) {
  const OpDesc& da = desc_of(a.id);
  const OpDesc& db = desc_of(b.id);
  O2SR_CHECK_EQ(da.cols, db.rows);
  OpDesc d;
  d.kind = OpKind::kMatMul;
  d.rows = da.rows;
  d.cols = db.cols;
  d.inputs = {a.id, b.id};
  return Push(std::move(d));
}

Value Tape::Add(Value a, Value b) {
  const OpDesc& da = desc_of(a.id);
  const OpDesc& db = desc_of(b.id);
  O2SR_CHECK(da.rows == db.rows && da.cols == db.cols);
  OpDesc d;
  d.kind = OpKind::kAdd;
  d.rows = da.rows;
  d.cols = da.cols;
  d.inputs = {a.id, b.id};
  return Push(std::move(d));
}

Value Tape::AddN(const std::vector<Value>& xs) {
  O2SR_CHECK(!xs.empty());
  const OpDesc& d0 = desc_of(xs[0].id);
  OpDesc d;
  d.kind = OpKind::kAddN;
  d.rows = d0.rows;
  d.cols = d0.cols;
  d.inputs.reserve(xs.size());
  for (Value v : xs) {
    const OpDesc& dv = desc_of(v.id);
    O2SR_CHECK(dv.rows == d.rows && dv.cols == d.cols);
    d.inputs.push_back(v.id);
  }
  return Push(std::move(d));
}

Value Tape::Sub(Value a, Value b) {
  const OpDesc& da = desc_of(a.id);
  const OpDesc& db = desc_of(b.id);
  O2SR_CHECK(da.rows == db.rows && da.cols == db.cols);
  OpDesc d;
  d.kind = OpKind::kSub;
  d.rows = da.rows;
  d.cols = da.cols;
  d.inputs = {a.id, b.id};
  return Push(std::move(d));
}

Value Tape::Mul(Value a, Value b) {
  const OpDesc& da = desc_of(a.id);
  const OpDesc& db = desc_of(b.id);
  O2SR_CHECK(da.rows == db.rows && da.cols == db.cols);
  OpDesc d;
  d.kind = OpKind::kMul;
  d.rows = da.rows;
  d.cols = da.cols;
  d.inputs = {a.id, b.id};
  return Push(std::move(d));
}

Value Tape::Scale(Value a, float s) {
  const OpDesc& da = desc_of(a.id);
  OpDesc d;
  d.kind = OpKind::kScale;
  d.rows = da.rows;
  d.cols = da.cols;
  d.alpha = s;
  d.inputs = {a.id};
  return Push(std::move(d));
}

Value Tape::AddRowBroadcast(Value x, Value bias) {
  const OpDesc& dx = desc_of(x.id);
  const OpDesc& db = desc_of(bias.id);
  O2SR_CHECK_EQ(db.rows, 1);
  O2SR_CHECK_EQ(db.cols, dx.cols);
  OpDesc d;
  d.kind = OpKind::kAddRowBroadcast;
  d.rows = dx.rows;
  d.cols = dx.cols;
  d.inputs = {x.id, bias.id};
  return Push(std::move(d));
}

Value Tape::MulColBroadcast(Value x, Value col) {
  const OpDesc& dx = desc_of(x.id);
  const OpDesc& dc = desc_of(col.id);
  O2SR_CHECK_EQ(dc.cols, 1);
  O2SR_CHECK_EQ(dc.rows, dx.rows);
  OpDesc d;
  d.kind = OpKind::kMulColBroadcast;
  d.rows = dx.rows;
  d.cols = dx.cols;
  d.inputs = {x.id, col.id};
  return Push(std::move(d));
}

namespace {

OpDesc UnaryDesc(OpKind kind, const OpDesc& dx, int id) {
  OpDesc d;
  d.kind = kind;
  d.rows = dx.rows;
  d.cols = dx.cols;
  d.inputs = {id};
  return d;
}

}  // namespace

Value Tape::Relu(Value x) {
  return Push(UnaryDesc(OpKind::kRelu, desc_of(x.id), x.id));
}

Value Tape::LeakyRelu(Value x, float negative_slope) {
  OpDesc d = UnaryDesc(OpKind::kLeakyRelu, desc_of(x.id), x.id);
  d.alpha = negative_slope;
  return Push(std::move(d));
}

Value Tape::Sigmoid(Value x) {
  return Push(UnaryDesc(OpKind::kSigmoid, desc_of(x.id), x.id));
}

Value Tape::Tanh(Value x) {
  return Push(UnaryDesc(OpKind::kTanh, desc_of(x.id), x.id));
}

Value Tape::SoftmaxRows(Value x) {
  return Push(UnaryDesc(OpKind::kSoftmaxRows, desc_of(x.id), x.id));
}

Value Tape::ConcatCols(const std::vector<Value>& xs) {
  O2SR_CHECK(!xs.empty());
  const int rows = desc_of(xs[0].id).rows;
  OpDesc d;
  d.kind = OpKind::kConcatCols;
  d.rows = rows;
  d.cols = 0;
  d.inputs.reserve(xs.size());
  for (Value v : xs) {
    const OpDesc& dv = desc_of(v.id);
    O2SR_CHECK_EQ(dv.rows, rows);
    d.cols += dv.cols;
    d.inputs.push_back(v.id);
  }
  return Push(std::move(d));
}

Value Tape::SliceCols(Value x, int start, int count) {
  const OpDesc& dx = desc_of(x.id);
  O2SR_CHECK(start >= 0 && count > 0 && start + count <= dx.cols);
  OpDesc d;
  d.kind = OpKind::kSliceCols;
  d.rows = dx.rows;
  d.cols = count;
  d.slice_start = start;
  d.inputs = {x.id};
  return Push(std::move(d));
}

Value Tape::RowwiseDot(Value a, Value b) {
  const OpDesc& da = desc_of(a.id);
  const OpDesc& db = desc_of(b.id);
  O2SR_CHECK(da.rows == db.rows && da.cols == db.cols);
  OpDesc d;
  d.kind = OpKind::kRowwiseDot;
  d.rows = da.rows;
  d.cols = 1;
  d.inputs = {a.id, b.id};
  return Push(std::move(d));
}

Value Tape::Dropout(Value x, double p, Rng& rng) {
  if (!training_ || p <= 0.0) return x;
  O2SR_CHECK_LT(p, 1.0);
  const OpDesc& dx = desc_of(x.id);
  // The mask is drawn here, at record time, in element order — the RNG
  // stream is consumed identically whether execution is eager or deferred.
  Tensor mask(dx.rows, dx.cols);
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
  for (size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.Bernoulli(p) ? 0.0f : keep_scale;
  }
  OpDesc d;
  d.kind = OpKind::kDropout;
  d.rows = dx.rows;
  d.cols = dx.cols;
  d.inputs = {x.id};
  d.mask = std::make_shared<const Tensor>(std::move(mask));
  return Push(std::move(d));
}

Value Tape::GatherRows(Value x, std::vector<int> index) {
  const OpDesc& dx = desc_of(x.id);
  for (int i : index) O2SR_CHECK(i >= 0 && i < dx.rows);
  OpDesc d;
  d.kind = OpKind::kGatherRows;
  d.rows = static_cast<int>(index.size());
  d.cols = dx.cols;
  d.inputs = {x.id};
  d.index = std::make_shared<const std::vector<int>>(std::move(index));
  return Push(std::move(d));
}

Value Tape::SegmentSoftmax(Value scores, std::vector<int> segment,
                           int num_segments) {
  const OpDesc& ds = desc_of(scores.id);
  O2SR_CHECK_EQ(ds.cols, 1);
  O2SR_CHECK_EQ(static_cast<size_t>(ds.rows), segment.size());
  for (int s : segment) O2SR_CHECK(s >= 0 && s < num_segments);
  OpDesc d;
  d.kind = OpKind::kSegmentSoftmax;
  d.rows = ds.rows;
  d.cols = 1;
  d.num_segments = num_segments;
  d.inputs = {scores.id};
  d.index = std::make_shared<const std::vector<int>>(std::move(segment));
  return Push(std::move(d));
}

Value Tape::SegmentSum(Value x, std::vector<int> segment, int num_segments) {
  const OpDesc& dx = desc_of(x.id);
  O2SR_CHECK_EQ(static_cast<size_t>(dx.rows), segment.size());
  for (int s : segment) O2SR_CHECK(s >= 0 && s < num_segments);
  OpDesc d;
  d.kind = OpKind::kSegmentSum;
  d.rows = num_segments;
  d.cols = dx.cols;
  d.num_segments = num_segments;
  d.inputs = {x.id};
  d.index = std::make_shared<const std::vector<int>>(std::move(segment));
  return Push(std::move(d));
}

Value Tape::SegmentMean(Value x, std::vector<int> segment, int num_segments) {
  const OpDesc& dx = desc_of(x.id);
  O2SR_CHECK_EQ(static_cast<size_t>(dx.rows), segment.size());
  std::vector<int> counts(static_cast<size_t>(num_segments), 0);
  for (int s : segment) {
    O2SR_CHECK(s >= 0 && s < num_segments);
    ++counts[static_cast<size_t>(s)];
  }
  OpDesc d;
  d.kind = OpKind::kSegmentMean;
  d.rows = num_segments;
  d.cols = dx.cols;
  d.num_segments = num_segments;
  d.inputs = {x.id};
  d.index = std::make_shared<const std::vector<int>>(std::move(segment));
  d.counts = std::make_shared<const std::vector<int>>(std::move(counts));
  return Push(std::move(d));
}

Value Tape::MeanAll(Value x) {
  const OpDesc& dx = desc_of(x.id);
  O2SR_CHECK_GT(static_cast<int64_t>(dx.rows) * dx.cols, 0);
  OpDesc d;
  d.kind = OpKind::kMeanAll;
  d.rows = 1;
  d.cols = 1;
  d.inputs = {x.id};
  return Push(std::move(d));
}

Value Tape::MseLoss(Value pred, Value target) {
  const OpDesc& dp = desc_of(pred.id);
  const OpDesc& dt = desc_of(target.id);
  O2SR_CHECK(dp.rows == dt.rows && dp.cols == dt.cols);
  O2SR_CHECK_GT(static_cast<int64_t>(dp.rows) * dp.cols, 0);
  OpDesc d;
  d.kind = OpKind::kMseLoss;
  d.rows = 1;
  d.cols = 1;
  d.inputs = {pred.id, target.id};
  return Push(std::move(d));
}

Value Tape::MaeLoss(Value pred, Value target) {
  const OpDesc& dp = desc_of(pred.id);
  const OpDesc& dt = desc_of(target.id);
  O2SR_CHECK(dp.rows == dt.rows && dp.cols == dt.cols);
  O2SR_CHECK_GT(static_cast<int64_t>(dp.rows) * dp.cols, 0);
  OpDesc d;
  d.kind = OpKind::kMaeLoss;
  d.rows = 1;
  d.cols = 1;
  d.inputs = {pred.id, target.id};
  return Push(std::move(d));
}

void Tape::Backward(Value loss) {
  Flush();
  O2SR_CHECK(!backward_done_);
  backward_done_ = true;
  const OpDesc& root = desc_of(loss.id);
  O2SR_CHECK_EQ(root.rows, 1);
  O2SR_CHECK_EQ(root.cols, 1);
  detail::GradSlot(nodes_, loss.id).at(0, 0) = 1.0f;
  if (!planned_) {
    for (int id = loss.id; id >= 0; --id) detail::ExecuteBackward(nodes_, id);
  } else {
    detail::RunPlanBackward(plan_steps_, nodes_, loss.id);
  }
}

}  // namespace o2sr::nn
