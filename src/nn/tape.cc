#include "nn/tape.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/profiler.h"

namespace o2sr::nn {

namespace {

// Forward-pass attribution: each tape op allocates its output plus (via
// Emplace) a same-shaped grad tensor, and moves its operands and output
// once. Items = output elements.
inline void ProfileTapeOp(const char* name, const Tensor& out,
                          uint64_t operand_bytes) {
  O2SR_PROFILE_OP(name, uint64_t{2} * out.size() * sizeof(float),
                  operand_bytes + out.size() * sizeof(float), out.size());
}

inline uint64_t TensorBytes(const Tensor& t) {
  return t.size() * sizeof(float);
}

}  // namespace

Value Tape::Emplace(Tensor value,
                    std::function<void(Tape&, const Node&)> backward) {
  Node n;
  n.grad = Tensor(value.rows(), value.cols());
  n.value = std::move(value);
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Value{static_cast<int>(nodes_.size()) - 1};
}

Value Tape::Input(Tensor t) { return Emplace(std::move(t), nullptr); }

Value Tape::Param(Parameter* p) {
  O2SR_CHECK(p != nullptr);
  return Emplace(p->value, [p](Tape&, const Node& self) {
    p->grad.AddInPlace(self.grad);
  });
}

Value Tape::MatMul(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  Tensor out = nn::MatMul(ta, tb);
  ProfileTapeOp("tape.matmul", out, TensorBytes(ta) + TensorBytes(tb));
  const int ai = a.id, bi = b.id;
  return Emplace(std::move(out), [ai, bi](Tape& t, const Node& self) {
    // dA = dC * B^T ; dB = A^T * dC
    t.mutable_grad(ai).AddInPlace(
        MatMulTransposeB(self.grad, t.node(bi).value));
    t.mutable_grad(bi).AddInPlace(
        MatMulTransposeA(t.node(ai).value, self.grad));
  });
}

Value Tape::Add(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  O2SR_CHECK(ta.SameShape(tb));
  Tensor out = ta;
  out.AddInPlace(tb);
  ProfileTapeOp("tape.add", out, TensorBytes(ta) + TensorBytes(tb));
  const int ai = a.id, bi = b.id;
  return Emplace(std::move(out), [ai, bi](Tape& t, const Node& self) {
    t.mutable_grad(ai).AddInPlace(self.grad);
    t.mutable_grad(bi).AddInPlace(self.grad);
  });
}

Value Tape::AddN(const std::vector<Value>& xs) {
  O2SR_CHECK(!xs.empty());
  Tensor out = value(xs[0]);
  for (size_t i = 1; i < xs.size(); ++i) {
    O2SR_CHECK(out.SameShape(value(xs[i])));
    out.AddInPlace(value(xs[i]));
  }
  ProfileTapeOp("tape.add_n", out,
                static_cast<uint64_t>(xs.size()) * TensorBytes(out));
  std::vector<int> ids;
  ids.reserve(xs.size());
  for (Value v : xs) ids.push_back(v.id);
  return Emplace(std::move(out), [ids](Tape& t, const Node& self) {
    for (int id : ids) t.mutable_grad(id).AddInPlace(self.grad);
  });
}

Value Tape::Sub(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  O2SR_CHECK(ta.SameShape(tb));
  Tensor out = ta;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] -= tb.data()[i];
  ProfileTapeOp("tape.sub", out, TensorBytes(ta) + TensorBytes(tb));
  const int ai = a.id, bi = b.id;
  return Emplace(std::move(out), [ai, bi](Tape& t, const Node& self) {
    t.mutable_grad(ai).AddInPlace(self.grad);
    Tensor& gb = t.mutable_grad(bi);
    for (size_t i = 0; i < gb.size(); ++i) gb.data()[i] -= self.grad.data()[i];
  });
}

Value Tape::Mul(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  O2SR_CHECK(ta.SameShape(tb));
  Tensor out = ta;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= tb.data()[i];
  ProfileTapeOp("tape.mul", out, TensorBytes(ta) + TensorBytes(tb));
  const int ai = a.id, bi = b.id;
  return Emplace(std::move(out), [ai, bi](Tape& t, const Node& self) {
    const Tensor& va = t.node(ai).value;
    const Tensor& vb = t.node(bi).value;
    Tensor& ga = t.mutable_grad(ai);
    Tensor& gb = t.mutable_grad(bi);
    for (size_t i = 0; i < va.size(); ++i) {
      ga.data()[i] += self.grad.data()[i] * vb.data()[i];
      gb.data()[i] += self.grad.data()[i] * va.data()[i];
    }
  });
}

Value Tape::Scale(Value a, float s) {
  Tensor out = value(a);
  out.ScaleInPlace(s);
  ProfileTapeOp("tape.scale", out, TensorBytes(out));
  const int ai = a.id;
  return Emplace(std::move(out), [ai, s](Tape& t, const Node& self) {
    Tensor& ga = t.mutable_grad(ai);
    for (size_t i = 0; i < ga.size(); ++i) {
      ga.data()[i] += s * self.grad.data()[i];
    }
  });
}

Value Tape::AddRowBroadcast(Value x, Value bias) {
  const Tensor& tx = value(x);
  const Tensor& tb = value(bias);
  O2SR_CHECK_EQ(tb.rows(), 1);
  O2SR_CHECK_EQ(tb.cols(), tx.cols());
  Tensor out = tx;
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    const float* b = tb.row(0);
    for (int c = 0; c < out.cols(); ++c) row[c] += b[c];
  }
  ProfileTapeOp("tape.add_row_broadcast", out,
                TensorBytes(tx) + TensorBytes(tb));
  const int xi = x.id, bi = bias.id;
  return Emplace(std::move(out), [xi, bi](Tape& t, const Node& self) {
    t.mutable_grad(xi).AddInPlace(self.grad);
    Tensor& gb = t.mutable_grad(bi);
    for (int r = 0; r < self.grad.rows(); ++r) {
      const float* g = self.grad.row(r);
      for (int c = 0; c < self.grad.cols(); ++c) gb.at(0, c) += g[c];
    }
  });
}

Value Tape::MulColBroadcast(Value x, Value col) {
  const Tensor& tx = value(x);
  const Tensor& tc = value(col);
  O2SR_CHECK_EQ(tc.cols(), 1);
  O2SR_CHECK_EQ(tc.rows(), tx.rows());
  Tensor out = tx;
  for (int r = 0; r < out.rows(); ++r) {
    const float w = tc.at(r, 0);
    float* row = out.row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] *= w;
  }
  ProfileTapeOp("tape.mul_col_broadcast", out,
                TensorBytes(tx) + TensorBytes(tc));
  const int xi = x.id, ci = col.id;
  return Emplace(std::move(out), [xi, ci](Tape& t, const Node& self) {
    const Tensor& vx = t.node(xi).value;
    const Tensor& vc = t.node(ci).value;
    Tensor& gx = t.mutable_grad(xi);
    Tensor& gc = t.mutable_grad(ci);
    for (int r = 0; r < vx.rows(); ++r) {
      const float w = vc.at(r, 0);
      const float* g = self.grad.row(r);
      const float* xv = vx.row(r);
      float* gxr = gx.row(r);
      double acc = 0.0;
      for (int c = 0; c < vx.cols(); ++c) {
        gxr[c] += g[c] * w;
        acc += g[c] * xv[c];
      }
      gc.at(r, 0) += static_cast<float>(acc);
    }
  });
}

Value Tape::Relu(Value x) {
  Tensor out = value(x);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::max(out.data()[i], 0.0f);
  }
  ProfileTapeOp("tape.relu", out, TensorBytes(out));
  const int xi = x.id;
  return Emplace(std::move(out), [xi](Tape& t, const Node& self) {
    const Tensor& vx = t.node(xi).value;
    Tensor& gx = t.mutable_grad(xi);
    for (size_t i = 0; i < vx.size(); ++i) {
      if (vx.data()[i] > 0.0f) gx.data()[i] += self.grad.data()[i];
    }
  });
}

Value Tape::LeakyRelu(Value x, float negative_slope) {
  const Tensor& tx = value(x);
  Tensor out = tx;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] *= negative_slope;
  }
  ProfileTapeOp("tape.leaky_relu", out, TensorBytes(tx));
  const int xi = x.id;
  return Emplace(std::move(out),
                 [xi, negative_slope](Tape& t, const Node& self) {
    const Tensor& vx = t.node(xi).value;
    Tensor& gx = t.mutable_grad(xi);
    for (size_t i = 0; i < vx.size(); ++i) {
      const float d = vx.data()[i] > 0.0f ? 1.0f : negative_slope;
      gx.data()[i] += d * self.grad.data()[i];
    }
  });
}

Value Tape::Sigmoid(Value x) {
  const Tensor& tx = value(x);
  Tensor out = tx;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0f / (1.0f + std::exp(-out.data()[i]));
  }
  ProfileTapeOp("tape.sigmoid", out, TensorBytes(tx));
  const int xi = x.id;
  return Emplace(std::move(out), [xi](Tape& t, const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (size_t i = 0; i < self.value.size(); ++i) {
      const float y = self.value.data()[i];
      gx.data()[i] += self.grad.data()[i] * y * (1.0f - y);
    }
  });
}

Value Tape::Tanh(Value x) {
  const Tensor& tx = value(x);
  Tensor out = tx;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  ProfileTapeOp("tape.tanh", out, TensorBytes(tx));
  const int xi = x.id;
  return Emplace(std::move(out), [xi](Tape& t, const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (size_t i = 0; i < self.value.size(); ++i) {
      const float y = self.value.data()[i];
      gx.data()[i] += self.grad.data()[i] * (1.0f - y * y);
    }
  });
}

Value Tape::SoftmaxRows(Value x) {
  const Tensor& tx = value(x);
  Tensor out = tx;
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    float mx = row[0];
    for (int c = 1; c < out.cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (int c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (int c = 0; c < out.cols(); ++c) {
      row[c] = static_cast<float>(row[c] / sum);
    }
  }
  ProfileTapeOp("tape.softmax_rows", out, TensorBytes(tx));
  const int xi = x.id;
  return Emplace(std::move(out), [xi](Tape& t, const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (int r = 0; r < self.value.rows(); ++r) {
      const float* y = self.value.row(r);
      const float* g = self.grad.row(r);
      double dot = 0.0;
      for (int c = 0; c < self.value.cols(); ++c) dot += y[c] * g[c];
      float* gr = gx.row(r);
      for (int c = 0; c < self.value.cols(); ++c) {
        gr[c] += y[c] * (g[c] - static_cast<float>(dot));
      }
    }
  });
}

Value Tape::ConcatCols(const std::vector<Value>& xs) {
  O2SR_CHECK(!xs.empty());
  const int rows = value(xs[0]).rows();
  int total_cols = 0;
  for (Value v : xs) {
    O2SR_CHECK_EQ(value(v).rows(), rows);
    total_cols += value(v).cols();
  }
  Tensor out(rows, total_cols);
  int offset = 0;
  std::vector<int> ids;
  std::vector<int> offsets;
  std::vector<int> widths;
  for (Value v : xs) {
    const Tensor& tv = value(v);
    for (int r = 0; r < rows; ++r) {
      std::copy(tv.row(r), tv.row(r) + tv.cols(), out.row(r) + offset);
    }
    ids.push_back(v.id);
    offsets.push_back(offset);
    widths.push_back(tv.cols());
    offset += tv.cols();
  }
  ProfileTapeOp("tape.concat_cols", out, TensorBytes(out));
  return Emplace(std::move(out),
                 [ids, offsets, widths](Tape& t, const Node& self) {
    for (size_t k = 0; k < ids.size(); ++k) {
      Tensor& g = t.mutable_grad(ids[k]);
      for (int r = 0; r < g.rows(); ++r) {
        const float* src = self.grad.row(r) + offsets[k];
        float* dst = g.row(r);
        for (int c = 0; c < widths[k]; ++c) dst[c] += src[c];
      }
    }
  });
}

Value Tape::SliceCols(Value x, int start, int count) {
  const Tensor& tx = value(x);
  O2SR_CHECK(start >= 0 && count > 0 && start + count <= tx.cols());
  Tensor out(tx.rows(), count);
  for (int r = 0; r < tx.rows(); ++r) {
    std::copy(tx.row(r) + start, tx.row(r) + start + count, out.row(r));
  }
  ProfileTapeOp("tape.slice_cols", out, TensorBytes(out));
  const int xi = x.id;
  return Emplace(std::move(out), [xi, start, count](Tape& t,
                                                    const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (int r = 0; r < self.grad.rows(); ++r) {
      const float* g = self.grad.row(r);
      float* dst = gx.row(r) + start;
      for (int c = 0; c < count; ++c) dst[c] += g[c];
    }
  });
}

Value Tape::RowwiseDot(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  O2SR_CHECK(ta.SameShape(tb));
  Tensor out(ta.rows(), 1);
  for (int r = 0; r < ta.rows(); ++r) {
    double dot = 0.0;
    const float* ra = ta.row(r);
    const float* rb = tb.row(r);
    for (int c = 0; c < ta.cols(); ++c) dot += ra[c] * rb[c];
    out.at(r, 0) = static_cast<float>(dot);
  }
  ProfileTapeOp("tape.rowwise_dot", out, TensorBytes(ta) + TensorBytes(tb));
  const int ai = a.id, bi = b.id;
  return Emplace(std::move(out), [ai, bi](Tape& t, const Node& self) {
    const Tensor& va = t.node(ai).value;
    const Tensor& vb = t.node(bi).value;
    Tensor& ga = t.mutable_grad(ai);
    Tensor& gb = t.mutable_grad(bi);
    for (int r = 0; r < va.rows(); ++r) {
      const float g = self.grad.at(r, 0);
      const float* ra = va.row(r);
      const float* rb = vb.row(r);
      float* gra = ga.row(r);
      float* grb = gb.row(r);
      for (int c = 0; c < va.cols(); ++c) {
        gra[c] += g * rb[c];
        grb[c] += g * ra[c];
      }
    }
  });
}

Value Tape::Dropout(Value x, double p, Rng& rng) {
  if (!training_ || p <= 0.0) return x;
  O2SR_CHECK_LT(p, 1.0);
  const Tensor& tx = value(x);
  Tensor mask(tx.rows(), tx.cols());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
  for (size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.Bernoulli(p) ? 0.0f : keep_scale;
  }
  Tensor out = tx;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= mask.data()[i];
  ProfileTapeOp("tape.dropout", out, TensorBytes(tx) + TensorBytes(mask));
  const int xi = x.id;
  return Emplace(std::move(out),
                 [xi, mask = std::move(mask)](Tape& t, const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (size_t i = 0; i < gx.size(); ++i) {
      gx.data()[i] += self.grad.data()[i] * mask.data()[i];
    }
  });
}

Value Tape::GatherRows(Value x, std::vector<int> index) {
  const Tensor& tx = value(x);
  Tensor out(static_cast<int>(index.size()), tx.cols());
  for (size_t e = 0; e < index.size(); ++e) {
    O2SR_CHECK(index[e] >= 0 && index[e] < tx.rows());
    std::copy(tx.row(index[e]), tx.row(index[e]) + tx.cols(),
              out.row(static_cast<int>(e)));
  }
  ProfileTapeOp("tape.gather_rows", out, TensorBytes(out));
  const int xi = x.id;
  return Emplace(std::move(out),
                 [xi, index = std::move(index)](Tape& t, const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (size_t e = 0; e < index.size(); ++e) {
      const float* g = self.grad.row(static_cast<int>(e));
      float* dst = gx.row(index[e]);
      for (int c = 0; c < gx.cols(); ++c) dst[c] += g[c];
    }
  });
}

Value Tape::SegmentSoftmax(Value scores, std::vector<int> segment,
                           int num_segments) {
  const Tensor& ts = value(scores);
  O2SR_CHECK_EQ(ts.cols(), 1);
  O2SR_CHECK_EQ(static_cast<size_t>(ts.rows()), segment.size());
  // Numerically stable per-segment softmax.
  std::vector<float> seg_max(num_segments,
                             -std::numeric_limits<float>::infinity());
  for (size_t e = 0; e < segment.size(); ++e) {
    O2SR_CHECK(segment[e] >= 0 && segment[e] < num_segments);
    seg_max[segment[e]] =
        std::max(seg_max[segment[e]], ts.at(static_cast<int>(e), 0));
  }
  std::vector<double> seg_sum(num_segments, 0.0);
  Tensor out(ts.rows(), 1);
  for (size_t e = 0; e < segment.size(); ++e) {
    const float v =
        std::exp(ts.at(static_cast<int>(e), 0) - seg_max[segment[e]]);
    out.at(static_cast<int>(e), 0) = v;
    seg_sum[segment[e]] += v;
  }
  for (size_t e = 0; e < segment.size(); ++e) {
    out.at(static_cast<int>(e), 0) = static_cast<float>(
        out.at(static_cast<int>(e), 0) / seg_sum[segment[e]]);
  }
  ProfileTapeOp("tape.segment_softmax", out, TensorBytes(ts));
  const int si = scores.id;
  return Emplace(std::move(out), [si, segment = std::move(segment),
                                  num_segments](Tape& t, const Node& self) {
    // d s_e = alpha_e * (g_e - sum_{k in seg} alpha_k g_k)
    std::vector<double> seg_dot(num_segments, 0.0);
    for (size_t e = 0; e < segment.size(); ++e) {
      seg_dot[segment[e]] += static_cast<double>(
          self.value.at(static_cast<int>(e), 0) *
          self.grad.at(static_cast<int>(e), 0));
    }
    Tensor& gs = t.mutable_grad(si);
    for (size_t e = 0; e < segment.size(); ++e) {
      const float a = self.value.at(static_cast<int>(e), 0);
      const float g = self.grad.at(static_cast<int>(e), 0);
      gs.at(static_cast<int>(e), 0) +=
          a * (g - static_cast<float>(seg_dot[segment[e]]));
    }
  });
}

Value Tape::SegmentSum(Value x, std::vector<int> segment, int num_segments) {
  const Tensor& tx = value(x);
  O2SR_CHECK_EQ(static_cast<size_t>(tx.rows()), segment.size());
  Tensor out(num_segments, tx.cols());
  for (size_t e = 0; e < segment.size(); ++e) {
    O2SR_CHECK(segment[e] >= 0 && segment[e] < num_segments);
    const float* src = tx.row(static_cast<int>(e));
    float* dst = out.row(segment[e]);
    for (int c = 0; c < tx.cols(); ++c) dst[c] += src[c];
  }
  ProfileTapeOp("tape.segment_sum", out, TensorBytes(tx));
  const int xi = x.id;
  return Emplace(std::move(out),
                 [xi, segment = std::move(segment)](Tape& t,
                                                    const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (size_t e = 0; e < segment.size(); ++e) {
      const float* g = self.grad.row(segment[e]);
      float* dst = gx.row(static_cast<int>(e));
      for (int c = 0; c < gx.cols(); ++c) dst[c] += g[c];
    }
  });
}

Value Tape::SegmentMean(Value x, std::vector<int> segment, int num_segments) {
  const Tensor& tx = value(x);
  O2SR_CHECK_EQ(static_cast<size_t>(tx.rows()), segment.size());
  std::vector<int> counts(num_segments, 0);
  for (int s : segment) {
    O2SR_CHECK(s >= 0 && s < num_segments);
    ++counts[s];
  }
  Tensor out(num_segments, tx.cols());
  for (size_t e = 0; e < segment.size(); ++e) {
    const float* src = tx.row(static_cast<int>(e));
    float* dst = out.row(segment[e]);
    const float inv = 1.0f / static_cast<float>(counts[segment[e]]);
    for (int c = 0; c < tx.cols(); ++c) dst[c] += src[c] * inv;
  }
  ProfileTapeOp("tape.segment_mean", out, TensorBytes(tx));
  const int xi = x.id;
  return Emplace(std::move(out),
                 [xi, segment = std::move(segment),
                  counts = std::move(counts)](Tape& t, const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    for (size_t e = 0; e < segment.size(); ++e) {
      const float* g = self.grad.row(segment[e]);
      float* dst = gx.row(static_cast<int>(e));
      const float inv = 1.0f / static_cast<float>(counts[segment[e]]);
      for (int c = 0; c < gx.cols(); ++c) dst[c] += g[c] * inv;
    }
  });
}

Value Tape::MeanAll(Value x) {
  const Tensor& tx = value(x);
  O2SR_CHECK_GT(tx.size(), 0u);
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(tx.Sum() / tx.size());
  ProfileTapeOp("tape.mean_all", out, TensorBytes(tx));
  const int xi = x.id;
  return Emplace(std::move(out), [xi](Tape& t, const Node& self) {
    Tensor& gx = t.mutable_grad(xi);
    const float g =
        self.grad.at(0, 0) / static_cast<float>(gx.size());
    for (size_t i = 0; i < gx.size(); ++i) gx.data()[i] += g;
  });
}

Value Tape::MseLoss(Value pred, Value target) {
  const Tensor& tp = value(pred);
  const Tensor& tt = value(target);
  O2SR_CHECK(tp.SameShape(tt));
  O2SR_CHECK_GT(tp.size(), 0u);
  Tensor out(1, 1);
  double acc = 0.0;
  for (size_t i = 0; i < tp.size(); ++i) {
    const double d = tp.data()[i] - tt.data()[i];
    acc += d * d;
  }
  out.at(0, 0) = static_cast<float>(acc / tp.size());
  ProfileTapeOp("tape.mse_loss", out, TensorBytes(tp) + TensorBytes(tt));
  const int pi = pred.id, ti = target.id;
  return Emplace(std::move(out), [pi, ti](Tape& t, const Node& self) {
    const Tensor& vp = t.node(pi).value;
    const Tensor& vt = t.node(ti).value;
    Tensor& gp = t.mutable_grad(pi);
    Tensor& gt = t.mutable_grad(ti);
    const float scale =
        2.0f * self.grad.at(0, 0) / static_cast<float>(vp.size());
    for (size_t i = 0; i < vp.size(); ++i) {
      const float d = vp.data()[i] - vt.data()[i];
      gp.data()[i] += scale * d;
      gt.data()[i] -= scale * d;
    }
  });
}

Value Tape::MaeLoss(Value pred, Value target) {
  const Tensor& tp = value(pred);
  const Tensor& tt = value(target);
  O2SR_CHECK(tp.SameShape(tt));
  O2SR_CHECK_GT(tp.size(), 0u);
  Tensor out(1, 1);
  double acc = 0.0;
  for (size_t i = 0; i < tp.size(); ++i) {
    acc += std::fabs(tp.data()[i] - tt.data()[i]);
  }
  out.at(0, 0) = static_cast<float>(acc / tp.size());
  ProfileTapeOp("tape.mae_loss", out, TensorBytes(tp) + TensorBytes(tt));
  const int pi = pred.id, ti = target.id;
  return Emplace(std::move(out), [pi, ti](Tape& t, const Node& self) {
    const Tensor& vp = t.node(pi).value;
    const Tensor& vt = t.node(ti).value;
    Tensor& gp = t.mutable_grad(pi);
    Tensor& gt = t.mutable_grad(ti);
    const float scale = self.grad.at(0, 0) / static_cast<float>(vp.size());
    for (size_t i = 0; i < vp.size(); ++i) {
      const float d = vp.data()[i] - vt.data()[i];
      const float sign = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
      gp.data()[i] += scale * sign;
      gt.data()[i] -= scale * sign;
    }
  });
}

void Tape::Backward(Value loss) {
  O2SR_CHECK(!backward_done_);
  backward_done_ = true;
  Node& root = node(loss.id);
  O2SR_CHECK_EQ(root.value.rows(), 1);
  O2SR_CHECK_EQ(root.value.cols(), 1);
  root.grad.at(0, 0) = 1.0f;
  for (int id = loss.id; id >= 0; --id) {
    Node& n = nodes_[id];
    if (n.backward) n.backward(*this, n);
  }
}

}  // namespace o2sr::nn
