#include "nn/layers.h"

namespace o2sr::nn {

Linear::Linear(ParameterStore* store, const std::string& name, int in_dim,
               int out_dim, Rng& rng, bool with_bias)
    : in_dim_(in_dim), out_dim_(out_dim) {
  O2SR_CHECK(store != nullptr);
  O2SR_CHECK_GT(in_dim, 0);
  O2SR_CHECK_GT(out_dim, 0);
  weight_ = store->CreateXavier(name + ".weight", in_dim, out_dim, rng);
  if (with_bias) bias_ = store->CreateZeros(name + ".bias", 1, out_dim);
}

Value Linear::Apply(Tape& tape, Value x) const {
  O2SR_CHECK(weight_ != nullptr);
  Value w = tape.Param(weight_);
  Value y = tape.MatMul(x, w);
  if (bias_ != nullptr) {
    y = tape.AddRowBroadcast(y, tape.Param(bias_));
  }
  return y;
}

Value Activate(Tape& tape, Value x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return tape.Relu(x);
    case Activation::kSigmoid:
      return tape.Sigmoid(x);
    case Activation::kTanh:
      return tape.Tanh(x);
  }
  O2SR_CHECK(false);
  return x;
}

Mlp::Mlp(ParameterStore* store, const std::string& name,
         const std::vector<int>& dims, Rng& rng, Activation hidden_activation,
         Activation output_activation)
    : hidden_activation_(hidden_activation),
      output_activation_(output_activation) {
  O2SR_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, name + ".fc" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
}

Value Mlp::Apply(Tape& tape, Value x) const {
  O2SR_CHECK(!layers_.empty());
  for (size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i].Apply(tape, x);
    const bool last = (i + 1 == layers_.size());
    x = Activate(tape, x, last ? output_activation_ : hidden_activation_);
  }
  return x;
}

Embedding::Embedding(ParameterStore* store, const std::string& name,
                     int num_entities, int dim, Rng& rng)
    : num_entities_(num_entities), dim_(dim) {
  O2SR_CHECK(store != nullptr);
  O2SR_CHECK_GT(num_entities, 0);
  O2SR_CHECK_GT(dim, 0);
  table_ = store->CreateNormal(name + ".table", num_entities, dim, 0.1, rng);
}

Value Embedding::Lookup(Tape& tape, const std::vector<int>& ids) const {
  O2SR_CHECK(table_ != nullptr);
  return tape.GatherRows(tape.Param(table_), ids);
}

Value Embedding::Full(Tape& tape) const {
  O2SR_CHECK(table_ != nullptr);
  return tape.Param(table_);
}

}  // namespace o2sr::nn
