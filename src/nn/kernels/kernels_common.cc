// Kernels whose semantics pin a sequential order or call libm: one shared
// implementation for every SIMD level. The loop bodies are verbatim ports
// of the original tape ops — the accumulation order and the exact
// float/double conversions are the bit-exactness contract.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "nn/kernels/kernels.h"

namespace o2sr::nn::kernels {

void SigmoidForward(const float* x, float* out, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
}

void TanhForward(const float* x, float* out, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) out[i] = std::tanh(x[i]);
}

void SoftmaxRowsForward(const float* x, float* out, int64_t row_begin,
                        int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float* xr = x + r * cols;
    float* o = out + r * cols;
    float mx = xr[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) {
      o[c] = std::exp(xr[c] - mx);
      sum += o[c];
    }
    for (int c = 0; c < cols; ++c) {
      o[c] = static_cast<float>(o[c] / sum);
    }
  }
}

void SoftmaxRowsBackward(const float* y, const float* g, float* gx,
                         int64_t row_begin, int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float* yr = y + r * cols;
    const float* gr = g + r * cols;
    float* o = gx + r * cols;
    double dot = 0.0;
    for (int c = 0; c < cols; ++c) dot += yr[c] * gr[c];
    for (int c = 0; c < cols; ++c) {
      o[c] += yr[c] * (gr[c] - static_cast<float>(dot));
    }
  }
}

void RowwiseDotForward(const float* a, const float* b, float* out,
                       int64_t row_begin, int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    double dot = 0.0;
    const float* ra = a + r * cols;
    const float* rb = b + r * cols;
    for (int c = 0; c < cols; ++c) dot += ra[c] * rb[c];
    out[r] = static_cast<float>(dot);
  }
}

void ColSumAcc(const float* g, float* gb, int64_t rows, int cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* gr = g + r * cols;
    for (int c = 0; c < cols; ++c) gb[c] += gr[c];
  }
}

void MulColBwdColAcc(const float* g, const float* x, float* gcol,
                     int64_t row_begin, int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float* gr = g + r * cols;
    const float* xr = x + r * cols;
    double acc = 0.0;
    for (int c = 0; c < cols; ++c) acc += gr[c] * xr[c];
    gcol[r] += static_cast<float>(acc);
  }
}

void GatherRowsForward(const float* x, const int* index, int64_t num_index,
                       float* out, int cols) {
  for (int64_t e = 0; e < num_index; ++e) {
    const float* src = x + static_cast<int64_t>(index[e]) * cols;
    std::copy(src, src + cols, out + e * cols);
  }
}

void GatherRowsBackward(const float* g, const int* index, int64_t num_index,
                        float* gx, int cols) {
  for (int64_t e = 0; e < num_index; ++e) {
    const float* gr = g + e * cols;
    float* dst = gx + static_cast<int64_t>(index[e]) * cols;
    for (int c = 0; c < cols; ++c) dst[c] += gr[c];
  }
}

void SegmentSumForward(const float* x, const int* segment, int64_t rows,
                       float* out, int cols) {
  for (int64_t e = 0; e < rows; ++e) {
    const float* src = x + e * cols;
    float* dst = out + static_cast<int64_t>(segment[e]) * cols;
    for (int c = 0; c < cols; ++c) dst[c] += src[c];
  }
}

void SegmentSumBackward(const float* g, const int* segment, int64_t rows,
                        float* gx, int cols) {
  for (int64_t e = 0; e < rows; ++e) {
    const float* gr = g + static_cast<int64_t>(segment[e]) * cols;
    float* dst = gx + e * cols;
    for (int c = 0; c < cols; ++c) dst[c] += gr[c];
  }
}

void SegmentMeanForward(const float* x, const int* segment, const int* counts,
                        int64_t rows, float* out, int cols) {
  for (int64_t e = 0; e < rows; ++e) {
    const float* src = x + e * cols;
    float* dst = out + static_cast<int64_t>(segment[e]) * cols;
    const float inv = 1.0f / static_cast<float>(counts[segment[e]]);
    for (int c = 0; c < cols; ++c) dst[c] += src[c] * inv;
  }
}

void SegmentMeanBackward(const float* g, const int* segment, const int* counts,
                         int64_t rows, float* gx, int cols) {
  for (int64_t e = 0; e < rows; ++e) {
    const float* gr = g + static_cast<int64_t>(segment[e]) * cols;
    float* dst = gx + e * cols;
    const float inv = 1.0f / static_cast<float>(counts[segment[e]]);
    for (int c = 0; c < cols; ++c) dst[c] += gr[c] * inv;
  }
}

void SegmentSoftmaxForward(const float* scores, const int* segment,
                           int64_t rows, int num_segments, float* out) {
  std::vector<float> seg_max(static_cast<size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (int64_t e = 0; e < rows; ++e) {
    seg_max[segment[e]] = std::max(seg_max[segment[e]], scores[e]);
  }
  std::vector<double> seg_sum(static_cast<size_t>(num_segments), 0.0);
  for (int64_t e = 0; e < rows; ++e) {
    const float v = std::exp(scores[e] - seg_max[segment[e]]);
    out[e] = v;
    seg_sum[segment[e]] += v;
  }
  for (int64_t e = 0; e < rows; ++e) {
    out[e] = static_cast<float>(out[e] / seg_sum[segment[e]]);
  }
}

void SegmentSoftmaxBackward(const float* y, const float* g,
                            const int* segment, int64_t rows,
                            int num_segments, float* gs) {
  // d s_e = alpha_e * (g_e - sum_{k in seg} alpha_k g_k)
  std::vector<double> seg_dot(static_cast<size_t>(num_segments), 0.0);
  for (int64_t e = 0; e < rows; ++e) {
    seg_dot[segment[e]] += static_cast<double>(y[e] * g[e]);
  }
  for (int64_t e = 0; e < rows; ++e) {
    gs[e] += y[e] * (g[e] - static_cast<float>(seg_dot[segment[e]]));
  }
}

void MulColSegmentSumForward(const float* x, const float* col,
                             const int* segment, int64_t rows, float* out,
                             int cols) {
  for (int64_t e = 0; e < rows; ++e) {
    const float w = col[e];
    const float* src = x + e * cols;
    float* dst = out + static_cast<int64_t>(segment[e]) * cols;
    for (int c = 0; c < cols; ++c) dst[c] += src[c] * w;
  }
}

double MseForward(const float* p, const float* t, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = p[i] - t[i];
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

double MaeForward(const float* p, const float* t, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += std::fabs(p[i] - t[i]);
  return acc / static_cast<double>(n);
}

void MseBackward(const float* p, const float* t, float scale, float* gp,
                 float* gt, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    gp[i] += scale * d;
    gt[i] -= scale * d;
  }
}

void MaeBackward(const float* p, const float* t, float scale, float* gp,
                 float* gt, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    const float sign = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
    gp[i] += scale * sign;
    gt[i] -= scale * sign;
  }
}

}  // namespace o2sr::nn::kernels
