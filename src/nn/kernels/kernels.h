#ifndef O2SR_NN_KERNELS_KERNELS_H_
#define O2SR_NN_KERNELS_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace o2sr::nn::kernels {

// Vectorized compute primitives behind the tape/plan executors.
//
// Two implementations of every vector-friendly kernel are compiled from the
// same source (kernels_impl.inl): a scalar/SSE2 baseline TU and an AVX2 TU
// built with -mavx2 (never -mfma: a fused multiply-add would change
// rounding and break the bit-exactness contract). Because both TUs compile
// identical per-element expressions and every loop either writes disjoint
// elements or keeps its accumulation order, the two tables produce
// bit-identical results — vectorization only changes how many disjoint
// elements are in flight, never the arithmetic applied to each one.
// DESIGN.md §13 documents the contract.
//
// Dispatch: Active() resolves once per process from O2SR_SIMD
//   off / scalar — force the baseline table
//   avx2         — force AVX2 (aborts if the CPU lacks it)
//   auto / unset — probe the CPU (__builtin_cpu_supports)
//
// Kernels that cannot be vectorized without changing results (libm calls,
// ordered double-precision accumulations, scatter loops) have a single
// shared implementation in kernels_common.cc and are listed in the registry
// at level "scalar".

enum class Simd { kScalar, kAvx2 };

// The active SIMD level, resolved once (env + cpuid).
Simd ActiveSimd();
const char* SimdName(Simd level);

// Vector-friendly kernels, one entry per primitive. Row-major matrices.
// Range arguments ([begin, end) over flat elements or output rows) let the
// executor chunk a kernel across exec::ThreadPool lanes; every chunk's
// writes are disjoint.
struct KernelTable {
  // --- dense matmul family (ranges are output rows) ---
  // C[i,:] (+)= A[i,:] * B.  A: [m x k], B: [k x n]. Skips zero A entries
  // (identical to the reference loop, and ReLU-sparse activations make the
  // skip common). accumulate=false zeroes each output row first.
  void (*matmul_rows)(const float* a, const float* b, float* c,
                      int64_t row_begin, int64_t row_end, int k, int n,
                      bool accumulate);
  // C[i,:] (+)= sum_p A[p,i] * B[p,:].  A: [k x m], B: [k x n]; `m` is the
  // full output row count (the stride of A's rows). The row sum is built in
  // a scratch row then applied, so accumulate mode matches the reference
  // temp-then-add bit for bit.
  void (*matmul_ta_rows)(const float* a, const float* b, float* c,
                         int64_t row_begin, int64_t row_end, int m, int k,
                         int n, bool accumulate);
  // C[i,j] (+)= dot(A[i,:], B[j,:]) with four accumulator chains folded as
  // (c0+c1)+(c2+c3).  A: [m x k], B: [n x k].
  void (*matmul_tb_rows)(const float* a, const float* b, float* c,
                         int64_t row_begin, int64_t row_end, int k, int n,
                         bool accumulate);

  // --- elementwise (ranges over flat elements) ---
  void (*add)(const float* a, const float* b, float* out, int64_t begin,
              int64_t end);
  void (*sub)(const float* a, const float* b, float* out, int64_t begin,
              int64_t end);
  void (*mul)(const float* a, const float* b, float* out, int64_t begin,
              int64_t end);
  void (*scale)(const float* a, float s, float* out, int64_t begin,
                int64_t end);
  void (*acc_add)(float* dst, const float* src, int64_t begin, int64_t end);
  void (*acc_sub)(float* dst, const float* src, int64_t begin, int64_t end);
  void (*acc_scale)(float* dst, const float* src, float s, int64_t begin,
                    int64_t end);
  // dst[i] += g[i] * m[i]  (dropout/mul backward)
  void (*acc_mul)(float* dst, const float* g, const float* m, int64_t begin,
                  int64_t end);
  void (*acc_const)(float* dst, float c, int64_t begin, int64_t end);
  void (*relu)(const float* x, float* out, int64_t begin, int64_t end);
  void (*leaky_relu)(const float* x, float slope, float* out, int64_t begin,
                     int64_t end);
  // gx[i] += g[i] where x[i] > 0
  void (*acc_relu_bwd)(const float* x, const float* g, float* gx,
                       int64_t begin, int64_t end);
  void (*acc_leaky_bwd)(const float* x, float slope, const float* g,
                        float* gx, int64_t begin, int64_t end);
  // gx[i] += g[i] * y[i] * (1 - y[i])  (y = sigmoid output)
  void (*acc_sigmoid_bwd)(const float* y, const float* g, float* gx,
                          int64_t begin, int64_t end);
  // gx[i] += g[i] * (1 - y[i]^2)  (y = tanh output)
  void (*acc_tanh_bwd)(const float* y, const float* g, float* gx,
                       int64_t begin, int64_t end);

  // --- row-structured (ranges over rows) ---
  // out[r,:] = x[r,:] + bias[0,:]
  void (*add_row_broadcast)(const float* x, const float* bias, float* out,
                            int64_t row_begin, int64_t row_end, int cols);
  // out[r,:] = x[r,:] * col[r]
  void (*mul_col_broadcast)(const float* x, const float* col, float* out,
                            int64_t row_begin, int64_t row_end, int cols);
  // gx[r,:] += g[r,:] * col[r]
  void (*acc_mul_col_bwd_x)(const float* g, const float* col, float* gx,
                            int64_t row_begin, int64_t row_end, int cols);
  // gra[r,:] += g[r] * vb[r,:] ; grb[r,:] += g[r] * va[r,:]
  void (*acc_rowwise_dot_bwd)(const float* g, const float* va,
                              const float* vb, float* ga, float* gb,
                              int64_t row_begin, int64_t row_end, int cols);
};

// The dispatch table for the active SIMD level.
const KernelTable& Active();
// Specific tables (tests compare them element for element).
const KernelTable& ScalarTable();
// Null when the build/CPU cannot run AVX2.
const KernelTable* Avx2Table();

// --- shared scalar kernels (kernels_common.cc) ---
// Sequential semantics (libm, ordered double accumulation, scatter); one
// implementation for every SIMD level.

void SigmoidForward(const float* x, float* out, int64_t begin, int64_t end);
void TanhForward(const float* x, float* out, int64_t begin, int64_t end);
// Row-wise softmax with per-row max shift and double sum.
void SoftmaxRowsForward(const float* x, float* out, int64_t row_begin,
                        int64_t row_end, int cols);
void SoftmaxRowsBackward(const float* y, const float* g, float* gx,
                         int64_t row_begin, int64_t row_end, int cols);
// out[r] = dot(a[r,:], b[r,:]) with a double accumulator.
void RowwiseDotForward(const float* a, const float* b, float* out,
                       int64_t row_begin, int64_t row_end, int cols);
// gb[0,c] += sum_r g[r,c], rows processed in order.
void ColSumAcc(const float* g, float* gb, int64_t rows, int cols);
// gcol[r] += dot(g[r,:], x[r,:]) with a double accumulator (per row, so
// the kernel chunks over rows).
void MulColBwdColAcc(const float* g, const float* x, float* gcol,
                     int64_t row_begin, int64_t row_end, int cols);
// Gather / segment primitives (serial scatter order is the contract).
void GatherRowsForward(const float* x, const int* index, int64_t num_index,
                       float* out, int cols);
void GatherRowsBackward(const float* g, const int* index, int64_t num_index,
                        float* gx, int cols);
void SegmentSumForward(const float* x, const int* segment, int64_t rows,
                       float* out, int cols);
void SegmentSumBackward(const float* g, const int* segment, int64_t rows,
                        float* gx, int cols);
void SegmentMeanForward(const float* x, const int* segment,
                        const int* counts, int64_t rows, float* out,
                        int cols);
void SegmentMeanBackward(const float* g, const int* segment,
                         const int* counts, int64_t rows, float* gx,
                         int cols);
void SegmentSoftmaxForward(const float* scores, const int* segment,
                           int64_t rows, int num_segments, float* out);
void SegmentSoftmaxBackward(const float* y, const float* g,
                            const int* segment, int64_t rows,
                            int num_segments, float* gs);
// Fused MulColBroadcast -> SegmentSum scatter (plan fusion pattern B):
// out[segment[e], :] += x[e, :] * col[e], e in order. `out` must be
// zeroed by the caller; the [rows x cols] product is never materialized.
// Each product is rounded to float before the add, exactly like the
// unfused pair.
void MulColSegmentSumForward(const float* x, const float* col,
                             const int* segment, int64_t rows, float* out,
                             int cols);
// Losses: forward returns the scalar; backward accumulates into both grads.
double MseForward(const float* p, const float* t, int64_t n);
double MaeForward(const float* p, const float* t, int64_t n);
void MseBackward(const float* p, const float* t, float scale, float* gp,
                 float* gt, int64_t n);
void MaeBackward(const float* p, const float* t, float scale, float* gp,
                 float* gt, int64_t n);

// Registry of every kernel with the SIMD level it runs at, for
// introspection and the bench_kernels report. Names are stable.
struct KernelInfo {
  std::string name;
  std::string simd;  // "avx2" or "scalar"
};
std::vector<KernelInfo> Registry();

}  // namespace o2sr::nn::kernels

#endif  // O2SR_NN_KERNELS_KERNELS_H_
