// Generic kernel bodies, compiled twice: kernels_scalar.cc includes this
// file with baseline flags, kernels_avx2.cc includes it inside a TU built
// with -mavx2 (no -mfma — fused multiply-add changes rounding). The
// including TU defines O2SR_KERNEL_NS to the namespace the symbols land in.
//
// Bit-exactness rules enforced here (DESIGN.md §13):
//  * elementwise loops apply one rounded expression per element, so the
//    compiler may vectorize them arbitrarily;
//  * accumulations that define an order (matmul over p, the four-chain
//    transposed-B dot) keep that order in both TUs — the chains are the
//    unit the compiler may vectorize, never the loop around them;
//  * no math library calls (those live in kernels_common.cc, compiled
//    once).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace o2sr::nn::kernels {
namespace O2SR_KERNEL_NS {

void MatMulRows(const float* a, const float* b, float* c, int64_t row_begin,
                int64_t row_end, int k, int n, bool accumulate) {
  // Scratch holds the row sum so accumulate mode reproduces the reference
  // temp-then-add association: one add of the completed sum per element.
  float stack_scratch[512];
  std::vector<float> heap_scratch;
  float* scratch = stack_scratch;
  if (accumulate && n > 512) {
    heap_scratch.assign(static_cast<size_t>(n), 0.0f);
    scratch = heap_scratch.data();
  }
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    float* dst = accumulate ? scratch : crow;
    std::memset(dst, 0, static_cast<size_t>(n) * sizeof(float));
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<int64_t>(p) * n;
      for (int j = 0; j < n; ++j) dst[j] += av * brow[j];
    }
    if (accumulate) {
      for (int j = 0; j < n; ++j) crow[j] += dst[j];
    }
  }
}

void MatMulTaRows(const float* a, const float* b, float* c, int64_t row_begin,
                  int64_t row_end, int m, int k, int n, bool accumulate) {
  float stack_scratch[512];
  std::vector<float> heap_scratch;
  float* scratch = stack_scratch;
  if (accumulate && n > 512) {
    heap_scratch.assign(static_cast<size_t>(n), 0.0f);
    scratch = heap_scratch.data();
  }
  // a is [k x m] and output row i reads column i of a: a[p*m + i].
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    float* dst = accumulate ? scratch : crow;
    std::memset(dst, 0, static_cast<size_t>(n) * sizeof(float));
    for (int p = 0; p < k; ++p) {
      const float av = a[static_cast<int64_t>(p) * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<int64_t>(p) * n;
      for (int j = 0; j < n; ++j) dst[j] += av * brow[j];
    }
    if (accumulate) {
      for (int j = 0; j < n; ++j) crow[j] += dst[j];
    }
  }
}

void MatMulTbRows(const float* a, const float* b, float* c, int64_t row_begin,
                  int64_t row_end, int k, int n, bool accumulate) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<int64_t>(j) * k;
      // Four independent accumulator chains, folded (c0+c1)+(c2+c3): the
      // reference association, vectorizable as one 4-lane chain.
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        acc0 += arow[p] * brow[p];
        acc1 += arow[p + 1] * brow[p + 1];
        acc2 += arow[p + 2] * brow[p + 2];
        acc3 += arow[p + 3] * brow[p + 3];
      }
      for (; p < k; ++p) acc0 += arow[p] * brow[p];
      const float dot = (acc0 + acc1) + (acc2 + acc3);
      if (accumulate) {
        crow[j] += dot;
      } else {
        crow[j] = dot;
      }
    }
  }
}

void Add(const float* a, const float* b, float* out, int64_t begin,
         int64_t end) {
  for (int64_t i = begin; i < end; ++i) out[i] = a[i] + b[i];
}

void Sub(const float* a, const float* b, float* out, int64_t begin,
         int64_t end) {
  for (int64_t i = begin; i < end; ++i) out[i] = a[i] - b[i];
}

void Mul(const float* a, const float* b, float* out, int64_t begin,
         int64_t end) {
  for (int64_t i = begin; i < end; ++i) out[i] = a[i] * b[i];
}

void Scale(const float* a, float s, float* out, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) out[i] = a[i] * s;
}

void AccAdd(float* dst, const float* src, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) dst[i] += src[i];
}

void AccSub(float* dst, const float* src, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) dst[i] -= src[i];
}

void AccScale(float* dst, const float* src, float s, int64_t begin,
              int64_t end) {
  for (int64_t i = begin; i < end; ++i) dst[i] += s * src[i];
}

void AccMul(float* dst, const float* g, const float* m, int64_t begin,
            int64_t end) {
  for (int64_t i = begin; i < end; ++i) dst[i] += g[i] * m[i];
}

void AccConst(float* dst, float c, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) dst[i] += c;
}

void Relu(const float* x, float* out, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) out[i] = std::max(x[i], 0.0f);
}

void LeakyRelu(const float* x, float slope, float* out, int64_t begin,
               int64_t end) {
  for (int64_t i = begin; i < end; ++i) {
    const float v = x[i];
    out[i] = v < 0.0f ? v * slope : v;
  }
}

void AccReluBwd(const float* x, const float* g, float* gx, int64_t begin,
                int64_t end) {
  for (int64_t i = begin; i < end; ++i) {
    if (x[i] > 0.0f) gx[i] += g[i];
  }
}

void AccLeakyBwd(const float* x, float slope, const float* g, float* gx,
                 int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) {
    const float d = x[i] > 0.0f ? 1.0f : slope;
    gx[i] += d * g[i];
  }
}

void AccSigmoidBwd(const float* y, const float* g, float* gx, int64_t begin,
                   int64_t end) {
  for (int64_t i = begin; i < end; ++i) {
    gx[i] += g[i] * y[i] * (1.0f - y[i]);
  }
}

void AccTanhBwd(const float* y, const float* g, float* gx, int64_t begin,
                int64_t end) {
  for (int64_t i = begin; i < end; ++i) {
    gx[i] += g[i] * (1.0f - y[i] * y[i]);
  }
}

void AddRowBroadcast(const float* x, const float* bias, float* out,
                     int64_t row_begin, int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float* xr = x + r * cols;
    float* o = out + r * cols;
    for (int c = 0; c < cols; ++c) o[c] = xr[c] + bias[c];
  }
}

void MulColBroadcast(const float* x, const float* col, float* out,
                     int64_t row_begin, int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float w = col[r];
    const float* xr = x + r * cols;
    float* o = out + r * cols;
    for (int c = 0; c < cols; ++c) o[c] = xr[c] * w;
  }
}

void AccMulColBwdX(const float* g, const float* col, float* gx,
                   int64_t row_begin, int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float w = col[r];
    const float* gr = g + r * cols;
    float* o = gx + r * cols;
    for (int c = 0; c < cols; ++c) o[c] += gr[c] * w;
  }
}

void AccRowwiseDotBwd(const float* g, const float* va, const float* vb,
                      float* ga, float* gb, int64_t row_begin,
                      int64_t row_end, int cols) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float gr = g[r];
    const float* ra = va + r * cols;
    const float* rb = vb + r * cols;
    float* oa = ga + r * cols;
    float* ob = gb + r * cols;
    for (int c = 0; c < cols; ++c) oa[c] += gr * rb[c];
    for (int c = 0; c < cols; ++c) ob[c] += gr * ra[c];
  }
}

}  // namespace O2SR_KERNEL_NS
}  // namespace o2sr::nn::kernels
