#include "nn/kernels/kernels.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace o2sr::nn::kernels {

#ifdef O2SR_HAVE_AVX2_TU
const KernelTable* Avx2TableImpl();  // defined in kernels_avx2.cc
#endif

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Simd ResolveSimd() {
  const char* env = std::getenv("O2SR_SIMD");
#ifdef O2SR_HAVE_AVX2_TU
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return CpuHasAvx2() ? Simd::kAvx2 : Simd::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) {
    O2SR_CHECK(CpuHasAvx2());  // forcing AVX2 on a CPU without it
    return Simd::kAvx2;
  }
#else
  if (env != nullptr && std::strcmp(env, "avx2") == 0) {
    O2SR_CHECK(false);  // this build has no AVX2 kernel TU
  }
#endif
  // "off", "scalar", or anything unrecognized: the safe baseline.
  return Simd::kScalar;
}

}  // namespace

Simd ActiveSimd() {
  static const Simd level = ResolveSimd();
  return level;
}

const char* SimdName(Simd level) {
  return level == Simd::kAvx2 ? "avx2" : "scalar";
}

const KernelTable* Avx2Table() {
#ifdef O2SR_HAVE_AVX2_TU
  return CpuHasAvx2() ? Avx2TableImpl() : nullptr;
#else
  return nullptr;
#endif
}

const KernelTable& Active() {
  static const KernelTable* table =
      ActiveSimd() == Simd::kAvx2 ? Avx2Table() : &ScalarTable();
  return *table;
}

std::vector<KernelInfo> Registry() {
  const char* simd = SimdName(ActiveSimd());
  std::vector<KernelInfo> infos;
  for (const char* name :
       {"nn.matmul", "nn.matmul_ta", "nn.matmul_tb", "nn.add", "nn.sub",
        "nn.mul", "nn.scale", "nn.acc_add", "nn.acc_sub", "nn.acc_scale",
        "nn.acc_mul", "nn.acc_const", "nn.relu", "nn.leaky_relu",
        "nn.acc_relu_bwd", "nn.acc_leaky_bwd", "nn.acc_sigmoid_bwd",
        "nn.acc_tanh_bwd", "nn.add_row_broadcast", "nn.mul_col_broadcast",
        "nn.acc_mul_col_bwd_x", "nn.acc_rowwise_dot_bwd",
        "nn.linear_act"}) {
    infos.push_back({name, simd});
  }
  for (const char* name :
       {"nn.sigmoid", "nn.tanh", "nn.softmax_rows", "nn.softmax_rows_bwd",
        "nn.rowwise_dot", "nn.col_sum_acc", "nn.mul_col_bwd_col",
        "nn.gather_rows", "nn.gather_rows_bwd", "nn.segment_sum",
        "nn.segment_sum_bwd", "nn.segment_mean", "nn.segment_mean_bwd",
        "nn.segment_softmax", "nn.segment_softmax_bwd",
        "nn.mul_col_segment_sum", "nn.mse", "nn.mse_bwd", "nn.mae",
        "nn.mae_bwd"}) {
    infos.push_back({name, "scalar"});
  }
  return infos;
}

}  // namespace o2sr::nn::kernels
