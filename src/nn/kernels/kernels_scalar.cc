// Baseline kernel TU: compiled with the project's default flags (no AVX2),
// so it runs on any x86-64. The bodies live in kernels_impl.inl.
#include "nn/kernels/kernels.h"

#define O2SR_KERNEL_NS scalar_impl
#include "nn/kernels/kernels_impl.inl"
#undef O2SR_KERNEL_NS

namespace o2sr::nn::kernels {

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      scalar_impl::MatMulRows,    scalar_impl::MatMulTaRows,
      scalar_impl::MatMulTbRows,  scalar_impl::Add,
      scalar_impl::Sub,           scalar_impl::Mul,
      scalar_impl::Scale,         scalar_impl::AccAdd,
      scalar_impl::AccSub,        scalar_impl::AccScale,
      scalar_impl::AccMul,        scalar_impl::AccConst,
      scalar_impl::Relu,          scalar_impl::LeakyRelu,
      scalar_impl::AccReluBwd,    scalar_impl::AccLeakyBwd,
      scalar_impl::AccSigmoidBwd, scalar_impl::AccTanhBwd,
      scalar_impl::AddRowBroadcast, scalar_impl::MulColBroadcast,
      scalar_impl::AccMulColBwdX, scalar_impl::AccRowwiseDotBwd,
  };
  return table;
}

}  // namespace o2sr::nn::kernels
