// AVX2 kernel TU. Elementwise / row-broadcast kernels reuse the generic
// bodies (kernels_impl.inl) and let GCC vectorize them 8 lanes wide — they
// apply one rounded expression per element, so any lane grouping is
// bit-identical. The dense matmul family is hand-written with intrinsics
// instead: autovectorization of those loops under -mavx2 is actively slower
// than the SSE2 baseline (GCC spills the running row sums to memory every
// p iteration and mangles the four-chain dot), while explicit register
// tiling is ~2-3x faster.
//
// Bit-exactness is preserved by construction:
//  * MatMulRows/MatMulTaRows: every output element dst[j] owns one add
//    chain `dst[j] += av * brow[j]` over p in ascending order with the
//    av == 0 skip of the scalar body. The intrinsics only change how many
//    disjoint j chains sit in registers at once, never the per-element
//    sequence. accumulate mode adds the completed row sum in one rounded
//    add per element, exactly like the scalar scratch-row path.
//  * The av == 0 skip is data-dependent: on dense operands a never-taken
//    branch is free, on ReLU-sparse operands it mispredicts ~every other
//    iteration and costs more than the work it skips. Each call samples its
//    A operand once and picks either the branchy body or a branch-free body
//    that computes every term and *discards* it with a blend where av == 0.
//    Both bodies produce identical bits (the blend keeps the old sum, which
//    is exactly what skipping does), so the choice is pure scheduling.
//  * MatMulTbRows: each output element keeps its four accumulator chains
//    (chain q sums the terms with p % 4 == q) and the (c0+c1)+(c2+c3)
//    fold. B is transposed once per call into a scratch tile so the chains
//    advance as outer products over contiguous rows; chain membership and
//    fold order never change, and the k % 4 tail is appended to chain 0, as
//    in the scalar body.
//  * No FMA anywhere (-mfma is off and only _mm256_mul_ps/_mm256_add_ps
//    are used): `a*b` rounds before the add, matching scalar.
#ifdef O2SR_HAVE_AVX2_TU

#include <immintrin.h>

#include <vector>

#include "nn/kernels/kernels.h"

#define O2SR_KERNEL_NS avx2_impl
#include "nn/kernels/kernels_impl.inl"
#undef O2SR_KERNEL_NS

namespace o2sr::nn::kernels {
namespace avx2_hand {

namespace {

// acc += v * b, except where zmask (v == 0) keeps the old acc — the
// branch-free form of the reference skip.
inline void MaddBlend(__m256& acc, __m256 v, __m256 zmask, __m256 b) {
  acc = _mm256_blendv_ps(_mm256_add_ps(acc, _mm256_mul_ps(v, b)), acc, zmask);
}

inline void Madd(__m256& acc, __m256 v, __m256 b) {
  acc = _mm256_add_ps(acc, _mm256_mul_ps(v, b));
}

// True when a sample of the A operand is zero-rich enough that the branchy
// skip would mispredict; such calls take the blend body instead. The two
// bodies are bit-identical, so this threshold only affects speed.
inline bool ProbeSparse(const float* x, int64_t count, int64_t stride) {
  const int64_t samples = count < 64 ? count : 64;
  if (samples <= 0) return false;
  const int64_t step = (count / samples) * stride;
  int zeros = 0;
  const float* p = x;
  for (int64_t s = 0; s < samples; ++s, p += step == 0 ? stride : step) {
    zeros += (*p == 0.0f) ? 1 : 0;
  }
  return zeros * 4 >= samples;  // >= 25% zeros
}

// Shared body for MatMulRows / MatMulTaRows: accumulate row i of the
// output as sum_p av(p) * B[p, :], where the caller supplies how av is
// fetched (contiguous row of A, or strided column for the transposed-A
// case). B rows are contiguous, so j tiles vectorize; the j tile sums live
// in ymm registers across the whole p loop.
template <bool kBlend, typename FetchA>
inline void OuterProductRow(FetchA av_at, const float* b, float* crow, int k,
                            int n, bool accumulate) {
  const __m256 zero = _mm256_setzero_ps();
  int j = 0;
  for (; j + 32 <= n; j += 32) {
    __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
    __m256 s2 = _mm256_setzero_ps(), s3 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const float av = av_at(p);
      if constexpr (!kBlend) {
        if (av == 0.0f) continue;
      }
      const __m256 va = _mm256_set1_ps(av);
      const float* br = b + static_cast<int64_t>(p) * n + j;
      if constexpr (kBlend) {
        const __m256 zm = _mm256_cmp_ps(va, zero, _CMP_EQ_OQ);
        MaddBlend(s0, va, zm, _mm256_loadu_ps(br));
        MaddBlend(s1, va, zm, _mm256_loadu_ps(br + 8));
        MaddBlend(s2, va, zm, _mm256_loadu_ps(br + 16));
        MaddBlend(s3, va, zm, _mm256_loadu_ps(br + 24));
      } else {
        Madd(s0, va, _mm256_loadu_ps(br));
        Madd(s1, va, _mm256_loadu_ps(br + 8));
        Madd(s2, va, _mm256_loadu_ps(br + 16));
        Madd(s3, va, _mm256_loadu_ps(br + 24));
      }
    }
    float* cj = crow + j;
    if (accumulate) {
      s0 = _mm256_add_ps(_mm256_loadu_ps(cj), s0);
      s1 = _mm256_add_ps(_mm256_loadu_ps(cj + 8), s1);
      s2 = _mm256_add_ps(_mm256_loadu_ps(cj + 16), s2);
      s3 = _mm256_add_ps(_mm256_loadu_ps(cj + 24), s3);
    }
    _mm256_storeu_ps(cj, s0);
    _mm256_storeu_ps(cj + 8, s1);
    _mm256_storeu_ps(cj + 16, s2);
    _mm256_storeu_ps(cj + 24, s3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 s = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const float av = av_at(p);
      if constexpr (!kBlend) {
        if (av == 0.0f) continue;
      }
      const __m256 va = _mm256_set1_ps(av);
      const __m256 bv = _mm256_loadu_ps(b + static_cast<int64_t>(p) * n + j);
      if constexpr (kBlend) {
        MaddBlend(s, va, _mm256_cmp_ps(va, zero, _CMP_EQ_OQ), bv);
      } else {
        Madd(s, va, bv);
      }
    }
    float* cj = crow + j;
    if (accumulate) s = _mm256_add_ps(_mm256_loadu_ps(cj), s);
    _mm256_storeu_ps(cj, s);
  }
  for (; j < n; ++j) {
    float s = 0.0f;
    for (int p = 0; p < k; ++p) {
      const float av = av_at(p);
      if (av == 0.0f) continue;
      s += av * b[static_cast<int64_t>(p) * n + j];
    }
    if (accumulate) {
      crow[j] += s;
    } else {
      crow[j] = s;
    }
  }
}

template <bool kBlend>
void MatMulRowsBody(const float* a, const float* b, float* c,
                    int64_t row_begin, int64_t row_end, int k, int n,
                    bool accumulate) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    OuterProductRow<kBlend>([arow](int p) { return arow[p]; }, b, c + i * n,
                            k, n, accumulate);
  }
}

// MatMulTaRows body: a is [k x m], output row i reads column i of a, and k
// is the long dimension (the edge/sample count), so per output row the
// naive loop streams all of B plus one strided A column. Blocking three
// output rows per sweep amortizes both streams 3x — the three av values
// a[p*m + i..i+2] share a cache line and each loaded B tile feeds three row
// accumulators, the largest block whose row sums stay ymm-resident for
// n = 32 tiles (12 sums + 4 B lanes).
template <bool kBlend>
void MatMulTaBody(const float* a, const float* b, float* c, int64_t row_begin,
                  int64_t row_end, int m, int k, int n, bool accumulate) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = row_begin;
  for (; i + 3 <= row_end; i += 3) {
    int j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 r0a = _mm256_setzero_ps(), r0b = r0a, r0c = r0a, r0d = r0a;
      __m256 r1a = r0a, r1b = r0a, r1c = r0a, r1d = r0a;
      __m256 r2a = r0a, r2b = r0a, r2c = r0a, r2d = r0a;
      for (int p = 0; p < k; ++p) {
        const float* ap = a + static_cast<int64_t>(p) * m + i;
        const float a0 = ap[0], a1 = ap[1], a2 = ap[2];
        if constexpr (!kBlend) {
          if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f) continue;
        }
        const float* br = b + static_cast<int64_t>(p) * n + j;
        const __m256 b0 = _mm256_loadu_ps(br);
        const __m256 b1 = _mm256_loadu_ps(br + 8);
        const __m256 b2 = _mm256_loadu_ps(br + 16);
        const __m256 b3 = _mm256_loadu_ps(br + 24);
        if constexpr (kBlend) {
          const __m256 v0 = _mm256_set1_ps(a0);
          const __m256 v1 = _mm256_set1_ps(a1);
          const __m256 v2 = _mm256_set1_ps(a2);
          const __m256 m0 = _mm256_cmp_ps(v0, zero, _CMP_EQ_OQ);
          const __m256 m1 = _mm256_cmp_ps(v1, zero, _CMP_EQ_OQ);
          const __m256 m2 = _mm256_cmp_ps(v2, zero, _CMP_EQ_OQ);
          MaddBlend(r0a, v0, m0, b0);
          MaddBlend(r0b, v0, m0, b1);
          MaddBlend(r0c, v0, m0, b2);
          MaddBlend(r0d, v0, m0, b3);
          MaddBlend(r1a, v1, m1, b0);
          MaddBlend(r1b, v1, m1, b1);
          MaddBlend(r1c, v1, m1, b2);
          MaddBlend(r1d, v1, m1, b3);
          MaddBlend(r2a, v2, m2, b0);
          MaddBlend(r2b, v2, m2, b1);
          MaddBlend(r2c, v2, m2, b2);
          MaddBlend(r2d, v2, m2, b3);
        } else {
          if (a0 != 0.0f) {
            const __m256 v0 = _mm256_set1_ps(a0);
            Madd(r0a, v0, b0);
            Madd(r0b, v0, b1);
            Madd(r0c, v0, b2);
            Madd(r0d, v0, b3);
          }
          if (a1 != 0.0f) {
            const __m256 v1 = _mm256_set1_ps(a1);
            Madd(r1a, v1, b0);
            Madd(r1b, v1, b1);
            Madd(r1c, v1, b2);
            Madd(r1d, v1, b3);
          }
          if (a2 != 0.0f) {
            const __m256 v2 = _mm256_set1_ps(a2);
            Madd(r2a, v2, b0);
            Madd(r2b, v2, b1);
            Madd(r2c, v2, b2);
            Madd(r2d, v2, b3);
          }
        }
      }
      float* c0 = c + i * n + j;
      float* c1 = c0 + n, *c2 = c0 + 2 * n;
      if (accumulate) {
        r0a = _mm256_add_ps(_mm256_loadu_ps(c0), r0a);
        r0b = _mm256_add_ps(_mm256_loadu_ps(c0 + 8), r0b);
        r0c = _mm256_add_ps(_mm256_loadu_ps(c0 + 16), r0c);
        r0d = _mm256_add_ps(_mm256_loadu_ps(c0 + 24), r0d);
        r1a = _mm256_add_ps(_mm256_loadu_ps(c1), r1a);
        r1b = _mm256_add_ps(_mm256_loadu_ps(c1 + 8), r1b);
        r1c = _mm256_add_ps(_mm256_loadu_ps(c1 + 16), r1c);
        r1d = _mm256_add_ps(_mm256_loadu_ps(c1 + 24), r1d);
        r2a = _mm256_add_ps(_mm256_loadu_ps(c2), r2a);
        r2b = _mm256_add_ps(_mm256_loadu_ps(c2 + 8), r2b);
        r2c = _mm256_add_ps(_mm256_loadu_ps(c2 + 16), r2c);
        r2d = _mm256_add_ps(_mm256_loadu_ps(c2 + 24), r2d);
      }
      _mm256_storeu_ps(c0, r0a);
      _mm256_storeu_ps(c0 + 8, r0b);
      _mm256_storeu_ps(c0 + 16, r0c);
      _mm256_storeu_ps(c0 + 24, r0d);
      _mm256_storeu_ps(c1, r1a);
      _mm256_storeu_ps(c1 + 8, r1b);
      _mm256_storeu_ps(c1 + 16, r1c);
      _mm256_storeu_ps(c1 + 24, r1d);
      _mm256_storeu_ps(c2, r2a);
      _mm256_storeu_ps(c2 + 8, r2b);
      _mm256_storeu_ps(c2 + 16, r2c);
      _mm256_storeu_ps(c2 + 24, r2d);
    }
    // Narrower tiles / tails: per-row shared body for the three rows.
    for (int r = 0; j < n && r < 3; ++r) {
      const int64_t row = i + r;
      float* crow = c + row * n;
      int jj = j;
      for (; jj + 8 <= n; jj += 8) {
        __m256 sacc = _mm256_setzero_ps();
        for (int p = 0; p < k; ++p) {
          const float av = a[static_cast<int64_t>(p) * m + row];
          if constexpr (!kBlend) {
            if (av == 0.0f) continue;
          }
          const __m256 va = _mm256_set1_ps(av);
          const __m256 bv =
              _mm256_loadu_ps(b + static_cast<int64_t>(p) * n + jj);
          if constexpr (kBlend) {
            MaddBlend(sacc, va, _mm256_cmp_ps(va, zero, _CMP_EQ_OQ), bv);
          } else {
            Madd(sacc, va, bv);
          }
        }
        float* cj = crow + jj;
        if (accumulate) sacc = _mm256_add_ps(_mm256_loadu_ps(cj), sacc);
        _mm256_storeu_ps(cj, sacc);
      }
      for (; jj < n; ++jj) {
        float sv = 0.0f;
        for (int p = 0; p < k; ++p) {
          const float av = a[static_cast<int64_t>(p) * m + row];
          if (av == 0.0f) continue;
          sv += av * b[static_cast<int64_t>(p) * n + jj];
        }
        float* cv = crow + jj;
        if (accumulate) {
          *cv += sv;
        } else {
          *cv = sv;
        }
      }
    }
  }
  for (; i < row_end; ++i) {
    OuterProductRow<kBlend>(
        [a, m, i](int p) { return a[static_cast<int64_t>(p) * m + i]; }, b,
        c + i * n, k, n, accumulate);
  }
}

}  // namespace

void MatMulRows(const float* a, const float* b, float* c, int64_t row_begin,
                int64_t row_end, int k, int n, bool accumulate) {
  const int64_t span = (row_end - row_begin) * k;
  if (span > 0 && ProbeSparse(a + row_begin * k, span, 1)) {
    MatMulRowsBody<true>(a, b, c, row_begin, row_end, k, n, accumulate);
  } else {
    MatMulRowsBody<false>(a, b, c, row_begin, row_end, k, n, accumulate);
  }
}

void MatMulTaRows(const float* a, const float* b, float* c, int64_t row_begin,
                  int64_t row_end, int m, int k, int n, bool accumulate) {
  // Sample column row_begin of a (stride m) for the sparsity choice.
  if (k > 0 && row_end > row_begin &&
      ProbeSparse(a + row_begin, k, m)) {
    MatMulTaBody<true>(a, b, c, row_begin, row_end, m, k, n, accumulate);
  } else {
    MatMulTaBody<false>(a, b, c, row_begin, row_end, m, k, n, accumulate);
  }
}

void MatMulTbRows(const float* a, const float* b, float* c, int64_t row_begin,
                  int64_t row_end, int k, int n, bool accumulate) {
  // Transpose B ([n x k] row-major) into bt ([k x n]) once per call, so the
  // four chains advance as outer products over contiguous bt rows: chain q
  // accumulates the p % 4 == q terms of every output column at once.
  float stack_bt[4096];
  std::vector<float> heap_bt;
  float* bt = stack_bt;
  const int64_t bt_size = static_cast<int64_t>(k) * n;
  if (bt_size > 4096) {
    heap_bt.resize(static_cast<size_t>(bt_size));
    bt = heap_bt.data();
  }
  for (int j = 0; j < n; ++j) {
    const float* brow = b + static_cast<int64_t>(j) * k;
    for (int p = 0; p < k; ++p) bt[static_cast<int64_t>(p) * n + j] = brow[p];
  }

  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int j = 0;
    // Sixteen output columns per block: chain q lives in two ymm registers
    // (8 + 8 lanes), fold order (c0+c1)+(c2+c3) per element as in scalar.
    for (; j + 16 <= n; j += 16) {
      __m256 c0a = _mm256_setzero_ps(), c0b = c0a;
      __m256 c1a = c0a, c1b = c0a;
      __m256 c2a = c0a, c2b = c0a;
      __m256 c3a = c0a, c3b = c0a;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        const float* r0 = bt + static_cast<int64_t>(p) * n + j;
        const float* r1 = r0 + n, *r2 = r0 + 2 * n, *r3 = r0 + 3 * n;
        const __m256 v0 = _mm256_set1_ps(arow[p]);
        const __m256 v1 = _mm256_set1_ps(arow[p + 1]);
        const __m256 v2 = _mm256_set1_ps(arow[p + 2]);
        const __m256 v3 = _mm256_set1_ps(arow[p + 3]);
        Madd(c0a, v0, _mm256_loadu_ps(r0));
        Madd(c0b, v0, _mm256_loadu_ps(r0 + 8));
        Madd(c1a, v1, _mm256_loadu_ps(r1));
        Madd(c1b, v1, _mm256_loadu_ps(r1 + 8));
        Madd(c2a, v2, _mm256_loadu_ps(r2));
        Madd(c2b, v2, _mm256_loadu_ps(r2 + 8));
        Madd(c3a, v3, _mm256_loadu_ps(r3));
        Madd(c3b, v3, _mm256_loadu_ps(r3 + 8));
      }
      if (p < k) {
        // k % 4 tail: extend chain 0 scalar-wise before the fold.
        alignas(32) float s0[16], s1[16], s2[16], s3[16];
        _mm256_store_ps(s0, c0a);
        _mm256_store_ps(s0 + 8, c0b);
        _mm256_store_ps(s1, c1a);
        _mm256_store_ps(s1 + 8, c1b);
        _mm256_store_ps(s2, c2a);
        _mm256_store_ps(s2 + 8, c2b);
        _mm256_store_ps(s3, c3a);
        _mm256_store_ps(s3 + 8, c3b);
        for (; p < k; ++p) {
          const float av = arow[p];
          const float* r = bt + static_cast<int64_t>(p) * n + j;
          for (int t = 0; t < 16; ++t) s0[t] += av * r[t];
        }
        for (int t = 0; t < 16; ++t) {
          const float d = (s0[t] + s1[t]) + (s2[t] + s3[t]);
          if (accumulate) {
            crow[j + t] += d;
          } else {
            crow[j + t] = d;
          }
        }
      } else {
        __m256 da = _mm256_add_ps(_mm256_add_ps(c0a, c1a),
                                  _mm256_add_ps(c2a, c3a));
        __m256 db = _mm256_add_ps(_mm256_add_ps(c0b, c1b),
                                  _mm256_add_ps(c2b, c3b));
        if (accumulate) {
          da = _mm256_add_ps(_mm256_loadu_ps(crow + j), da);
          db = _mm256_add_ps(_mm256_loadu_ps(crow + j + 8), db);
        }
        _mm256_storeu_ps(crow + j, da);
        _mm256_storeu_ps(crow + j + 8, db);
      }
    }
    for (; j < n; ++j) {
      const float* brow = b + static_cast<int64_t>(j) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        acc0 += arow[p] * brow[p];
        acc1 += arow[p + 1] * brow[p + 1];
        acc2 += arow[p + 2] * brow[p + 2];
        acc3 += arow[p + 3] * brow[p + 3];
      }
      for (; p < k; ++p) acc0 += arow[p] * brow[p];
      const float dot = (acc0 + acc1) + (acc2 + acc3);
      if (accumulate) {
        crow[j] += dot;
      } else {
        crow[j] = dot;
      }
    }
  }
}

}  // namespace avx2_hand

const KernelTable* Avx2TableImpl() {
  static const KernelTable table = {
      avx2_hand::MatMulRows,    avx2_hand::MatMulTaRows,
      avx2_hand::MatMulTbRows,  avx2_impl::Add,
      avx2_impl::Sub,           avx2_impl::Mul,
      avx2_impl::Scale,         avx2_impl::AccAdd,
      avx2_impl::AccSub,        avx2_impl::AccScale,
      avx2_impl::AccMul,        avx2_impl::AccConst,
      avx2_impl::Relu,          avx2_impl::LeakyRelu,
      avx2_impl::AccReluBwd,    avx2_impl::AccLeakyBwd,
      avx2_impl::AccSigmoidBwd, avx2_impl::AccTanhBwd,
      avx2_impl::AddRowBroadcast, avx2_impl::MulColBroadcast,
      avx2_impl::AccMulColBwdX, avx2_impl::AccRowwiseDotBwd,
  };
  return &table;
}

}  // namespace o2sr::nn::kernels

#endif  // O2SR_HAVE_AVX2_TU
