#include "nn/trainer.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/check.h"
#include "nn/checkpoint.h"

namespace o2sr::nn {

namespace {

using common::Status;

bool AllFinite(const Tensor& t) {
  const float* data = t.data();
  for (size_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

// Name of the first parameter whose `member` tensor holds a NaN/Inf, or
// empty when all are finite.
std::string FirstNonFinite(const ParameterStore& store, bool gradients) {
  for (const auto& p : store.params()) {
    if (!AllFinite(gradients ? p->grad : p->value)) return p->name;
  }
  return "";
}

// Everything needed to rewind training to the end of a known-good epoch.
struct Snapshot {
  int epoch = 0;
  double best_loss = std::numeric_limits<double>::infinity();
  std::vector<Tensor> values;
  AdamState adam;
  std::string rng_state;
};

Snapshot TakeSnapshot(int epoch, double best_loss, ParameterStore* store,
                      AdamOptimizer* adam, Rng* rng) {
  Snapshot s;
  s.epoch = epoch;
  s.best_loss = best_loss;
  s.values.reserve(store->params().size());
  for (const auto& p : store->params()) s.values.push_back(p->value);
  s.adam = adam->SaveState();
  if (rng != nullptr) s.rng_state = rng->SaveState();
  return s;
}

void RestoreSnapshot(const Snapshot& s, ParameterStore* store,
                     AdamOptimizer* adam, Rng* rng) {
  O2SR_CHECK_EQ(s.values.size(), store->params().size());
  for (size_t k = 0; k < s.values.size(); ++k) {
    store->params()[k]->value = s.values[k];
  }
  adam->LoadState(s.adam);
  if (rng != nullptr && !s.rng_state.empty()) {
    O2SR_CHECK(rng->LoadState(s.rng_state));
  }
  // Accumulated (possibly poisoned) gradients belong to the abandoned
  // attempt.
  store->ZeroGrads();
}

Status WriteCheckpoint(const GuardrailOptions& options, int epoch,
                       double best_loss, int recoveries,
                       ParameterStore* store, AdamOptimizer* adam,
                       Rng* rng) {
  CheckpointMeta meta;
  meta.epoch = epoch;
  meta.learning_rate = adam->options().learning_rate;
  meta.recoveries = recoveries;
  meta.best_loss = best_loss;
  if (rng != nullptr) meta.rng_state = rng->SaveState();
  return SaveCheckpoint(options.checkpoint_path, meta, *store,
                        adam->SaveState())
      .WithContext("writing checkpoint");
}

}  // namespace

common::Status RunGuardedTraining(ParameterStore* store, AdamOptimizer* adam,
                                  Rng* epoch_rng, int epochs,
                                  const EpochFn& epoch_fn,
                                  const GuardrailOptions& options,
                                  const TrainHooks& hooks,
                                  TrainReport* report) {
  O2SR_CHECK(store != nullptr);
  O2SR_CHECK(adam != nullptr);
  O2SR_CHECK(epoch_fn != nullptr);
  if (epochs < 0) {
    return common::InvalidArgumentError("negative epoch count " +
                                        std::to_string(epochs));
  }

  TrainReport local_report;
  TrainReport& rep = report != nullptr ? *report : local_report;
  rep = TrainReport();

  int epoch = 0;
  int recoveries = 0;
  int diverged_streak = 0;
  double best_loss = std::numeric_limits<double>::infinity();

  if (!options.checkpoint_path.empty() &&
      CheckpointExists(options.checkpoint_path)) {
    CheckpointMeta meta;
    AdamState adam_state;
    O2SR_RETURN_IF_ERROR(LoadCheckpoint(options.checkpoint_path, &meta,
                                        store, &adam_state)
                             .WithContext("resuming training"));
    adam->LoadState(adam_state);
    adam->set_learning_rate(meta.learning_rate);
    if (epoch_rng != nullptr && !meta.rng_state.empty()) {
      if (!epoch_rng->LoadState(meta.rng_state)) {
        return common::DataLossError("checkpoint '" +
                                     options.checkpoint_path +
                                     "' holds an invalid RNG state");
      }
    }
    epoch = meta.epoch;
    recoveries = meta.recoveries;
    best_loss = meta.best_loss;
    rep.resumed = true;
    if (options.verbose) {
      std::fprintf(stderr,
                   "[trainer] resumed from '%s' at epoch %d (lr %.2e)\n",
                   options.checkpoint_path.c_str(), epoch,
                   adam->options().learning_rate);
    }
  }
  rep.start_epoch = epoch;
  rep.final_learning_rate = adam->options().learning_rate;

  Snapshot good = TakeSnapshot(epoch, best_loss, store, adam, epoch_rng);

  while (epoch < epochs) {
    const double loss = epoch_fn(epoch);
    if (hooks.post_backward) hooks.post_backward(epoch, *store);

    // Sentinel sweep. An empty string means the epoch is healthy.
    std::string trip;
    if (options.check_finite && !std::isfinite(loss)) {
      trip = "non-finite loss at epoch " + std::to_string(epoch);
    }
    if (trip.empty() && options.check_finite) {
      const std::string bad = FirstNonFinite(*store, /*gradients=*/true);
      if (!bad.empty()) {
        trip = "non-finite gradient in '" + bad + "' at epoch " +
               std::to_string(epoch);
      }
    }
    if (trip.empty() && options.divergence_factor > 0.0 &&
        std::isfinite(best_loss)) {
      if (loss > options.divergence_factor * std::max(best_loss, 1e-12)) {
        ++diverged_streak;
        if (diverged_streak >= options.divergence_patience) {
          trip = "divergence at epoch " + std::to_string(epoch) + ": loss " +
                 std::to_string(loss) + " vs best " +
                 std::to_string(best_loss) + " for " +
                 std::to_string(diverged_streak) + " epochs";
        }
      } else {
        diverged_streak = 0;
      }
    }
    if (trip.empty()) {
      adam->Step();
      if (options.check_finite) {
        const std::string bad = FirstNonFinite(*store, /*gradients=*/false);
        if (!bad.empty()) {
          trip = "non-finite parameter in '" + bad + "' after epoch " +
                 std::to_string(epoch);
        }
      }
    }

    if (!trip.empty()) {
      if (recoveries >= options.max_recoveries) {
        return common::ResourceExhaustedError(
            "training sentinel tripped (" + trip + ") with the recovery "
            "budget of " + std::to_string(options.max_recoveries) +
            " rollbacks exhausted");
      }
      ++recoveries;
      rep.recoveries = recoveries;
      RestoreSnapshot(good, store, adam, epoch_rng);
      const double lr = std::max(
          adam->options().learning_rate * options.lr_backoff,
          options.min_learning_rate);
      adam->set_learning_rate(lr);
      epoch = good.epoch;
      best_loss = good.best_loss;
      diverged_streak = 0;
      if (options.verbose) {
        std::fprintf(stderr,
                     "[trainer] %s; rolled back to epoch %d, lr -> %.2e "
                     "(recovery %d/%d)\n",
                     trip.c_str(), epoch, lr, recoveries,
                     options.max_recoveries);
      }
      continue;
    }

    best_loss = std::min(best_loss, loss);
    ++epoch;
    ++rep.epochs_run;
    rep.final_loss = loss;
    rep.final_learning_rate = adam->options().learning_rate;
    good = TakeSnapshot(epoch, best_loss, store, adam, epoch_rng);
    if (hooks.on_epoch_end) hooks.on_epoch_end(epoch - 1, loss);

    if (!options.checkpoint_path.empty() &&
        (epoch == epochs || (options.checkpoint_every > 0 &&
                             epoch % options.checkpoint_every == 0))) {
      O2SR_RETURN_IF_ERROR(WriteCheckpoint(options, epoch, best_loss,
                                           recoveries, store, adam,
                                           epoch_rng));
    }
  }
  return Status::Ok();
}

}  // namespace o2sr::nn
