#include "nn/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "nn/checkpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace o2sr::nn {

namespace {

using common::Status;

bool AllFinite(const Tensor& t) {
  const float* data = t.data();
  for (size_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

// Name of the first parameter whose `member` tensor holds a NaN/Inf, or
// empty when all are finite.
std::string FirstNonFinite(const ParameterStore& store, bool gradients) {
  for (const auto& p : store.params()) {
    if (!AllFinite(gradients ? p->grad : p->value)) return p->name;
  }
  return "";
}

// Global L2 norm over every gradient in the store (NaN if any entry is).
double GradL2Norm(const ParameterStore& store) {
  double sq = 0.0;
  for (const auto& p : store.params()) {
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) {
      sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  return std::sqrt(sq);
}

// Everything needed to rewind training to the end of a known-good epoch.
struct Snapshot {
  int epoch = 0;
  double best_loss = std::numeric_limits<double>::infinity();
  std::vector<Tensor> values;
  AdamState adam;
  std::string rng_state;
};

Snapshot TakeSnapshot(int epoch, double best_loss, ParameterStore* store,
                      AdamOptimizer* adam, Rng* rng) {
  Snapshot s;
  s.epoch = epoch;
  s.best_loss = best_loss;
  s.values.reserve(store->params().size());
  for (const auto& p : store->params()) s.values.push_back(p->value);
  s.adam = adam->SaveState();
  if (rng != nullptr) s.rng_state = rng->SaveState();
  return s;
}

void RestoreSnapshot(const Snapshot& s, ParameterStore* store,
                     AdamOptimizer* adam, Rng* rng) {
  O2SR_CHECK_EQ(s.values.size(), store->params().size());
  for (size_t k = 0; k < s.values.size(); ++k) {
    store->params()[k]->value = s.values[k];
  }
  adam->LoadState(s.adam);
  if (rng != nullptr && !s.rng_state.empty()) {
    O2SR_CHECK(rng->LoadState(s.rng_state));
  }
  // Accumulated (possibly poisoned) gradients belong to the abandoned
  // attempt.
  store->ZeroGrads();
}

Status WriteCheckpoint(const GuardrailOptions& options, int epoch,
                       double best_loss, int recoveries,
                       ParameterStore* store, AdamOptimizer* adam,
                       Rng* rng) {
  O2SR_TRACE_SCOPE("train.checkpoint_write");
  CheckpointMeta meta;
  meta.epoch = epoch;
  meta.learning_rate = adam->options().learning_rate;
  meta.recoveries = recoveries;
  meta.best_loss = best_loss;
  if (rng != nullptr) meta.rng_state = rng->SaveState();
  return SaveCheckpoint(options.checkpoint_path, meta, *store,
                        adam->SaveState())
      .WithContext("writing checkpoint");
}

// Records the event in the report and forwards it to the telemetry hook.
void Emit(TrainReport& report, const TrainHooks& hooks,
          const obs::TrainEvent& event) {
  report.events.push_back(event);
  if (hooks.on_event) hooks.on_event(event);
}

}  // namespace

common::Status RunGuardedTraining(ParameterStore* store, AdamOptimizer* adam,
                                  Rng* epoch_rng, int epochs,
                                  const EpochFn& epoch_fn,
                                  const GuardrailOptions& options,
                                  const TrainHooks& hooks,
                                  TrainReport* report) {
  O2SR_CHECK(store != nullptr);
  O2SR_CHECK(adam != nullptr);
  O2SR_CHECK(epoch_fn != nullptr);
  if (epochs < 0) {
    return common::InvalidArgumentError("negative epoch count " +
                                        std::to_string(epochs));
  }

  static obs::Counter* epochs_counter =
      obs::MetricsRegistry::Global().GetCounter("train.epochs_completed");
  static obs::Counter* recoveries_counter =
      obs::MetricsRegistry::Global().GetCounter("train.recoveries");
  static obs::Counter* resumes_counter =
      obs::MetricsRegistry::Global().GetCounter("train.resumes");
  static obs::Histogram* epoch_ms =
      obs::MetricsRegistry::Global().GetHistogram("train.epoch_ms");

  TrainReport local_report;
  TrainReport& rep = report != nullptr ? *report : local_report;
  rep = TrainReport();

  int epoch = 0;
  int recoveries = 0;
  int diverged_streak = 0;
  double best_loss = std::numeric_limits<double>::infinity();

  if (!options.checkpoint_path.empty() &&
      CheckpointExists(options.checkpoint_path)) {
    CheckpointMeta meta;
    AdamState adam_state;
    O2SR_RETURN_IF_ERROR(LoadCheckpoint(options.checkpoint_path, &meta,
                                        store, &adam_state)
                             .WithContext("resuming training"));
    adam->LoadState(adam_state);
    adam->set_learning_rate(meta.learning_rate);
    if (epoch_rng != nullptr && !meta.rng_state.empty()) {
      if (!epoch_rng->LoadState(meta.rng_state)) {
        return common::DataLossError("checkpoint '" +
                                     options.checkpoint_path +
                                     "' holds an invalid RNG state");
      }
    }
    epoch = meta.epoch;
    recoveries = meta.recoveries;
    best_loss = meta.best_loss;
    rep.resumed = true;
    resumes_counter->Increment();
    O2SR_LOG(INFO) << "resumed from '" << options.checkpoint_path
                   << "' at epoch " << epoch << " (lr "
                   << adam->options().learning_rate << ")";
    obs::TrainEvent event;
    event.kind = obs::TrainEventKind::kResume;
    event.epoch = epoch;
    event.loss = best_loss;
    event.learning_rate = adam->options().learning_rate;
    event.recoveries = recoveries;
    event.note = options.checkpoint_path;
    Emit(rep, hooks, event);
  }
  rep.start_epoch = epoch;
  rep.final_learning_rate = adam->options().learning_rate;

  Snapshot good = TakeSnapshot(epoch, best_loss, store, adam, epoch_rng);

  while (epoch < epochs) {
    O2SR_TRACE_SCOPE("train.epoch");
    const auto epoch_start = std::chrono::steady_clock::now();
    double loss;
    {
      O2SR_TRACE_SCOPE("train.forward_backward");
      loss = epoch_fn(epoch);
    }
    if (hooks.post_backward) hooks.post_backward(epoch, *store);
    const double grad_norm = GradL2Norm(*store);

    // Sentinel sweep. An empty string means the epoch is healthy.
    std::string trip;
    {
      O2SR_TRACE_SCOPE("train.finite_sweep");
      if (options.check_finite && !std::isfinite(loss)) {
        trip = "non-finite loss at epoch " + std::to_string(epoch);
      }
      if (trip.empty() && options.check_finite) {
        const std::string bad = FirstNonFinite(*store, /*gradients=*/true);
        if (!bad.empty()) {
          trip = "non-finite gradient in '" + bad + "' at epoch " +
                 std::to_string(epoch);
        }
      }
    }
    if (trip.empty() && options.divergence_factor > 0.0 &&
        std::isfinite(best_loss)) {
      if (loss > options.divergence_factor * std::max(best_loss, 1e-12)) {
        ++diverged_streak;
        if (diverged_streak >= options.divergence_patience) {
          trip = "divergence at epoch " + std::to_string(epoch) + ": loss " +
                 std::to_string(loss) + " vs best " +
                 std::to_string(best_loss) + " for " +
                 std::to_string(diverged_streak) + " epochs";
        }
      } else {
        diverged_streak = 0;
      }
    }
    if (trip.empty()) {
      O2SR_TRACE_SCOPE("train.optimizer_step");
      adam->Step();
      if (options.check_finite) {
        const std::string bad = FirstNonFinite(*store, /*gradients=*/false);
        if (!bad.empty()) {
          trip = "non-finite parameter in '" + bad + "' after epoch " +
                 std::to_string(epoch);
        }
      }
    }

    if (!trip.empty()) {
      if (recoveries >= options.max_recoveries) {
        return common::ResourceExhaustedError(
            "training sentinel tripped (" + trip + ") with the recovery "
            "budget of " + std::to_string(options.max_recoveries) +
            " rollbacks exhausted");
      }
      ++recoveries;
      rep.recoveries = recoveries;
      recoveries_counter->Increment();
      RestoreSnapshot(good, store, adam, epoch_rng);
      const double lr = std::max(
          adam->options().learning_rate * options.lr_backoff,
          options.min_learning_rate);
      adam->set_learning_rate(lr);
      const int bad_epoch = epoch;
      epoch = good.epoch;
      best_loss = good.best_loss;
      diverged_streak = 0;
      O2SR_LOG(WARNING) << trip << "; rolled back to epoch " << epoch
                        << ", lr -> " << lr << " (recovery " << recoveries
                        << "/" << options.max_recoveries << ")";
      obs::TrainEvent event;
      event.kind = obs::TrainEventKind::kRecovery;
      event.epoch = bad_epoch;
      event.loss = loss;
      event.grad_norm = grad_norm;
      event.learning_rate = lr;
      event.recoveries = recoveries;
      event.note = trip;
      Emit(rep, hooks, event);
      continue;
    }

    best_loss = std::min(best_loss, loss);
    ++epoch;
    ++rep.epochs_run;
    rep.final_loss = loss;
    rep.final_learning_rate = adam->options().learning_rate;
    good = TakeSnapshot(epoch, best_loss, store, adam, epoch_rng);
    epochs_counter->Increment();
    epoch_ms->Observe(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - epoch_start)
                          .count());
    obs::TrainEvent event;
    event.kind = obs::TrainEventKind::kEpoch;
    event.epoch = epoch - 1;
    event.loss = loss;
    event.grad_norm = grad_norm;
    event.learning_rate = adam->options().learning_rate;
    event.recoveries = recoveries;
    Emit(rep, hooks, event);
    if (hooks.on_epoch_end) hooks.on_epoch_end(epoch - 1, loss);

    if (!options.checkpoint_path.empty() &&
        (epoch == epochs || (options.checkpoint_every > 0 &&
                             epoch % options.checkpoint_every == 0))) {
      O2SR_RETURN_IF_ERROR(WriteCheckpoint(options, epoch, best_loss,
                                           recoveries, store, adam,
                                           epoch_rng));
    }
  }
  return Status::Ok();
}

WarmStartReport WarmStartParameters(const std::vector<NamedTensor>& donor,
                                    ParameterStore* store) {
  O2SR_CHECK(store != nullptr);
  std::unordered_map<std::string, const Tensor*> by_name;
  by_name.reserve(donor.size());
  for (const auto& d : donor) by_name[d.name] = &d.tensor;

  WarmStartReport report;
  for (const auto& p : store->params()) {
    const auto it = by_name.find(p->name);
    if (it == by_name.end()) {
      ++report.params_fresh;
      continue;
    }
    const Tensor& src = *it->second;
    if (src.SameShape(p->value)) {
      p->value = src;
      ++report.params_matched;
      report.scalars_copied += src.size();
      continue;
    }
    const int rows = std::min(src.rows(), p->value.rows());
    const int cols = std::min(src.cols(), p->value.cols());
    if (rows == 0 || cols == 0) {
      ++report.params_fresh;
      continue;
    }
    for (int r = 0; r < rows; ++r) {
      std::memcpy(p->value.row(r), src.row(r),
                  static_cast<size_t>(cols) * sizeof(float));
    }
    ++report.params_partial;
    report.scalars_copied += static_cast<uint64_t>(rows) * cols;
  }
  return report;
}

}  // namespace o2sr::nn
