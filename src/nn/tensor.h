#ifndef O2SR_NN_TENSOR_H_
#define O2SR_NN_TENSOR_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace o2sr::nn {

// Dense 2-D row-major float matrix. This is the only tensor shape the
// project needs: vectors are represented as 1xC or Nx1 matrices.
//
// Tensor is a plain value type (copyable, movable). All computation-graph
// semantics live in Tape; Tensor itself only provides storage and a few
// forward-only helpers used by both the tape ops and plain numeric code.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    O2SR_CHECK_GE(rows, 0);
    O2SR_CHECK_GE(cols, 0);
  }

  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor Full(int rows, int cols, float value);
  // Builds a row-major tensor from `values` (size must be rows*cols).
  static Tensor FromVector(int rows, int cols,
                           const std::vector<float>& values);
  // Gaussian entries with the given std; used for embedding init.
  static Tensor RandomNormal(int rows, int cols, double stddev, Rng& rng);
  // Xavier/Glorot uniform init for weight matrices.
  static Tensor Xavier(int rows, int cols, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) {
    O2SR_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    O2SR_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  // Unchecked element access for hot loops.
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // this += other (shapes must match).
  void AddInPlace(const Tensor& other);
  // this *= scalar.
  void ScaleInPlace(float scalar);

  // Sum of all entries.
  double Sum() const;
  // Mean absolute value; 0 for empty tensors.
  double MeanAbs() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Human-readable shape like "[3x4]".
  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

// The matmul variants and the in-place elementwise ops run on
// exec::CurrentPool() (row-blocked, deterministic: bit-identical to the
// serial execution at any O2SR_THREADS — see DESIGN.md §8). Small shapes
// stay on the calling thread.

// Forward-only C = A * B. Shapes: [m x k] * [k x n] -> [m x n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// Forward-only C = A^T * B. Shapes: [k x m]^T * [k x n] -> [m x n].
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);
// Forward-only C = A * B^T. Shapes: [m x k] * [n x k]^T -> [m x n].
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

}  // namespace o2sr::nn

#endif  // O2SR_NN_TENSOR_H_
