#include "nn/plan.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "exec/thread_pool.h"

namespace o2sr::nn {

namespace {

bool IsActivation(OpKind kind) {
  return kind == OpKind::kRelu || kind == OpKind::kLeakyRelu ||
         kind == OpKind::kSigmoid || kind == OpKind::kTanh;
}

// Exact structural signature of [begin, end): op kinds, shapes, scalar
// attributes and *relative* input ids (references before the segment keep
// their distance). Index contents are deliberately excluded — the schedule
// does not depend on them and execution always reads them from the node.
std::string SegmentKey(const std::vector<TapeNode>& nodes, int begin,
                       int end) {
  std::string key;
  key.reserve(static_cast<size_t>(end - begin) * 32);
  auto push32 = [&key](uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    key.append(buf, 4);
  };
  for (int i = begin; i < end; ++i) {
    const OpDesc& d = nodes[static_cast<size_t>(i)].desc;
    push32(static_cast<uint32_t>(d.kind));
    push32(static_cast<uint32_t>(d.rows));
    push32(static_cast<uint32_t>(d.cols));
    uint32_t alpha_bits;
    std::memcpy(&alpha_bits, &d.alpha, 4);
    push32(alpha_bits);
    push32(static_cast<uint32_t>(d.slice_start));
    push32(static_cast<uint32_t>(d.num_segments));
    push32(static_cast<uint32_t>(d.inputs.size()));
    for (int in : d.inputs) push32(static_cast<uint32_t>(in - begin));
  }
  return key;
}

}  // namespace

std::shared_ptr<const Plan> Plan::Compile(const std::vector<TapeNode>& nodes,
                                          int begin, int end) {
  auto plan = std::make_shared<Plan>();
  plan->begin = begin;
  plan->end = end;
  plan->steps.assign(static_cast<size_t>(end - begin), PlanStep{});
  auto step = [&](int id) -> PlanStep& {
    return plan->steps[static_cast<size_t>(id - begin)];
  };

  // In-segment consumer counts. A node consumed elsewhere (a later
  // segment, an external value read) is handled by on-demand recompute,
  // so fusion only requires the in-segment count to be exactly one.
  std::vector<int> uses(static_cast<size_t>(end - begin), 0);
  for (int i = begin; i < end; ++i) {
    for (int in : nodes[static_cast<size_t>(i)].desc.inputs) {
      if (in >= begin && in < end) ++uses[static_cast<size_t>(in - begin)];
    }
  }
  auto use_count = [&](int id) { return uses[static_cast<size_t>(id - begin)]; };

  for (int i = begin; i < end; ++i) {
    if (nodes[static_cast<size_t>(i)].desc.kind == OpKind::kParam) {
      step(i).role = PlanRole::kParamLeaf;
    }
  }

  for (int i = begin; i < end; ++i) {
    if (step(i).role != PlanRole::kDefault) continue;
    const OpKind kind = nodes[static_cast<size_t>(i)].desc.kind;

    if (kind == OpKind::kMatMul) {
      // Pattern A: greedily absorb a consecutive single-consumer
      // bias-add, then a consecutive single-consumer activation.
      int bias = -1, act = -1, tail = i;
      int j = i + 1;
      if (j < end && step(j).role == PlanRole::kDefault) {
        const OpDesc& d = nodes[static_cast<size_t>(j)].desc;
        if (d.kind == OpKind::kAddRowBroadcast && d.inputs[0] == i &&
            d.inputs[1] != i && use_count(i) == 1) {
          bias = j;
          tail = j;
          ++j;
        }
      }
      if (j < end && step(j).role == PlanRole::kDefault) {
        const OpDesc& d = nodes[static_cast<size_t>(j)].desc;
        if (IsActivation(d.kind) && d.inputs[0] == tail &&
            use_count(tail) == 1) {
          act = j;
          tail = j;
        }
      }
      if (bias >= 0 || act >= 0) {
        step(i).role = PlanRole::kLinearHead;
        step(i).bias_node = bias;
        step(i).act_node = act;
        if (bias >= 0) step(bias).role = PlanRole::kLinearInternal;
        if (act >= 0) step(act).role = PlanRole::kLinearInternal;
      }
      continue;
    }

    if (kind == OpKind::kMulColBroadcast) {
      const int j = i + 1;
      if (j < end && step(j).role == PlanRole::kDefault) {
        const OpDesc& d = nodes[static_cast<size_t>(j)].desc;
        if (d.kind == OpKind::kSegmentSum && d.inputs[0] == i &&
            use_count(i) == 1) {
          step(i).role = PlanRole::kScatterHead;
          step(i).tail = j;
          step(j).role = PlanRole::kScatterTail;
        }
      }
    }
  }
  return plan;
}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const Plan> PlanCache::GetOrCompile(
    const std::vector<TapeNode>& nodes, int begin, int end) {
  const std::string key = SegmentKey(nodes, begin, end);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) return it->second;
  }
  std::shared_ptr<const Plan> plan = Plan::Compile(nodes, begin, end);
  std::lock_guard<std::mutex> lock(mu_);
  if (plans_.size() >= kMaxPlans) plans_.clear();
  plans_.emplace(key, plan);
  return plan;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
}

bool PlanEnabledFromEnv() {
  static const bool enabled = [] {
    const char* env = std::getenv("O2SR_PLAN");
    if (env == nullptr || *env == '\0') return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "eager") != 0;
  }();
  return enabled;
}

namespace detail {

void RunPlanForward(const Plan& plan, std::vector<TapeNode>& nodes) {
  // One session per flushed segment: workers stay hot across every region
  // of the step instead of re-parking between ops.
  exec::Session session(exec::CurrentPool(), nullptr);
  for (int id = plan.begin; id < plan.end; ++id) {
    const PlanStep& s = plan.steps[static_cast<size_t>(id - plan.begin)];
    switch (s.role) {
      case PlanRole::kParamLeaf:
      case PlanRole::kLinearInternal:
      case PlanRole::kScatterTail:
        break;  // materialized (or redirected) elsewhere
      case PlanRole::kLinearHead:
        FusedLinearForward(nodes, id, s.bias_node, s.act_node);
        break;
      case PlanRole::kScatterHead:
        FusedScatterForward(nodes, id, s.tail);
        break;
      case PlanRole::kDefault:
        ExecuteForward(nodes, id);
        break;
    }
  }
}

void RunPlanBackward(const std::vector<PlanStep>& steps,
                     std::vector<TapeNode>& nodes, int loss_id) {
  exec::Session session(exec::CurrentPool(), nullptr);
  for (int id = loss_id; id >= 0; --id) {
    const PlanStep& s = steps[static_cast<size_t>(id)];
    switch (s.role) {
      case PlanRole::kLinearInternal:
        break;  // handled at the group head
      case PlanRole::kLinearHead:
        FusedLinearBackward(nodes, id, s.bias_node, s.act_node);
        break;
      default:
        // kScatterHead/kScatterTail backward is the generic pair: neither
        // op's backward reads the fused-away product.
        ExecuteBackward(nodes, id);
        break;
    }
  }
}

}  // namespace detail
}  // namespace o2sr::nn
