// bench_diff: the BENCH regression gate.
//
//   bench_diff [--ignore-timings] baseline.json candidate.json
//
// Compares two BENCH_<name>.json reports field by field with
// direction-aware tolerances (tools/bench_diff_lib.h) and prints a
// regression table. Exit codes:
//   0  clean (no field moved past tolerance in the bad direction)
//   1  at least one regression (or a baseline field went missing)
//   2  not comparable: different bench / scale / threads / build flavor,
//      unreadable file, or bad usage
//
// ci.sh runs this against the committed baselines with --ignore-timings,
// so machine-speed noise cannot fail the gate while quality metrics can.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_diff_lib.h"
#include "obs/json.h"

int main(int argc, char** argv) {
  using namespace o2sr;

  tools::BenchDiffOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ignore-timings") == 0) {
      options.ignore_timings = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", argv[i]);
      return tools::kExitIncomparable;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--ignore-timings] baseline.json "
                 "candidate.json\n");
    return tools::kExitIncomparable;
  }

  auto baseline = obs::ParseJsonFile(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 baseline.status().ToString().c_str());
    return tools::kExitIncomparable;
  }
  auto candidate = obs::ParseJsonFile(paths[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 candidate.status().ToString().c_str());
    return tools::kExitIncomparable;
  }

  auto result =
      tools::DiffBenchReports(baseline.value(), candidate.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 result.status().ToString().c_str());
    return tools::kExitIncomparable;
  }

  std::printf("bench_diff: %s vs %s\n", paths[0].c_str(), paths[1].c_str());
  tools::PrintDiffTable(result.value(), stdout);
  if (!result->comparable()) return tools::kExitIncomparable;
  return result->regressions() > 0 ? tools::kExitRegressed
                                   : tools::kExitClean;
}
