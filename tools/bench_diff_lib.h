#ifndef O2SR_TOOLS_BENCH_DIFF_LIB_H_
#define O2SR_TOOLS_BENCH_DIFF_LIB_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace o2sr::tools {

// Comparison logic behind tools/bench_diff: diffs two BENCH_<name>.json
// reports field by field with direction-aware tolerances, so ci.sh can gate
// on "no metric regressed" instead of eyeballing JSON. Kept as a library so
// tests can drive it on synthetic reports without spawning the binary.
//
// Three-way outcome per run:
//   - incomparable (meta mismatch: different bench, scale, threads, build
//     flavor or seed count) — refusing beats silently comparing a UBSan run
//     against a Release baseline;
//   - regressed (any field moved past its tolerance in the bad direction);
//   - clean.

// Which way "worse" points for a field.
enum class FieldDirection {
  kHigherBetter,  // qps, speedup, ndcg, precision, hit rates
  kLowerBetter,   // latencies, rmse, shed/degraded/burn rates
  kTwoSided,      // config-ish values: any move past tolerance is suspect
};

struct FieldPolicy {
  FieldDirection direction = FieldDirection::kTwoSided;
  double rel_tol = 0.10;  // fraction of |baseline|
  double abs_tol = 1e-9;  // floor for near-zero baselines
  bool timing = false;    // wall-clock-derived; skipped by ignore_timings
};

// Label -> tolerance policy. Labels are matched on the leaf name (the part
// after the last '.'), so "stages_ms.train.epoch" classifies like a timing
// and "cells.HGT.ndcg@3" like an accuracy metric.
FieldPolicy ClassifyField(const std::string& label);

enum class FieldStatus {
  kOk,         // within tolerance
  kImproved,   // moved past tolerance in the good direction
  kRegressed,  // moved past tolerance in the bad direction
  kMissing,    // in baseline, absent from candidate — counts as regression
  kNew,        // in candidate only; informational
  kSkipped,    // timing field under ignore_timings
};

const char* FieldStatusName(FieldStatus status);

struct FieldDiff {
  std::string label;
  double baseline = 0.0;
  double candidate = 0.0;
  FieldStatus status = FieldStatus::kOk;
  FieldPolicy policy;
};

struct BenchDiffOptions {
  // Skip fields whose policy says `timing`: wall clocks and throughputs are
  // machine-dependent, so cross-machine gates compare only deterministic
  // quality metrics.
  bool ignore_timings = false;
};

struct BenchDiffResult {
  // "field: baseline vs candidate" lines; non-empty means the reports are
  // not comparable and `fields` is left empty.
  std::vector<std::string> meta_mismatches;
  std::vector<FieldDiff> fields;  // baseline order, then NEW fields

  bool comparable() const { return meta_mismatches.empty(); }
  int regressions() const;
  int improvements() const;
};

// Diffs two parsed BENCH reports. InvalidArgument when either document is
// not shaped like a bench report (no "bench" name). Fields compared:
// "wall_clock_s", the "values" entries, per-cell metric columns
// ("cells.<label>.<col>") and per-stage wall times ("stages_ms.<stage>").
common::StatusOr<BenchDiffResult> DiffBenchReports(
    const obs::JsonValue& baseline, const obs::JsonValue& candidate,
    const BenchDiffOptions& options);

// Renders the per-field table (label, baseline, candidate, delta, status)
// and a one-line verdict to `out`.
void PrintDiffTable(const BenchDiffResult& result, std::FILE* out);

// Process exit codes for the CLI (and for ci.sh to assert on).
inline constexpr int kExitClean = 0;
inline constexpr int kExitRegressed = 1;
inline constexpr int kExitIncomparable = 2;

}  // namespace o2sr::tools

#endif  // O2SR_TOOLS_BENCH_DIFF_LIB_H_
