#include "bench_diff_lib.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "common/table_printer.h"
#include "obs/json.h"

namespace o2sr::tools {
namespace {

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

// All labeled numbers in one report, flattened to "path" -> value in
// document order: the `values` entries under their own label, cell metric
// columns as "cells.<row>.<column>" and stage wall times as
// "stages_ms.<stage>".
std::vector<std::pair<std::string, double>> ExtractFields(
    const obs::JsonValue& report) {
  std::vector<std::pair<std::string, double>> out;
  if (const obs::JsonValue* wall = report.Find("wall_clock_s");
      wall != nullptr && wall->is_number()) {
    out.emplace_back("wall_clock_s", wall->number());
  }
  if (const obs::JsonValue* values = report.Find("values");
      values != nullptr && values->is_array()) {
    for (const obs::JsonValue& entry : values->items()) {
      const obs::JsonValue* label = entry.Find("label");
      const obs::JsonValue* value = entry.Find("value");
      if (label != nullptr && label->is_string() && value != nullptr &&
          value->is_number()) {
        out.emplace_back(label->string_value(), value->number());
      }
    }
  }
  if (const obs::JsonValue* cells = report.Find("cells");
      cells != nullptr && cells->is_array()) {
    for (const obs::JsonValue& cell : cells->items()) {
      const std::string row = cell.StringOr("label", "?");
      for (const auto& [column, value] : cell.members()) {
        if (column != "label" && value.is_number()) {
          out.emplace_back("cells." + row + "." + column, value.number());
        }
      }
    }
  }
  if (const obs::JsonValue* stages = report.Find("stages_ms");
      stages != nullptr && stages->is_object()) {
    for (const auto& [stage, value] : stages->members()) {
      if (value.is_number()) {
        out.emplace_back("stages_ms." + stage, value.number());
      }
    }
  }
  return out;
}

// Meta fields that must match for a comparison to mean anything. A report
// without the field reads as "(absent)", so an old-format baseline refuses
// against a new-format run instead of silently passing.
std::string MetaString(const obs::JsonValue& report, const std::string& key) {
  const obs::JsonValue* v = report.Find(key);
  if (v == nullptr) return "(absent)";
  if (v->is_string()) return v->string_value();
  if (v->is_number()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v->number());
    return buf;
  }
  return "(absent)";
}

void CheckMeta(const obs::JsonValue& baseline, const obs::JsonValue& candidate,
               std::vector<std::string>* mismatches) {
  static const char* const kMetaKeys[] = {"bench",      "scale",
                                          "seed_count", "threads",
                                          "build_type", "sanitizer"};
  for (const char* key : kMetaKeys) {
    const std::string b = MetaString(baseline, key);
    const std::string c = MetaString(candidate, key);
    if (b != c) {
      mismatches->push_back(std::string(key) + ": " + b + " vs " + c);
    }
  }
}

FieldStatus Judge(const FieldPolicy& policy, double baseline,
                  double candidate) {
  const double tol =
      std::max(policy.abs_tol, policy.rel_tol * std::fabs(baseline));
  const double delta = candidate - baseline;
  switch (policy.direction) {
    case FieldDirection::kHigherBetter:
      if (delta < -tol) return FieldStatus::kRegressed;
      if (delta > tol) return FieldStatus::kImproved;
      return FieldStatus::kOk;
    case FieldDirection::kLowerBetter:
      if (delta > tol) return FieldStatus::kRegressed;
      if (delta < -tol) return FieldStatus::kImproved;
      return FieldStatus::kOk;
    case FieldDirection::kTwoSided:
      return std::fabs(delta) > tol ? FieldStatus::kRegressed
                                    : FieldStatus::kOk;
  }
  return FieldStatus::kOk;
}

}  // namespace

FieldPolicy ClassifyField(const std::string& label) {
  // Stage wall times carry their span name as the leaf; classify on the
  // full label first, then on the leaf for the dotted cell paths.
  if (StartsWith(label, "stages_ms.")) {
    return {FieldDirection::kLowerBetter, 0.25, 5.0, /*timing=*/true};
  }
  const size_t dot = label.rfind('.');
  const std::string leaf =
      dot == std::string::npos ? label : label.substr(dot + 1);

  if (Contains(leaf, "qps") || Contains(leaf, "speedup")) {
    return {FieldDirection::kHigherBetter, 0.25, 1e-9, /*timing=*/true};
  }
  // Peak memory of the out-of-core scale bench: direction-aware (growth is
  // a regression) but not machine-speed-dependent, so ignore_timings keeps
  // checking it. Generous tolerance — allocator noise moves RSS a little.
  if (Contains(leaf, "rss")) {
    return {FieldDirection::kLowerBetter, 0.25, 8.0, /*timing=*/false};
  }
  // Workload/layout shape of the dataset benches (bench_scale): store and
  // order counts, shard/block layout, memory budget. Any drift means the
  // two runs ingested different datasets — a comparison bug, never noise.
  if (Contains(leaf, "budget") || Contains(leaf, "rows") ||
      leaf == "stores" || leaf == "orders" || leaf == "shards" ||
      leaf == "blocks" || leaf == "regions" || leaf == "epochs" ||
      leaf == "block_regions" || leaf == "types") {
    return {FieldDirection::kTwoSided, 0.0, 0.0, /*timing=*/false};
  }
  // "wall_clock" / "_ms" by substring: ci.sh appends
  // wall_clock_s_threads{1,4} cells to the table04 report, and the serving
  // saturation curve suffixes its latencies per thread count
  // (mt_p99_ms_t4).
  if (Contains(leaf, "_ms") || Contains(leaf, "wall_clock") ||
      EndsWith(leaf, "_s") || Contains(leaf, "recovery")) {
    return {FieldDirection::kLowerBetter, 0.25, 5.0, /*timing=*/true};
  }
  if (Contains(leaf, "ndcg") || Contains(leaf, "precision") ||
      Contains(leaf, "hit_rate")) {
    return {FieldDirection::kHigherBetter, 0.02, 0.005, /*timing=*/false};
  }
  if (leaf == "rmse" || Contains(leaf, "loss")) {
    return {FieldDirection::kLowerBetter, 0.05, 0.005, /*timing=*/false};
  }
  if (Contains(leaf, "_rate") || Contains(leaf, "fraction") ||
      Contains(leaf, "breached") || Contains(leaf, "burn")) {
    // Shed/degraded/failed rates, SLO bad-fractions and burn rates are
    // load-dependent: how far an overloaded replay pushes the engine is a
    // function of machine speed, so ignore_timings must skip them the way
    // it skips wall clocks (hit_rate matched above stays non-timing — a
    // deterministic cache either hits or the comparison found a real bug).
    return {FieldDirection::kLowerBetter, 0.05, 0.02, /*timing=*/true};
  }
  if (Contains(leaf, "queries") || leaf == "candidates_per_query" ||
      leaf == "types_evaluated" || leaf == "mt_tenants" ||
      leaf == "mt_batch" || Contains(leaf, "count")) {
    // Workload-shape numbers: any change means the runs measured different
    // things, which is a comparison bug, not a perf delta.
    return {FieldDirection::kTwoSided, 0.0, 0.0, /*timing=*/false};
  }
  return {FieldDirection::kTwoSided, 0.10, 1e-9, /*timing=*/false};
}

const char* FieldStatusName(FieldStatus status) {
  switch (status) {
    case FieldStatus::kOk: return "ok";
    case FieldStatus::kImproved: return "improved";
    case FieldStatus::kRegressed: return "REGRESSED";
    case FieldStatus::kMissing: return "MISSING";
    case FieldStatus::kNew: return "new";
    case FieldStatus::kSkipped: return "skipped";
  }
  return "?";
}

int BenchDiffResult::regressions() const {
  int n = 0;
  for (const FieldDiff& f : fields) {
    if (f.status == FieldStatus::kRegressed ||
        f.status == FieldStatus::kMissing) {
      ++n;
    }
  }
  return n;
}

int BenchDiffResult::improvements() const {
  int n = 0;
  for (const FieldDiff& f : fields) {
    if (f.status == FieldStatus::kImproved) ++n;
  }
  return n;
}

common::StatusOr<BenchDiffResult> DiffBenchReports(
    const obs::JsonValue& baseline, const obs::JsonValue& candidate,
    const BenchDiffOptions& options) {
  if (baseline.Find("bench") == nullptr) {
    return common::InvalidArgumentError(
        "baseline document has no \"bench\" field — not a BENCH report");
  }
  if (candidate.Find("bench") == nullptr) {
    return common::InvalidArgumentError(
        "candidate document has no \"bench\" field — not a BENCH report");
  }

  BenchDiffResult result;
  CheckMeta(baseline, candidate, &result.meta_mismatches);
  if (!result.comparable()) return result;

  const auto base_fields = ExtractFields(baseline);
  const auto cand_fields = ExtractFields(candidate);
  auto find = [](const std::vector<std::pair<std::string, double>>& fields,
                 const std::string& label) -> const double* {
    for (const auto& [l, v] : fields) {
      if (l == label) return &v;
    }
    return nullptr;
  };

  std::set<std::string> seen;
  for (const auto& [label, base_value] : base_fields) {
    if (!seen.insert(label).second) continue;
    FieldDiff diff;
    diff.label = label;
    diff.baseline = base_value;
    diff.policy = ClassifyField(label);
    const double* cand_value = find(cand_fields, label);
    if (cand_value == nullptr) {
      diff.status = FieldStatus::kMissing;
    } else {
      diff.candidate = *cand_value;
      diff.status = options.ignore_timings && diff.policy.timing
                        ? FieldStatus::kSkipped
                        : Judge(diff.policy, base_value, *cand_value);
    }
    result.fields.push_back(std::move(diff));
  }
  for (const auto& [label, cand_value] : cand_fields) {
    if (seen.count(label) != 0) continue;
    seen.insert(label);
    FieldDiff diff;
    diff.label = label;
    diff.candidate = cand_value;
    diff.policy = ClassifyField(label);
    diff.status = FieldStatus::kNew;
    result.fields.push_back(std::move(diff));
  }
  return result;
}

void PrintDiffTable(const BenchDiffResult& result, std::FILE* out) {
  if (!result.comparable()) {
    std::fprintf(out, "bench_diff: reports are not comparable:\n");
    for (const std::string& line : result.meta_mismatches) {
      std::fprintf(out, "  %s\n", line.c_str());
    }
    return;
  }
  TablePrinter table({"field", "baseline", "candidate", "delta", "status"});
  int skipped = 0;
  for (const FieldDiff& f : result.fields) {
    if (f.status == FieldStatus::kSkipped) {
      ++skipped;
      continue;
    }
    std::string delta = "-";
    if (f.status != FieldStatus::kMissing && f.status != FieldStatus::kNew &&
        f.baseline != 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.2f%%",
                    (f.candidate - f.baseline) / std::fabs(f.baseline) *
                        100.0);
      delta = buf;
    }
    table.AddRow({f.label,
                  f.status == FieldStatus::kNew ? "-"
                                                : TablePrinter::Num(f.baseline),
                  f.status == FieldStatus::kMissing
                      ? "-"
                      : TablePrinter::Num(f.candidate),
                  delta, FieldStatusName(f.status)});
  }
  table.Print(out);
  std::fprintf(out,
               "bench_diff: %zu fields, %d regressed, %d improved, %d "
               "timing skipped -> %s\n",
               result.fields.size(), result.regressions(),
               result.improvements(), skipped,
               result.regressions() > 0 ? "REGRESSED" : "clean");
}

}  // namespace o2sr::tools
