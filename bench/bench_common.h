#ifndef O2SR_BENCH_BENCH_COMMON_H_
#define O2SR_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "baselines/baseline_common.h"
#include "core/o2siterec.h"
#include "eval/experiment.h"
#include "sim/config.h"
#include "sim/dataset.h"

namespace o2sr::bench {

// Bench scale, selected by the O2SR_BENCH_SCALE environment variable:
//   "small"    - quick shape check (~4x faster, noisier numbers)
//   "standard" - default; the numbers recorded in EXPERIMENTS.md
enum class Scale { kSmall, kStandard };
Scale CurrentScale();

// The synthetic-Eleme dataset behind Table III and every figure
// (substitute for the paper's proprietary real-world data).
sim::SimConfig RealDataConfig();
// The open-data preset behind Table IV (sparser + noisier).
sim::SimConfig OpenDataConfig();
// A smaller city for hyper-parameter sweeps (Fig. 15-16) where many models
// are trained.
sim::SimConfig SweepConfig();

// Default model/baseline budgets for the bench scale.
core::O2SiteRecConfig ModelConfig();
baselines::BaselineConfig BaselineDefaults();
eval::EvalOptions EvalDefaults();

// Dataset + split prepared once per bench binary.
struct PreparedData {
  sim::Dataset data;
  eval::Split split;

  explicit PreparedData(const sim::SimConfig& config, uint64_t split_seed);
};

// Prints the bench banner: which table/figure of the paper this regenerates
// and on what data scale.
void PrintHeader(const std::string& title, const std::string& paper_ref);

// Formats an EvalResult in Table III column order:
// NDCG@3, NDCG@5, NDCG@10, P@3, P@5, P@10, RMSE.
std::vector<std::string> MetricCells(const eval::EvalResult& result);

// Averages eval results element-wise (used for multi-seed rows).
eval::EvalResult AverageResults(const std::vector<eval::EvalResult>& results);

// Trains and evaluates an O2-SiteRec configuration `seeds` times (seeds
// 21, 22, ...) and returns the averaged result. Used by the ablation
// benches, whose single-seed orderings are noisy.
eval::EvalResult RunVariantAveraged(const PreparedData& prepared,
                                    core::O2SiteRecConfig config, int seeds,
                                    const eval::EvalOptions& options);

}  // namespace o2sr::bench

#endif  // O2SR_BENCH_BENCH_COMMON_H_
