#ifndef O2SR_BENCH_BENCH_COMMON_H_
#define O2SR_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/baseline_common.h"
#include "core/o2siterec.h"
#include "eval/experiment.h"
#include "obs/trace.h"
#include "sim/config.h"
#include "sim/dataset.h"

namespace o2sr::bench {

// Bench scale, selected by the O2SR_BENCH_SCALE environment variable:
//   "small"    - quick shape check (~4x faster, noisier numbers)
//   "standard" - default; the numbers recorded in EXPERIMENTS.md
//   "paper"    - the paper's workload (39,465 stores / 23.6M orders);
//                only bench_scale runs the full out-of-core ingest, other
//                benches fall back to their standard budgets
// Any other value is fatal (INVALID_ARGUMENT listing the accepted set) —
// a typo must not silently re-run the default scale.
enum class Scale { kSmall, kStandard, kPaper };
Scale CurrentScale();
// "small" / "standard" / "paper" (the BENCH json "scale" meta field).
const char* ScaleName(Scale scale);

// The synthetic-Eleme dataset behind Table III and every figure
// (substitute for the paper's proprietary real-world data).
sim::SimConfig RealDataConfig();
// The open-data preset behind Table IV (sparser + noisier).
sim::SimConfig OpenDataConfig();
// A smaller city for hyper-parameter sweeps (Fig. 15-16) where many models
// are trained.
sim::SimConfig SweepConfig();

// Default model/baseline budgets for the bench scale.
core::O2SiteRecConfig ModelConfig();
baselines::BaselineConfig BaselineDefaults();
eval::EvalOptions EvalDefaults();

// Dataset + split prepared once per bench binary.
struct PreparedData {
  sim::Dataset data;
  eval::Split split;

  explicit PreparedData(const sim::SimConfig& config, uint64_t split_seed);
};

// TrainContext over a prepared split (hooks/report/pool left defaulted).
// The context borrows from `prepared`, which must outlive it.
core::TrainContext MakeTrainContext(const PreparedData& prepared);

// Prints the bench banner: which table/figure of the paper this regenerates
// and on what data scale.
void PrintHeader(const std::string& title, const std::string& paper_ref);

// Machine-readable run artifact of a bench binary. Construct it first
// thing in main():
//
//   bench::BenchReport report("table03_overall_real", title, paper_ref);
//
// It prints the banner, opens the root trace span "bench.<name>" (so an
// O2SR_TRACE_FILE export has a single span covering the whole run), and on
// destruction writes BENCH_<name>.json into the working directory with the
// bench scale, per-stage wall-clock from the trace layer, every metric
// cell/value the bench registered, and the seed count. The stdout table is
// unchanged; the JSON is what the repo-level perf trajectory accumulates.
class BenchReport {
 public:
  BenchReport(const std::string& name, const std::string& title,
              const std::string& paper_ref);
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void set_seed_count(int n) { seed_count_ = n; }

  // A labeled EvalResult row (Table III column order in the JSON cell).
  void AddResult(const std::string& label, const eval::EvalResult& result);
  // A labeled scalar (figure series points, t-statistics, deltas...).
  void AddValue(const std::string& label, double value);

  // Writes BENCH_<name>.json (idempotent; the destructor calls it).
  void Write();

 private:
  std::string name_;
  std::string title_;
  std::string paper_ref_;
  std::string root_name_;  // backing storage for the root span's name
  int seed_count_ = 1;
  std::vector<std::pair<std::string, eval::EvalResult>> cells_;
  std::vector<std::pair<std::string, double>> values_;
  std::unique_ptr<obs::ScopedTrace> root_span_;
  std::chrono::steady_clock::time_point start_;
  bool written_ = false;
};

// Formats an EvalResult in Table III column order:
// NDCG@3, NDCG@5, NDCG@10, P@3, P@5, P@10, RMSE.
std::vector<std::string> MetricCells(const eval::EvalResult& result);

// Averages eval results element-wise (used for multi-seed rows).
eval::EvalResult AverageResults(const std::vector<eval::EvalResult>& results);

// Trains and evaluates an O2-SiteRec configuration `seeds` times (seeds
// 21, 22, ...) and returns the averaged result. Used by the ablation
// benches, whose single-seed orderings are noisy.
eval::EvalResult RunVariantAveraged(const PreparedData& prepared,
                                    core::O2SiteRecConfig config, int seeds,
                                    const eval::EvalOptions& options);

}  // namespace o2sr::bench

#endif  // O2SR_BENCH_BENCH_COMMON_H_
