// Regenerates Fig. 15: NDCG@3 as a function of the embedding size of the
// region-type heterogeneous multi-graph. The paper sweeps around d2 = 90
// and finds the curve flat with a mild peak; too-small embeddings
// under-represent, too-large ones start to overfit.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report("fig15_embedding_size",
                            "Embedding-size sensitivity",
                            "Fig. 15 (effect of different embedding sizes)");
  bench::PreparedData prepared(bench::SweepConfig(), /*split_seed=*/1);
  eval::EvalOptions opts = bench::EvalDefaults();
  opts.min_candidates = std::max(20, opts.min_candidates / 2);

  const std::vector<int> sizes =
      bench::CurrentScale() != bench::Scale::kSmall
          ? std::vector<int>{16, 32, 48, 64, 90}
          : std::vector<int>{16, 32, 48};
  TablePrinter table({"Embedding size d2", "NDCG@3", "RMSE"});
  double best = 0.0, worst = 1.0;
  for (int d2 : sizes) {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    // Keep the head count a divisor of d2.
    cfg.rec.embedding_dim = d2 - (d2 % 4);
    cfg.rec.node_heads = 4;
    cfg.rec.time_heads = 2;
    core::O2SiteRecRecommender model(cfg);
    const eval::EvalResult r =
        eval::RunOnce(model, prepared.data, prepared.split, opts).value();
    best = std::max(best, r.ndcg.at(3));
    worst = std::min(worst, r.ndcg.at(3));
    report.AddResult("d2=" + std::to_string(cfg.rec.embedding_dim), r);
    table.AddRow({std::to_string(cfg.rec.embedding_dim),
                  TablePrinter::Num(r.ndcg.at(3)),
                  TablePrinter::Num(r.rmse)});
  }
  table.Print(stdout);

  std::printf(
      "\nShape check: performance relatively stable across sizes "
      "(spread %.4f) -> %s\n",
      best - worst, best - worst < 0.12 ? "REPRODUCED" : "PARTIAL");
  report.AddValue("ndcg3_spread", best - worst);
  report.AddValue("reproduced", best - worst < 0.12 ? 1.0 : 0.0);
  return 0;
}
