// Regenerates Fig. 11: the effect of the two attention mechanisms. Compares
// the full O2-SiteRec against "w/o NA" (mean aggregation instead of the
// node-level multi-head attention over edge attributes/types) and "w/o SA"
// (mean over periods instead of the time semantics-level attention).
// Expected shape: Full beats both variants.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/o2siterec.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report("fig11_ablation_attention",
                            "Ablation: attention mechanisms",
                            "Fig. 11 (O2-SiteRec vs w/o NA vs w/o SA)");
  bench::PreparedData prepared(bench::RealDataConfig(), /*split_seed=*/1);
  const eval::EvalOptions opts = bench::EvalDefaults();

  TablePrinter table({"Variant", "NDCG@3", "NDCG@5", "NDCG@10",
                      "Precision@3", "Precision@5", "Precision@10", "RMSE"});
  double full = 0.0, no_na = 0.0, no_sa = 0.0;
  for (auto variant : {core::O2SiteRecVariant::kFull,
                       core::O2SiteRecVariant::kMeanNodeAggregation,
                       core::O2SiteRecVariant::kMeanTimeAggregation}) {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.variant = variant;
    const int seeds =
        bench::CurrentScale() != bench::Scale::kSmall ? 2 : 1;
    report.set_seed_count(seeds);
    const eval::EvalResult r =
        bench::RunVariantAveraged(prepared, cfg, seeds, opts);
    report.AddResult(core::VariantName(variant), r);
    std::vector<std::string> row = {core::VariantName(variant)};
    for (auto& c : bench::MetricCells(r)) row.push_back(c);
    table.AddRow(row);
    if (variant == core::O2SiteRecVariant::kFull) full = r.ndcg.at(3);
    if (variant == core::O2SiteRecVariant::kMeanNodeAggregation) {
      no_na = r.ndcg.at(3);
    }
    if (variant == core::O2SiteRecVariant::kMeanTimeAggregation) {
      no_sa = r.ndcg.at(3);
    }
  }
  table.Print(stdout);

  std::printf(
      "\nShape check: Full (%.4f) >= w/o NA (%.4f) and >= w/o SA (%.4f) "
      "-> %s\n",
      full, no_na, no_sa,
      (full >= no_na && full >= no_sa)
          ? "REPRODUCED"
          : "PARTIAL (ordering noisy at this scale)");
  report.AddValue("reproduced", (full >= no_na && full >= no_sa) ? 1.0 : 0.0);
  return 0;
}
