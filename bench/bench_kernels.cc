// Microbenchmarks of the nn kernel layer and the two-phase (planned)
// executor — not a paper table; this is the performance baseline for the
// library itself, in the same BENCH json format as the experiment benches
// so tools/bench_diff can gate it. Two kinds of values ride in the report:
//
//  * timings (`*_ms`, skipped under --ignore-timings): the dispatch-table
//    matmul family scalar vs SIMD, and a representative attention-shaped
//    training step planned vs eager;
//  * exact counts (zero-tolerance in bench_diff): scalar/SIMD and
//    planned/eager mismatch counts (must be 0 — the bit-exactness
//    contract), tape node count, fused-region and chunk counts from the
//    profiler (pure functions of the workload shapes, identical on every
//    machine and thread count — a drift means the compiler fused
//    differently, which is exactly what the gate should catch).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "nn/kernels/kernels.h"
#include "nn/parameter.h"
#include "nn/plan.h"
#include "nn/tape.h"
#include "nn/tensor.h"
#include "obs/profiler.h"

namespace o2sr {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The model's hot shape family: thousands of edge rows, narrow embeddings.
constexpr int kRows = 2850;
constexpr int kDim = 32;

size_t CountMismatch(const nn::Tensor& a, const nn::Tensor& b) {
  size_t bad = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) ++bad;
  }
  return bad;
}

// One attention-shaped step: a fused linear+activation group, a second
// matmul+activation, a column-broadcast + segment-sum scatter group, and a
// scalar loss.
struct StepSetup {
  nn::ParameterStore store;
  nn::Parameter* w1;
  nn::Parameter* b1;
  nn::Parameter* w2;
  nn::Tensor x;
  nn::Tensor col;
  std::vector<int> segment;
  int num_segments;

  StepSetup() : x(kRows, kDim), col(kRows, 1) {
    Rng rng(99);
    w1 = store.CreateXavier("w1", kDim, kDim, rng);
    b1 = store.CreateZeros("b1", 1, kDim);
    w2 = store.CreateXavier("w2", kDim, kDim, rng);
    x = nn::Tensor::RandomNormal(kRows, kDim, 1.0, rng);
    col = nn::Tensor::RandomNormal(kRows, 1, 0.5, rng);
    segment.resize(kRows);
    for (int i = 0; i < kRows; ++i) segment[i] = i / 10;
    num_segments = (kRows + 9) / 10;
  }

  // Runs forward + backward once; returns the pooled output values.
  nn::Tensor Run(size_t* nodes_out = nullptr) {
    nn::Tape tape;
    nn::Value in = tape.Input(x);
    nn::Value h1 = tape.Relu(tape.AddRowBroadcast(
        tape.MatMul(in, tape.Param(w1)), tape.Param(b1)));
    nn::Value h2 = tape.Tanh(tape.MatMul(h1, tape.Param(w2)));
    nn::Value weighted = tape.MulColBroadcast(h2, tape.Input(col));
    nn::Value pooled = tape.SegmentSum(weighted, segment, num_segments);
    nn::Value loss = tape.MeanAll(tape.Mul(pooled, pooled));
    tape.Backward(loss);
    if (nodes_out != nullptr) *nodes_out = tape.num_nodes();
    return tape.value(pooled);
  }
};

struct TimedPair {
  const char* label_scalar;
  const char* label_simd;
  double ms_scalar = 0.0;
  double ms_simd = 0.0;
};

}  // namespace

int Main() {
  bench::BenchReport report(
      "kernels", "Kernel dispatch-table and planned-executor baseline",
      "library baseline (no paper table)");
  const bool small = bench::CurrentScale() == bench::Scale::kSmall;
  const int kernel_reps = small ? 40 : 160;
  const int step_reps = small ? 10 : 40;

  // --- dispatch-table matmul family, scalar vs active SIMD level ---------
  const nn::kernels::KernelTable& scalar = nn::kernels::ScalarTable();
  const nn::kernels::KernelTable& active = nn::kernels::Active();
  std::printf("kernel tables: active SIMD level = %s\n",
              nn::kernels::SimdName(nn::kernels::ActiveSimd()));

  Rng rng(7);
  const nn::Tensor a = nn::Tensor::RandomNormal(kRows, kDim, 1.0, rng);
  const nn::Tensor b = nn::Tensor::RandomNormal(kDim, kDim, 1.0, rng);
  const nn::Tensor a_tall = nn::Tensor::RandomNormal(kRows, kDim, 1.0, rng);
  const nn::Tensor b_wide = nn::Tensor::RandomNormal(kRows, kDim, 1.0, rng);
  nn::Tensor c_scalar(kRows, kDim), c_simd(kRows, kDim);
  nn::Tensor d_scalar(kDim, kDim), d_simd(kDim, kDim);
  size_t mismatches = 0;

  // matmul_rows: [kRows x kDim] * [kDim x kDim].
  TimedPair mm{"matmul_scalar_ms", "matmul_simd_ms"};
  {
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kernel_reps; ++r) {
      c_scalar.Fill(0.0f);
      scalar.matmul_rows(a.data(), b.data(), c_scalar.data(), 0, kRows, kDim,
                         kDim, false);
    }
    mm.ms_scalar = MsSince(t0);
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kernel_reps; ++r) {
      c_simd.Fill(0.0f);
      active.matmul_rows(a.data(), b.data(), c_simd.data(), 0, kRows, kDim,
                         kDim, false);
    }
    mm.ms_simd = MsSince(t0);
    mismatches += CountMismatch(c_scalar, c_simd);
  }

  // matmul_ta_rows: [kRows x kDim]^T * [kRows x kDim] (the weight-gradient
  // shape: long reduction, tiny output).
  TimedPair ta{"matmul_ta_scalar_ms", "matmul_ta_simd_ms"};
  {
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kernel_reps; ++r) {
      d_scalar.Fill(0.0f);
      scalar.matmul_ta_rows(a_tall.data(), b_wide.data(), d_scalar.data(), 0,
                            kDim, kDim, kRows, kDim, false);
    }
    ta.ms_scalar = MsSince(t0);
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kernel_reps; ++r) {
      d_simd.Fill(0.0f);
      active.matmul_ta_rows(a_tall.data(), b_wide.data(), d_simd.data(), 0,
                            kDim, kDim, kRows, kDim, false);
    }
    ta.ms_simd = MsSince(t0);
    mismatches += CountMismatch(d_scalar, d_simd);
  }

  // matmul_tb_rows: [kRows x kDim] * [kDim x kDim]^T (the input-gradient
  // shape; b is square here so the transpose view is valid).
  TimedPair tb{"matmul_tb_scalar_ms", "matmul_tb_simd_ms"};
  {
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kernel_reps; ++r) {
      c_scalar.Fill(0.0f);
      scalar.matmul_tb_rows(a.data(), b.data(), c_scalar.data(), 0, kRows,
                            kDim, kDim, false);
    }
    tb.ms_scalar = MsSince(t0);
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kernel_reps; ++r) {
      c_simd.Fill(0.0f);
      active.matmul_tb_rows(a.data(), b.data(), c_simd.data(), 0, kRows, kDim,
                            kDim, false);
    }
    tb.ms_simd = MsSince(t0);
    mismatches += CountMismatch(c_scalar, c_simd);
  }

  for (const TimedPair& p : {mm, ta, tb}) {
    report.AddValue(p.label_scalar, p.ms_scalar);
    report.AddValue(p.label_simd, p.ms_simd);
    std::printf("%-22s %8.1f ms   %-20s %8.1f ms\n", p.label_scalar,
                p.ms_scalar, p.label_simd, p.ms_simd);
  }
  report.AddValue("kernel_mismatch_count", static_cast<double>(mismatches));

  // --- planned vs eager training step ------------------------------------
  StepSetup setup;
  size_t tape_nodes = 0;
  double planned_ms = 0.0, eager_ms = 0.0;
  size_t step_mismatches = 0;
  {
    nn::Tape::SetModeForTest(nn::Tape::Mode::kPlanned);
    setup.store.ZeroGrads();
    nn::Tensor planned_out = setup.Run(&tape_nodes);  // warm the plan cache
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < step_reps; ++r) {
      setup.store.ZeroGrads();
      planned_out = setup.Run();
    }
    planned_ms = MsSince(t0) / step_reps;

    nn::Tape::SetModeForTest(nn::Tape::Mode::kEager);
    setup.store.ZeroGrads();
    nn::Tensor eager_out = setup.Run();
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < step_reps; ++r) {
      setup.store.ZeroGrads();
      eager_out = setup.Run();
    }
    eager_ms = MsSince(t0) / step_reps;
    nn::Tape::SetModeForTest(nn::Tape::Mode::kEnv);
    step_mismatches = CountMismatch(planned_out, eager_out);
  }
  report.AddValue("planned_step_ms", planned_ms);
  report.AddValue("eager_step_ms", eager_ms);
  report.AddValue("planned_vs_eager_mismatch_count",
                  static_cast<double>(step_mismatches));
  report.AddValue("tape_nodes_count", static_cast<double>(tape_nodes));
  std::printf("step: planned %.2f ms  eager %.2f ms  (%zu tape nodes)\n",
              planned_ms, eager_ms, tape_nodes);

  // --- fusion / chunk counts via the profiler ----------------------------
  // Counts are pure functions of the workload shapes: identical across
  // machines, runs and thread counts (DESIGN.md §12-13), so they gate the
  // plan compiler's fusion decisions exactly.
  {
    obs::Profiler::Global().ResetForTest();
    obs::Profiler::Global().Enable(true);
    nn::Tape::SetModeForTest(nn::Tape::Mode::kPlanned);
    setup.store.ZeroGrads();
    setup.Run();
    nn::Tape::SetModeForTest(nn::Tape::Mode::kEnv);
    obs::Profiler::Global().Enable(false);
    const auto regions = obs::Profiler::Global().RegionSnapshot();
    const auto ops = obs::Profiler::Global().OpSnapshot();
    obs::Profiler::Global().ResetForTest();
    uint64_t chunks = 0, unnamed = 0;
    for (const auto& [name, r] : regions) {
      chunks += r.chunks;
      if (name == "(kernel)") unnamed = r.regions;
    }
    // Fusion dispatch counts come from the op records (the scatter group
    // is a sequential kernel, so it never opens a parallel region).
    const auto op_count = [&ops](const char* name) -> uint64_t {
      const auto it = ops.find(name);
      return it == ops.end() ? 0 : it->second.dispatches;
    };
    const uint64_t fused_linear = op_count("plan.linear_act");
    const uint64_t fused_scatter = op_count("plan.mul_col_segment_sum");
    report.AddValue("fused_linear_count", static_cast<double>(fused_linear));
    report.AddValue("fused_scatter_count",
                    static_cast<double>(fused_scatter));
    report.AddValue("step_chunks_count", static_cast<double>(chunks));
    report.AddValue("unnamed_region_count", static_cast<double>(unnamed));
    report.AddValue("plan_cache_count",
                    static_cast<double>(nn::PlanCache::Global().size()));
    std::printf("fusion: %llu linear_act, %llu scatter regions; "
                "%llu chunks, %llu unnamed\n",
                static_cast<unsigned long long>(fused_linear),
                static_cast<unsigned long long>(fused_scatter),
                static_cast<unsigned long long>(chunks),
                static_cast<unsigned long long>(unnamed));
  }
  return 0;
}

}  // namespace o2sr

int main() { return o2sr::Main(); }
