// Microbenchmarks (google-benchmark) of the computational kernels behind
// the models: dense matmul variants, the sparse segment ops used by graph
// attention, simulator throughput, and graph construction. Not a paper
// table — this is the performance baseline for the library itself.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "features/order_stats.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"
#include "nn/tape.h"
#include "nn/tensor.h"
#include "sim/dataset.h"

namespace o2sr {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const nn::Tensor a = nn::Tensor::RandomNormal(n, n, 1.0, rng);
  const nn::Tensor b = nn::Tensor::RandomNormal(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransposeB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const nn::Tensor a = nn::Tensor::RandomNormal(n, n, 1.0, rng);
  const nn::Tensor b = nn::Tensor::RandomNormal(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulTransposeB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(64)->Arg(128)->Arg(256);

// Matmul scaling across explicit pool sizes (the arg is the thread count);
// the result is bit-identical at every size, only the wall time moves.
void BM_MatMulThreads(benchmark::State& state) {
  const int n = 256;
  exec::ThreadPool pool(static_cast<int>(state.range(0)), "exec.bench_pool");
  exec::PoolScope scope(&pool);
  Rng rng(1);
  const nn::Tensor a = nn::Tensor::RandomNormal(n, n, 1.0, rng);
  const nn::Tensor b = nn::Tensor::RandomNormal(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SegmentOpsForwardBackward(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const int nodes = edges / 16;
  const int dim = 32;
  Rng rng(1);
  nn::ParameterStore store;
  nn::Parameter* emb = store.CreateNormal("emb", nodes, dim, 0.5, rng);
  std::vector<int> src(edges), dst(edges);
  for (int e = 0; e < edges; ++e) {
    src[e] = rng.UniformInt(0, nodes - 1);
    dst[e] = rng.UniformInt(0, nodes - 1);
  }
  for (auto _ : state) {
    nn::Tape tape;
    nn::Value x = tape.Param(emb);
    nn::Value gathered = tape.GatherRows(x, src);
    nn::Value scores = tape.RowwiseDot(gathered, tape.GatherRows(x, dst));
    nn::Value alpha = tape.SegmentSoftmax(scores, dst, nodes);
    nn::Value out = tape.SegmentSum(tape.MulColBroadcast(gathered, alpha),
                                    dst, nodes);
    nn::Value loss = tape.MeanAll(out);
    tape.Backward(loss);
    store.ZeroGrads();
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_SegmentOpsForwardBackward)->Arg(4096)->Arg(32768);

sim::SimConfig KernelSimConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 6000.0;
  cfg.city_height_m = 6000.0;
  cfg.num_store_types = 16;
  cfg.num_stores = 1500;
  cfg.num_couriers = 210;
  cfg.num_days = 3;
  cfg.seed = 5;
  return cfg;
}

void BM_SimulatorThroughput(benchmark::State& state) {
  const sim::SimConfig cfg = KernelSimConfig();
  size_t orders = 0;
  for (auto _ : state) {
    const sim::Dataset data = sim::GenerateDataset(cfg);
    orders = data.orders.size();
    benchmark::DoNotOptimize(data.orders.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(orders));
  state.counters["orders"] = static_cast<double>(orders);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_HeteroGraphBuild(benchmark::State& state) {
  const sim::Dataset data = sim::GenerateDataset(KernelSimConfig());
  const features::OrderStats stats(data);
  for (auto _ : state) {
    graphs::HeteroMultiGraph graph(data, stats);
    benchmark::DoNotOptimize(graph.num_store_nodes());
  }
}
BENCHMARK(BM_HeteroGraphBuild);

void BM_MobilityGraphBuild(benchmark::State& state) {
  const sim::Dataset data = sim::GenerateDataset(KernelSimConfig());
  const features::OrderStats stats(data);
  for (auto _ : state) {
    graphs::MobilityMultiGraph graph(stats);
    benchmark::DoNotOptimize(graph.TotalEdges());
  }
}
BENCHMARK(BM_MobilityGraphBuild);

void BM_OrderStatsBuild(benchmark::State& state) {
  const sim::Dataset data = sim::GenerateDataset(KernelSimConfig());
  for (auto _ : state) {
    features::OrderStats stats(data);
    benchmark::DoNotOptimize(stats.num_regions());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.orders.size()));
}
BENCHMARK(BM_OrderStatsBuild);

}  // namespace
}  // namespace o2sr

// Like BENCHMARK_MAIN(), but defaults the JSON reporter to
// BENCH_kernels.json so every bench binary leaves a machine-readable
// artifact. Explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
