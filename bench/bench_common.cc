#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"
#include "exec/thread_pool.h"
#include "obs/env.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/profiler.h"

// Build-flavor stamps, normally injected by bench/CMakeLists.txt.
#ifndef O2SR_BUILD_TYPE_NAME
#define O2SR_BUILD_TYPE_NAME "unknown"
#endif
#ifndef O2SR_SANITIZE_NAME
#define O2SR_SANITIZE_NAME "none"
#endif

namespace o2sr::bench {

Scale CurrentScale() {
  // EnvChoice is fatal on unknown values, listing the accepted set — an
  // O2SR_BENCH_SCALE typo must not silently record "standard" numbers
  // under the wrong label.
  static const Scale scale = static_cast<Scale>(obs::EnvChoice(
      "O2SR_BENCH_SCALE", {"small", "standard", "paper"}, /*fallback=*/1));
  return scale;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmall: return "small";
    case Scale::kStandard: return "standard";
    case Scale::kPaper: return "paper";
  }
  return "?";
}

sim::SimConfig RealDataConfig() {
  sim::SimConfig cfg;
  cfg.seed = 7;
  if (CurrentScale() != Scale::kSmall) {
    cfg.city_width_m = 12000.0;
    cfg.city_height_m = 12000.0;
    cfg.num_store_types = 18;
    cfg.num_stores = 9500;   // dense market, ~16 stores per active region
    cfg.num_couriers = 820;
    cfg.num_days = 7;
    cfg.peak_orders_per_region_slot = 5.0;
  } else {
    cfg.city_width_m = 7000.0;
    cfg.city_height_m = 7000.0;
    cfg.num_store_types = 14;
    cfg.num_stores = 3200;
    cfg.num_couriers = 280;
    cfg.num_days = 5;
    cfg.peak_orders_per_region_slot = 5.0;
  }
  return cfg;
}

sim::SimConfig OpenDataConfig() {
  sim::SimConfig cfg = RealDataConfig();
  cfg.preset = sim::SimulationPreset::kOpenData;
  cfg.seed = 8;
  return cfg;
}

sim::SimConfig SweepConfig() {
  sim::SimConfig cfg = RealDataConfig();
  if (CurrentScale() != Scale::kSmall) {
    cfg.city_width_m = 9000.0;
    cfg.city_height_m = 9000.0;
    cfg.num_stores = 5400;
    cfg.num_couriers = 470;
    cfg.num_days = 6;
  }
  return cfg;
}

core::O2SiteRecConfig ModelConfig() {
  core::O2SiteRecConfig cfg;
  cfg.rec.embedding_dim = 32;
  cfg.rec.node_heads = 4;
  cfg.rec.time_heads = 2;
  cfg.epochs = CurrentScale() != Scale::kSmall ? 30 : 25;
  cfg.learning_rate = 3e-3;
  return cfg;
}

baselines::BaselineConfig BaselineDefaults() {
  baselines::BaselineConfig cfg;
  cfg.embedding_dim = 32;
  cfg.epochs = 150;
  return cfg;
}

eval::EvalOptions EvalDefaults() {
  eval::EvalOptions opts;
  opts.min_candidates = CurrentScale() != Scale::kSmall ? 40 : 25;
  return opts;
}

PreparedData::PreparedData(const sim::SimConfig& config, uint64_t split_seed)
    : data(sim::GenerateDataset(config)) {
  split = eval::SplitInteractions(data, eval::BuildInteractions(data),
                                  {0.8, split_seed});
}

core::TrainContext MakeTrainContext(const PreparedData& prepared) {
  core::TrainContext ctx;
  ctx.data = &prepared.data;
  ctx.visible_orders = &prepared.split.train_orders;
  ctx.train = &prepared.split.train;
  return ctx;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Regenerates: %s\n", paper_ref.c_str());
  std::printf("Scale: %s (set O2SR_BENCH_SCALE=small for a quick run)\n",
              ScaleName(CurrentScale()));
  std::printf("==============================================================\n");
}

BenchReport::BenchReport(const std::string& name, const std::string& title,
                         const std::string& paper_ref)
    : name_(name),
      title_(title),
      paper_ref_(paper_ref),
      start_(std::chrono::steady_clock::now()) {
  PrintHeader(title, paper_ref);
  root_name_ = "bench." + name_;
  root_span_ = std::make_unique<obs::ScopedTrace>(root_name_.c_str());
}

BenchReport::~BenchReport() { Write(); }

void BenchReport::AddResult(const std::string& label,
                            const eval::EvalResult& result) {
  cells_.emplace_back(label, result);
}

void BenchReport::AddValue(const std::string& label, double value) {
  values_.emplace_back(label, value);
}

void BenchReport::Write() {
  if (written_) return;
  written_ = true;
  root_span_.reset();  // close "bench.<name>" so it has a duration
  // Profiler counters ride along in the Chrome trace. Emitting them here —
  // during main(), not at exit — sequences them before the trace file's
  // atexit export regardless of singleton construction order.
  {
    obs::Profiler& profiler = obs::Profiler::Global();
    if (profiler.enabled()) {
      profiler.EmitTraceCounters(&obs::TraceRecorder::Global());
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  std::ostringstream out;
  out << "{\"bench\":" << obs::JsonQuote(name_)
      << ",\"title\":" << obs::JsonQuote(title_)
      << ",\"paper_ref\":" << obs::JsonQuote(paper_ref_) << ",\"scale\":"
      << obs::JsonQuote(ScaleName(CurrentScale()))
      << ",\"seed_count\":" << seed_count_
      << ",\"threads\":" << exec::CurrentPool().num_threads()
      << ",\"build_type\":" << obs::JsonQuote(O2SR_BUILD_TYPE_NAME)
      << ",\"sanitizer\":" << obs::JsonQuote(O2SR_SANITIZE_NAME)
      << ",\"wall_clock_s\":" << obs::JsonNum(wall_s);

  // Fixed 3-decimal stage times: sub-microsecond double noise must not
  // show up as a diff between two otherwise identical runs.
  out << ",\"stages_ms\":{";
  bool first = true;
  for (const auto& [stage, ms] : obs::TraceRecorder::Global().StageMillis()) {
    if (!first) out << ",";
    first = false;
    out << obs::JsonQuote(stage) << ":" << obs::JsonFixed(ms, 3);
  }
  out << "}";

  out << ",\"cells\":[";
  first = true;
  auto get = [](const std::map<int, double>& m, int k) {
    const auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
  };
  for (const auto& [label, r] : cells_) {
    if (!first) out << ",";
    first = false;
    out << "{\"label\":" << obs::JsonQuote(label)
        << ",\"ndcg@3\":" << obs::JsonNum(get(r.ndcg, 3))
        << ",\"ndcg@5\":" << obs::JsonNum(get(r.ndcg, 5))
        << ",\"ndcg@10\":" << obs::JsonNum(get(r.ndcg, 10))
        << ",\"precision@3\":" << obs::JsonNum(get(r.precision, 3))
        << ",\"precision@5\":" << obs::JsonNum(get(r.precision, 5))
        << ",\"precision@10\":" << obs::JsonNum(get(r.precision, 10))
        << ",\"rmse\":" << obs::JsonNum(r.rmse)
        << ",\"types_evaluated\":" << r.types_evaluated << "}";
  }
  out << "]";

  out << ",\"values\":[";
  first = true;
  for (const auto& [label, value] : values_) {
    if (!first) out << ",";
    first = false;
    out << "{\"label\":" << obs::JsonQuote(label)
        << ",\"value\":" << obs::JsonNum(value) << "}";
  }
  out << "]}";

  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    O2SR_LOG(ERROR) << "cannot write bench report " << path;
    return;
  }
  file << out.str() << "\n";
  O2SR_LOG(INFO) << "bench report written to " << path;
}

std::vector<std::string> MetricCells(const eval::EvalResult& r) {
  auto get = [](const std::map<int, double>& m, int k) {
    const auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
  };
  return {TablePrinter::Num(get(r.ndcg, 3)),
          TablePrinter::Num(get(r.ndcg, 5)),
          TablePrinter::Num(get(r.ndcg, 10)),
          TablePrinter::Num(get(r.precision, 3)),
          TablePrinter::Num(get(r.precision, 5)),
          TablePrinter::Num(get(r.precision, 10)),
          TablePrinter::Num(r.rmse)};
}

eval::EvalResult AverageResults(const std::vector<eval::EvalResult>& results) {
  eval::EvalResult avg;
  if (results.empty()) return avg;
  for (const eval::EvalResult& r : results) {
    for (const auto& [k, v] : r.ndcg) avg.ndcg[k] += v;
    for (const auto& [k, v] : r.precision) avg.precision[k] += v;
    avg.rmse += r.rmse;
    avg.types_evaluated += r.types_evaluated;
  }
  const double n = static_cast<double>(results.size());
  for (auto& [k, v] : avg.ndcg) v /= n;
  for (auto& [k, v] : avg.precision) v /= n;
  avg.rmse /= n;
  avg.types_evaluated = static_cast<int>(avg.types_evaluated / n);
  return avg;
}

eval::EvalResult RunVariantAveraged(const PreparedData& prepared,
                                    core::O2SiteRecConfig config, int seeds,
                                    const eval::EvalOptions& options) {
  // Seed replicas are independent models; each writes its own result slot
  // and the slots are averaged in seed order, so the row is the same no
  // matter how many threads ran. Nested parallel regions inside RunOnce
  // (matmuls, graph builds) execute inline on the worker.
  std::vector<eval::EvalResult> results(seeds);
  exec::CurrentPool().ParallelFor(
      seeds, /*grain=*/1,
      [&](int64_t s) {
        core::O2SiteRecConfig seed_config = config;
        seed_config.seed = 21 + static_cast<int>(s);
        core::O2SiteRecRecommender model(seed_config);
        results[s] =
            eval::RunOnce(model, prepared.data, prepared.split, options)
                .value();
      },
      "exec.bench_seeds");
  return AverageResults(results);
}

}  // namespace o2sr::bench
